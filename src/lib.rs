//! # raceline — dynamic fault detection for multi-threaded programs
//!
//! A full Rust reproduction of Mühlenfeld & Wotawa, *Fault Detection in
//! Multi-Threaded C++ Server Applications* (ENTCS 174, 2007): the Eraser
//! lockset race detector as shipped in Valgrind's Helgrind, the thread-
//! segment refinement, and the paper's two improvements — the corrected
//! hardware bus-lock model (**HWLC**) and automatic destructor annotation
//! (**DR**) — together with every substrate the evaluation needs: a
//! deterministic guest-program VM ([`vexec`]), a C++ runtime-behaviour
//! model ([`cxxmodel`]), a mini-C++ front end with the Fig 4 annotation
//! pipeline ([`minicpp`]), and the SIP proxy application model with the
//! eight evaluation test cases ([`sipsim`]).
//!
//! ## Quickstart
//!
//! ```
//! use raceline::prelude::*;
//!
//! // Build a racy two-thread guest program.
//! let mut pb = ProgramBuilder::new();
//! let counter = pb.global("counter", 8);
//! let loc = pb.loc("app.cpp", 7, "worker");
//! let mut w = ProcBuilder::new(0);
//! w.at(loc);
//! let v = w.load_new(counter, 8);
//! w.store(counter, Expr::Reg(v).add(1u64.into()), 8);
//! let worker = pb.add_proc("worker", w);
//! let mut main = ProcBuilder::new(0);
//! main.at(pb.loc("app.cpp", 20, "main"));
//! let h1 = main.spawn(worker, vec![]);
//! let h2 = main.spawn(worker, vec![]);
//! main.join(h1);
//! main.join(h2);
//! let main_id = pb.add_proc("main", main);
//! pb.set_entry(main_id);
//! let program = pb.finish();
//!
//! // Run it under the HWLC+DR detector.
//! let mut detector = EraserDetector::new(DetectorConfig::hwlc_dr());
//! run_program(&program, &mut detector, &mut RoundRobin::new());
//! assert_eq!(detector.sink.race_location_count(), 1);
//! ```

pub use cxxmodel;
pub use helgrind_core;
pub use minicpp;
pub use sipsim;
pub use vexec;

/// The most common imports in one place.
pub mod prelude {
    pub use helgrind_core::{
        BusLockModel, DetectorConfig, DjitDetector, EraserDetector, HybridDetector, Report,
        ReportKind, SuppressionSet,
    };
    pub use vexec::filter::{FilterCache, FilterStats, FilterTool};
    pub use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
    pub use vexec::ir::{Cond, Expr, Program, SyncKind, SyncOp};
    pub use vexec::sched::{PriorityOrder, Quantum, RoundRobin, Scheduler, SeededRandom};
    pub use vexec::tool::{CountingTool, NullTool, RecordingTool, Tool};
    pub use vexec::vm::{run_program, RunResult, Termination, VmOptions};
    pub use vexec::{AccessKind, Event, ThreadId};
}
