//! `raceline` — check a mini-C++ program for races and deadlocks, the way
//! the paper's debugging process (Fig 3) runs a server under Helgrind.
//!
//! ```text
//! raceline check app.mcpp [lib.mcpp ...] [options]
//! raceline record app.mcpp [lib.mcpp ...] [--out <trace.rltrace>] [options]
//! raceline analyze trace.rltrace [--detector <name>] [--jobs <n>] [options]
//! raceline trace-diff old.rltrace new.rltrace [--detector <name>] [--json]
//! raceline lint  app.mcpp [lib.mcpp ...] [--raw <file>] [--json]
//! raceline chaos [--runs <n>] [--seed <s>] [--cases T1,T3] [--jobs <n>] [options]
//! raceline bench-snapshot [--out <file>] [--samples <n>] [--quick] [--trace] [--soak]
//!
//! check options:
//!   --detector original|hwlc|hwlc-dr|djit|hybrid|hybrid-queue   (default hwlc-dr)
//!   --schedule rr|random:<seed>|pct:<seed>:<depth>              (default rr)
//!   --raw <file>            compile <file> without instrumentation
//!                           (third-party source, §3.1)
//!   --suppressions <file>   load a Valgrind-style suppression file
//!   --gen-suppressions      print a suppression entry for each warning
//!   --explore <n>           run under <n> random schedules and aggregate
//!   --jobs <n>              (with --explore) spread the sweep over <n>
//!                           worker threads; the summary, checkpoint and
//!                           exit code are bit-identical to --jobs 1
//!   --checkpoint <file>     (with --explore) resume from/save a sweep
//!                           checkpoint
//!   --faults <spec>         inject faults, e.g. seed=7,wakeup=20,kill=1
//!                           (keys: seed wakeup lockfail allocfail kill
//!                           max-kills, rates in permille)
//!   --budget <spec>         cap detector state, e.g.
//!                           shadow=10000,locksets=256,reports=64,slots=200000
//!                           (keys: shadow locksets reports slots
//!                           total-slots — the last is the --explore
//!                           watchdog); capped runs degrade and set
//!                           truncated/timed_out flags instead of aborting
//!   --no-filter             disable the redundant-access filter cache
//!                           (reports are identical either way; the filter
//!                           only saves time — also valid for record,
//!                           --explore and chaos)
//!   --stats                 print per-engine access counts, filter hit
//!                           rate, epoch-representation counters and
//!                           shadow-overflow counters to stderr
//!                           (also valid for analyze; stdout is unchanged)
//!   --hb-reference          run the HB engines on the reference full-VC
//!                           read state instead of the adaptive FastTrack
//!                           epoch lattice (reports are identical; the
//!                           epoch-equivalence gates pin it — also valid
//!                           for analyze, chaos and soak)
//!   --static-cross-check    also run the static analysis and label each
//!                           finding confirmed-both / static-only /
//!                           dynamic-only (joined by kind, file, line; an
//!                           escaping-guarded-ref finding is confirmed when
//!                           a dynamic race lands on one of its recorded
//!                           post-release use sites)
//!   --directed              (with --explore and --static-cross-check)
//!                           spend the first schedules on probes that
//!                           preempt at each static finding's release/use
//!                           window — escape findings first, then static
//!                           races — before falling back to the seeded
//!                           sweep; still bit-identical across --jobs N
//!   --json                  machine-readable output
//!   --emit-annotated        print the annotated source (Fig 4 view)
//!   --emit-ir               print the lowered guest IR (disassembly)
//!
//! Exit codes: 0 = ran clean, 1 = findings reported, 2 = tool or guest
//! error (unreadable input, compile error, bad usage, guest fault).
//! ```

use helgrind_core::explore::{
    explore_schedules_directed, explore_schedules_with, DirectedTarget, ExploreCheckpoint,
    ExploreLimits,
};
use helgrind_core::replay::{analyze_trace_bytes, warning_fingerprint, ReplayDetector};
use helgrind_core::ReportKind;
use helgrind_core::{
    BudgetSpec, DetectorConfig, DjitDetector, EraserDetector, HybridDetector, Report, Suppression,
    SuppressionSet,
};
use minicpp::analysis::escape::EscapeFinding;
use minicpp::pipeline::{run_pipeline, SourceFile};
use raceline_trace::format::{TraceFaultStats, TraceTermination};
use raceline_trace::writer::TraceWriter;
use serde::{Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};
use vexec::faults::{parse_u64, FaultPlan, FaultStats};
use vexec::filter::{FilterStats, FilterTool};
use vexec::ir::lower::FlatProgram;
use vexec::sched::{Pct, RoundRobin, Scheduler, SeededRandom};
use vexec::tool::Tool;
use vexec::vm::{run_flat, BlockOn, RunResult, Termination, VmOptions};

fn usage() -> ! {
    eprintln!(
        "usage: raceline check <file.mcpp>... [--raw <file.mcpp>]... \
         [--detector original|hwlc|hwlc-dr|djit|hybrid|hybrid-queue] \
         [--schedule rr|random:<seed>|pct:<seed>:<depth>] \
         [--suppressions <file>] [--gen-suppressions] [--explore <n>] \
         [--checkpoint <file>] [--faults <spec>] [--budget <spec>] \
         [--jobs <n>] [--static-cross-check] [--directed] [--no-filter] [--hb-reference] \
         [--stats] [--json] [--emit-annotated] [--emit-ir]\n\
         \x20      raceline record <file.mcpp>... [--out <trace.rltrace>] \
         [--epoch-events <n>] [--schedule ...] [--faults <spec>] [--budget <spec>] \
         [--no-filter] [--stats]\n\
         \x20      raceline analyze <trace.rltrace> [--detector <name>] [--jobs <n>] \
         [--from-epoch <k>] [--suppressions <file>] [--gen-suppressions] [--budget <spec>] \
         [--repair] [--hb-reference] [--stats] [--json]\n\
         \x20      raceline soak [--dialogs <n>] [--phases <n>] [--seed <s>] [--workers <n>] \
         [--resize <n>] [--hops <n>] [--churn <permille>] [--options <permille>] \
         [--reinvites <n>] [--kill <permille>] [--max-kills <n>] [--no-reclaim] \
         [--detector <name>] [--budget <spec>] [--jobs <n>] [--checkpoint <file>] \
         [--max-slots <n>] [--no-filter] [--hb-reference] [--mem-report]\n\
         \x20      raceline trace-diff <old.rltrace> <new.rltrace> [--detector <name>] \
         [--detector-a <name>] [--detector-b <name>] [--jobs <n>] [--json]\n\
         \x20      raceline lint <file.mcpp>... [--raw <file.mcpp>]... [--json]\n\
         \x20      raceline chaos [--runs <n>] [--seed <s>] [--cases T1,T3,...] \
         [--detector <name>] [--max-slots <n>] [--jobs <n>] [--no-filter] \
         [--hb-reference] [--json]\n\
         \x20      raceline bench-snapshot [--out <file>] [--samples <n>] [--quick] [--trace] \
         [--soak]"
    );
    std::process::exit(2);
}

fn parse_detector(s: &str) -> DetectorConfig {
    match s {
        "original" => DetectorConfig::original(),
        "hwlc" => DetectorConfig::hwlc(),
        "hwlc-dr" => DetectorConfig::hwlc_dr(),
        "djit" => DetectorConfig::djit(),
        "hybrid" => DetectorConfig::hybrid(),
        "hybrid-queue" => DetectorConfig::hybrid_queue_hb(),
        other => {
            eprintln!("unknown detector: {other}");
            usage()
        }
    }
}

fn parse_schedule(s: &str) -> Box<dyn Scheduler> {
    if s == "rr" {
        return Box::new(RoundRobin::new());
    }
    if let Some(seed) = s.strip_prefix("random:") {
        let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
        return Box::new(SeededRandom::new(seed));
    }
    if let Some(rest) = s.strip_prefix("pct:") {
        let mut it = rest.split(':');
        let seed: u64 = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
        let depth: u32 = it.next().and_then(|x| x.parse().ok()).unwrap_or(2);
        return Box::new(Pct::new(seed, depth, 10_000));
    }
    eprintln!("unknown schedule: {s}");
    usage()
}

// Exit-code contract: 0 = ran clean, 1 = findings, 2 = tool/guest error.
const EXIT_FINDINGS: i32 = 1;
const EXIT_ERROR: i32 = 2;

fn read_source(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(EXIT_ERROR);
    })
}

/// The (kind, file, line) key the static/dynamic join uses.
fn join_key(r: &Report) -> (String, String, u32) {
    (r.kind.name().to_string(), r.file.clone(), r.line)
}

fn reports_json(reports: &[Report]) -> Value {
    Value::Array(reports.iter().map(|r| r.to_value()).collect())
}

/// Probe targets for `--directed`, most promising first: each escape
/// finding's release sites (the window the probe preempts into), then the
/// locations of the static race findings themselves.
fn directed_targets(stat: &minicpp::analysis::AnalysisResult) -> Vec<DirectedTarget> {
    let mut targets: Vec<DirectedTarget> = Vec::new();
    for e in &stat.escapes {
        if e.release_sites.is_empty() {
            targets.push(DirectedTarget { file: e.file.clone(), line: e.line });
        }
        for rs in &e.release_sites {
            targets.push(DirectedTarget { file: rs.file.clone(), line: rs.line });
        }
    }
    let mut races: Vec<DirectedTarget> = stat
        .reports
        .iter()
        .filter(|r| matches!(r.kind, ReportKind::RaceRead | ReportKind::RaceWrite))
        .map(|r| DirectedTarget { file: r.file.clone(), line: r.line })
        .collect();
    races.sort();
    races.dedup();
    targets.extend(races);
    // Keep first occurrence (escape release sites outrank race locations).
    let mut seen = BTreeSet::new();
    targets.retain(|t| seen.insert(t.clone()));
    targets
}

/// An escape finding is dynamically confirmed when some explored schedule
/// reported a warning at one of its post-release use sites.
fn escape_confirmed(
    r: &Report,
    escapes: &[EscapeFinding],
    dyn_lines: &BTreeSet<(String, u32)>,
) -> bool {
    r.kind == ReportKind::EscapingGuardedRef
        && escapes.iter().any(|e| {
            e.file == r.file
                && e.line == r.line
                && e.use_sites.iter().any(|u| dyn_lines.contains(&(u.file.clone(), u.line)))
        })
}

fn escapes_json(escapes: &[EscapeFinding], dyn_lines: &BTreeSet<(String, u32)>) -> Value {
    let site = |s: &minicpp::analysis::escape::SiteRef| {
        Value::Object(vec![
            ("func".to_string(), Value::Str(s.func.clone())),
            ("file".to_string(), Value::Str(s.file.clone())),
            ("line".to_string(), Value::UInt(u64::from(s.line))),
        ])
    };
    Value::Array(
        escapes
            .iter()
            .map(|e| {
                let confirmed =
                    e.use_sites.iter().any(|u| dyn_lines.contains(&(u.file.clone(), u.line)));
                Value::Object(vec![
                    ("kind".to_string(), Value::Str("EscapingGuardedRef".to_string())),
                    ("func".to_string(), Value::Str(e.func.clone())),
                    ("file".to_string(), Value::Str(e.file.clone())),
                    ("line".to_string(), Value::UInt(u64::from(e.line))),
                    (
                        "locks".to_string(),
                        Value::Array(e.locks.iter().map(|l| Value::Str(l.clone())).collect()),
                    ),
                    ("route".to_string(), Value::Str(e.route.clone())),
                    ("source".to_string(), Value::Str(e.source.clone())),
                    (
                        "release_sites".to_string(),
                        Value::Array(e.release_sites.iter().map(site).collect()),
                    ),
                    ("use_sites".to_string(), Value::Array(e.use_sites.iter().map(site).collect())),
                    ("confirmed".to_string(), Value::Bool(confirmed)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next().as_deref() {
        Some("check") => "check",
        Some("lint") => "lint",
        Some("record") => "record",
        Some("analyze") => {
            run_analyze(args.collect());
        }
        Some("trace-diff") => {
            run_trace_diff(args.collect());
        }
        Some("chaos") => {
            run_chaos(args.collect());
        }
        Some("soak") => {
            run_soak(args.collect());
        }
        Some("bench-snapshot") => {
            run_bench_snapshot(args.collect());
        }
        _ => usage(),
    };

    let mut files: Vec<SourceFile> = Vec::new();
    let mut detector_name = "hwlc-dr".to_string();
    let mut schedule = "rr".to_string();
    let mut suppressions = SuppressionSet::new();
    let mut gen_suppressions = false;
    let mut explore: Option<usize> = None;
    let mut jobs: usize = 1;
    let mut checkpoint_path: Option<String> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut budget: Option<BudgetSpec> = None;
    let mut emit_annotated = false;
    let mut emit_ir = false;
    let mut json = false;
    let mut cross_check = false;
    let mut directed = false;
    let mut record_out: Option<String> = None;
    let mut epoch_events: Option<u64> = None;
    let mut no_filter = false;
    let mut hb_reference = false;
    let mut stats = false;

    let args: Vec<String> = args.collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--detector" => detector_name = it.next().unwrap_or_else(|| usage()).clone(),
            "--schedule" => schedule = it.next().unwrap_or_else(|| usage()).clone(),
            "--raw" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = read_source(path);
                files.push(SourceFile::without_instrumentation(path, &text));
            }
            "--suppressions" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = read_source(path);
                suppressions = SuppressionSet::parse(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(EXIT_ERROR);
                });
            }
            "--faults" => {
                let spec = it.next().unwrap_or_else(|| usage());
                faults = Some(FaultPlan::parse(spec).unwrap_or_else(|e| {
                    eprintln!("--faults: {e}");
                    std::process::exit(EXIT_ERROR);
                }));
            }
            "--budget" => {
                let spec = it.next().unwrap_or_else(|| usage());
                budget = Some(BudgetSpec::parse(spec).unwrap_or_else(|e| {
                    eprintln!("--budget: {e}");
                    std::process::exit(EXIT_ERROR);
                }));
            }
            "--checkpoint" => checkpoint_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--out" => record_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--epoch-events" => {
                epoch_events =
                    Some(it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--gen-suppressions" => gen_suppressions = true,
            "--emit-annotated" => emit_annotated = true,
            "--emit-ir" => emit_ir = true,
            "--json" => json = true,
            "--no-filter" => no_filter = true,
            "--hb-reference" => hb_reference = true,
            "--stats" => stats = true,
            "--static-cross-check" => cross_check = true,
            "--directed" => directed = true,
            "--explore" => {
                explore = Some(it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--jobs" => {
                jobs = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            path if !path.starts_with('-') => {
                let text = read_source(path);
                files.push(SourceFile::new(path, &text));
            }
            _ => usage(),
        }
    }
    if files.is_empty() {
        usage();
    }

    if cmd == "lint" {
        run_lint(&files, json);
    }

    // Stage 1+2+3 (Fig 3): preprocess, parse + annotate, compile.
    let out = run_pipeline(&files).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(EXIT_ERROR);
    });
    eprintln!(
        "compiled {} unit(s); {} delete site(s) annotated",
        files.len(),
        out.deletes_annotated
    );
    if emit_annotated {
        for (name, src) in &out.annotated_sources {
            println!("// ---- {name} (annotated) ----");
            println!("{src}");
        }
    }

    if emit_ir {
        println!("{}", vexec::ir::disasm::disassemble(&out.program.lower()));
    }

    let mut cfg = parse_detector(&detector_name);
    if let Some(b) = &budget {
        cfg.budget = b.detector;
    }
    cfg.hb_reference = hb_reference;

    // Exploration mode: aggregate warnings across many schedules.
    if let Some(runs) = explore {
        let limits = ExploreLimits {
            max_slots_per_run: budget.as_ref().and_then(|b| b.max_slots),
            total_slot_budget: budget.as_ref().and_then(|b| b.total_slots),
            faults,
            jobs,
            no_filter,
        };
        let resume = checkpoint_path.as_ref().and_then(|p| {
            let text = std::fs::read_to_string(p).ok()?;
            // An interrupted save leaves a torn final line; repair (drop the
            // partial record) rather than refusing to resume.
            match ExploreCheckpoint::parse_repair(&text) {
                Ok((ck, repaired)) => {
                    if repaired {
                        eprintln!(
                            "{p}: repaired truncated checkpoint (dropped partial final line)"
                        );
                    }
                    eprintln!("resuming from {p}: {}/{} runs done", ck.next_index, ck.runs);
                    Some(ck)
                }
                Err(e) => {
                    eprintln!("{p}: {e}");
                    std::process::exit(EXIT_ERROR);
                }
            }
        });
        if directed && !cross_check {
            eprintln!("--directed requires --static-cross-check (it consumes static findings)");
            std::process::exit(EXIT_ERROR);
        }
        let stat = cross_check.then(|| minicpp::analysis::analyze(&out.units));
        let summary = if directed {
            let stat = stat.as_ref().expect("--directed implies --static-cross-check");
            let targets = directed_targets(stat);
            eprintln!("directed: {} probe target(s) from static findings", targets.len());
            explore_schedules_directed(
                &out.program,
                cfg,
                runs,
                0xACE,
                limits,
                resume.as_ref(),
                &targets,
            )
        } else {
            explore_schedules_with(&out.program, cfg, runs, 0xACE, limits, resume.as_ref())
        };
        if let Some(p) = &checkpoint_path {
            if let Err(e) = write_checkpoint(p, &summary.checkpoint().render()) {
                eprintln!("cannot write checkpoint {p}: {e}");
                std::process::exit(EXIT_ERROR);
            }
        }
        if !json {
            println!(
                "explored {} schedules: {} clean, {} deadlocked",
                summary.runs, summary.clean_runs, summary.deadlocked_runs
            );
            if summary.timed_out {
                println!(
                    "timed out: {}/{} runs completed ({} fuel-exhausted)",
                    summary.completed_runs, summary.runs, summary.fuel_exhausted_runs
                );
            }
            for hit in &summary.locations {
                println!(
                    "[{:>3}/{:<3}] {}",
                    hit.hits,
                    summary.runs,
                    hit.report.render().trim_end()
                );
            }
        }
        let mut cross_json: Option<Value> = None;
        if let Some(stat) = &stat {
            // Join the static findings against every location any explored
            // schedule hit — the union is the fairest dynamic baseline. An
            // escaping-guarded-ref finding has no dynamic twin by kind; it
            // is confirmed when a dynamic race lands on one of its
            // post-release use sites.
            let dyn_keys: BTreeSet<_> =
                summary.locations.iter().map(|h| join_key(&h.report)).collect();
            let dyn_lines: BTreeSet<(String, u32)> =
                summary.locations.iter().map(|h| (h.report.file.clone(), h.report.line)).collect();
            let is_confirmed = |r: &Report| {
                dyn_keys.contains(&join_key(r)) || escape_confirmed(r, &stat.escapes, &dyn_lines)
            };
            let stat_keys: BTreeSet<_> = stat.reports.iter().map(join_key).collect();
            let confirmed = stat.reports.iter().filter(|r| is_confirmed(r));
            let static_only = stat.reports.iter().filter(|r| !is_confirmed(r));
            let dynamic_only =
                summary.locations.iter().filter(|h| !stat_keys.contains(&join_key(&h.report)));
            if !json {
                println!(
                    "static cross-check: {} confirmed-both, {} static-only, {} dynamic-only",
                    confirmed.clone().count(),
                    static_only.clone().count(),
                    dynamic_only.clone().count()
                );
                for r in confirmed.clone() {
                    println!("[confirmed-both] {} at {}:{}", r.kind.name(), r.file, r.line);
                }
                for r in static_only.clone() {
                    println!("[static-only] {} at {}:{}", r.kind.name(), r.file, r.line);
                }
                for h in dynamic_only.clone() {
                    let r = &h.report;
                    println!("[dynamic-only] {} at {}:{}", r.kind.name(), r.file, r.line);
                }
            }
            let to_vals =
                |rs: Vec<&Report>| Value::Array(rs.iter().map(|r| r.to_value()).collect());
            cross_json = Some(Value::Object(vec![
                ("confirmed_both".to_string(), to_vals(confirmed.collect())),
                ("static_only".to_string(), to_vals(static_only.collect())),
                ("dynamic_only".to_string(), to_vals(dynamic_only.map(|h| &h.report).collect())),
                ("escapes".to_string(), escapes_json(&stat.escapes, &dyn_lines)),
            ]));
        }
        if json {
            let locs = Value::Array(
                summary
                    .locations
                    .iter()
                    .map(|h| {
                        Value::Object(vec![
                            ("hits".to_string(), Value::UInt(h.hits as u64)),
                            ("first_run".to_string(), Value::UInt(h.first_run as u64)),
                            ("report".to_string(), h.report.to_value()),
                        ])
                    })
                    .collect(),
            );
            let mut obj = vec![
                ("runs".to_string(), Value::UInt(summary.runs as u64)),
                ("completed_runs".to_string(), Value::UInt(summary.completed_runs as u64)),
                ("clean_runs".to_string(), Value::UInt(summary.clean_runs as u64)),
                ("deadlocked_runs".to_string(), Value::UInt(summary.deadlocked_runs as u64)),
                ("timed_out".to_string(), Value::Bool(summary.timed_out)),
                ("directed".to_string(), Value::Bool(directed)),
                ("locations".to_string(), locs),
            ];
            if let Some(c) = cross_json {
                obj.push(("static_cross_check".to_string(), c));
            }
            println!("{}", Value::Object(obj));
        }
        std::process::exit(if summary.locations.is_empty() { 0 } else { 1 });
    }

    // Single-run mode: collect the post-suppression dynamic findings.
    let mut sched = parse_schedule(&schedule);
    let flat = out.program.lower();
    let opts = VmOptions {
        faults,
        max_slots: budget
            .as_ref()
            .and_then(|b| b.max_slots)
            .unwrap_or(VmOptions::default().max_slots),
        ..Default::default()
    };
    // Record mode: run the VM once with the trace writer as the tool and
    // leave all detection for `raceline analyze`.
    if cmd == "record" {
        let out_path = record_out.unwrap_or_else(|| "trace.rltrace".to_string());
        let file = std::fs::File::create(&out_path).unwrap_or_else(|e| {
            eprintln!("cannot create {out_path}: {e}");
            std::process::exit(EXIT_ERROR);
        });
        let mut writer = TraceWriter::new(std::io::BufWriter::new(file));
        if let Some(n) = epoch_events {
            writer = writer.with_epoch_events(n);
        }
        // The filter elides exact-repeat accesses before they reach the
        // writer: smaller traces, same reports on replay (elided events
        // are state-transition no-ops). --no-filter forces full streams.
        let (r, writer, filter_stats) = if no_filter {
            let r = run_flat(&flat, &mut writer, sched.as_mut(), opts);
            (r, writer, None)
        } else {
            let mut tool = FilterTool::new(writer);
            let r = run_flat(&flat, &mut tool, sched.as_mut(), opts);
            let (writer, fstats) = tool.into_parts();
            (r, writer, Some(fstats))
        };
        let summary =
            writer.finish(&r.termination, &r.stats, r.faults.as_ref()).unwrap_or_else(|e| {
                eprintln!("cannot write {out_path}: {e}");
                std::process::exit(EXIT_ERROR);
            });
        if stats {
            if let Some(fs) = filter_stats {
                print_filter_stats(&fs);
            }
        }
        match &r.termination {
            Termination::AllExited => {}
            Termination::Deadlock(waits) => {
                eprintln!("note: run ended in deadlock ({} thread(s) blocked)", waits.len());
            }
            Termination::GuestError(e) => eprintln!("note: run ended with guest error: {e}"),
            Termination::FuelExhausted => {
                eprintln!("note: slot budget exhausted before the program finished");
            }
        }
        eprintln!(
            "recorded {} event(s) in {} epoch(s) to {out_path} ({} bytes)",
            summary.events, summary.epochs, summary.bytes
        );
        std::process::exit(0);
    }

    let termination;
    let truncated;
    let fault_stats: Option<FaultStats>;
    let engine_stats: Vec<helgrind_core::EngineStats>;
    let filter_stats: Option<vexec::filter::FilterStats>;
    let dynamic: Vec<Report> = match detector_name.as_str() {
        "djit" => {
            let det = DjitDetector::new(cfg);
            let (r, mut det, fstats) = run_detector(&flat, det, sched.as_mut(), opts, no_filter);
            termination = r.termination;
            fault_stats = r.faults;
            truncated = det.truncated();
            engine_stats = det.engine_stats();
            filter_stats = fstats;
            det.sink.take_reports()
        }
        "hybrid" | "hybrid-queue" => {
            let det = HybridDetector::new(cfg);
            let (r, mut det, fstats) = run_detector(&flat, det, sched.as_mut(), opts, no_filter);
            termination = r.termination;
            fault_stats = r.faults;
            truncated = det.truncated();
            engine_stats = det.engine_stats();
            filter_stats = fstats;
            det.sink.take_reports()
        }
        _ => {
            // Eraser applies suppressions inside its sink already.
            let det = EraserDetector::with_suppressions(cfg, suppressions.clone());
            let (r, mut det, fstats) = run_detector(&flat, det, sched.as_mut(), opts, no_filter);
            termination = r.termination;
            fault_stats = r.faults;
            truncated = det.truncated();
            engine_stats = det.engine_stats();
            filter_stats = fstats;
            det.sink.take_reports()
        }
    };
    if stats {
        print_engine_stats(&engine_stats);
        if let Some(fs) = filter_stats {
            print_filter_stats(&fs);
        }
    }
    let dynamic: Vec<Report> = dynamic.into_iter().filter(|r| !suppressions.matches(r)).collect();

    // Static cross-check: join the two report streams by (kind, file,
    // line). The static side sees paths no schedule exercised; the
    // dynamic side sees heap/alias behaviour the static side abstracts.
    let cross = cross_check.then(|| {
        let stat = minicpp::analysis::analyze(&out.units);
        let dyn_keys: BTreeSet<_> = dynamic.iter().map(join_key).collect();
        let dyn_lines: BTreeSet<(String, u32)> =
            dynamic.iter().map(|r| (r.file.clone(), r.line)).collect();
        let is_confirmed = |r: &Report| {
            dyn_keys.contains(&join_key(r)) || escape_confirmed(r, &stat.escapes, &dyn_lines)
        };
        let stat_keys: BTreeSet<_> = stat.reports.iter().map(join_key).collect();
        let confirmed: Vec<&Report> = stat.reports.iter().filter(|r| is_confirmed(r)).collect();
        let static_only: Vec<&Report> = stat.reports.iter().filter(|r| !is_confirmed(r)).collect();
        let dynamic_only: Vec<&Report> =
            dynamic.iter().filter(|r| !stat_keys.contains(&join_key(r))).collect();
        let mut text = format!(
            "static cross-check: {} confirmed-both, {} static-only, {} dynamic-only\n",
            confirmed.len(),
            static_only.len(),
            dynamic_only.len()
        );
        for (label, set) in [
            ("confirmed-both", &confirmed),
            ("static-only", &static_only),
            ("dynamic-only", &dynamic_only),
        ] {
            for r in set.iter() {
                text.push_str(&format!(
                    "[{label}] {} at {} ({}:{}) — {}\n",
                    r.kind.name(),
                    r.func,
                    r.file,
                    r.line,
                    r.details
                ));
            }
        }
        let to_vals = |rs: &[&Report]| Value::Array(rs.iter().map(|r| r.to_value()).collect());
        let value = Value::Object(vec![
            ("confirmed_both".to_string(), to_vals(&confirmed)),
            ("static_only".to_string(), to_vals(&static_only)),
            ("dynamic_only".to_string(), to_vals(&dynamic_only)),
            ("escapes".to_string(), escapes_json(&stat.escapes, &dyn_lines)),
        ]);
        (text, value)
    });

    let (end, term_label) = end_of_termination(&termination);
    let faults_out = fault_stats.map(|fs| FaultCounts {
        total: fs.total(),
        spurious_wakeups: fs.spurious_wakeups,
        lock_failures: fs.lock_failures,
        alloc_failures: fs.alloc_failures,
        kills: fs.kills,
    });
    finish_run(dynamic, truncated, end, term_label, faults_out, cross, gen_suppressions, json);
}

/// How a run (live or replayed) ended, reduced to what the CLI prints.
/// `check` builds this from [`Termination`], `analyze` from the trace
/// footer's [`TraceTermination`]; both then share [`finish_run`], which is
/// what makes the offline text output byte-identical to the inline run.
enum EndKind {
    Clean,
    /// Per blocked thread: (tid, what it blocks on, holder tids).
    Deadlock(Vec<(u32, BlockOn, Vec<u32>)>),
    GuestError(String),
    TimedOut,
}

/// Injected-fault counters in CLI-neutral form (live or from the footer).
struct FaultCounts {
    total: u64,
    spurious_wakeups: u64,
    lock_failures: u64,
    alloc_failures: u64,
    kills: u64,
}

/// Run any detector through the VM, with the redundant-access filter in
/// front unless `--no-filter`. The filter is report-preserving (the
/// equivalence gates enforce it), so both paths print identical stdout.
fn run_detector<T: Tool>(
    flat: &FlatProgram,
    det: T,
    sched: &mut dyn Scheduler,
    opts: VmOptions,
    no_filter: bool,
) -> (RunResult, T, Option<FilterStats>) {
    if no_filter {
        let mut det = det;
        let r = run_flat(flat, &mut det, sched, opts);
        (r, det, None)
    } else {
        let mut tool = FilterTool::new(det);
        let r = run_flat(flat, &mut tool, sched, opts);
        let (det, fstats) = tool.into_parts();
        (r, det, Some(fstats))
    }
}

/// `--stats` output, stderr only: stdout report identity between filtered
/// and unfiltered runs is a hard contract, and engine access counts
/// legitimately differ when the filter elides events.
fn print_engine_stats(stats: &[helgrind_core::EngineStats]) {
    for s in stats {
        eprintln!(
            "stats: engine {} processed {} access(es), shadow overflow {}, \
             live granules {} (peak {})",
            s.name, s.accesses, s.shadow_overflow, s.live_granules, s.peak_granules
        );
        if let Some(e) = s.epoch {
            eprintln!(
                "stats: engine {} epochs: {} hit(s), {} promotion(s), \
                 {} demotion(s), {} vc fallback(s)",
                s.name, e.epoch_hits, e.promotions, e.demotions, e.vc_fallbacks
            );
        }
    }
}

fn print_filter_stats(fs: &FilterStats) {
    eprintln!(
        "stats: filter elided {} of {} candidate access(es) ({:.1}% hit rate, \
         {:.1}% of all {} event(s)); epoch bumps: {} thread, {} global",
        fs.elided,
        fs.candidates,
        fs.hit_rate() * 100.0,
        fs.elided_fraction() * 100.0,
        fs.events,
        fs.thread_epoch_bumps,
        fs.global_epoch_bumps
    );
}

fn end_of_termination(t: &Termination) -> (EndKind, String) {
    let label = format!("{t:?}");
    let end = match t {
        Termination::AllExited => EndKind::Clean,
        Termination::Deadlock(waits) => EndKind::Deadlock(
            waits
                .iter()
                .map(|w| (w.tid.0, w.on, w.holders.iter().map(|t| t.0).collect()))
                .collect(),
        ),
        Termination::GuestError(e) => EndKind::GuestError(e.to_string()),
        Termination::FuelExhausted => EndKind::TimedOut,
    };
    (end, label)
}

/// The trace footer keeps deadlock waits and the rendered guest error but
/// not the full `Termination` value, so the JSON `termination` label for
/// those two cases is a summary rather than the live Debug string; the
/// text output (the byte-identity contract) is unaffected.
fn end_of_trace(t: &TraceTermination) -> (EndKind, String) {
    match t {
        TraceTermination::AllExited => (EndKind::Clean, "AllExited".to_string()),
        TraceTermination::Deadlock(waits) => (
            EndKind::Deadlock(waits.iter().map(|w| (w.tid, w.on, w.holders.clone())).collect()),
            format!("Deadlock({} waiting)", waits.len()),
        ),
        TraceTermination::GuestError(e) => {
            (EndKind::GuestError(e.clone()), format!("GuestError({e})"))
        }
        TraceTermination::FuelExhausted => (EndKind::TimedOut, "FuelExhausted".to_string()),
        // Repaired traces end mid-run: the analyzed prefix is valid, the
        // outcome of the original run is simply not in the file.
        TraceTermination::Unknown => (EndKind::Clean, "Unknown".to_string()),
    }
}

/// Shared tail of `check` and `analyze`: print reports, termination
/// diagnostics, optional cross-check block and JSON object, then exit with
/// the 0/1/2 contract.
#[allow(clippy::too_many_arguments)]
fn finish_run(
    dynamic: Vec<Report>,
    truncated: bool,
    end: EndKind,
    term_label: String,
    faults: Option<FaultCounts>,
    cross: Option<(String, Value)>,
    gen_suppressions: bool,
    json: bool,
) -> ! {
    let mut warnings = dynamic.len();

    if !json {
        for (i, r) in dynamic.iter().enumerate() {
            println!("{}", r.render());
            if gen_suppressions {
                println!("{}", Suppression::from_report(&format!("auto-{}", i + 1), r, 3).render());
            }
        }
    }

    let mut guest_error: Option<String> = None;
    let timed_out = matches!(end, EndKind::TimedOut);
    match &end {
        EndKind::Clean => {}
        EndKind::Deadlock(waits) => {
            if !json {
                println!("DEADLOCK: {} thread(s) blocked:", waits.len());
                for (tid, on, holders) in waits {
                    println!("  thread {tid} blocked on {on:?} held by {holders:?}");
                }
            }
            warnings += 1;
        }
        EndKind::GuestError(e) => {
            // The *guest* faulted; the detector kept its state. Report as a
            // diagnostic and exit 2 — this is neither clean nor a finding.
            guest_error = Some(e.clone());
            if !json {
                println!("guest error: {e}");
            }
        }
        EndKind::TimedOut => {
            // Budget cap hit: a partial (but valid) run, not an error.
            if !json {
                println!("timed out: slot budget exhausted before the program finished");
            }
        }
    }

    if !json {
        if let Some((text, _)) = &cross {
            print!("{text}");
        }
    }

    if json {
        let mut obj = vec![
            ("warnings".to_string(), Value::UInt(warnings as u64)),
            ("termination".to_string(), Value::Str(term_label)),
            ("truncated".to_string(), Value::Bool(truncated)),
            ("timed_out".to_string(), Value::Bool(timed_out)),
            ("reports".to_string(), reports_json(&dynamic)),
        ];
        if let Some(e) = &guest_error {
            obj.push(("guest_error".to_string(), Value::Str(e.clone())));
        }
        if let Some(fs) = &faults {
            obj.push((
                "injected_faults".to_string(),
                Value::Object(vec![
                    ("total".to_string(), Value::UInt(fs.total)),
                    ("spurious_wakeups".to_string(), Value::UInt(fs.spurious_wakeups)),
                    ("lock_failures".to_string(), Value::UInt(fs.lock_failures)),
                    ("alloc_failures".to_string(), Value::UInt(fs.alloc_failures)),
                    ("kills".to_string(), Value::UInt(fs.kills)),
                ]),
            ));
        }
        if let Some((_, c)) = cross {
            obj.push(("static_cross_check".to_string(), c));
        }
        println!("{}", Value::Object(obj));
    }

    eprintln!("{warnings} warning(s)");
    if guest_error.is_some() {
        eprintln!("guest error: exiting with status {EXIT_ERROR}");
        std::process::exit(EXIT_ERROR);
    }
    std::process::exit(if warnings == 0 { 0 } else { EXIT_FINDINGS });
}

/// Crash-injection hook for the resume tests: with
/// `RACELINE_TEST_TORN_WRITE=N` in the environment, the Nth line written
/// through [`write_lines`] (counted process-wide, across every checkpoint
/// write and soak-log append) is cut in half, flushed, and the process
/// exits 42 — a reproducible harness crash mid-checkpoint-write.
fn torn_write_limit() -> Option<usize> {
    static LIMIT: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *LIMIT
        .get_or_init(|| std::env::var("RACELINE_TEST_TORN_WRITE").ok().and_then(|v| v.parse().ok()))
}

/// Write `rendered` line by line, flushing after every line so an
/// interrupt tears at most the final line — which both the explore
/// checkpoint's and the soak log's `parse_repair` drop on resume.
fn write_lines(w: &mut impl std::io::Write, rendered: &str) -> std::io::Result<()> {
    static WRITTEN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    for line in rendered.split_inclusive('\n') {
        let n = WRITTEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if torn_write_limit() == Some(n) {
            w.write_all(&line.as_bytes()[..line.len() / 2])?;
            w.flush()?;
            std::process::exit(42);
        }
        w.write_all(line.as_bytes())?;
        w.flush()?;
    }
    w.flush()
}

fn write_checkpoint(path: &str, rendered: &str) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_lines(&mut w, rendered)
}

/// Append one committed block to an existing soak log.
fn append_log(path: &str, block: &str) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(std::fs::OpenOptions::new().append(true).open(path)?);
    write_lines(&mut w, block)
}

/// Build the replay-side detector exactly the way the inline `check` path
/// builds its tool (same config, same suppression wiring) — the other half
/// of the byte-identity contract.
fn build_replay_detector(
    name: &str,
    cfg: DetectorConfig,
    suppressions: &SuppressionSet,
) -> ReplayDetector {
    match name {
        "djit" => ReplayDetector::Djit(DjitDetector::new(cfg)),
        "hybrid" | "hybrid-queue" => ReplayDetector::Hybrid(HybridDetector::new(cfg)),
        _ => ReplayDetector::Eraser(EraserDetector::with_suppressions(cfg, suppressions.clone())),
    }
}

fn read_trace(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(EXIT_ERROR);
    })
}

/// `raceline analyze`: feed a recorded trace through any detector
/// configuration — no VM, no re-execution — and print exactly what
/// `raceline check` would have printed inline.
fn run_analyze(args: Vec<String>) -> ! {
    let mut trace_path: Option<String> = None;
    let mut detector_name = "hwlc-dr".to_string();
    let mut jobs: usize = 1;
    let mut from_epoch: u64 = 0;
    let mut suppressions = SuppressionSet::new();
    let mut gen_suppressions = false;
    let mut budget: Option<BudgetSpec> = None;
    let mut json = false;
    let mut stats = false;
    let mut repair = false;
    let mut hb_reference = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--detector" => detector_name = it.next().unwrap_or_else(|| usage()).clone(),
            "--jobs" => {
                jobs = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--from-epoch" => {
                from_epoch = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--stats" => stats = true,
            "--repair" => repair = true,
            "--hb-reference" => hb_reference = true,
            "--suppressions" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = read_source(path);
                suppressions = SuppressionSet::parse(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(EXIT_ERROR);
                });
            }
            "--budget" => {
                let spec = it.next().unwrap_or_else(|| usage());
                budget = Some(BudgetSpec::parse(spec).unwrap_or_else(|e| {
                    eprintln!("--budget: {e}");
                    std::process::exit(EXIT_ERROR);
                }));
            }
            "--gen-suppressions" => gen_suppressions = true,
            "--json" => json = true,
            path if !path.starts_with('-') => {
                if trace_path.is_some() {
                    usage();
                }
                trace_path = Some(path.to_string());
            }
            _ => usage(),
        }
    }
    let path = trace_path.unwrap_or_else(|| usage());
    let bytes = read_trace(&path);

    let mut cfg = parse_detector(&detector_name);
    if let Some(b) = &budget {
        cfg.budget = b.detector;
    }
    cfg.hb_reference = hb_reference;
    let detector = build_replay_detector(&detector_name, cfg, &suppressions);
    let outcome = if repair {
        let (outcome, info) =
            helgrind_core::analyze_trace_repair(&bytes, detector, jobs.max(1), from_epoch)
                .unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(EXIT_ERROR);
                });
        if info.repaired {
            eprintln!(
                "repaired: dropped {} torn byte(s), analyzing {} intact epoch(s)",
                info.dropped_bytes, outcome.footer.epochs
            );
        }
        outcome
    } else {
        analyze_trace_bytes(&bytes, detector, jobs.max(1), from_epoch).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(EXIT_ERROR);
        })
    };
    eprintln!(
        "analyzed {} event(s) from {} epoch(s) [{detector_name}]",
        outcome.events, outcome.footer.epochs
    );
    if stats {
        // Replay-side counters only: the trace is already filtered (or
        // not) at record time; analyze never re-filters.
        print_engine_stats(&outcome.engine_stats);
    }

    let dynamic: Vec<Report> =
        outcome.reports.into_iter().filter(|r| !suppressions.matches(r)).collect();
    let (end, term_label) = end_of_trace(&outcome.footer.termination);
    let faults = outcome.footer.faults.map(|fs: TraceFaultStats| FaultCounts {
        total: fs.total(),
        spurious_wakeups: fs.spurious_wakeups,
        lock_failures: fs.lock_failures,
        alloc_failures: fs.alloc_failures,
        kills: fs.kills,
    });
    finish_run(dynamic, outcome.truncated, end, term_label, faults, None, gen_suppressions, json);
}

/// `raceline trace-diff`: analyze two traces (or one trace under two
/// detector configurations) and report warnings by stable fingerprint —
/// which are new, which are fixed. Exit 0 when the sets match, 1 when they
/// differ, 2 on error.
fn run_trace_diff(args: Vec<String>) -> ! {
    let mut paths: Vec<String> = Vec::new();
    let mut detector_a = "hwlc-dr".to_string();
    let mut detector_b: Option<String> = None;
    let mut jobs: usize = 1;
    let mut json = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--detector" => detector_a = it.next().unwrap_or_else(|| usage()).clone(),
            "--detector-a" => detector_a = it.next().unwrap_or_else(|| usage()).clone(),
            "--detector-b" => detector_b = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--jobs" => {
                jobs = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            path if !path.starts_with('-') => paths.push(path.to_string()),
            _ => usage(),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let detector_b = detector_b.unwrap_or_else(|| detector_a.clone());
    let suppressions = SuppressionSet::new();

    let analyze_one = |path: &str, name: &str| -> BTreeMap<String, Report> {
        let bytes = read_trace(path);
        let det = build_replay_detector(name, parse_detector(name), &suppressions);
        let outcome = analyze_trace_bytes(&bytes, det, jobs.max(1), 0).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(EXIT_ERROR);
        });
        outcome.reports.into_iter().map(|r| (warning_fingerprint(&r), r)).collect()
    };
    let old = analyze_one(&paths[0], &detector_a);
    let new = analyze_one(&paths[1], &detector_b);

    let fresh: Vec<(&String, &Report)> =
        new.iter().filter(|(k, _)| !old.contains_key(*k)).collect();
    let fixed: Vec<(&String, &Report)> =
        old.iter().filter(|(k, _)| !new.contains_key(*k)).collect();
    let unchanged = new.keys().filter(|k| old.contains_key(*k)).count();

    let describe = |r: &Report| format!("{} at {}:{} ({})", r.kind.name(), r.file, r.line, r.func);
    if json {
        let to_vals = |rs: &[(&String, &Report)]| {
            Value::Array(
                rs.iter()
                    .map(|(k, r)| {
                        Value::Object(vec![
                            ("fingerprint".to_string(), Value::Str((*k).clone())),
                            ("summary".to_string(), Value::Str(describe(r))),
                        ])
                    })
                    .collect(),
            )
        };
        let obj = Value::Object(vec![
            ("new".to_string(), to_vals(&fresh)),
            ("fixed".to_string(), to_vals(&fixed)),
            ("unchanged".to_string(), Value::UInt(unchanged as u64)),
        ]);
        println!("{obj}");
    } else {
        println!("trace-diff: {} new, {} fixed, {} unchanged", fresh.len(), fixed.len(), unchanged);
        for (_, r) in &fresh {
            println!("[new] {}", describe(r));
        }
        for (_, r) in &fixed {
            println!("[fixed] {}", describe(r));
        }
    }
    std::process::exit(if fresh.is_empty() && fixed.is_empty() { 0 } else { EXIT_FINDINGS });
}

/// `raceline lint`: parse + annotate + static passes, no execution.
fn run_lint(files: &[SourceFile], json: bool) -> ! {
    let result = minicpp::analysis::analyze_files(files).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(EXIT_ERROR);
    });
    let n = result.reports.len();
    if json {
        let obj = Value::Object(vec![
            ("findings".to_string(), Value::UInt(n as u64)),
            ("reports".to_string(), reports_json(&result.reports)),
        ]);
        println!("{obj}");
    } else {
        for r in &result.reports {
            println!("{}", r.render());
        }
    }
    eprintln!("{n} finding(s)");
    std::process::exit(if n == 0 { 0 } else { EXIT_FINDINGS });
}

/// `raceline chaos`: sweep seeded fault plans across the T1–T8 evaluation
/// cases and the §4.1 bug catalogue, asserting the *detector's* resilience
/// invariants — chaos-testing the tracer the way the paper's SIP proxy was
/// tested:
///
/// 1. no host panic, whatever the injected faults do to the guest;
/// 2. identical (seed, plan) ⇒ bit-identical report fingerprint;
/// 3. the true-positive catalogue is still detected under faults.
///
/// Findings in the guest are *expected* here (that is the point); the exit
/// code reflects only the invariants: 0 = all hold, 2 = a resilience bug.
fn run_chaos(args: Vec<String>) -> ! {
    let mut runs: usize = 100;
    let mut seed: u64 = 0xC0FFEE;
    let mut detector_name = "hwlc-dr".to_string();
    let mut case_filter: Option<Vec<String>> = None;
    let mut max_slots: Option<u64> = None;
    let mut jobs: usize = 1;
    let mut json = false;
    let mut no_filter = false;
    let mut hb_reference = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-filter" => no_filter = true,
            "--hb-reference" => hb_reference = true,
            "--jobs" => {
                jobs = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--runs" => {
                runs = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let s = it.next().unwrap_or_else(|| usage());
                seed = parse_u64(s).unwrap_or_else(|e| {
                    eprintln!("--seed: {e}");
                    std::process::exit(EXIT_ERROR);
                });
            }
            "--cases" => {
                let s = it.next().unwrap_or_else(|| usage());
                case_filter = Some(s.split(',').map(|c| c.trim().to_string()).collect());
            }
            "--detector" => detector_name = it.next().unwrap_or_else(|| usage()).clone(),
            "--max-slots" => {
                let s = it.next().unwrap_or_else(|| usage());
                max_slots = Some(parse_u64(s).unwrap_or_else(|e| {
                    eprintln!("--max-slots: {e}");
                    std::process::exit(EXIT_ERROR);
                }));
            }
            "--json" => json = true,
            _ => usage(),
        }
    }
    let mut cfg = parse_detector(&detector_name);
    cfg.hb_reference = hb_reference;

    let cases: Vec<sipsim::TestCase> = sipsim::testcases()
        .into_iter()
        .filter(|tc| case_filter.as_ref().is_none_or(|f| f.iter().any(|n| n == tc.name)))
        .collect();
    if cases.is_empty() {
        eprintln!("no test cases match {case_filter:?}");
        std::process::exit(EXIT_ERROR);
    }
    eprintln!(
        "chaos: {} run(s), base seed {seed:#x}, {} case(s): {}",
        runs,
        cases.len(),
        cases.iter().map(|c| c.name).collect::<Vec<_>>().join(",")
    );
    let built: Vec<sipsim::BuiltProxy> = cases.iter().map(|tc| tc.build()).collect();

    // Silence the default "thread panicked" spew: a panic is *recorded* as
    // a resilience failure, not splattered over the report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut panics: usize = 0;
    let mut mismatches: usize = 0;
    let mut deadlocks: usize = 0;
    let mut guest_errors: usize = 0;
    let mut fuel_exhausted: usize = 0;
    let mut truncated_runs: usize = 0;
    let mut faults_injected: u64 = 0;
    let mut case_real_cover: Vec<bool> = vec![false; cases.len()];

    // Each run index fully determines its own inputs (plan, case, schedule
    // seed), so the sweep fans out over a worker pool and folds back in
    // index order — counters, diagnostics and the exit code are
    // bit-identical to the sequential sweep whatever `jobs` is.
    enum Probe {
        Mismatch,
        Panicked,
    }
    let outcomes = run_indexed(jobs, runs, |i| {
        let plan = FaultPlan::from_seed(seed.wrapping_add(i as u64));
        let ci = i % cases.len();
        let sched_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
        let b = &built[ci];
        let run = || sipsim::run_case_chaos_with(b, cfg, plan, sched_seed, max_slots, !no_filter);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).ok();
        // Determinism probe on a sample of runs: the same (plan, schedule)
        // must reproduce the exact report fingerprint.
        let probe = match &outcome {
            Some(first) if i % 10 == 0 => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    Ok(again) if again.fingerprint == first.fingerprint => None,
                    Ok(_) => Some(Probe::Mismatch),
                    Err(_) => Some(Probe::Panicked),
                }
            }
            _ => None,
        };
        (outcome, probe)
    });
    for (i, (outcome, probe)) in outcomes.into_iter().enumerate() {
        let plan_seed = seed.wrapping_add(i as u64);
        let ci = i % cases.len();
        let Some(outcome) = outcome else {
            panics += 1;
            eprintln!("PANIC: case {} plan seed {plan_seed:#x}", cases[ci].name);
            continue;
        };
        match probe {
            None => {}
            Some(Probe::Mismatch) => {
                mismatches += 1;
                eprintln!("NONDETERMINISM: case {} plan seed {plan_seed:#x}", cases[ci].name);
            }
            Some(Probe::Panicked) => panics += 1,
        }
        if outcome.deadlocked {
            deadlocks += 1;
        }
        if outcome.guest_error.is_some() {
            guest_errors += 1;
        }
        if outcome.fuel_exhausted {
            fuel_exhausted += 1;
        }
        if outcome.truncated {
            truncated_runs += 1;
        }
        faults_injected += outcome.fault_stats.map(|f| f.total()).unwrap_or(0);
        if outcome.real_hits > 0 {
            case_real_cover[ci] = true;
        }
    }

    // §4.1 catalogue under faults: each bug must still be detected under
    // at least one plan of the sweep. Bugs are independent of each other,
    // so they fan out across the pool too; within one bug the plans run in
    // order with the sequential early-exit, keeping the panic tally and
    // the missed list identical to --jobs 1.
    let all_bugs = sipsim::bugs::all_bugs();
    let bug_results = run_indexed(jobs, all_bugs.len(), |bi| {
        let bug = &all_bugs[bi];
        let flat = bug.program.lower();
        let mut attempt_panics: usize = 0;
        let mut found = false;
        for i in 0..runs.clamp(1, 25) {
            let plan = FaultPlan::from_seed(seed.wrapping_add(i as u64));
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut det = EraserDetector::new(cfg);
                let mut sched: Box<dyn Scheduler> = match &bug.schedule {
                    Some(order) => Box::new(vexec::sched::PriorityOrder::new(
                        order.iter().map(|&t| vexec::ThreadId(t)).collect(),
                    )),
                    None => Box::new(RoundRobin::new()),
                };
                let opts = VmOptions { faults: Some(plan), ..Default::default() };
                let _ = run_flat(&flat, &mut det, sched.as_mut(), opts);
                det.sink.reports().iter().any(|r| r.func == bug.expected_func)
            }));
            match attempt {
                Ok(true) => {
                    found = true;
                    break;
                }
                Ok(false) => {}
                Err(_) => attempt_panics += 1,
            }
        }
        (found, attempt_panics)
    });
    let mut bugs_missed: Vec<&'static str> = Vec::new();
    for (bi, (found, attempt_panics)) in bug_results.into_iter().enumerate() {
        panics += attempt_panics;
        if !found {
            bugs_missed.push(all_bugs[bi].name);
        }
    }
    drop(std::panic::take_hook());
    std::panic::set_hook(prev_hook);

    let uncovered: Vec<&str> =
        cases.iter().zip(&case_real_cover).filter(|&(_, &c)| !c).map(|(tc, _)| tc.name).collect();
    let ok = panics == 0 && mismatches == 0 && uncovered.is_empty() && bugs_missed.is_empty();

    if json {
        let obj = Value::Object(vec![
            ("runs".to_string(), Value::UInt(runs as u64)),
            ("panics".to_string(), Value::UInt(panics as u64)),
            ("nondeterministic".to_string(), Value::UInt(mismatches as u64)),
            ("deadlocks".to_string(), Value::UInt(deadlocks as u64)),
            ("guest_errors".to_string(), Value::UInt(guest_errors as u64)),
            ("fuel_exhausted".to_string(), Value::UInt(fuel_exhausted as u64)),
            ("truncated".to_string(), Value::UInt(truncated_runs as u64)),
            ("faults_injected".to_string(), Value::UInt(faults_injected)),
            (
                "uncovered_cases".to_string(),
                Value::Array(uncovered.iter().map(|n| Value::Str(n.to_string())).collect()),
            ),
            (
                "bugs_missed".to_string(),
                Value::Array(bugs_missed.iter().map(|n| Value::Str(n.to_string())).collect()),
            ),
            ("resilient".to_string(), Value::Bool(ok)),
        ]);
        println!("{obj}");
    } else {
        println!(
            "chaos: {runs} run(s): {panics} panic(s), {mismatches} nondeterministic, \
             {deadlocks} deadlock(s), {guest_errors} guest error(s), \
             {fuel_exhausted} fuel-exhausted, {truncated_runs} truncated, \
             {faults_injected} fault(s) injected"
        );
        if !uncovered.is_empty() {
            println!("real races NOT covered in: {}", uncovered.join(","));
        }
        if !bugs_missed.is_empty() {
            println!("catalogue bugs NOT detected under faults: {}", bugs_missed.join(","));
        }
        println!("resilience: {}", if ok { "OK" } else { "FAILED" });
    }
    std::process::exit(if ok { 0 } else { EXIT_ERROR });
}

/// `raceline soak`: phased generative load (the §3.3 long-run scenario at
/// scale) through the VM under a kill schedule, with the warning catalogue
/// checkpointed between phases.
///
/// Every phase is a pure function of `(spec, phase)`: a fresh guest
/// program, schedule, and detector. That makes `--jobs N` byte-identical
/// to sequential, and makes crash/resume exact — the append-only log
/// commits each phase's deduped `warn` lines *before* the `phase` line, so
/// a harness crash mid-append loses only an uncommitted block that the
/// resumed run recomputes bit-identically. Exit contract: 0 = clean run,
/// 1 = catalogue non-empty or a phase deadlocked, 2 = tool/guest error.
fn run_soak(args: Vec<String>) -> ! {
    use helgrind_core::AnyDetector;
    use sipsim::{run_phase, PhaseEnd, SoakLog, SoakSpec};

    let mut spec = SoakSpec::default();
    let mut detector_name = "hybrid".to_string();
    let mut budget: Option<BudgetSpec> = None;
    let mut jobs: usize = 1;
    let mut checkpoint_path: Option<String> = None;
    let mut max_slots: Option<u64> = None;
    let mut no_filter = false;
    let mut mem_report = false;
    let mut hb_reference = false;

    let mut it = args.iter();
    let num = |it: &mut std::slice::Iter<String>| -> u64 {
        it.next().and_then(|x| parse_u64(x).ok()).unwrap_or_else(|| usage())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dialogs" => spec.dialogs = num(&mut it),
            "--phases" => spec.phases = num(&mut it).max(1) as u32,
            "--seed" => spec.seed = num(&mut it),
            "--workers" => spec.workers = num(&mut it).max(1) as u32,
            "--resize" => spec.resize_workers = num(&mut it) as u32,
            "--hops" => spec.hops = num(&mut it).clamp(1, 4) as u32,
            "--churn" => spec.churn_permille = num(&mut it).min(1000) as u32,
            "--options" => spec.options_permille = num(&mut it).min(1000) as u32,
            "--reinvites" => spec.max_reinvites = num(&mut it) as u32,
            "--kill" => spec.kill_permille = num(&mut it).min(1000) as u32,
            "--max-kills" => spec.max_kills_per_phase = num(&mut it) as u32,
            "--no-reclaim" => spec.reclaim = false,
            "--detector" => detector_name = it.next().unwrap_or_else(|| usage()).clone(),
            "--budget" => {
                let s = it.next().unwrap_or_else(|| usage());
                budget = Some(BudgetSpec::parse(s).unwrap_or_else(|e| {
                    eprintln!("--budget: {e}");
                    std::process::exit(EXIT_ERROR);
                }));
            }
            "--jobs" => jobs = num(&mut it).max(1) as usize,
            "--checkpoint" => checkpoint_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--max-slots" => max_slots = Some(num(&mut it)),
            "--no-filter" => no_filter = true,
            "--mem-report" => mem_report = true,
            "--hb-reference" => hb_reference = true,
            _ => usage(),
        }
    }
    let mut cfg = parse_detector(&detector_name);
    if let Some(b) = &budget {
        cfg.budget = b.detector;
    }
    cfg.hb_reference = hb_reference;
    if let Some(b) = &budget {
        if let Some(slots) = b.max_slots {
            max_slots.get_or_insert(slots);
        }
    }
    let use_filter = !no_filter;

    // Resume from a checkpoint if one exists; otherwise start fresh (and
    // seed the log file with its header so appends have a base).
    let mut log = SoakLog::new(&spec);
    if let Some(path) = &checkpoint_path {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let (parsed, repaired) = SoakLog::parse_repair(&text).unwrap_or_else(|e| {
                    eprintln!("soak: checkpoint {path}: {e}");
                    std::process::exit(EXIT_ERROR);
                });
                if parsed.params != log.params {
                    eprintln!(
                        "soak: checkpoint {path} was recorded with different parameters\n  \
                         checkpoint: {}\n  requested:  {}",
                        parsed.params, log.params
                    );
                    std::process::exit(EXIT_ERROR);
                }
                if repaired {
                    // The dropped tail was never committed; rewrite the
                    // file to the committed prefix so appends line up.
                    let mut rendered = parsed.header();
                    // Committed phases cannot be re-rendered from the
                    // folded catalogue (hits are merged), so keep the
                    // original committed bytes instead: everything up to
                    // the end of the last `phase` line.
                    if let Some(end) = last_commit_end(&text) {
                        rendered = text[..end].to_string();
                    }
                    if let Err(e) = write_checkpoint(path, &rendered) {
                        eprintln!("soak: cannot rewrite {path}: {e}");
                        std::process::exit(EXIT_ERROR);
                    }
                    eprintln!(
                        "soak: checkpoint repaired (dropped uncommitted tail); \
                         resuming at phase {}",
                        parsed.next_phase()
                    );
                } else if parsed.next_phase() > 0 {
                    eprintln!("soak: resuming at phase {}", parsed.next_phase());
                }
                log = parsed;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if let Err(e) = write_checkpoint(path, &log.header()) {
                    eprintln!("soak: cannot write {path}: {e}");
                    std::process::exit(EXIT_ERROR);
                }
            }
            Err(e) => {
                eprintln!("soak: cannot read {path}: {e}");
                std::process::exit(EXIT_ERROR);
            }
        }
    }

    // Phases still to run, in chunks of `jobs`: each phase is independent,
    // so the chunk fans out over the worker pool and the in-order fold
    // (and the appended log) is identical to a sequential run.
    let mut phase = log.next_phase();
    while phase < spec.phases {
        let chunk = jobs.min((spec.phases - phase) as usize);
        let outcomes = run_indexed(jobs, chunk, |i| {
            let det =
                AnyDetector::by_name(&detector_name, cfg, helgrind_core::SuppressionSet::new());
            run_phase(&spec, phase + i as u32, Some(det), use_filter, max_slots)
        });
        for out in outcomes {
            if let Some(path) = &checkpoint_path {
                if let Err(e) = append_log(path, &SoakLog::phase_block(&out)) {
                    eprintln!("soak: cannot append to {path}: {e}");
                    std::process::exit(EXIT_ERROR);
                }
            }
            let s = &out.stats;
            eprintln!(
                "soak: phase {}/{}: {} dialog(s), {} event(s), {} kill(s), {} warning(s), \
                 peak granules {}, {}",
                s.phase + 1,
                spec.phases,
                s.dialogs,
                s.events,
                s.kills,
                s.warnings,
                s.peak_granules,
                match &s.end {
                    PhaseEnd::Clean => "clean".to_string(),
                    PhaseEnd::Deadlock(n) => format!("DEADLOCK ({n} blocked)"),
                    PhaseEnd::GuestError(e) => format!("guest error: {e}"),
                    PhaseEnd::FuelExhausted => "slot budget exhausted".to_string(),
                }
            );
            log.fold_phase(&out);
        }
        phase += chunk as u32;
    }

    print!("{}", log.render_summary(mem_report));
    let guest_err = log.phases.iter().any(|p| matches!(p.end, PhaseEnd::GuestError(_)));
    let deadlocked = log.phases.iter().any(|p| matches!(p.end, PhaseEnd::Deadlock(_)));
    if guest_err {
        eprintln!("soak: guest error: exiting with status {EXIT_ERROR}");
        std::process::exit(EXIT_ERROR);
    }
    std::process::exit(if log.catalogue.is_empty() && !deadlocked { 0 } else { EXIT_FINDINGS });
}

/// Byte offset just past the final committed `phase` line of a soak log
/// (i.e. past its newline), or `None` if nothing is committed.
fn last_commit_end(text: &str) -> Option<usize> {
    let mut end = None;
    let mut pos = 0;
    for line in text.split_inclusive('\n') {
        if line.starts_with("phase ") && line.ends_with('\n') {
            end = Some(pos + line.len());
        }
        pos += line.len();
    }
    end
}

/// Run `n` independent jobs on a scoped worker pool and return the results
/// in index order. Workers claim indices from a shared counter; because
/// every job is a pure function of its index, the merged vector — and any
/// sequential fold over it — is bit-identical to running `(0..n).map(f)`
/// inline, which is exactly what `jobs <= 1` does.
fn run_indexed<T: Send>(jobs: usize, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                let (next, f) = (&next, &f);
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter().map(|v| v.expect("all indices claimed")).collect()
}

/// `raceline bench-snapshot`: measure the §4.5 overhead ladder (native <
/// VM < VM+detector) with wall-clock medians and write a machine-readable
/// snapshot. CI's bench smoke runs this in `--quick` mode; the README's
/// performance table is regenerated from the full run.
fn run_bench_snapshot(args: Vec<String>) -> ! {
    use helgrind_core::{DjitDetector, EraserDetector, HybridDetector};
    use sipsim::native::{native_workload, vm_workload_program, WorkloadSpec};
    use vexec::sched::RoundRobin;
    use vexec::tool::NullTool;
    use vexec::vm::run_program;

    let mut out_path: Option<String> = None;
    let mut samples: usize = 15;
    let mut trace_mode = false;
    let mut soak_mode = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--samples" => {
                samples = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--quick" => samples = 3,
            "--trace" => trace_mode = true,
            "--soak" => soak_mode = true,
            _ => usage(),
        }
    }
    samples = samples.max(1);
    if trace_mode {
        run_bench_trace(samples, out_path.unwrap_or_else(|| "BENCH_trace.json".to_string()));
    }
    if soak_mode {
        run_bench_soak(samples, out_path.unwrap_or_else(|| "BENCH_soak.json".to_string()));
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_overhead.json".to_string());

    const SPEC: WorkloadSpec = WorkloadSpec { threads: 4, iterations: 1_000, parse_reads: 32 };
    let prog = vm_workload_program(SPEC);

    // Every row as a closure so sampling can interleave them: one timed
    // call per row per round, not all of row A before any of row B. The
    // headline numbers are *ratios* between rows, and on a busy host
    // sequential sampling lets clock-speed drift between rows masquerade
    // as detector overhead; round-robin sampling gives each row the same
    // exposure to the machine's moods.
    let rows: Vec<BenchRow<'_>> = vec![
        (
            "native-threads",
            Box::new(|| {
                std::hint::black_box(native_workload(SPEC));
            }),
        ),
        (
            "vm-no-tool",
            Box::new(|| {
                let r = run_program(&prog, &mut NullTool, &mut RoundRobin::new());
                std::hint::black_box(r.stats.events);
            }),
        ),
        (
            "vm-eraser-original",
            Box::new(|| {
                let mut det = EraserDetector::new(DetectorConfig::original());
                run_program(&prog, &mut det, &mut RoundRobin::new());
                std::hint::black_box(det.sink.location_count());
            }),
        ),
        (
            "vm-eraser-hwlc-dr",
            Box::new(|| {
                let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
                run_program(&prog, &mut det, &mut RoundRobin::new());
                std::hint::black_box(det.sink.location_count());
            }),
        ),
        (
            "vm-djit",
            Box::new(|| {
                let mut det = DjitDetector::new(DetectorConfig::djit());
                run_program(&prog, &mut det, &mut RoundRobin::new());
                std::hint::black_box(det.sink.location_count());
            }),
        ),
        (
            "vm-hybrid",
            Box::new(|| {
                let mut det = HybridDetector::new(DetectorConfig::hybrid());
                run_program(&prog, &mut det, &mut RoundRobin::new());
                std::hint::black_box(det.sink.location_count());
            }),
        ),
        // Filter-on twins of the detector rows (the plain rows are
        // filter-off, matching what earlier snapshots measured). `check`
        // defaults to the filtered path, so these are what users get.
        (
            "vm-eraser-hwlc-dr-filter",
            Box::new(|| {
                let mut tool = FilterTool::new(EraserDetector::new(DetectorConfig::hwlc_dr()));
                run_program(&prog, &mut tool, &mut RoundRobin::new());
                std::hint::black_box(tool.inner().sink.location_count());
            }),
        ),
        (
            "vm-djit-filter",
            Box::new(|| {
                let mut tool = FilterTool::new(DjitDetector::new(DetectorConfig::djit()));
                run_program(&prog, &mut tool, &mut RoundRobin::new());
                std::hint::black_box(tool.inner().sink.location_count());
            }),
        ),
        (
            "vm-hybrid-filter",
            Box::new(|| {
                let mut tool = FilterTool::new(HybridDetector::new(DetectorConfig::hybrid()));
                run_program(&prog, &mut tool, &mut RoundRobin::new());
                std::hint::black_box(tool.inner().sink.location_count());
            }),
        ),
        // Reference-VC twins of the HB rows: the same detectors with the
        // adaptive epoch lattice disabled (`--hb-reference`), i.e. the
        // full vector-clock read state the FastTrack representation
        // replaced. Reports are byte-identical; only the per-access cost
        // differs.
        (
            "vm-djit-reference",
            Box::new(|| {
                let cfg = DetectorConfig { hb_reference: true, ..DetectorConfig::djit() };
                let mut det = DjitDetector::new(cfg);
                run_program(&prog, &mut det, &mut RoundRobin::new());
                std::hint::black_box(det.sink.location_count());
            }),
        ),
        (
            "vm-hybrid-reference",
            Box::new(|| {
                let cfg = DetectorConfig { hb_reference: true, ..DetectorConfig::hybrid() };
                let mut det = HybridDetector::new(cfg);
                run_program(&prog, &mut det, &mut RoundRobin::new());
                std::hint::black_box(det.sink.location_count());
            }),
        ),
    ];
    let medians = median_ns_interleaved(samples, rows);

    let ns_of = |name: &str| medians.iter().find(|(n, _)| *n == name).unwrap().1 as f64;
    let native = ns_of("native-threads");
    let vm = ns_of("vm-no-tool");
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };

    // The two multiples the paper reports in §4.5: analysis vs native
    // (20-30x there) and the bare VM tax (8-10x for uninstrumented
    // Valgrind). Detector-over-VM isolates the shadow-memory cost this
    // workspace's page table optimises.
    let mut multiples: Vec<(String, Value)> =
        vec![("vm-no-tool/native-threads".to_string(), Value::Float(ratio(vm, native)))];
    for (name, ns) in &medians {
        if name.starts_with("vm-") && *name != "vm-no-tool" {
            multiples.push((format!("{name}/vm-no-tool"), Value::Float(ratio(*ns as f64, vm))));
            multiples
                .push((format!("{name}/native-threads"), Value::Float(ratio(*ns as f64, native))));
        }
    }
    // Filter speedups: off/on per detector — the access-filter acceptance
    // bar is ≥1.3x on vm-hybrid.
    for base in ["vm-eraser-hwlc-dr", "vm-djit", "vm-hybrid"] {
        multiples.push((
            format!("{base}/{base}-filter"),
            Value::Float(ratio(ns_of(base), ns_of(&format!("{base}-filter")))),
        ));
    }
    // Epoch wins: reference-VC over adaptive per HB detector. >1.0 means
    // the FastTrack lattice is paying for itself on this workload.
    for base in ["vm-djit", "vm-hybrid"] {
        multiples.push((
            format!("{base}-reference/{base}"),
            Value::Float(ratio(ns_of(&format!("{base}-reference")), ns_of(base))),
        ));
    }

    // Micro-comparison of the per-access HB read check: one
    // `Epoch::visible_to` (the O(1) fast path) against a full
    // vector-clock clone+join+leq (the O(width) state update the epoch
    // representation avoids). Measured over a fixed iteration count so
    // the per-op cost is `ns / iterations`.
    let vc_micro = {
        use helgrind_core::{Epoch, VectorClock};
        const ITERS: u32 = 100_000;
        let e = Epoch { tid: 3, clock: 41 };
        let mut tvc = VectorClock::new();
        for t in 0..8usize {
            tvc.set(t, 42 + t as u32);
        }
        let epoch_ns = median_ns(samples, || {
            for _ in 0..ITERS {
                std::hint::black_box(e.visible_to(std::hint::black_box(&tvc)));
            }
        });
        let mut reads = VectorClock::new();
        for t in 0..8usize {
            reads.set(t, 7 * t as u32);
        }
        let vc_ns = median_ns(samples, || {
            for _ in 0..ITERS {
                let mut j = std::hint::black_box(&reads).clone();
                j.set(e.tid as usize, e.clock);
                std::hint::black_box(j.leq(std::hint::black_box(&tvc)));
            }
        });
        Value::Object(vec![
            ("iterations".to_string(), Value::UInt(ITERS as u64)),
            ("epoch_visible_to_ns".to_string(), Value::UInt(epoch_ns)),
            ("vc_clone_set_leq_ns".to_string(), Value::UInt(vc_ns)),
            ("speedup".to_string(), Value::Float(ratio(vc_ns as f64, epoch_ns as f64))),
        ])
    };

    let obj = Value::Object(vec![
        (
            "workload".to_string(),
            Value::Object(vec![
                ("threads".to_string(), Value::UInt(SPEC.threads as u64)),
                ("iterations".to_string(), Value::UInt(SPEC.iterations)),
                ("parse_reads".to_string(), Value::UInt(SPEC.parse_reads)),
            ]),
        ),
        ("samples".to_string(), Value::UInt(samples as u64)),
        (
            "median_ns".to_string(),
            Value::Object(
                medians.iter().map(|(n, ns)| (n.to_string(), Value::UInt(*ns))).collect(),
            ),
        ),
        ("multiples".to_string(), Value::Object(multiples)),
        ("vc_micro".to_string(), vc_micro),
        (
            "paper".to_string(),
            Value::Str("§4.5: analysis 20-30x slower than native; bare Valgrind 8-10x".to_string()),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, format!("{obj}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(EXIT_ERROR);
    }
    for (name, ns) in &medians {
        eprintln!("bench-snapshot {name}: median {:.3} ms", *ns as f64 / 1e6);
    }
    eprintln!(
        "bench-snapshot: wrote {out_path} (vm/native {:.1}x, hwlc-dr/vm {:.1}x, \
         hybrid filter speedup {:.2}x)",
        ratio(vm, native),
        ratio(ns_of("vm-eraser-hwlc-dr"), vm),
        ratio(ns_of("vm-hybrid"), ns_of("vm-hybrid-filter"))
    );
    std::process::exit(0);
}

/// `raceline bench-snapshot --soak`: soak-phase throughput in dialogs per
/// second, detection-on (hybrid behind the redundant-access filter, the
/// soak default) against detection-off (counting tool), plus the peak
/// live-granule count — the bounded-memory headline number.
fn run_bench_soak(samples: usize, out_path: String) -> ! {
    use helgrind_core::{AnyDetector, SuppressionSet};
    use sipsim::{run_phase, SoakSpec};

    // One calm phase (kills disarm even phases) of the default mix, big
    // enough that per-phase setup noise vanishes.
    let spec = SoakSpec { dialogs: 20_000, phases: 1, kill_permille: 0, ..SoakSpec::default() };
    let dialogs = spec.phase_dialogs(0);
    let hybrid = || AnyDetector::by_name("hybrid", DetectorConfig::hybrid(), SuppressionSet::new());

    let probe = run_phase(&spec, 0, Some(hybrid()), true, None);
    let detect_ns = median_ns(samples, || {
        let out = run_phase(&spec, 0, Some(hybrid()), true, None);
        std::hint::black_box(out.stats.warnings);
    });
    let off_ns = median_ns(samples, || {
        let out = run_phase(&spec, 0, None, false, None);
        std::hint::black_box(out.stats.events);
    });
    let per_sec = |ns: u64| if ns == 0 { 0.0 } else { dialogs as f64 / (ns as f64 / 1e9) };
    let ratio = if detect_ns == 0 { 0.0 } else { off_ns as f64 / detect_ns as f64 };

    let obj = Value::Object(vec![
        (
            "workload".to_string(),
            Value::Object(vec![
                ("dialogs".to_string(), Value::UInt(dialogs)),
                ("workers".to_string(), Value::UInt(u64::from(spec.workers))),
                ("events".to_string(), Value::UInt(probe.stats.events)),
            ]),
        ),
        ("samples".to_string(), Value::UInt(samples as u64)),
        (
            "median_ns".to_string(),
            Value::Object(vec![
                ("soak-hybrid-filter".to_string(), Value::UInt(detect_ns)),
                ("soak-detection-off".to_string(), Value::UInt(off_ns)),
            ]),
        ),
        (
            "dialogs_per_sec".to_string(),
            Value::Object(vec![
                ("soak-hybrid-filter".to_string(), Value::Float(per_sec(detect_ns))),
                ("soak-detection-off".to_string(), Value::Float(per_sec(off_ns))),
            ]),
        ),
        ("detection-off/hybrid-filter".to_string(), Value::Float(ratio)),
        ("peak_live_granules".to_string(), Value::UInt(probe.stats.peak_granules as u64)),
        ("warnings".to_string(), Value::UInt(probe.stats.warnings as u64)),
    ]);
    if let Err(e) = std::fs::write(&out_path, format!("{obj}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(EXIT_ERROR);
    }
    eprintln!(
        "bench-snapshot --soak: wrote {out_path} ({:.0} dialogs/s detected vs {:.0} off, \
         peak {} granule(s))",
        per_sec(detect_ns),
        per_sec(off_ns),
        probe.stats.peak_granules
    );
    std::process::exit(0);
}

/// Median wall-clock nanoseconds over `samples` timed calls (after one
/// untimed warm-up, so lazy init and cold caches don't skew the first
/// sample).
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// A named bench workload; boxed so heterogeneous closures can share one
/// interleaved sampling loop.
type BenchRow<'a> = (&'a str, Box<dyn FnMut() + 'a>);

/// Per-row median wall-clock nanoseconds with round-robin sampling: each
/// round times every row once, so slow machine drift hits all rows
/// equally instead of biasing whichever row happened to run last. One
/// untimed warm-up round absorbs lazy init and cold caches.
fn median_ns_interleaved<'a>(samples: usize, mut rows: Vec<BenchRow<'a>>) -> Vec<(&'a str, u64)> {
    for (_, f) in rows.iter_mut() {
        f();
    }
    let mut times: Vec<Vec<u64>> = vec![Vec::with_capacity(samples); rows.len()];
    for _ in 0..samples {
        for (i, (_, f)) in rows.iter_mut().enumerate() {
            let t = std::time::Instant::now();
            f();
            times[i].push(t.elapsed().as_nanos() as u64);
        }
    }
    rows.iter()
        .zip(times.iter_mut())
        .map(|((name, _), ts)| {
            ts.sort_unstable();
            (*name, ts[ts.len() / 2])
        })
        .collect()
}

/// `raceline bench-snapshot --trace`: measure what recording costs. Two
/// angles: end-to-end VM overhead (record tool vs no tool vs inline
/// detectors — recording must be the cheapest instrumented mode, that is
/// the subsystem's reason to exist) and raw codec throughput over the
/// workload's event stream.
fn run_bench_trace(samples: usize, out_path: String) -> ! {
    use raceline_trace::format::{decode_record, encode_event, CodecState, Cursor};
    use sipsim::native::{vm_workload_program, WorkloadSpec};
    use vexec::tool::{NullTool, RecordingTool};
    use vexec::vm::run_program;

    const SPEC: WorkloadSpec = WorkloadSpec { threads: 4, iterations: 1_000, parse_reads: 16 };
    let prog = vm_workload_program(SPEC);

    let mut medians: Vec<(&str, u64)> = Vec::new();
    medians.push((
        "vm-no-tool",
        median_ns(samples, || {
            let r = run_program(&prog, &mut NullTool, &mut RoundRobin::new());
            std::hint::black_box(r.stats.events);
        }),
    ));
    medians.push((
        "vm-record",
        median_ns(samples, || {
            let mut w = TraceWriter::new(Vec::with_capacity(1 << 20));
            let r = run_program(&prog, &mut w, &mut RoundRobin::new());
            let s = w.finish(&r.termination, &r.stats, r.faults.as_ref()).expect("vec sink");
            std::hint::black_box(s.bytes);
        }),
    ));
    medians.push((
        "vm-eraser-hwlc-dr",
        median_ns(samples, || {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            std::hint::black_box(det.sink.location_count());
        }),
    ));
    medians.push((
        "vm-hybrid",
        median_ns(samples, || {
            let mut det = HybridDetector::new(DetectorConfig::hybrid());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            std::hint::black_box(det.sink.location_count());
        }),
    ));

    // Raw codec throughput over the workload's own event stream, VM cost
    // excluded. Symbol bounds are irrelevant here, so decode with the
    // loosest cap.
    let mut rec = RecordingTool::new();
    run_program(&prog, &mut rec, &mut RoundRobin::new());
    let events = rec.events;
    let mut encoded = Vec::new();
    let mut st = CodecState::default();
    for ev in &events {
        encode_event(&mut encoded, &mut st, ev);
    }
    let encode_ns = median_ns(samples, || {
        let mut buf = Vec::with_capacity(encoded.len());
        let mut st = CodecState::default();
        for ev in &events {
            encode_event(&mut buf, &mut st, ev);
        }
        std::hint::black_box(buf.len());
    });
    let decode_ns = median_ns(samples, || {
        let mut c = Cursor::new(&encoded, 0);
        let mut st = CodecState::default();
        let mut n = 0u64;
        while !c.is_empty() {
            decode_record(&mut c, &mut st, u32::MAX).expect("self-encoded stream");
            n += 1;
        }
        std::hint::black_box(n);
    });
    let per_sec = |ns: u64| {
        if ns == 0 {
            0.0
        } else {
            events.len() as f64 / (ns as f64 / 1e9)
        }
    };
    let bytes_per_event =
        if events.is_empty() { 0.0 } else { encoded.len() as f64 / events.len() as f64 };

    let ns_of = |name: &str| medians.iter().find(|(n, _)| *n == name).unwrap().1 as f64;
    let vm = ns_of("vm-no-tool");
    let record = ns_of("vm-record");
    let hybrid = ns_of("vm-hybrid");
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let multiples: Vec<(String, Value)> = vec![
        ("vm-record/vm-no-tool".to_string(), Value::Float(ratio(record, vm))),
        (
            "vm-eraser-hwlc-dr/vm-no-tool".to_string(),
            Value::Float(ratio(ns_of("vm-eraser-hwlc-dr"), vm)),
        ),
        ("vm-hybrid/vm-no-tool".to_string(), Value::Float(ratio(hybrid, vm))),
        ("vm-hybrid/vm-record".to_string(), Value::Float(ratio(hybrid, record))),
    ];

    let obj = Value::Object(vec![
        (
            "workload".to_string(),
            Value::Object(vec![
                ("threads".to_string(), Value::UInt(SPEC.threads as u64)),
                ("iterations".to_string(), Value::UInt(SPEC.iterations)),
            ]),
        ),
        ("samples".to_string(), Value::UInt(samples as u64)),
        (
            "median_ns".to_string(),
            Value::Object(
                medians.iter().map(|(n, ns)| (n.to_string(), Value::UInt(*ns))).collect(),
            ),
        ),
        (
            "codec".to_string(),
            Value::Object(vec![
                ("events".to_string(), Value::UInt(events.len() as u64)),
                ("encoded_bytes".to_string(), Value::UInt(encoded.len() as u64)),
                ("bytes_per_event".to_string(), Value::Float(bytes_per_event)),
                ("encode_events_per_sec".to_string(), Value::Float(per_sec(encode_ns))),
                ("decode_events_per_sec".to_string(), Value::Float(per_sec(decode_ns))),
            ]),
        ),
        ("multiples".to_string(), Value::Object(multiples)),
        ("record_cheaper_than_hybrid".to_string(), Value::Bool(record < hybrid)),
    ]);
    if let Err(e) = std::fs::write(&out_path, format!("{obj}\n")) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(EXIT_ERROR);
    }
    for (name, ns) in &medians {
        eprintln!("bench-snapshot {name}: median {:.3} ms", *ns as f64 / 1e6);
    }
    eprintln!(
        "bench-snapshot: wrote {out_path} (record/vm {:.2}x, hybrid/record {:.2}x, \
         {:.1} B/event)",
        ratio(record, vm),
        ratio(hybrid, record),
        bytes_per_event
    );
    std::process::exit(0);
}
