//! `raceline` — check a mini-C++ program for races and deadlocks, the way
//! the paper's debugging process (Fig 3) runs a server under Helgrind.
//!
//! ```text
//! raceline check app.mcpp [lib.mcpp ...] [options]
//!
//! options:
//!   --detector original|hwlc|hwlc-dr|djit|hybrid|hybrid-queue   (default hwlc-dr)
//!   --schedule rr|random:<seed>|pct:<seed>:<depth>              (default rr)
//!   --raw <file>            compile <file> without instrumentation
//!                           (third-party source, §3.1)
//!   --suppressions <file>   load a Valgrind-style suppression file
//!   --gen-suppressions      print a suppression entry for each warning
//!   --explore <n>           run under <n> random schedules and aggregate
//!   --emit-annotated        print the annotated source (Fig 4 view)
//!   --emit-ir               print the lowered guest IR (disassembly)
//! ```

use helgrind_core::explore::explore_schedules;
use helgrind_core::{
    DetectorConfig, DjitDetector, EraserDetector, HybridDetector, Suppression, SuppressionSet,
};
use minicpp::pipeline::{run_pipeline, SourceFile};
use vexec::sched::{Pct, RoundRobin, Scheduler, SeededRandom};
use vexec::vm::{run_program, Termination};

fn usage() -> ! {
    eprintln!(
        "usage: raceline check <file.mcpp>... [--raw <file.mcpp>]... \
         [--detector original|hwlc|hwlc-dr|djit|hybrid|hybrid-queue] \
         [--schedule rr|random:<seed>|pct:<seed>:<depth>] \
         [--suppressions <file>] [--gen-suppressions] [--explore <n>] [--emit-annotated] [--emit-ir]"
    );
    std::process::exit(2);
}

fn parse_detector(s: &str) -> DetectorConfig {
    match s {
        "original" => DetectorConfig::original(),
        "hwlc" => DetectorConfig::hwlc(),
        "hwlc-dr" => DetectorConfig::hwlc_dr(),
        "djit" => DetectorConfig::djit(),
        "hybrid" => DetectorConfig::hybrid(),
        "hybrid-queue" => DetectorConfig::hybrid_queue_hb(),
        other => {
            eprintln!("unknown detector: {other}");
            usage()
        }
    }
}

fn parse_schedule(s: &str) -> Box<dyn Scheduler> {
    if s == "rr" {
        return Box::new(RoundRobin::new());
    }
    if let Some(seed) = s.strip_prefix("random:") {
        let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
        return Box::new(SeededRandom::new(seed));
    }
    if let Some(rest) = s.strip_prefix("pct:") {
        let mut it = rest.split(':');
        let seed: u64 = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
        let depth: u32 = it.next().and_then(|x| x.parse().ok()).unwrap_or(2);
        return Box::new(Pct::new(seed, depth, 10_000));
    }
    eprintln!("unknown schedule: {s}");
    usage()
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        _ => usage(),
    }

    let mut files: Vec<SourceFile> = Vec::new();
    let mut detector_name = "hwlc-dr".to_string();
    let mut schedule = "rr".to_string();
    let mut suppressions = SuppressionSet::new();
    let mut gen_suppressions = false;
    let mut explore: Option<usize> = None;
    let mut emit_annotated = false;
    let mut emit_ir = false;

    let args: Vec<String> = args.collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--detector" => detector_name = it.next().unwrap_or_else(|| usage()).clone(),
            "--schedule" => schedule = it.next().unwrap_or_else(|| usage()).clone(),
            "--raw" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                files.push(SourceFile::without_instrumentation(path, &text));
            }
            "--suppressions" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                suppressions = SuppressionSet::parse(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                });
            }
            "--gen-suppressions" => gen_suppressions = true,
            "--emit-annotated" => emit_annotated = true,
            "--emit-ir" => emit_ir = true,
            "--explore" => {
                explore = Some(
                    it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage()),
                );
            }
            path if !path.starts_with('-') => {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                files.push(SourceFile::new(path, &text));
            }
            _ => usage(),
        }
    }
    if files.is_empty() {
        usage();
    }

    // Stage 1+2+3 (Fig 3): preprocess, parse + annotate, compile.
    let out = run_pipeline(&files).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "compiled {} unit(s); {} delete site(s) annotated",
        files.len(),
        out.deletes_annotated
    );
    if emit_annotated {
        for (name, src) in &out.annotated_sources {
            println!("// ---- {name} (annotated) ----");
            println!("{src}");
        }
    }

    if emit_ir {
        println!("{}", vexec::ir::disasm::disassemble(&out.program.lower()));
    }

    let cfg = parse_detector(&detector_name);

    // Exploration mode: aggregate warnings across many schedules.
    if let Some(runs) = explore {
        let summary = explore_schedules(&out.program, cfg, runs, 0xACE);
        println!(
            "explored {} schedules: {} clean, {} deadlocked",
            summary.runs, summary.clean_runs, summary.deadlocked_runs
        );
        for hit in &summary.locations {
            println!(
                "[{:>3}/{:<3}] {}",
                hit.hits,
                summary.runs,
                hit.report.render().trim_end()
            );
        }
        std::process::exit(if summary.locations.is_empty() { 0 } else { 1 });
    }

    // Single-run mode.
    let mut sched = parse_schedule(&schedule);
    let mut warnings = 0usize;
    let termination;
    match detector_name.as_str() {
        "djit" => {
            let mut det = DjitDetector::new(cfg);
            termination = run_program(&out.program, &mut det, sched.as_mut()).termination;
            report(det.sink.take_reports(), &suppressions, gen_suppressions, &mut warnings);
        }
        "hybrid" | "hybrid-queue" => {
            let mut det = HybridDetector::new(cfg);
            termination = run_program(&out.program, &mut det, sched.as_mut()).termination;
            report(det.sink.take_reports(), &suppressions, gen_suppressions, &mut warnings);
        }
        _ => {
            let mut det = EraserDetector::with_suppressions(cfg, suppressions.clone());
            termination = run_program(&out.program, &mut det, sched.as_mut()).termination;
            report(det.sink.take_reports(), &SuppressionSet::new(), gen_suppressions, &mut warnings);
        }
    }

    match &termination {
        Termination::AllExited => {}
        Termination::Deadlock(waits) => {
            println!("DEADLOCK: {} thread(s) blocked:", waits.len());
            for w in waits {
                println!(
                    "  thread {} blocked on {:?} held by {:?}",
                    w.tid.0,
                    w.on,
                    w.holders.iter().map(|t| t.0).collect::<Vec<_>>()
                );
            }
            warnings += 1;
        }
        other => {
            println!("abnormal termination: {other:?}");
            warnings += 1;
        }
    }

    eprintln!("{warnings} warning(s)");
    std::process::exit(if warnings == 0 { 0 } else { 1 });
}

fn report(
    reports: Vec<helgrind_core::Report>,
    suppressions: &SuppressionSet,
    gen: bool,
    warnings: &mut usize,
) {
    for (i, r) in reports.into_iter().enumerate() {
        if suppressions.matches(&r) {
            continue;
        }
        *warnings += 1;
        println!("{}", r.render());
        if gen {
            println!("{}", Suppression::from_report(&format!("auto-{}", i + 1), &r, 3).render());
        }
    }
}
