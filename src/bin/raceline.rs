//! `raceline` — check a mini-C++ program for races and deadlocks, the way
//! the paper's debugging process (Fig 3) runs a server under Helgrind.
//!
//! ```text
//! raceline check app.mcpp [lib.mcpp ...] [options]
//! raceline lint  app.mcpp [lib.mcpp ...] [--raw <file>] [--json]
//!
//! check options:
//!   --detector original|hwlc|hwlc-dr|djit|hybrid|hybrid-queue   (default hwlc-dr)
//!   --schedule rr|random:<seed>|pct:<seed>:<depth>              (default rr)
//!   --raw <file>            compile <file> without instrumentation
//!                           (third-party source, §3.1)
//!   --suppressions <file>   load a Valgrind-style suppression file
//!   --gen-suppressions      print a suppression entry for each warning
//!   --explore <n>           run under <n> random schedules and aggregate
//!   --static-cross-check    also run the static analysis and label each
//!                           finding confirmed-both / static-only /
//!                           dynamic-only (joined by kind, file, line)
//!   --json                  machine-readable output
//!   --emit-annotated        print the annotated source (Fig 4 view)
//!   --emit-ir               print the lowered guest IR (disassembly)
//! ```

use helgrind_core::explore::explore_schedules;
use helgrind_core::{
    DetectorConfig, DjitDetector, EraserDetector, HybridDetector, Report, Suppression,
    SuppressionSet,
};
use minicpp::pipeline::{run_pipeline, SourceFile};
use serde::{Serialize, Value};
use std::collections::BTreeSet;
use vexec::sched::{Pct, RoundRobin, Scheduler, SeededRandom};
use vexec::vm::{run_program, Termination};

fn usage() -> ! {
    eprintln!(
        "usage: raceline check <file.mcpp>... [--raw <file.mcpp>]... \
         [--detector original|hwlc|hwlc-dr|djit|hybrid|hybrid-queue] \
         [--schedule rr|random:<seed>|pct:<seed>:<depth>] \
         [--suppressions <file>] [--gen-suppressions] [--explore <n>] \
         [--static-cross-check] [--json] [--emit-annotated] [--emit-ir]\n\
         \x20      raceline lint <file.mcpp>... [--raw <file.mcpp>]... [--json]"
    );
    std::process::exit(2);
}

fn parse_detector(s: &str) -> DetectorConfig {
    match s {
        "original" => DetectorConfig::original(),
        "hwlc" => DetectorConfig::hwlc(),
        "hwlc-dr" => DetectorConfig::hwlc_dr(),
        "djit" => DetectorConfig::djit(),
        "hybrid" => DetectorConfig::hybrid(),
        "hybrid-queue" => DetectorConfig::hybrid_queue_hb(),
        other => {
            eprintln!("unknown detector: {other}");
            usage()
        }
    }
}

fn parse_schedule(s: &str) -> Box<dyn Scheduler> {
    if s == "rr" {
        return Box::new(RoundRobin::new());
    }
    if let Some(seed) = s.strip_prefix("random:") {
        let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
        return Box::new(SeededRandom::new(seed));
    }
    if let Some(rest) = s.strip_prefix("pct:") {
        let mut it = rest.split(':');
        let seed: u64 = it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
        let depth: u32 = it.next().and_then(|x| x.parse().ok()).unwrap_or(2);
        return Box::new(Pct::new(seed, depth, 10_000));
    }
    eprintln!("unknown schedule: {s}");
    usage()
}

fn read_source(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

/// The (kind, file, line) key the static/dynamic join uses.
fn join_key(r: &Report) -> (String, String, u32) {
    (r.kind.name().to_string(), r.file.clone(), r.line)
}

fn reports_json(reports: &[Report]) -> Value {
    Value::Array(reports.iter().map(|r| r.to_value()).collect())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next().as_deref() {
        Some("check") => "check",
        Some("lint") => "lint",
        _ => usage(),
    };

    let mut files: Vec<SourceFile> = Vec::new();
    let mut detector_name = "hwlc-dr".to_string();
    let mut schedule = "rr".to_string();
    let mut suppressions = SuppressionSet::new();
    let mut gen_suppressions = false;
    let mut explore: Option<usize> = None;
    let mut emit_annotated = false;
    let mut emit_ir = false;
    let mut json = false;
    let mut cross_check = false;

    let args: Vec<String> = args.collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--detector" => detector_name = it.next().unwrap_or_else(|| usage()).clone(),
            "--schedule" => schedule = it.next().unwrap_or_else(|| usage()).clone(),
            "--raw" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = read_source(path);
                files.push(SourceFile::without_instrumentation(path, &text));
            }
            "--suppressions" => {
                let path = it.next().unwrap_or_else(|| usage());
                let text = read_source(path);
                suppressions = SuppressionSet::parse(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                });
            }
            "--gen-suppressions" => gen_suppressions = true,
            "--emit-annotated" => emit_annotated = true,
            "--emit-ir" => emit_ir = true,
            "--json" => json = true,
            "--static-cross-check" => cross_check = true,
            "--explore" => {
                explore = Some(it.next().and_then(|x| x.parse().ok()).unwrap_or_else(|| usage()));
            }
            path if !path.starts_with('-') => {
                let text = read_source(path);
                files.push(SourceFile::new(path, &text));
            }
            _ => usage(),
        }
    }
    if files.is_empty() {
        usage();
    }

    if cmd == "lint" {
        run_lint(&files, json);
    }

    // Stage 1+2+3 (Fig 3): preprocess, parse + annotate, compile.
    let out = run_pipeline(&files).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "compiled {} unit(s); {} delete site(s) annotated",
        files.len(),
        out.deletes_annotated
    );
    if emit_annotated {
        for (name, src) in &out.annotated_sources {
            println!("// ---- {name} (annotated) ----");
            println!("{src}");
        }
    }

    if emit_ir {
        println!("{}", vexec::ir::disasm::disassemble(&out.program.lower()));
    }

    let cfg = parse_detector(&detector_name);

    // Exploration mode: aggregate warnings across many schedules.
    if let Some(runs) = explore {
        let summary = explore_schedules(&out.program, cfg, runs, 0xACE);
        println!(
            "explored {} schedules: {} clean, {} deadlocked",
            summary.runs, summary.clean_runs, summary.deadlocked_runs
        );
        for hit in &summary.locations {
            println!("[{:>3}/{:<3}] {}", hit.hits, summary.runs, hit.report.render().trim_end());
        }
        if cross_check {
            // Join the static findings against every location any explored
            // schedule hit — the union is the fairest dynamic baseline.
            let stat = minicpp::analysis::analyze(&out.units);
            let dyn_keys: BTreeSet<_> =
                summary.locations.iter().map(|h| join_key(&h.report)).collect();
            let stat_keys: BTreeSet<_> = stat.reports.iter().map(join_key).collect();
            let confirmed = stat.reports.iter().filter(|r| dyn_keys.contains(&join_key(r)));
            let static_only = stat.reports.iter().filter(|r| !dyn_keys.contains(&join_key(r)));
            let dynamic_only =
                summary.locations.iter().filter(|h| !stat_keys.contains(&join_key(&h.report)));
            println!(
                "static cross-check: {} confirmed-both, {} static-only, {} dynamic-only",
                confirmed.clone().count(),
                static_only.clone().count(),
                dynamic_only.clone().count()
            );
            for r in confirmed {
                println!("[confirmed-both] {} at {}:{}", r.kind.name(), r.file, r.line);
            }
            for r in static_only {
                println!("[static-only] {} at {}:{}", r.kind.name(), r.file, r.line);
            }
            for h in dynamic_only {
                let r = &h.report;
                println!("[dynamic-only] {} at {}:{}", r.kind.name(), r.file, r.line);
            }
        }
        std::process::exit(if summary.locations.is_empty() { 0 } else { 1 });
    }

    // Single-run mode: collect the post-suppression dynamic findings.
    let mut sched = parse_schedule(&schedule);
    let termination;
    let dynamic: Vec<Report> = match detector_name.as_str() {
        "djit" => {
            let mut det = DjitDetector::new(cfg);
            termination = run_program(&out.program, &mut det, sched.as_mut()).termination;
            det.sink.take_reports()
        }
        "hybrid" | "hybrid-queue" => {
            let mut det = HybridDetector::new(cfg);
            termination = run_program(&out.program, &mut det, sched.as_mut()).termination;
            det.sink.take_reports()
        }
        _ => {
            // Eraser applies suppressions inside its sink already.
            let mut det = EraserDetector::with_suppressions(cfg, suppressions.clone());
            termination = run_program(&out.program, &mut det, sched.as_mut()).termination;
            det.sink.take_reports()
        }
    };
    let dynamic: Vec<Report> = dynamic.into_iter().filter(|r| !suppressions.matches(r)).collect();
    let mut warnings = dynamic.len();

    if !json {
        for (i, r) in dynamic.iter().enumerate() {
            println!("{}", r.render());
            if gen_suppressions {
                println!("{}", Suppression::from_report(&format!("auto-{}", i + 1), r, 3).render());
            }
        }
    }

    match &termination {
        Termination::AllExited => {}
        Termination::Deadlock(waits) => {
            if !json {
                println!("DEADLOCK: {} thread(s) blocked:", waits.len());
                for w in waits {
                    println!(
                        "  thread {} blocked on {:?} held by {:?}",
                        w.tid.0,
                        w.on,
                        w.holders.iter().map(|t| t.0).collect::<Vec<_>>()
                    );
                }
            }
            warnings += 1;
        }
        other => {
            if !json {
                println!("abnormal termination: {other:?}");
            }
            warnings += 1;
        }
    }

    // Static cross-check: join the two report streams by (kind, file,
    // line). The static side sees paths no schedule exercised; the
    // dynamic side sees heap/alias behaviour the static side abstracts.
    let cross = cross_check.then(|| {
        let stat = minicpp::analysis::analyze(&out.units);
        let dyn_keys: BTreeSet<_> = dynamic.iter().map(join_key).collect();
        let stat_keys: BTreeSet<_> = stat.reports.iter().map(join_key).collect();
        let confirmed: Vec<&Report> =
            stat.reports.iter().filter(|r| dyn_keys.contains(&join_key(r))).collect();
        let static_only: Vec<&Report> =
            stat.reports.iter().filter(|r| !dyn_keys.contains(&join_key(r))).collect();
        let dynamic_only: Vec<&Report> =
            dynamic.iter().filter(|r| !stat_keys.contains(&join_key(r))).collect();
        if !json {
            println!(
                "static cross-check: {} confirmed-both, {} static-only, {} dynamic-only",
                confirmed.len(),
                static_only.len(),
                dynamic_only.len()
            );
            for (label, set) in [
                ("confirmed-both", &confirmed),
                ("static-only", &static_only),
                ("dynamic-only", &dynamic_only),
            ] {
                for r in set.iter() {
                    println!(
                        "[{label}] {} at {} ({}:{}) — {}",
                        r.kind.name(),
                        r.func,
                        r.file,
                        r.line,
                        r.details
                    );
                }
            }
        }
        let to_vals = |rs: &[&Report]| Value::Array(rs.iter().map(|r| r.to_value()).collect());
        Value::Object(vec![
            ("confirmed_both".to_string(), to_vals(&confirmed)),
            ("static_only".to_string(), to_vals(&static_only)),
            ("dynamic_only".to_string(), to_vals(&dynamic_only)),
        ])
    });

    if json {
        let mut obj = vec![
            ("warnings".to_string(), Value::UInt(warnings as u64)),
            ("termination".to_string(), Value::Str(format!("{termination:?}"))),
            ("reports".to_string(), reports_json(&dynamic)),
        ];
        if let Some(c) = cross {
            obj.push(("static_cross_check".to_string(), c));
        }
        println!("{}", Value::Object(obj));
    }

    eprintln!("{warnings} warning(s)");
    std::process::exit(if warnings == 0 { 0 } else { 1 });
}

/// `raceline lint`: parse + annotate + static passes, no execution.
fn run_lint(files: &[SourceFile], json: bool) -> ! {
    let result = minicpp::analysis::analyze_files(files).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1);
    });
    let n = result.reports.len();
    if json {
        let obj = Value::Object(vec![
            ("findings".to_string(), Value::UInt(n as u64)),
            ("reports".to_string(), reports_json(&result.reports)),
        ]);
        println!("{obj}");
    } else {
        for r in &result.reports {
            println!("{}", r.render());
        }
    }
    eprintln!("{n} finding(s)");
    std::process::exit(if n == 0 { 0 } else { 1 });
}
