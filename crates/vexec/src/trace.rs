//! Execution-trace recording and replay: the *post-mortem* analysis mode
//! of §2.2.
//!
//! "Principally, on-the-fly checkers can work post mortem and hence reduce
//! the performance impact due to the online calculations. But they still
//! need logging of the execution trace. Hence, offline techniques suffer
//! from their need for large amount of data."
//!
//! [`TraceWriter`] is a [`Tool`] that serialises every event into a
//! compact binary buffer; [`Trace::iter`] replays it. Detector *engines*
//! (`helgrind-core`'s `LocksetEngine`/`HbEngine`) consume bare events, so
//! they run identically online and offline — the difference, exactly as
//! the paper notes, is the log volume (measure it with
//! [`Trace::bytes_len`] / [`Trace::bytes_per_event`]).
//!
//! Traces reference interned symbols, so a trace is only meaningful next
//! to the program (interner) that produced it.

use crate::event::{AccessKind, AcqMode, ClientEv, Event, SyncId, ThreadId};
use crate::ir::{SrcLoc, SyncKind};
use crate::tool::Tool;
use crate::util::Symbol;
use crate::vm::VmView;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A recorded execution trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    buf: Bytes,
    events: u64,
}

/// Trace decoding errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Buffer ended mid-event.
    Truncated,
    /// Unknown event tag.
    BadTag(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadTag(t) => write!(f, "unknown event tag {t}"),
        }
    }
}

// Event tags.
const T_ACCESS_READ: u8 = 0;
const T_ACCESS_WRITE: u8 = 1;
const T_ACCESS_RMW: u8 = 2;
const T_ACQUIRE_EXCL: u8 = 3;
const T_ACQUIRE_SHARED: u8 = 4;
const T_RELEASE: u8 = 5;
const T_CREATE: u8 = 6;
const T_JOIN: u8 = 7;
const T_EXIT: u8 = 8;
const T_ALLOC: u8 = 9;
const T_FREE: u8 = 10;
const T_COND_SIGNAL: u8 = 11;
const T_COND_BROADCAST: u8 = 12;
const T_COND_WAKE: u8 = 13;
const T_SEM_POST: u8 = 14;
const T_SEM_ACQUIRED: u8 = 15;
const T_QUEUE_PUT: u8 = 16;
const T_QUEUE_GOT: u8 = 17;
const T_HG_DESTRUCT: u8 = 18;
const T_HG_CLEAN: u8 = 19;
const T_LABEL: u8 = 20;

fn put_loc(buf: &mut BytesMut, loc: SrcLoc) {
    buf.put_u32_le(loc.file.0);
    buf.put_u32_le(loc.line);
    buf.put_u32_le(loc.func.0);
}

fn get_loc(buf: &mut Bytes) -> Result<SrcLoc, TraceError> {
    if buf.remaining() < 12 {
        return Err(TraceError::Truncated);
    }
    Ok(SrcLoc {
        file: Symbol(buf.get_u32_le()),
        line: buf.get_u32_le(),
        func: Symbol(buf.get_u32_le()),
    })
}

fn need(buf: &Bytes, n: usize) -> Result<(), TraceError> {
    if buf.remaining() < n {
        Err(TraceError::Truncated)
    } else {
        Ok(())
    }
}

/// Encode one event.
pub fn encode_event(buf: &mut BytesMut, ev: &Event) {
    match *ev {
        Event::Access { tid, addr, size, kind, loc } => {
            buf.put_u8(match kind {
                AccessKind::Read => T_ACCESS_READ,
                AccessKind::Write => T_ACCESS_WRITE,
                AccessKind::AtomicRmw => T_ACCESS_RMW,
            });
            buf.put_u32_le(tid.0);
            buf.put_u64_le(addr);
            buf.put_u8(size);
            put_loc(buf, loc);
        }
        Event::Acquire { tid, sync, kind, mode, loc } => {
            buf.put_u8(match mode {
                AcqMode::Exclusive => T_ACQUIRE_EXCL,
                AcqMode::Shared => T_ACQUIRE_SHARED,
            });
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            buf.put_u8(sync_kind_code(kind));
            put_loc(buf, loc);
        }
        Event::Release { tid, sync, kind, loc } => {
            buf.put_u8(T_RELEASE);
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            buf.put_u8(sync_kind_code(kind));
            put_loc(buf, loc);
        }
        Event::ThreadCreate { parent, child, loc } => {
            buf.put_u8(T_CREATE);
            buf.put_u32_le(parent.0);
            buf.put_u32_le(child.0);
            put_loc(buf, loc);
        }
        Event::ThreadJoin { joiner, joined, loc } => {
            buf.put_u8(T_JOIN);
            buf.put_u32_le(joiner.0);
            buf.put_u32_le(joined.0);
            put_loc(buf, loc);
        }
        Event::ThreadExit { tid } => {
            buf.put_u8(T_EXIT);
            buf.put_u32_le(tid.0);
        }
        Event::Alloc { tid, addr, size, loc } => {
            buf.put_u8(T_ALLOC);
            buf.put_u32_le(tid.0);
            buf.put_u64_le(addr);
            buf.put_u64_le(size);
            put_loc(buf, loc);
        }
        Event::Free { tid, addr, size, loc } => {
            buf.put_u8(T_FREE);
            buf.put_u32_le(tid.0);
            buf.put_u64_le(addr);
            buf.put_u64_le(size);
            put_loc(buf, loc);
        }
        Event::CondSignal { tid, sync, broadcast, loc } => {
            buf.put_u8(if broadcast { T_COND_BROADCAST } else { T_COND_SIGNAL });
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            put_loc(buf, loc);
        }
        Event::CondWake { tid, sync, signaler, loc } => {
            buf.put_u8(T_COND_WAKE);
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            buf.put_u32_le(signaler.0);
            put_loc(buf, loc);
        }
        Event::SemPost { tid, sync, loc } => {
            buf.put_u8(T_SEM_POST);
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            put_loc(buf, loc);
        }
        Event::SemAcquired { tid, sync, loc } => {
            buf.put_u8(T_SEM_ACQUIRED);
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            put_loc(buf, loc);
        }
        Event::QueuePut { tid, sync, token, loc } => {
            buf.put_u8(T_QUEUE_PUT);
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            buf.put_u64_le(token);
            put_loc(buf, loc);
        }
        Event::QueueGot { tid, sync, token, loc } => {
            buf.put_u8(T_QUEUE_GOT);
            buf.put_u32_le(tid.0);
            buf.put_u32_le(sync.0);
            buf.put_u64_le(token);
            put_loc(buf, loc);
        }
        Event::Client { tid, req, loc } => match req {
            ClientEv::HgDestruct { addr, size } => {
                buf.put_u8(T_HG_DESTRUCT);
                buf.put_u32_le(tid.0);
                buf.put_u64_le(addr);
                buf.put_u64_le(size);
                put_loc(buf, loc);
            }
            ClientEv::HgCleanMemory { addr, size } => {
                buf.put_u8(T_HG_CLEAN);
                buf.put_u32_le(tid.0);
                buf.put_u64_le(addr);
                buf.put_u64_le(size);
                put_loc(buf, loc);
            }
            ClientEv::Label(sym) => {
                buf.put_u8(T_LABEL);
                buf.put_u32_le(tid.0);
                buf.put_u32_le(sym.0);
                put_loc(buf, loc);
            }
        },
    }
}

fn sync_kind_code(k: SyncKind) -> u8 {
    match k {
        SyncKind::Mutex => 0,
        SyncKind::RwLock => 1,
        SyncKind::CondVar => 2,
        SyncKind::Semaphore => 3,
        SyncKind::Queue => 4,
    }
}

fn sync_kind_from(c: u8) -> Result<SyncKind, TraceError> {
    Ok(match c {
        0 => SyncKind::Mutex,
        1 => SyncKind::RwLock,
        2 => SyncKind::CondVar,
        3 => SyncKind::Semaphore,
        4 => SyncKind::Queue,
        other => return Err(TraceError::BadTag(other)),
    })
}

/// Decode one event; `buf` advances past it.
pub fn decode_event(buf: &mut Bytes) -> Result<Event, TraceError> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    let ev = match tag {
        T_ACCESS_READ | T_ACCESS_WRITE | T_ACCESS_RMW => {
            need(buf, 4 + 8 + 1)?;
            let tid = ThreadId(buf.get_u32_le());
            let addr = buf.get_u64_le();
            let size = buf.get_u8();
            let loc = get_loc(buf)?;
            let kind = match tag {
                T_ACCESS_READ => AccessKind::Read,
                T_ACCESS_WRITE => AccessKind::Write,
                _ => AccessKind::AtomicRmw,
            };
            Event::Access { tid, addr, size, kind, loc }
        }
        T_ACQUIRE_EXCL | T_ACQUIRE_SHARED => {
            need(buf, 4 + 4 + 1)?;
            let tid = ThreadId(buf.get_u32_le());
            let sync = SyncId(buf.get_u32_le());
            let kind = sync_kind_from(buf.get_u8())?;
            let loc = get_loc(buf)?;
            let mode = if tag == T_ACQUIRE_EXCL { AcqMode::Exclusive } else { AcqMode::Shared };
            Event::Acquire { tid, sync, kind, mode, loc }
        }
        T_RELEASE => {
            need(buf, 4 + 4 + 1)?;
            let tid = ThreadId(buf.get_u32_le());
            let sync = SyncId(buf.get_u32_le());
            let kind = sync_kind_from(buf.get_u8())?;
            let loc = get_loc(buf)?;
            Event::Release { tid, sync, kind, loc }
        }
        T_CREATE | T_JOIN => {
            need(buf, 8)?;
            let a = ThreadId(buf.get_u32_le());
            let b = ThreadId(buf.get_u32_le());
            let loc = get_loc(buf)?;
            if tag == T_CREATE {
                Event::ThreadCreate { parent: a, child: b, loc }
            } else {
                Event::ThreadJoin { joiner: a, joined: b, loc }
            }
        }
        T_EXIT => {
            need(buf, 4)?;
            Event::ThreadExit { tid: ThreadId(buf.get_u32_le()) }
        }
        T_ALLOC | T_FREE => {
            need(buf, 4 + 8 + 8)?;
            let tid = ThreadId(buf.get_u32_le());
            let addr = buf.get_u64_le();
            let size = buf.get_u64_le();
            let loc = get_loc(buf)?;
            if tag == T_ALLOC {
                Event::Alloc { tid, addr, size, loc }
            } else {
                Event::Free { tid, addr, size, loc }
            }
        }
        T_COND_SIGNAL | T_COND_BROADCAST => {
            need(buf, 8)?;
            let tid = ThreadId(buf.get_u32_le());
            let sync = SyncId(buf.get_u32_le());
            let loc = get_loc(buf)?;
            Event::CondSignal { tid, sync, broadcast: tag == T_COND_BROADCAST, loc }
        }
        T_COND_WAKE => {
            need(buf, 12)?;
            let tid = ThreadId(buf.get_u32_le());
            let sync = SyncId(buf.get_u32_le());
            let signaler = ThreadId(buf.get_u32_le());
            let loc = get_loc(buf)?;
            Event::CondWake { tid, sync, signaler, loc }
        }
        T_SEM_POST | T_SEM_ACQUIRED => {
            need(buf, 8)?;
            let tid = ThreadId(buf.get_u32_le());
            let sync = SyncId(buf.get_u32_le());
            let loc = get_loc(buf)?;
            if tag == T_SEM_POST {
                Event::SemPost { tid, sync, loc }
            } else {
                Event::SemAcquired { tid, sync, loc }
            }
        }
        T_QUEUE_PUT | T_QUEUE_GOT => {
            need(buf, 4 + 4 + 8)?;
            let tid = ThreadId(buf.get_u32_le());
            let sync = SyncId(buf.get_u32_le());
            let token = buf.get_u64_le();
            let loc = get_loc(buf)?;
            if tag == T_QUEUE_PUT {
                Event::QueuePut { tid, sync, token, loc }
            } else {
                Event::QueueGot { tid, sync, token, loc }
            }
        }
        T_HG_DESTRUCT | T_HG_CLEAN => {
            need(buf, 4 + 8 + 8)?;
            let tid = ThreadId(buf.get_u32_le());
            let addr = buf.get_u64_le();
            let size = buf.get_u64_le();
            let loc = get_loc(buf)?;
            let req = if tag == T_HG_DESTRUCT {
                ClientEv::HgDestruct { addr, size }
            } else {
                ClientEv::HgCleanMemory { addr, size }
            };
            Event::Client { tid, req, loc }
        }
        T_LABEL => {
            need(buf, 8)?;
            let tid = ThreadId(buf.get_u32_le());
            let sym = Symbol(buf.get_u32_le());
            let loc = get_loc(buf)?;
            Event::Client { tid, req: ClientEv::Label(sym), loc }
        }
        other => return Err(TraceError::BadTag(other)),
    };
    Ok(ev)
}

impl Trace {
    /// Number of recorded events.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Encoded size in bytes — §2.2's "large amount of data".
    pub fn bytes_len(&self) -> usize {
        self.buf.len()
    }

    /// Average bytes per event.
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.buf.len() as f64 / self.events as f64
        }
    }

    /// Iterate over the recorded events (post-mortem replay).
    pub fn iter(&self) -> TraceIter {
        TraceIter { buf: self.buf.clone() }
    }

    /// Replay the trace into a consumer; stops on the first decode error.
    pub fn replay(&self, mut f: impl FnMut(&Event)) -> Result<(), TraceError> {
        for ev in self.iter() {
            f(&ev?);
        }
        Ok(())
    }
}

/// Iterator over a trace.
pub struct TraceIter {
    buf: Bytes,
}

impl Iterator for TraceIter {
    type Item = Result<Event, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buf.remaining() == 0 {
            return None;
        }
        let r = decode_event(&mut self.buf);
        if r.is_err() {
            // Poison: stop after the first error.
            self.buf = Bytes::new();
        }
        Some(r)
    }
}

/// A [`Tool`] that records the execution trace for post-mortem analysis.
#[derive(Debug, Default)]
pub struct TraceWriter {
    buf: BytesMut,
    events: u64,
}

impl TraceWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish recording.
    pub fn finish(self) -> Trace {
        Trace { buf: self.buf.freeze(), events: self.events }
    }
}

impl Tool for TraceWriter {
    fn on_event(&mut self, ev: &Event, _vm: &VmView<'_>) {
        encode_event(&mut self.buf, ev);
        self.events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{ProcBuilder, ProgramBuilder};
    use crate::sched::RoundRobin;
    use crate::tool::RecordingTool;
    use crate::vm::run_program;

    fn sample_events() -> Vec<Event> {
        let l = SrcLoc { file: Symbol(3), line: 42, func: Symbol(4) };
        vec![
            Event::Access {
                tid: ThreadId(1),
                addr: 0x1000,
                size: 8,
                kind: AccessKind::Read,
                loc: l,
            },
            Event::Access {
                tid: ThreadId(2),
                addr: 0x1008,
                size: 4,
                kind: AccessKind::Write,
                loc: l,
            },
            Event::Access {
                tid: ThreadId(2),
                addr: 0x1008,
                size: 8,
                kind: AccessKind::AtomicRmw,
                loc: l,
            },
            Event::Acquire {
                tid: ThreadId(1),
                sync: SyncId(0),
                kind: SyncKind::Mutex,
                mode: AcqMode::Exclusive,
                loc: l,
            },
            Event::Acquire {
                tid: ThreadId(1),
                sync: SyncId(1),
                kind: SyncKind::RwLock,
                mode: AcqMode::Shared,
                loc: l,
            },
            Event::Release { tid: ThreadId(1), sync: SyncId(0), kind: SyncKind::Mutex, loc: l },
            Event::ThreadCreate { parent: ThreadId(0), child: ThreadId(1), loc: l },
            Event::ThreadJoin { joiner: ThreadId(0), joined: ThreadId(1), loc: l },
            Event::ThreadExit { tid: ThreadId(1) },
            Event::Alloc { tid: ThreadId(0), addr: 0x2000, size: 64, loc: l },
            Event::Free { tid: ThreadId(0), addr: 0x2000, size: 64, loc: l },
            Event::CondSignal { tid: ThreadId(0), sync: SyncId(2), broadcast: false, loc: l },
            Event::CondSignal { tid: ThreadId(0), sync: SyncId(2), broadcast: true, loc: l },
            Event::CondWake { tid: ThreadId(1), sync: SyncId(2), signaler: ThreadId(0), loc: l },
            Event::SemPost { tid: ThreadId(0), sync: SyncId(3), loc: l },
            Event::SemAcquired { tid: ThreadId(1), sync: SyncId(3), loc: l },
            Event::QueuePut { tid: ThreadId(0), sync: SyncId(4), token: 99, loc: l },
            Event::QueueGot { tid: ThreadId(1), sync: SyncId(4), token: 99, loc: l },
            Event::Client {
                tid: ThreadId(1),
                req: ClientEv::HgDestruct { addr: 0x2000, size: 16 },
                loc: l,
            },
            Event::Client {
                tid: ThreadId(1),
                req: ClientEv::HgCleanMemory { addr: 0x2000, size: 16 },
                loc: l,
            },
            Event::Client { tid: ThreadId(1), req: ClientEv::Label(Symbol(9)), loc: l },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_variant() {
        for ev in sample_events() {
            let mut buf = BytesMut::new();
            encode_event(&mut buf, &ev);
            let mut bytes = buf.freeze();
            let back = decode_event(&mut bytes).unwrap();
            assert_eq!(back, ev);
            assert_eq!(bytes.remaining(), 0, "no trailing bytes for {ev:?}");
        }
    }

    #[test]
    fn truncated_trace_reports_error() {
        let mut buf = BytesMut::new();
        encode_event(&mut buf, &sample_events()[0]);
        let full = buf.freeze();
        for cut in 1..full.len() {
            let mut partial = full.slice(..cut);
            assert!(
                decode_event(&mut partial).is_err() || partial.remaining() == 0,
                "cut at {cut} must not decode garbage"
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut b = Bytes::from_static(&[0xFF, 0, 0, 0]);
        assert_eq!(decode_event(&mut b), Err(TraceError::BadTag(0xFF)));
    }

    #[test]
    fn recorded_trace_replays_identically() {
        // Run a small program twice: once recording events directly, once
        // through the trace writer; the replayed trace must equal the
        // direct recording.
        let mut pb = ProgramBuilder::new();
        let g = pb.global("x", 8);
        let loc = pb.loc("t.cpp", 1, "worker");
        let mut w = ProcBuilder::new(0);
        w.at(loc);
        let v = w.load_new(g, 8);
        w.store(g, crate::ir::Expr::Reg(v).add(1u64.into()), 8);
        let worker = pb.add_proc("worker", w);
        let mut m = ProcBuilder::new(0);
        m.at(pb.loc("t.cpp", 9, "main"));
        let h1 = m.spawn(worker, vec![]);
        let h2 = m.spawn(worker, vec![]);
        m.join(h1);
        m.join(h2);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();

        let mut direct = RecordingTool::new();
        run_program(&prog, &mut direct, &mut RoundRobin::new()).expect_clean();

        let mut writer = TraceWriter::new();
        run_program(&prog, &mut writer, &mut RoundRobin::new()).expect_clean();
        let trace = writer.finish();

        assert_eq!(trace.event_count() as usize, direct.events.len());
        let replayed: Vec<Event> = trace.iter().map(|e| e.unwrap()).collect();
        assert_eq!(replayed, direct.events);
        assert!(trace.bytes_per_event() > 0.0);
    }
}
