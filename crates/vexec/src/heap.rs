//! Guest memory: a flat byte arena holding globals and the heap, plus block
//! bookkeeping for allocation-site diagnostics ("Address 0x... is N bytes
//! inside a block of size M alloc'd by thread T" — Fig 9 of the paper).
//!
//! The VM heap is bump-only: guest `free` marks a block freed but addresses
//! are never recycled at this level. Address reuse — the libstdc++ pooled
//! allocator behaviour the paper flags in §4 — is modelled *in guest code*
//! by `cxxmodel`'s pool allocator, which recycles addresses without emitting
//! `Free`/`Alloc` events, exactly like a user-space pool that Helgrind
//! cannot see through.

use crate::event::ThreadId;
use crate::ir::SrcLoc;
use std::collections::BTreeMap;

/// Lowest guest address; accesses below this are wild.
pub const GUEST_BASE: u64 = 0x1000;
/// Alignment of every allocation.
pub const ALIGN: u64 = 16;

/// A guest allocation record.
#[derive(Clone, Copy, Debug)]
pub struct Block {
    pub addr: u64,
    pub size: u64,
    pub alloc_tid: ThreadId,
    pub alloc_loc: SrcLoc,
    pub freed: bool,
}

/// Errors raised by guest memory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Access to an address outside any mapped range.
    Wild { addr: u64, size: u64 },
    /// `free` of an address that is not the start of a live block.
    BadFree { addr: u64 },
    /// `free` of an already-freed block.
    DoubleFree { addr: u64 },
    /// Unsupported access size (must be 1, 2, 4 or 8).
    BadSize { size: u8 },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Wild { addr, size } => {
                write!(f, "wild access of {size} bytes at {addr:#x}")
            }
            MemError::BadFree { addr } => write!(f, "free of non-block address {addr:#x}"),
            MemError::DoubleFree { addr } => write!(f, "double free at {addr:#x}"),
            MemError::BadSize { size } => write!(f, "unsupported access size {size}"),
        }
    }
}

/// Guest memory arena.
#[derive(Debug)]
pub struct Heap {
    mem: Vec<u8>,
    next: u64,
    blocks: Vec<Block>,
    by_addr: BTreeMap<u64, u32>,
}

impl Heap {
    pub fn new() -> Self {
        Heap { mem: Vec::new(), next: GUEST_BASE, blocks: Vec::new(), by_addr: BTreeMap::new() }
    }

    fn ensure(&mut self, end: u64) {
        let need = (end - GUEST_BASE) as usize;
        if self.mem.len() < need {
            self.mem.resize(need.next_power_of_two().max(4096), 0);
        }
    }

    /// Allocate `size` bytes (zero-initialised). Zero-size requests get one
    /// byte so every allocation has a unique address, like malloc(0).
    pub fn alloc(&mut self, size: u64, tid: ThreadId, loc: SrcLoc) -> u64 {
        let size = size.max(1);
        let addr = self.next;
        let padded = (size + ALIGN - 1) & !(ALIGN - 1);
        self.next += padded;
        self.ensure(self.next);
        // The block is already zeroed: `ensure` zero-fills on growth, every
        // write is bounded below the `next` of its time by `check`, and the
        // bump allocator never hands an address out twice — so no byte of a
        // fresh block can have been written.
        let idx = self.blocks.len() as u32;
        self.blocks.push(Block { addr, size, alloc_tid: tid, alloc_loc: loc, freed: false });
        self.by_addr.insert(addr, idx);
        addr
    }

    /// Release a block. Returns the block record (for the `Free` event's
    /// size) or an error for bad/double frees.
    pub fn free(&mut self, addr: u64) -> Result<Block, MemError> {
        match self.by_addr.get(&addr) {
            None => Err(MemError::BadFree { addr }),
            Some(&idx) => {
                let b = &mut self.blocks[idx as usize];
                if b.freed {
                    return Err(MemError::DoubleFree { addr });
                }
                b.freed = true;
                Ok(*b)
            }
        }
    }

    fn check(&self, addr: u64, size: u8) -> Result<usize, MemError> {
        if !matches!(size, 1 | 2 | 4 | 8) {
            return Err(MemError::BadSize { size });
        }
        if addr < GUEST_BASE {
            return Err(MemError::Wild { addr, size: size as u64 });
        }
        let off = (addr - GUEST_BASE) as usize;
        if addr + size as u64 > self.next {
            return Err(MemError::Wild { addr, size: size as u64 });
        }
        Ok(off)
    }

    /// Read a little-endian value of `size` bytes.
    pub fn read(&self, addr: u64, size: u8) -> Result<u64, MemError> {
        let off = self.check(addr, size)?;
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(&self.mem[off..off + size as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Write a little-endian value of `size` bytes (value truncated).
    pub fn write(&mut self, addr: u64, size: u8, value: u64) -> Result<(), MemError> {
        let off = self.check(addr, size)?;
        let bytes = value.to_le_bytes();
        self.mem[off..off + size as usize].copy_from_slice(&bytes[..size as usize]);
        Ok(())
    }

    /// The live or freed block containing `addr`, if any.
    pub fn block_containing(&self, addr: u64) -> Option<&Block> {
        let (_, &idx) = self.by_addr.range(..=addr).next_back()?;
        let b = &self.blocks[idx as usize];
        (addr < b.addr + b.size).then_some(b)
    }

    /// Every block ever allocated, in allocation order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of allocations performed.
    pub fn alloc_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total bytes currently reserved (high-water mark).
    pub fn reserved(&self) -> u64 {
        self.next - GUEST_BASE
    }

    /// `(count, bytes)` of live (never-freed) blocks allocated by `tid` —
    /// what an abruptly killed thread leaks.
    pub fn live_blocks_by(&self, tid: ThreadId) -> (usize, u64) {
        self.blocks
            .iter()
            .filter(|b| !b.freed && b.alloc_tid == tid)
            .fold((0, 0), |(n, bytes), b| (n + 1, bytes + b.size))
    }
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Heap {
        Heap::new()
    }

    const L: SrcLoc = SrcLoc::UNKNOWN;
    const T: ThreadId = ThreadId(0);

    #[test]
    fn alloc_returns_aligned_distinct_addresses() {
        let mut heap = h();
        let a = heap.alloc(24, T, L);
        let b = heap.alloc(8, T, L);
        assert_eq!(a % ALIGN, 0);
        assert_eq!(b % ALIGN, 0);
        assert!(b >= a + 24);
    }

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut heap = h();
        let a = heap.alloc(64, T, L);
        for &(size, val) in &[(1u8, 0xABu64), (2, 0xBEEF), (4, 0xDEADBEEF), (8, 0x0123456789ABCDEF)]
        {
            heap.write(a, size, val).unwrap();
            assert_eq!(heap.read(a, size).unwrap(), val);
        }
    }

    #[test]
    fn write_truncates_to_size() {
        let mut heap = h();
        let a = heap.alloc(16, T, L);
        heap.write(a, 1, 0x1FF).unwrap();
        assert_eq!(heap.read(a, 1).unwrap(), 0xFF);
        // Neighbouring byte untouched.
        assert_eq!(heap.read(a + 1, 1).unwrap(), 0);
    }

    #[test]
    fn fresh_allocations_are_zeroed() {
        let mut heap = h();
        let a = heap.alloc(32, T, L);
        assert_eq!(heap.read(a + 24, 8).unwrap(), 0);
    }

    #[test]
    fn wild_access_rejected() {
        let mut heap = h();
        let a = heap.alloc(8, T, L);
        assert!(matches!(heap.read(a + 4096, 8), Err(MemError::Wild { .. })));
        assert!(matches!(heap.read(0x10, 8), Err(MemError::Wild { .. })));
    }

    #[test]
    fn bad_size_rejected() {
        let mut heap = h();
        let a = heap.alloc(8, T, L);
        assert!(matches!(heap.read(a, 3), Err(MemError::BadSize { .. })));
    }

    #[test]
    fn free_and_double_free() {
        let mut heap = h();
        let a = heap.alloc(8, T, L);
        let b = heap.free(a).unwrap();
        assert_eq!(b.size, 8);
        assert!(matches!(heap.free(a), Err(MemError::DoubleFree { .. })));
        assert!(matches!(heap.free(a + 1), Err(MemError::BadFree { .. })));
    }

    #[test]
    fn block_containing_finds_interior_addresses() {
        let mut heap = h();
        let a = heap.alloc(21, T, L);
        let blk = heap.block_containing(a + 8).unwrap();
        assert_eq!(blk.addr, a);
        assert_eq!(blk.size, 21);
        assert!(
            heap.block_containing(a + 21).is_none()
                || heap.block_containing(a + 21).unwrap().addr != a
        );
    }

    #[test]
    fn zero_size_alloc_gets_unique_address() {
        let mut heap = h();
        let a = heap.alloc(0, T, L);
        let b = heap.alloc(0, T, L);
        assert_ne!(a, b);
    }
}
