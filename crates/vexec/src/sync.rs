//! Runtime state of guest synchronisation objects.
//!
//! These implement POSIX blocking semantics inside the VM: a thread whose
//! operation cannot proceed parks itself and the VM retries the same opcode
//! when the object changes state. The objects themselves are passive state
//! machines; all wakeup policy lives in the VM scheduler loop.

use crate::event::ThreadId;
use crate::ir::SyncKind;
use std::collections::VecDeque;

/// Errors from misusing a sync object (guest bugs that POSIX leaves
/// undefined; the VM makes them hard errors for diagnosability).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// Unlock of a mutex not owned by the caller.
    NotOwner { tid: ThreadId },
    /// Relock of a non-recursive mutex by its owner.
    SelfDeadlock { tid: ThreadId },
    /// rwlock unlock without holding it.
    NotHeld { tid: ThreadId },
    /// Operation applied to the wrong kind of object.
    WrongKind { expected: SyncKind, actual: SyncKind },
    /// Handle does not name a sync object.
    BadHandle { handle: u64 },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::NotOwner { tid } => {
                write!(f, "thread {} unlocked a mutex it does not own", tid.0)
            }
            SyncError::SelfDeadlock { tid } => {
                write!(f, "thread {} relocked a mutex it already owns", tid.0)
            }
            SyncError::NotHeld { tid } => {
                write!(f, "thread {} released a rwlock it does not hold", tid.0)
            }
            SyncError::WrongKind { expected, actual } => {
                write!(f, "sync op expected a {} but got a {}", expected.name(), actual.name())
            }
            SyncError::BadHandle { handle } => write!(f, "invalid sync handle {handle}"),
        }
    }
}

/// State of one sync object.
#[derive(Clone, Debug)]
pub enum SyncState {
    Mutex {
        owner: Option<ThreadId>,
    },
    RwLock {
        writer: Option<ThreadId>,
        readers: Vec<ThreadId>,
    },
    CondVar {
        /// Parked waiters, in arrival order.
        waiters: VecDeque<ThreadId>,
    },
    Semaphore {
        count: u64,
    },
    Queue {
        items: VecDeque<(u64, u64)>, // (value, token)
        capacity: usize,
        next_token: u64,
    },
}

/// A guest sync object.
#[derive(Clone, Debug)]
pub struct SyncObj {
    pub kind: SyncKind,
    pub state: SyncState,
}

impl SyncObj {
    pub fn new(kind: SyncKind, init: u64) -> SyncObj {
        let state = match kind {
            SyncKind::Mutex => SyncState::Mutex { owner: None },
            SyncKind::RwLock => SyncState::RwLock { writer: None, readers: Vec::new() },
            SyncKind::CondVar => SyncState::CondVar { waiters: VecDeque::new() },
            SyncKind::Semaphore => SyncState::Semaphore { count: init },
            SyncKind::Queue => SyncState::Queue {
                items: VecDeque::new(),
                capacity: (init as usize).max(1),
                next_token: 0,
            },
        };
        SyncObj { kind, state }
    }

    fn expect_kind(&self, expected: SyncKind) -> Result<(), SyncError> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(SyncError::WrongKind { expected, actual: self.kind })
        }
    }

    /// Try to lock the mutex. `Ok(true)` = acquired, `Ok(false)` = must block.
    pub fn mutex_lock(&mut self, tid: ThreadId) -> Result<bool, SyncError> {
        self.expect_kind(SyncKind::Mutex)?;
        match &mut self.state {
            SyncState::Mutex { owner } => match owner {
                None => {
                    *owner = Some(tid);
                    Ok(true)
                }
                Some(o) if *o == tid => Err(SyncError::SelfDeadlock { tid }),
                Some(_) => Ok(false),
            },
            _ => unreachable!(),
        }
    }

    pub fn mutex_unlock(&mut self, tid: ThreadId) -> Result<(), SyncError> {
        self.expect_kind(SyncKind::Mutex)?;
        match &mut self.state {
            SyncState::Mutex { owner } => {
                if *owner == Some(tid) {
                    *owner = None;
                    Ok(())
                } else {
                    Err(SyncError::NotOwner { tid })
                }
            }
            _ => unreachable!(),
        }
    }

    /// Current mutex owner (for wait-for graphs).
    pub fn mutex_owner(&self) -> Option<ThreadId> {
        match &self.state {
            SyncState::Mutex { owner } => *owner,
            _ => None,
        }
    }

    /// Try to read-lock. Writer-held blocks readers.
    pub fn rw_lock_read(&mut self, tid: ThreadId) -> Result<bool, SyncError> {
        self.expect_kind(SyncKind::RwLock)?;
        match &mut self.state {
            SyncState::RwLock { writer, readers } => {
                if writer.is_some() {
                    Ok(false)
                } else {
                    readers.push(tid);
                    Ok(true)
                }
            }
            _ => unreachable!(),
        }
    }

    /// Try to write-lock. Any holder blocks writers.
    pub fn rw_lock_write(&mut self, tid: ThreadId) -> Result<bool, SyncError> {
        self.expect_kind(SyncKind::RwLock)?;
        match &mut self.state {
            SyncState::RwLock { writer, readers } => {
                if writer.is_some() || !readers.is_empty() {
                    if *writer == Some(tid) || readers.contains(&tid) {
                        return Err(SyncError::SelfDeadlock { tid });
                    }
                    Ok(false)
                } else {
                    *writer = Some(tid);
                    Ok(true)
                }
            }
            _ => unreachable!(),
        }
    }

    /// Unlock whichever mode the caller holds.
    pub fn rw_unlock(&mut self, tid: ThreadId) -> Result<(), SyncError> {
        self.expect_kind(SyncKind::RwLock)?;
        match &mut self.state {
            SyncState::RwLock { writer, readers } => {
                if *writer == Some(tid) {
                    *writer = None;
                    Ok(())
                } else if let Some(pos) = readers.iter().position(|&r| r == tid) {
                    readers.swap_remove(pos);
                    Ok(())
                } else {
                    Err(SyncError::NotHeld { tid })
                }
            }
            _ => unreachable!(),
        }
    }

    /// Threads currently holding the rwlock (for wait-for graphs).
    pub fn rw_holders(&self) -> Vec<ThreadId> {
        match &self.state {
            SyncState::RwLock { writer, readers } => {
                let mut v = readers.clone();
                if let Some(w) = writer {
                    v.push(*w);
                }
                v
            }
            _ => Vec::new(),
        }
    }

    /// True if `tid` currently holds this object (mutex owner or rwlock
    /// holder in either mode). Used to count locks leaked by a killed
    /// thread; always false for condvars, semaphores, and queues.
    pub fn is_held_by(&self, tid: ThreadId) -> bool {
        match &self.state {
            SyncState::Mutex { owner } => *owner == Some(tid),
            SyncState::RwLock { writer, readers } => *writer == Some(tid) || readers.contains(&tid),
            _ => false,
        }
    }

    /// Park a waiter on the condvar.
    pub fn cond_park(&mut self, tid: ThreadId) -> Result<(), SyncError> {
        self.expect_kind(SyncKind::CondVar)?;
        match &mut self.state {
            SyncState::CondVar { waiters } => {
                waiters.push_back(tid);
                Ok(())
            }
            _ => unreachable!(),
        }
    }

    /// Pop up to `max` waiters to wake (1 for signal, all for broadcast).
    pub fn cond_take_waiters(&mut self, broadcast: bool) -> Result<Vec<ThreadId>, SyncError> {
        self.expect_kind(SyncKind::CondVar)?;
        match &mut self.state {
            SyncState::CondVar { waiters } => {
                if broadcast {
                    Ok(waiters.drain(..).collect())
                } else {
                    Ok(waiters.pop_front().into_iter().collect())
                }
            }
            _ => unreachable!(),
        }
    }

    /// Remove a thread from the condvar wait queue (used if it is woken by
    /// other means). No-op if absent.
    pub fn cond_unpark(&mut self, tid: ThreadId) {
        if let SyncState::CondVar { waiters } = &mut self.state {
            waiters.retain(|&w| w != tid);
        }
    }

    pub fn sem_post(&mut self) -> Result<(), SyncError> {
        self.expect_kind(SyncKind::Semaphore)?;
        match &mut self.state {
            SyncState::Semaphore { count } => {
                *count += 1;
                Ok(())
            }
            _ => unreachable!(),
        }
    }

    /// Try to decrement. `Ok(true)` = acquired.
    pub fn sem_try_wait(&mut self) -> Result<bool, SyncError> {
        self.expect_kind(SyncKind::Semaphore)?;
        match &mut self.state {
            SyncState::Semaphore { count } => {
                if *count > 0 {
                    *count -= 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            _ => unreachable!(),
        }
    }

    /// Try to enqueue. Returns the message token on success, `None` if full.
    pub fn queue_try_put(&mut self, value: u64) -> Result<Option<u64>, SyncError> {
        self.expect_kind(SyncKind::Queue)?;
        match &mut self.state {
            SyncState::Queue { items, capacity, next_token } => {
                if items.len() >= *capacity {
                    Ok(None)
                } else {
                    let token = *next_token;
                    *next_token += 1;
                    items.push_back((value, token));
                    Ok(Some(token))
                }
            }
            _ => unreachable!(),
        }
    }

    /// Try to dequeue. Returns `(value, token)` or `None` if empty.
    pub fn queue_try_get(&mut self) -> Result<Option<(u64, u64)>, SyncError> {
        self.expect_kind(SyncKind::Queue)?;
        match &mut self.state {
            SyncState::Queue { items, .. } => Ok(items.pop_front()),
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn mutex_lock_unlock() {
        let mut m = SyncObj::new(SyncKind::Mutex, 0);
        assert_eq!(m.mutex_lock(T1), Ok(true));
        assert_eq!(m.mutex_lock(T2), Ok(false));
        assert_eq!(m.mutex_owner(), Some(T1));
        m.mutex_unlock(T1).unwrap();
        assert_eq!(m.mutex_lock(T2), Ok(true));
    }

    #[test]
    fn mutex_misuse() {
        let mut m = SyncObj::new(SyncKind::Mutex, 0);
        assert_eq!(m.mutex_unlock(T1), Err(SyncError::NotOwner { tid: T1 }));
        m.mutex_lock(T1).unwrap();
        assert_eq!(m.mutex_lock(T1), Err(SyncError::SelfDeadlock { tid: T1 }));
        assert_eq!(m.mutex_unlock(T2), Err(SyncError::NotOwner { tid: T2 }));
    }

    #[test]
    fn rwlock_readers_share_writers_exclusive() {
        let mut rw = SyncObj::new(SyncKind::RwLock, 0);
        assert_eq!(rw.rw_lock_read(T1), Ok(true));
        assert_eq!(rw.rw_lock_read(T2), Ok(true));
        let t3 = ThreadId(3);
        assert_eq!(rw.rw_lock_write(t3), Ok(false));
        rw.rw_unlock(T1).unwrap();
        rw.rw_unlock(T2).unwrap();
        assert_eq!(rw.rw_lock_write(t3), Ok(true));
        assert_eq!(rw.rw_lock_read(T1), Ok(false));
        assert_eq!(rw.rw_holders(), vec![t3]);
    }

    #[test]
    fn rwlock_self_upgrade_is_error() {
        let mut rw = SyncObj::new(SyncKind::RwLock, 0);
        rw.rw_lock_read(T1).unwrap();
        assert_eq!(rw.rw_lock_write(T1), Err(SyncError::SelfDeadlock { tid: T1 }));
    }

    #[test]
    fn condvar_signal_vs_broadcast() {
        let mut cv = SyncObj::new(SyncKind::CondVar, 0);
        cv.cond_park(T1).unwrap();
        cv.cond_park(T2).unwrap();
        assert_eq!(cv.cond_take_waiters(false).unwrap(), vec![T1]);
        cv.cond_park(T1).unwrap();
        let woken = cv.cond_take_waiters(true).unwrap();
        assert_eq!(woken, vec![T2, T1]);
        assert!(cv.cond_take_waiters(true).unwrap().is_empty());
    }

    #[test]
    fn semaphore_counting() {
        let mut s = SyncObj::new(SyncKind::Semaphore, 2);
        assert_eq!(s.sem_try_wait(), Ok(true));
        assert_eq!(s.sem_try_wait(), Ok(true));
        assert_eq!(s.sem_try_wait(), Ok(false));
        s.sem_post().unwrap();
        assert_eq!(s.sem_try_wait(), Ok(true));
    }

    #[test]
    fn queue_fifo_with_tokens_and_capacity() {
        let mut q = SyncObj::new(SyncKind::Queue, 2);
        assert_eq!(q.queue_try_put(10).unwrap(), Some(0));
        assert_eq!(q.queue_try_put(20).unwrap(), Some(1));
        assert_eq!(q.queue_try_put(30).unwrap(), None); // full
        assert_eq!(q.queue_try_get().unwrap(), Some((10, 0)));
        assert_eq!(q.queue_try_put(30).unwrap(), Some(2));
        assert_eq!(q.queue_try_get().unwrap(), Some((20, 1)));
        assert_eq!(q.queue_try_get().unwrap(), Some((30, 2)));
        assert_eq!(q.queue_try_get().unwrap(), None);
    }

    #[test]
    fn wrong_kind_is_error() {
        let mut q = SyncObj::new(SyncKind::Queue, 1);
        assert!(matches!(q.mutex_lock(T1), Err(SyncError::WrongKind { .. })));
    }
}
