//! The observable event vocabulary delivered to tools.
//!
//! This is the Valgrind "core → skin" boundary: a [`crate::tool::Tool`] sees
//! nothing of the guest program's structure, only this stream of memory
//! accesses, synchronisation operations, thread lifecycle events, heap
//! traffic and client requests. All detector algorithms in the workspace
//! are pure consumers of this stream.

use crate::ir::{SrcLoc, SyncKind};
use crate::util::Symbol;

/// Guest thread id. The main thread is always `ThreadId(0)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

impl ThreadId {
    pub const MAIN: ThreadId = ThreadId(0);
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Guest synchronisation object id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SyncId(pub u32);

impl SyncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Kind of a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    Read,
    Write,
    /// `LOCK`-prefixed read-modify-write: atomic on real x86 hardware by
    /// virtue of the bus lock (§4.2.2 of the paper).
    AtomicRmw,
}

impl AccessKind {
    /// Does this access modify memory?
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// Acquisition mode for locks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AcqMode {
    /// Exclusive: mutex lock or rwlock write-lock.
    Exclusive,
    /// Shared: rwlock read-lock.
    Shared,
}

/// Client requests as seen by tools (arguments already evaluated).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientEv {
    /// `VALGRIND_HG_DESTRUCT(addr, size)` — Fig 4 of the paper.
    HgDestruct { addr: u64, size: u64 },
    /// Reset shadow state of a range.
    HgCleanMemory { addr: u64, size: u64 },
    /// Free-form marker.
    Label(Symbol),
}

/// An observable event. Every variant carries the acting thread and, where
/// meaningful, the guest source location of the triggering statement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// A data memory access.
    Access { tid: ThreadId, addr: u64, size: u8, kind: AccessKind, loc: SrcLoc },
    /// A lock was acquired (mutex lock, rwlock rd/wr lock, and the mutex
    /// re-acquisition on return from `cond_wait`).
    Acquire { tid: ThreadId, sync: SyncId, kind: SyncKind, mode: AcqMode, loc: SrcLoc },
    /// A lock was released (mutex unlock, rwlock unlock, and the mutex
    /// release inside `cond_wait`).
    Release { tid: ThreadId, sync: SyncId, kind: SyncKind, loc: SrcLoc },
    /// `parent` created `child` (pthread_create).
    ThreadCreate { parent: ThreadId, child: ThreadId, loc: SrcLoc },
    /// `joiner` observed `joined` terminate (pthread_join return).
    ThreadJoin { joiner: ThreadId, joined: ThreadId, loc: SrcLoc },
    /// A thread ran to completion.
    ThreadExit { tid: ThreadId },
    /// Guest heap allocation.
    Alloc { tid: ThreadId, addr: u64, size: u64, loc: SrcLoc },
    /// Guest heap release.
    Free { tid: ThreadId, addr: u64, size: u64, loc: SrcLoc },
    /// `pthread_cond_signal` / `_broadcast`.
    CondSignal { tid: ThreadId, sync: SyncId, broadcast: bool, loc: SrcLoc },
    /// A waiter woke up from `cond_wait` due to `signaler`'s signal. Emitted
    /// before the mutex re-acquisition `Acquire`.
    CondWake { tid: ThreadId, sync: SyncId, signaler: ThreadId, loc: SrcLoc },
    /// Semaphore post.
    SemPost { tid: ThreadId, sync: SyncId, loc: SrcLoc },
    /// Semaphore wait completed (count successfully decremented).
    SemAcquired { tid: ThreadId, sync: SyncId, loc: SrcLoc },
    /// A value was enqueued. `token` identifies the message instance so a
    /// tool can pair this put with the matching [`Event::QueueGot`] — the
    /// higher-level hand-off edge of Fig 11 / §5 future work.
    QueuePut { tid: ThreadId, sync: SyncId, token: u64, loc: SrcLoc },
    /// A value was dequeued; `token` matches the producing `QueuePut`.
    QueueGot { tid: ThreadId, sync: SyncId, token: u64, loc: SrcLoc },
    /// A client request from the guest (annotation channel).
    Client { tid: ThreadId, req: ClientEv, loc: SrcLoc },
}

impl Event {
    /// The acting thread of this event.
    pub fn tid(&self) -> ThreadId {
        match *self {
            Event::Access { tid, .. }
            | Event::Acquire { tid, .. }
            | Event::Release { tid, .. }
            | Event::ThreadExit { tid }
            | Event::Alloc { tid, .. }
            | Event::Free { tid, .. }
            | Event::CondSignal { tid, .. }
            | Event::CondWake { tid, .. }
            | Event::SemPost { tid, .. }
            | Event::SemAcquired { tid, .. }
            | Event::QueuePut { tid, .. }
            | Event::QueueGot { tid, .. }
            | Event::Client { tid, .. } => tid,
            Event::ThreadCreate { parent, .. } => parent,
            Event::ThreadJoin { joiner, .. } => joiner,
        }
    }

    /// The source location, if the event has one.
    pub fn loc(&self) -> Option<SrcLoc> {
        match *self {
            Event::Access { loc, .. }
            | Event::Acquire { loc, .. }
            | Event::Release { loc, .. }
            | Event::ThreadCreate { loc, .. }
            | Event::ThreadJoin { loc, .. }
            | Event::Alloc { loc, .. }
            | Event::Free { loc, .. }
            | Event::CondSignal { loc, .. }
            | Event::CondWake { loc, .. }
            | Event::SemPost { loc, .. }
            | Event::SemAcquired { loc, .. }
            | Event::QueuePut { loc, .. }
            | Event::QueueGot { loc, .. }
            | Event::Client { loc, .. } => Some(loc),
            Event::ThreadExit { .. } => None,
        }
    }

    /// Short, stable name of the event kind (used in traces and stats).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Access { kind: AccessKind::Read, .. } => "read",
            Event::Access { kind: AccessKind::Write, .. } => "write",
            Event::Access { kind: AccessKind::AtomicRmw, .. } => "atomic-rmw",
            Event::Acquire { .. } => "acquire",
            Event::Release { .. } => "release",
            Event::ThreadCreate { .. } => "thread-create",
            Event::ThreadJoin { .. } => "thread-join",
            Event::ThreadExit { .. } => "thread-exit",
            Event::Alloc { .. } => "alloc",
            Event::Free { .. } => "free",
            Event::CondSignal { .. } => "cond-signal",
            Event::CondWake { .. } => "cond-wake",
            Event::SemPost { .. } => "sem-post",
            Event::SemAcquired { .. } => "sem-acquired",
            Event::QueuePut { .. } => "queue-put",
            Event::QueueGot { .. } => "queue-got",
            Event::Client { .. } => "client-request",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_is_write() {
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::AtomicRmw.is_write());
    }

    #[test]
    fn event_tid_extraction() {
        let ev =
            Event::ThreadCreate { parent: ThreadId(1), child: ThreadId(2), loc: SrcLoc::UNKNOWN };
        assert_eq!(ev.tid(), ThreadId(1));
        let ev = Event::ThreadExit { tid: ThreadId(3) };
        assert_eq!(ev.tid(), ThreadId(3));
        assert_eq!(ev.loc(), None);
    }

    #[test]
    fn kind_names_distinguish_access_kinds() {
        let mk =
            |kind| Event::Access { tid: ThreadId(0), addr: 0, size: 8, kind, loc: SrcLoc::UNKNOWN };
        assert_eq!(mk(AccessKind::Read).kind_name(), "read");
        assert_eq!(mk(AccessKind::Write).kind_name(), "write");
        assert_eq!(mk(AccessKind::AtomicRmw).kind_name(), "atomic-rmw");
    }
}
