//! Deterministic fault injection: the chaos layer of §3.3.
//!
//! The paper validated its tracer against a long-lived, *faulty* SIP proxy
//! under SIPp load; this module lets us do the same to our own detectors
//! without a real network. A seeded [`FaultPlan`] drives a [`FaultInjector`]
//! that the VM consults at well-defined points:
//!
//! * **Spurious condvar wakeups** — POSIX permits `pthread_cond_wait` to
//!   return without a matching signal; we unpark a waiter at random.
//! * **Lock acquisition failures** — models `trylock`/timed-lock timeouts:
//!   the acquire fails even though the lock is free and the thread retries.
//! * **Allocation failures** — `new` returns null; the guest's (usually
//!   missing) error path runs.
//! * **Abrupt thread death** — a thread dies mid-critical-section, leaking
//!   every lock it holds and every block it allocated.
//!
//! All decisions come from a private [`SplitMix64`] stream seeded by the
//! plan, so a run is exactly reproducible given `(program, scheduler,
//! options, plan)` — the repo-wide determinism invariant extended to chaos.

use crate::sched::SplitMix64;

/// The injectable fault classes (the taxonomy of DESIGN §7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    SpuriousWakeup,
    LockFail,
    AllocFail,
    ThreadKill,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SpuriousWakeup => "spurious-wakeup",
            FaultKind::LockFail => "lock-fail",
            FaultKind::AllocFail => "alloc-fail",
            FaultKind::ThreadKill => "thread-kill",
        }
    }
}

/// A seeded fault schedule: per-mille rates for each fault class.
///
/// Rates are in `0..=1000` (probability per opportunity). `max_kills`
/// bounds thread deaths so chaos runs keep enough threads alive to be
/// interesting; kills never target the main thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub wakeup_permille: u32,
    pub lockfail_permille: u32,
    pub allocfail_permille: u32,
    pub kill_permille: u32,
    pub max_kills: u32,
}

impl FaultPlan {
    /// All channels off. Attaching this plan still exercises the hook path
    /// (the "enabled-but-no-op" configuration the overhead bench measures).
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            wakeup_permille: 0,
            lockfail_permille: 0,
            allocfail_permille: 0,
            kill_permille: 0,
            max_kills: 0,
        }
    }

    /// Derive a plan from a sweep seed. Rates are kept low enough that
    /// lock-retry livelock cannot outrun the VM's fuel budget, so every
    /// derived plan terminates with a structured [`crate::vm::Termination`].
    pub fn from_seed(seed: u64) -> Self {
        let mut r = SplitMix64::new(seed ^ 0x000F_A017_5EED);
        let wakeup_permille = (r.next_u64() % 26) as u32;
        let lockfail_permille = (r.next_u64() % 26) as u32;
        let allocfail_permille = (r.next_u64() % 11) as u32;
        // The kill knobs are sampled jointly: a rate without a cap (or a
        // cap without a rate) is a dead knob that silently disarms the
        // kill path, so the sampler never produces one — a sampled plan
        // with `kill_permille > 0` always has `max_kills > 0`.
        let kill_permille = (r.next_u64() % 6) as u32;
        let max_kills = if kill_permille == 0 { 0 } else { 1 + (r.next_u64() % 2) as u32 };
        FaultPlan {
            seed,
            wakeup_permille,
            lockfail_permille,
            allocfail_permille,
            kill_permille,
            max_kills,
        }
    }

    /// Canonical form of the kill knobs: `kill_permille` and `max_kills`
    /// arm and disarm together. If either is zero the pair can never fire
    /// — a rate with no cap, or a cap with no rate — so both are zeroed,
    /// keeping `Debug` output and downstream accounting honest about the
    /// kill path being dead.
    pub fn normalized(mut self) -> Self {
        if self.kill_permille == 0 || self.max_kills == 0 {
            self.kill_permille = 0;
            self.max_kills = 0;
        }
        self
    }

    /// True if no channel can ever fire. The kill channel is dead when
    /// *either* knob is zero (see [`Self::normalized`]), not only when
    /// both are.
    pub fn is_noop(&self) -> bool {
        self.wakeup_permille == 0
            && self.lockfail_permille == 0
            && self.allocfail_permille == 0
            && (self.kill_permille == 0 || self.max_kills == 0)
    }

    /// Parse a CLI spec like
    /// `seed=0xC0FFEE,wakeup=10,lockfail=5,allocfail=2,kill=1,max-kills=2`.
    /// Unspecified rates default to 0; rates are clamped to `0..=1000`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::disabled();
        let mut kill_rate_set = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{part}` is not key=value"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "seed" => plan.seed = parse_u64(value)?,
                "wakeup" => plan.wakeup_permille = parse_rate(value)?,
                "lockfail" => plan.lockfail_permille = parse_rate(value)?,
                "allocfail" => plan.allocfail_permille = parse_rate(value)?,
                "kill" => {
                    plan.kill_permille = parse_rate(value)?;
                    kill_rate_set = true;
                }
                "max-kills" | "maxkills" => {
                    plan.max_kills = parse_u64(value)? as u32;
                }
                other => {
                    return Err(format!(
                        "unknown fault spec key `{other}` \
                         (expected seed|wakeup|lockfail|allocfail|kill|max-kills)"
                    ));
                }
            }
        }
        // `kill=N` without an explicit cap means "kill at most one thread".
        if kill_rate_set && plan.kill_permille > 0 && plan.max_kills == 0 {
            plan.max_kills = 1;
        }
        Ok(plan.normalized())
    }
}

/// Parse a decimal or `0x`-prefixed hex u64 (seeds like `0xC0FFEE`).
pub fn parse_u64(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        s.replace('_', "").parse()
    };
    parsed.map_err(|_| format!("`{s}` is not a valid number"))
}

fn parse_rate(s: &str) -> Result<u32, String> {
    let v = parse_u64(s)?;
    if v > 1000 {
        return Err(format!("rate `{s}` out of range (permille, 0..=1000)"));
    }
    Ok(v as u32)
}

/// Counters for faults actually injected during a run, plus what the last
/// thread kill left behind (the "locks leaked, memory unreleased" evidence).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub spurious_wakeups: u64,
    pub lock_failures: u64,
    pub alloc_failures: u64,
    pub kills: u64,
    /// Locks still held by killed threads.
    pub leaked_locks: u64,
    /// Heap bytes allocated by killed threads and never freed.
    pub leaked_bytes: u64,
}

impl FaultStats {
    pub fn total(&self) -> u64 {
        self.spurious_wakeups + self.lock_failures + self.alloc_failures + self.kills
    }
}

/// The runtime half: owns the RNG stream and the injected-fault counters.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    pub stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, rng: SplitMix64::new(plan.seed), stats: FaultStats::default() }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Should this lock acquisition spuriously fail (timed-lock timeout)?
    pub fn should_fail_lock(&mut self) -> bool {
        let fire = self.rng.chance(self.plan.lockfail_permille);
        if fire {
            self.stats.lock_failures += 1;
        }
        fire
    }

    /// Should this allocation return null?
    pub fn should_fail_alloc(&mut self) -> bool {
        let fire = self.rng.chance(self.plan.allocfail_permille);
        if fire {
            self.stats.alloc_failures += 1;
        }
        fire
    }

    /// Should a condvar waiter wake without a signal this slot?
    pub fn should_spurious_wakeup(&mut self) -> bool {
        let fire = self.rng.chance(self.plan.wakeup_permille);
        if fire {
            self.stats.spurious_wakeups += 1;
        }
        fire
    }

    /// Should the scheduled thread die abruptly this slot? Respects
    /// `max_kills`; the caller is responsible for sparing the main thread.
    pub fn should_kill(&mut self) -> bool {
        if self.stats.kills >= self.plan.max_kills as u64 {
            return false;
        }
        let fire = self.rng.chance(self.plan.kill_permille);
        if fire {
            self.stats.kills += 1;
        }
        fire
    }

    /// Deterministic pick among `n` candidates (e.g. which waiter wakes).
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.pick(n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p =
            FaultPlan::parse("seed=0xC0FFEE,wakeup=10,lockfail=5,allocfail=2,kill=1,max-kills=2")
                .unwrap();
        assert_eq!(p.seed, 0xC0FFEE);
        assert_eq!(p.wakeup_permille, 10);
        assert_eq!(p.lockfail_permille, 5);
        assert_eq!(p.allocfail_permille, 2);
        assert_eq!(p.kill_permille, 1);
        assert_eq!(p.max_kills, 2);
        assert!(!p.is_noop());
    }

    #[test]
    fn parse_kill_without_cap_defaults_to_one() {
        let p = FaultPlan::parse("kill=5").unwrap();
        assert_eq!(p.max_kills, 1);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("wakeup").is_err());
        assert!(FaultPlan::parse("wakeup=1001").is_err());
        assert!(FaultPlan::parse("seed=zzz").is_err());
    }

    #[test]
    fn parse_empty_spec_is_noop() {
        let p = FaultPlan::parse("").unwrap();
        assert!(p.is_noop());
        assert_eq!(p, FaultPlan::disabled());
    }

    #[test]
    fn from_seed_is_deterministic_and_bounded() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            assert!(a.wakeup_permille <= 25);
            assert!(a.lockfail_permille <= 25);
            assert!(a.allocfail_permille <= 10);
            assert!(a.kill_permille <= 5);
            assert!(a.max_kills <= 2);
        }
        assert_ne!(FaultPlan::from_seed(1), FaultPlan::from_seed(2));
    }

    #[test]
    fn sampled_kill_knobs_are_coherent() {
        // The dead-knob bug: independent sampling used to produce
        // `kill_permille > 0` with `max_kills == 0` (silently disarmed)
        // and vice versa. The sampler must never emit either shape.
        let mut armed = 0;
        for seed in 0..512u64 {
            let p = FaultPlan::from_seed(seed);
            assert_eq!(
                p.kill_permille == 0,
                p.max_kills == 0,
                "seed {seed}: incoherent kill knobs {p:?}"
            );
            assert_eq!(p, p.normalized(), "sampled plans are already canonical");
            if p.kill_permille > 0 {
                armed += 1;
            }
        }
        // The sweep still exercises both armed and disarmed kill paths.
        assert!(armed > 0 && armed < 512, "{armed}/512 armed");
    }

    #[test]
    fn normalized_zeroes_dead_kill_knobs() {
        let rate_no_cap =
            FaultPlan { seed: 1, kill_permille: 5, max_kills: 0, ..FaultPlan::disabled() };
        let n = rate_no_cap.normalized();
        assert_eq!((n.kill_permille, n.max_kills), (0, 0));
        let cap_no_rate =
            FaultPlan { seed: 1, kill_permille: 0, max_kills: 3, ..FaultPlan::disabled() };
        let n = cap_no_rate.normalized();
        assert_eq!((n.kill_permille, n.max_kills), (0, 0));
        let armed = FaultPlan { seed: 1, kill_permille: 5, max_kills: 3, ..FaultPlan::disabled() };
        assert_eq!(armed.normalized(), armed);
    }

    #[test]
    fn parse_normalizes_dead_kill_cap() {
        // A cap without a rate parses, but comes back canonicalized.
        let p = FaultPlan::parse("max-kills=4").unwrap();
        assert_eq!((p.kill_permille, p.max_kills), (0, 0));
        assert!(p.is_noop());
    }

    #[test]
    fn injector_streams_are_reproducible() {
        let plan = FaultPlan::from_seed(7);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        let da: Vec<bool> = (0..256).map(|_| a.should_fail_lock()).collect();
        let db: Vec<bool> = (0..256).map(|_| b.should_fail_lock()).collect();
        assert_eq!(da, db);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn max_kills_is_respected() {
        let plan =
            FaultPlan { seed: 3, kill_permille: 1000, max_kills: 2, ..FaultPlan::disabled() };
        let mut inj = FaultInjector::new(plan);
        let kills = (0..100).filter(|_| inj.should_kill()).count();
        assert_eq!(kills, 2);
        assert_eq!(inj.stats.kills, 2);
    }

    #[test]
    fn disabled_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::disabled());
        for _ in 0..100 {
            assert!(!inj.should_fail_lock());
            assert!(!inj.should_fail_alloc());
            assert!(!inj.should_spurious_wakeup());
            assert!(!inj.should_kill());
        }
        assert_eq!(inj.stats.total(), 0);
    }

    #[test]
    fn parse_u64_accepts_hex_and_underscores() {
        assert_eq!(parse_u64("0xC0FFEE").unwrap(), 0xC0FFEE);
        assert_eq!(parse_u64("1_000").unwrap(), 1000);
        assert!(parse_u64("").is_err());
    }
}
