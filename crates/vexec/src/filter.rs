//! Redundant-access filter cache: elide exact repeat accesses between
//! synchronization points, before `on_event` dispatch.
//!
//! ThreadSanitizer and Helgrind both keep a small per-address cache in
//! front of their instrumentation so that the common case — the same code
//! re-reading the same variable with no intervening synchronization — does
//! not pay full shadow-memory price every time. This module is that cache
//! for the VM's tool chain, with one crucial difference: TSan's filter is
//! *lossy* (it may drop accesses that would have changed which report is
//! printed first), while ours is required to be **report-preserving**:
//! filtered and unfiltered runs must produce byte-identical reports for
//! every engine configuration. That stronger contract dictates the elision
//! rule.
//!
//! ## What may be elided
//!
//! A plain (non-atomic) access is elided only when the slot for its granule
//! holds an entry with the **exact same** `(granule, tid, kind, loc)` and
//! both the acting thread's sync epoch and the global epoch are unchanged.
//! Exact match — not the weaker "kind ≤ cached kind" rule of lossy filters
//! — because the lockset engine records the last access's `(tid, kind,
//! loc)` per granule and renders it in *future* race reports ("This
//! conflicts with a previous write by thread N at file:line"); eliding a
//! read after a cached write (or a repeat at a different source line)
//! would leave that metadata stale and change report bytes long after the
//! elision. Under an exact match, re-processing the event is a state
//! transition no-op for every engine:
//!
//! * **Eraser/lockset**: the state machine's transition for an identical
//!   repeat is idempotent (lockset intersection is idempotent, the
//!   `reported` latch only latches once) and `last = (tid, kind, loc)` is
//!   rewritten with the identical value.
//! * **Happens-before**: thread vector clocks advance only on sync events,
//!   so the repeat carries the same epoch; `last_write`/read-state updates
//!   rewrite identical values, and any conflict it would re-raise has the
//!   same `(kind, loc)` and is deduplicated by the report sink in the
//!   unfiltered run too.
//!
//! ## What invalidates
//!
//! * Any **forwarded access** to a granule overwrites (or, for multi-
//!   granule and atomic accesses, clears) that granule's slot — so a
//!   cross-thread access between two repeats always forces the repeat
//!   through. The slots are shared across threads for exactly this reason.
//! * Any **sync event** (acquire/release, cond, sem, queue, atomic RMW)
//!   bumps the *acting thread's* epoch: its locksets or vector clock
//!   changed, so its cached entries are stale. Other threads' entries
//!   survive — their analysis state is untouched by a foreign sync op.
//! * **Alloc/free/client requests and thread lifecycle** events bump the
//!   *global* epoch: they can reset shadow state for address ranges (or
//!   retire segments) without touching the corresponding slots.
//!
//! The cache requires its granule to be ≥ the engine's shadow granule
//! (both are 8 for every shipped configuration): a slot must be
//! invalidated by *every* access that can touch the shadow state its
//! cached access depends on.

use crate::event::{AccessKind, Event, ThreadId};
use crate::ir::SrcLoc;
use crate::tool::Tool;
use crate::vm::{GuestError, VmView};

/// Number of slots in the direct-mapped cache. Power of two.
pub const FILTER_SLOTS: usize = 512;

/// Default filter granule (bytes). Matches the detectors' shadow granule.
pub const FILTER_GRANULE: u64 = 8;

#[derive(Clone, Copy, Debug)]
struct Slot {
    granule: u64,
    tid: ThreadId,
    kind: AccessKind,
    loc: SrcLoc,
    /// Value of `thread_epochs[tid]` when the entry was stored.
    tepoch: u64,
    /// Value of the global epoch when the entry was stored; 0 = invalid.
    gepoch: u64,
}

const EMPTY_SLOT: Slot = Slot {
    granule: 0,
    tid: ThreadId(u32::MAX),
    kind: AccessKind::Read,
    loc: SrcLoc::UNKNOWN,
    tepoch: 0,
    gepoch: 0,
};

/// Counters the filter keeps about its own effectiveness; surfaced by
/// `raceline check --stats` (stderr only — never part of report stdout).
#[derive(Clone, Copy, Debug, Default)]
pub struct FilterStats {
    /// Events of any kind offered to the filter.
    pub events: u64,
    /// Plain single-granule accesses that were candidates for elision.
    pub candidates: u64,
    /// Candidates elided (cache hits). Never forwarded to the tool chain.
    pub elided: u64,
    /// Sync events that bumped a thread epoch.
    pub thread_epoch_bumps: u64,
    /// Events that bumped the global epoch.
    pub global_epoch_bumps: u64,
}

impl FilterStats {
    /// Fraction of candidate accesses elided.
    pub fn hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.elided as f64 / self.candidates as f64
        }
    }

    /// Fraction of *all* events elided (what the tool chain never saw).
    pub fn elided_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.elided as f64 / self.events as f64
        }
    }

    /// Events actually forwarded to the wrapped tool.
    pub fn forwarded(&self) -> u64 {
        self.events - self.elided
    }
}

/// The cache proper, independent of any wrapped tool. [`FilterTool`] is the
/// [`Tool`] adapter around it.
#[derive(Clone, Debug)]
pub struct FilterCache {
    slots: Vec<Slot>,
    thread_epochs: Vec<u64>,
    global_epoch: u64,
    granule: u64,
    pub stats: FilterStats,
}

impl Default for FilterCache {
    fn default() -> Self {
        Self::new(FILTER_GRANULE)
    }
}

impl FilterCache {
    /// Create a cache for a given granule (bytes; power of two, ≥ the
    /// engine shadow granule of every detector that will consume the
    /// filtered stream).
    pub fn new(granule: u64) -> Self {
        assert!(granule.is_power_of_two(), "filter granule must be a power of two");
        FilterCache {
            slots: vec![EMPTY_SLOT; FILTER_SLOTS],
            thread_epochs: Vec::new(),
            global_epoch: 1,
            granule,
            stats: FilterStats::default(),
        }
    }

    #[inline]
    fn slot_index(&self, granule: u64) -> usize {
        let g = granule / self.granule;
        (g ^ (g >> 9)) as usize & (FILTER_SLOTS - 1)
    }

    #[inline]
    fn thread_epoch(&mut self, tid: ThreadId) -> u64 {
        let i = tid.index();
        if i >= self.thread_epochs.len() {
            self.thread_epochs.resize(i + 1, 1);
        }
        self.thread_epochs[i]
    }

    fn bump_thread(&mut self, tid: ThreadId) {
        let i = tid.index();
        if i >= self.thread_epochs.len() {
            self.thread_epochs.resize(i + 1, 1);
        }
        self.thread_epochs[i] += 1;
        self.stats.thread_epoch_bumps += 1;
    }

    fn bump_global(&mut self) {
        self.global_epoch += 1;
        self.stats.global_epoch_bumps += 1;
    }

    /// Clear the slots of every granule in `[addr, addr + size)`.
    fn clear_range(&mut self, addr: u64, size: u64) {
        let size = size.max(1);
        let first = addr & !(self.granule - 1);
        let last = (addr + size - 1) & !(self.granule - 1);
        let mut g = first;
        loop {
            let idx = self.slot_index(g);
            if self.slots[idx].gepoch != 0 {
                self.slots[idx] = EMPTY_SLOT;
            }
            if g >= last {
                break;
            }
            g += self.granule;
        }
    }

    /// Offer one event. Returns `true` when the event is redundant and must
    /// NOT be forwarded to the tool chain.
    pub fn filter(&mut self, ev: &Event) -> bool {
        self.stats.events += 1;
        match *ev {
            Event::Access { tid, addr, size, kind, loc } => {
                if kind == AccessKind::AtomicRmw {
                    // An RMW both touches shadow state (it is a write) and
                    // advances the thread's vector clock under the bus-lock
                    // model: never cacheable, and everything the thread
                    // cached is stale.
                    self.clear_range(addr, size as u64);
                    self.bump_thread(tid);
                    return false;
                }
                let size = size.max(1) as u64;
                let first = addr & !(self.granule - 1);
                let last = (addr + size - 1) & !(self.granule - 1);
                if first != last {
                    // Straddling access: forward, and drop every covered
                    // slot so a stale single-granule entry cannot survive
                    // the shadow transitions this access performs.
                    self.clear_range(addr, size);
                    return false;
                }
                self.stats.candidates += 1;
                let tepoch = self.thread_epoch(tid);
                let idx = self.slot_index(first);
                let slot = &self.slots[idx];
                if slot.gepoch == self.global_epoch
                    && slot.tepoch == tepoch
                    && slot.granule == first
                    && slot.tid == tid
                    && slot.kind == kind
                    && slot.loc == loc
                {
                    self.stats.elided += 1;
                    return true;
                }
                self.slots[idx] =
                    Slot { granule: first, tid, kind, loc, tepoch, gepoch: self.global_epoch };
                false
            }
            // Sync operations change only the acting thread's locksets /
            // vector clock; entries cached by other threads stay valid.
            Event::Acquire { tid, .. }
            | Event::Release { tid, .. }
            | Event::CondSignal { tid, .. }
            | Event::CondWake { tid, .. }
            | Event::SemPost { tid, .. }
            | Event::SemAcquired { tid, .. }
            | Event::QueuePut { tid, .. }
            | Event::QueueGot { tid, .. } => {
                self.bump_thread(tid);
                false
            }
            // Heap traffic and client requests can reset shadow state for
            // whole address ranges; thread lifecycle retires segments and
            // seeds clocks. All are rare: drop everything.
            Event::Alloc { .. }
            | Event::Free { .. }
            | Event::Client { .. }
            | Event::ThreadCreate { .. }
            | Event::ThreadJoin { .. }
            | Event::ThreadExit { .. } => {
                self.bump_global();
                false
            }
        }
    }
}

/// [`Tool`] adapter: sits between the VM and `inner`, eliding redundant
/// accesses. `on_guest_fault` and `on_finish` are forwarded verbatim.
pub struct FilterTool<T> {
    inner: T,
    cache: FilterCache,
}

impl<T: Tool> FilterTool<T> {
    pub fn new(inner: T) -> Self {
        FilterTool { inner, cache: FilterCache::default() }
    }

    /// Use a non-default granule (must be ≥ every consumer's shadow
    /// granule).
    pub fn with_granule(inner: T, granule: u64) -> Self {
        FilterTool { inner, cache: FilterCache::new(granule) }
    }

    pub fn stats(&self) -> FilterStats {
        self.cache.stats
    }

    pub fn inner(&self) -> &T {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwrap, returning the inner tool and the filter counters.
    pub fn into_parts(self) -> (T, FilterStats) {
        (self.inner, self.cache.stats)
    }
}

impl<T: Tool> Tool for FilterTool<T> {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        if !self.cache.filter(ev) {
            self.inner.on_event(ev, vm);
        }
    }

    fn on_guest_fault(&mut self, err: &GuestError, vm: &VmView<'_>) {
        self.inner.on_guest_fault(err, vm);
    }

    fn on_finish(&mut self, vm: &VmView<'_>) {
        self.inner.on_finish(vm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::Symbol;

    fn loc(line: u32) -> SrcLoc {
        SrcLoc { file: Symbol(1), line, func: Symbol(2) }
    }

    fn read(tid: u32, addr: u64, line: u32) -> Event {
        Event::Access { tid: ThreadId(tid), addr, size: 8, kind: AccessKind::Read, loc: loc(line) }
    }

    fn write(tid: u32, addr: u64, line: u32) -> Event {
        Event::Access { tid: ThreadId(tid), addr, size: 8, kind: AccessKind::Write, loc: loc(line) }
    }

    #[test]
    fn exact_repeat_is_elided() {
        let mut f = FilterCache::default();
        assert!(!f.filter(&read(1, 0x1000, 5)));
        assert!(f.filter(&read(1, 0x1000, 5)));
        assert!(f.filter(&read(1, 0x1000, 5)));
        assert_eq!(f.stats.elided, 2);
    }

    #[test]
    fn kind_change_is_not_elided() {
        let mut f = FilterCache::default();
        assert!(!f.filter(&write(1, 0x1000, 5)));
        // Read-after-write would be elidable under a lossy "kind ≤" rule;
        // it must pass here because it rewrites the engines' last-access
        // metadata from (write) to (read).
        assert!(!f.filter(&read(1, 0x1000, 5)));
        // ... and the write repeat is stale now too.
        assert!(!f.filter(&write(1, 0x1000, 5)));
    }

    #[test]
    fn loc_change_is_not_elided() {
        let mut f = FilterCache::default();
        assert!(!f.filter(&read(1, 0x1000, 5)));
        assert!(!f.filter(&read(1, 0x1000, 6)));
    }

    #[test]
    fn cross_thread_access_invalidates() {
        let mut f = FilterCache::default();
        assert!(!f.filter(&read(1, 0x1000, 5)));
        assert!(!f.filter(&read(2, 0x1000, 5)), "different tid: must pass");
        assert!(!f.filter(&read(1, 0x1000, 5)), "slot now belongs to thread 2");
    }

    #[test]
    fn own_sync_invalidates_only_that_thread() {
        let mut f = FilterCache::default();
        assert!(!f.filter(&read(1, 0x1000, 5)));
        assert!(!f.filter(&read(2, 0x2000, 7)));
        // Thread 1 releases a lock: its vector clock / lockset changed.
        assert!(!f.filter(&Event::Release {
            tid: ThreadId(1),
            sync: crate::event::SyncId(0),
            kind: crate::ir::SyncKind::Mutex,
            loc: loc(9),
        }));
        assert!(!f.filter(&read(1, 0x1000, 5)), "own epoch bumped");
        assert!(f.filter(&read(2, 0x2000, 7)), "foreign sync must not evict");
    }

    #[test]
    fn alloc_free_bump_global_epoch() {
        let mut f = FilterCache::default();
        for (i, ev) in [
            Event::Alloc { tid: ThreadId(1), addr: 0x8000, size: 16, loc: loc(1) },
            Event::Free { tid: ThreadId(1), addr: 0x8000, size: 16, loc: loc(2) },
        ]
        .into_iter()
        .enumerate()
        {
            // Distinct loc per round so the prime is always a fresh miss.
            let line = 100 + i as u32;
            assert!(!f.filter(&read(2, 0x2000, line)));
            assert!(f.filter(&read(2, 0x2000, line)), "repeat elided before {ev:?}");
            assert!(!f.filter(&ev));
            assert!(!f.filter(&read(2, 0x2000, line)), "global epoch bumped by {ev:?}");
        }
    }

    #[test]
    fn rmw_clears_slot_and_bumps_actor() {
        let mut f = FilterCache::default();
        assert!(!f.filter(&read(1, 0x1000, 5)));
        assert!(!f.filter(&read(2, 0x2000, 7)));
        assert!(!f.filter(&Event::Access {
            tid: ThreadId(1),
            addr: 0x2000,
            size: 8,
            kind: AccessKind::AtomicRmw,
            loc: loc(8),
        }));
        assert!(!f.filter(&read(1, 0x1000, 5)), "RMW actor's epoch bumped");
        assert!(!f.filter(&read(2, 0x2000, 7)), "RMW target granule cleared");
    }

    #[test]
    fn straddling_access_clears_covered_granules() {
        let mut f = FilterCache::default();
        assert!(!f.filter(&read(1, 0x1000, 5)));
        assert!(!f.filter(&read(1, 0x1008, 6)));
        // 4 bytes at 0x1006 covers granules 0x1000 and 0x1008.
        let straddle = Event::Access {
            tid: ThreadId(2),
            addr: 0x1006,
            size: 4,
            kind: AccessKind::Write,
            loc: loc(7),
        };
        assert!(!f.filter(&straddle));
        assert!(!f.filter(&read(1, 0x1000, 5)));
        assert!(!f.filter(&read(1, 0x1008, 6)));
    }

    #[test]
    fn collisions_only_cause_misses() {
        let mut f = FilterCache::default();
        let a = 0x1000u64;
        // Same slot index as `a` (granule number differs by FILTER_SLOTS,
        // below the 2^9 xor-fold).
        let b = a + (FILTER_SLOTS as u64) * FILTER_GRANULE * FILTER_SLOTS as u64;
        assert!(!f.filter(&read(1, a, 5)));
        assert!(f.filter(&read(1, a, 5)));
        assert!(!f.filter(&read(1, b, 5)));
        assert!(!f.filter(&read(1, a, 5)), "evicted by collision, must re-miss");
    }

    #[test]
    fn stats_rates() {
        let mut f = FilterCache::default();
        f.filter(&read(1, 0x1000, 5));
        f.filter(&read(1, 0x1000, 5));
        assert_eq!(f.stats.events, 2);
        assert_eq!(f.stats.candidates, 2);
        assert_eq!(f.stats.elided, 1);
        assert!((f.stats.hit_rate() - 0.5).abs() < 1e-9);
        assert!((f.stats.elided_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(f.stats.forwarded(), 1);
    }
}
