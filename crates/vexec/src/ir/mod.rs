//! Guest-program intermediate representation.
//!
//! Guest programs are what the virtual machine executes in place of the
//! x86 binaries that Valgrind instruments. A [`Program`] is a set of
//! procedures over an unbounded register file, a guest heap, and
//! POSIX-shaped synchronisation objects. The structured form defined here is
//! what builders ([`builder::ProgramBuilder`]) and the `minicpp` compiler
//! produce; it is lowered to a flat bytecode ([`lower::FlatProgram`]) before
//! execution.
//!
//! Every observable statement carries a [`SrcLoc`] — the moral equivalent of
//! the debug info Helgrind uses to print warning locations. Warning counts
//! in the paper are counts of *distinct source locations*, so locations are
//! first-class here.

pub mod builder;
pub mod disasm;
pub mod lower;

use crate::util::{Interner, Symbol};

/// Procedure id within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Virtual register within a procedure frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RegId(pub u16);

/// Global variable id within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GlobalId(pub u32);

/// A source location: file, line, and enclosing function. Interned and
/// `Copy`; this is the unit by which warnings are deduplicated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SrcLoc {
    pub file: Symbol,
    pub line: u32,
    pub func: Symbol,
}

impl SrcLoc {
    /// The unknown location (empty file/function, line 0).
    pub const UNKNOWN: SrcLoc = SrcLoc { file: Symbol::EMPTY, line: 0, func: Symbol::EMPTY };

    /// Render `file:line (func)` using the owning program's interner.
    pub fn display(&self, interner: &Interner) -> String {
        if *self == SrcLoc::UNKNOWN {
            return "<unknown>".to_string();
        }
        format!("{}:{} ({})", interner.resolve(self.file), self.line, interner.resolve(self.func))
    }
}

/// Pure value expression over registers, globals and constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Literal value.
    Const(u64),
    /// Read a register of the current frame.
    Reg(RegId),
    /// Address of a global variable.
    Global(GlobalId),
    /// Wrapping addition.
    Add(Box<Expr>, Box<Expr>),
    /// Wrapping subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Wrapping multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
    /// `reg + constant offset` — the common addressing form.
    pub fn offset(reg: RegId, off: u64) -> Expr {
        if off == 0 {
            Expr::Reg(reg)
        } else {
            Expr::Reg(reg).add(Expr::Const(off))
        }
    }
}

impl From<RegId> for Expr {
    fn from(r: RegId) -> Expr {
        Expr::Reg(r)
    }
}

impl From<u64> for Expr {
    fn from(v: u64) -> Expr {
        Expr::Const(v)
    }
}

impl From<GlobalId> for Expr {
    fn from(g: GlobalId) -> Expr {
        Expr::Global(g)
    }
}

/// Boolean condition over expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    True,
    Eq(Expr, Expr),
    Ne(Expr, Expr),
    Lt(Expr, Expr),
    Le(Expr, Expr),
    Gt(Expr, Expr),
    Ge(Expr, Expr),
}

/// Kinds of guest synchronisation objects (POSIX-shaped).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SyncKind {
    /// `pthread_mutex_t`.
    Mutex,
    /// `pthread_rwlock_t`.
    RwLock,
    /// `pthread_cond_t`.
    CondVar,
    /// Counting semaphore (`sem_t`).
    Semaphore,
    /// Bounded FIFO message queue (the higher-level primitive of §4.2.3 /
    /// Fig 11 — thread-pool hand-off).
    Queue,
}

impl SyncKind {
    pub fn name(&self) -> &'static str {
        match self {
            SyncKind::Mutex => "mutex",
            SyncKind::RwLock => "rwlock",
            SyncKind::CondVar => "condvar",
            SyncKind::Semaphore => "semaphore",
            SyncKind::Queue => "queue",
        }
    }
}

/// Synchronisation operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncOp {
    MutexLock(Expr),
    MutexUnlock(Expr),
    /// Acquire a rwlock in shared (read) mode.
    RwLockRead(Expr),
    /// Acquire a rwlock in exclusive (write) mode.
    RwLockWrite(Expr),
    RwUnlock(Expr),
    /// `pthread_cond_wait(cond, mutex)`: atomically release the mutex and
    /// block; re-acquire before returning.
    CondWait {
        cond: Expr,
        mutex: Expr,
    },
    CondSignal(Expr),
    CondBroadcast(Expr),
    SemWait(Expr),
    SemPost(Expr),
    /// Blocking put of a value into a bounded queue.
    QueuePut {
        queue: Expr,
        value: Expr,
    },
    /// Blocking get; the received value lands in `dst`.
    QueueGet {
        queue: Expr,
        dst: RegId,
    },
}

/// Client requests: the guest-to-tool annotation channel, mirroring
/// Valgrind's `VALGRIND_*` user-space macros (Fig 4 of the paper). Under a
/// VM without an attached tool these are no-ops, exactly as in the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientOp {
    /// `VALGRIND_HG_DESTRUCT(addr, size)`: the object at `addr` is about to
    /// be destroyed by the calling thread; a DR-aware detector marks the
    /// memory exclusively owned by that thread.
    HgDestruct { addr: Expr, size: Expr },
    /// Reset the shadow state of a range to virgin (provided for
    /// completeness; Helgrind exposes a similar request).
    HgCleanMemory { addr: Expr, size: Expr },
    /// Free-form marker visible to tools and tests.
    Label(Symbol),
}

/// Structured statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Silent register assignment.
    Assign {
        dst: RegId,
        value: Expr,
    },
    /// Guest memory read; emits an `Access(Read)` event.
    Load {
        dst: RegId,
        addr: Expr,
        size: u8,
        loc: SrcLoc,
    },
    /// Guest memory write; emits an `Access(Write)` event.
    Store {
        addr: Expr,
        value: Expr,
        size: u8,
        loc: SrcLoc,
    },
    /// `LOCK`-prefixed fetch-and-add (the x86 bus-locked RMW of §3.1/§4.2.2).
    /// Emits a single `Access(AtomicRmw)` event. `dst` receives the old
    /// value if present.
    AtomicRmw {
        dst: Option<RegId>,
        addr: Expr,
        delta: Expr,
        size: u8,
        loc: SrcLoc,
    },
    If {
        cond: Cond,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    While {
        cond: Cond,
        body: Vec<Stmt>,
    },
    /// Execute `body` `times` times; `times` is evaluated once on entry.
    Repeat {
        times: Expr,
        body: Vec<Stmt>,
    },
    Call {
        proc: ProcId,
        args: Vec<Expr>,
        dst: Option<RegId>,
        loc: SrcLoc,
    },
    Return {
        value: Option<Expr>,
    },
    /// Create a thread running `proc(args)`; `dst` receives its handle.
    Spawn {
        proc: ProcId,
        args: Vec<Expr>,
        dst: RegId,
        loc: SrcLoc,
    },
    /// Block until the thread with the given handle exits.
    Join {
        handle: Expr,
        loc: SrcLoc,
    },
    /// Create a synchronisation object; `dst` receives its handle.
    /// `init` is the initial count (semaphore) or capacity (queue).
    NewSync {
        dst: RegId,
        kind: SyncKind,
        init: Expr,
    },
    Sync {
        op: SyncOp,
        loc: SrcLoc,
    },
    /// Guest heap allocation (`operator new` / `malloc`).
    Alloc {
        dst: RegId,
        size: Expr,
        loc: SrcLoc,
    },
    /// Guest heap release (`operator delete` / `free`).
    Free {
        addr: Expr,
        loc: SrcLoc,
    },
    /// Client request (tool annotation).
    Client {
        req: ClientOp,
        loc: SrcLoc,
    },
    /// Voluntary reschedule point.
    Yield,
    /// Guest-level assertion; failure aborts the run with a guest error.
    AssertEq {
        a: Expr,
        b: Expr,
        msg: String,
    },
}

/// Global variable declaration.
#[derive(Clone, Debug)]
pub struct GlobalDecl {
    pub name: Symbol,
    pub size: u64,
}

/// A procedure: `nparams` arguments arrive in registers `0..nparams`.
#[derive(Clone, Debug)]
pub struct Proc {
    pub name: Symbol,
    pub nparams: u16,
    pub nregs: u16,
    pub body: Vec<Stmt>,
}

/// A complete structured guest program.
#[derive(Clone, Debug)]
pub struct Program {
    pub interner: Interner,
    pub procs: Vec<Proc>,
    pub globals: Vec<GlobalDecl>,
    pub entry: ProcId,
}

impl Program {
    /// Lower to flat bytecode for execution.
    pub fn lower(&self) -> lower::FlatProgram {
        lower::lower(self)
    }

    pub fn proc_name(&self, id: ProcId) -> &str {
        self.interner.resolve(self.procs[id.0 as usize].name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_compose() {
        let e = Expr::Const(2).add(Expr::Const(3)).mul(Expr::Const(4));
        match e {
            Expr::Mul(a, b) => {
                assert!(matches!(*a, Expr::Add(_, _)));
                assert_eq!(*b, Expr::Const(4));
            }
            _ => panic!("unexpected shape"),
        }
    }

    #[test]
    fn offset_zero_is_bare_reg() {
        assert_eq!(Expr::offset(RegId(3), 0), Expr::Reg(RegId(3)));
        assert!(matches!(Expr::offset(RegId(3), 8), Expr::Add(_, _)));
    }

    #[test]
    fn srcloc_display() {
        let mut i = Interner::new();
        let loc = SrcLoc { file: i.intern("proxy.cpp"), line: 42, func: i.intern("handle") };
        assert_eq!(loc.display(&i), "proxy.cpp:42 (handle)");
        assert_eq!(SrcLoc::UNKNOWN.display(&i), "<unknown>");
    }
}
