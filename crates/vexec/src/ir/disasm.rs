//! Human-readable disassembly of lowered guest programs — the equivalent
//! of inspecting Valgrind's translated intermediate code. Used by the
//! `raceline` CLI's `--emit-ir` and handy when debugging builders.

use super::lower::{FlatProc, FlatProgram, Op};
use super::{ClientOp, Cond, Expr, SyncOp};
use crate::util::Interner;

fn expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(v) => out.push_str(&format!("{v:#x}")),
        Expr::Reg(r) => out.push_str(&format!("r{}", r.0)),
        Expr::Global(g) => out.push_str(&format!("@g{}", g.0)),
        Expr::Add(a, b) => {
            out.push('(');
            expr(a, out);
            out.push_str(" + ");
            expr(b, out);
            out.push(')');
        }
        Expr::Sub(a, b) => {
            out.push('(');
            expr(a, out);
            out.push_str(" - ");
            expr(b, out);
            out.push(')');
        }
        Expr::Mul(a, b) => {
            out.push('(');
            expr(a, out);
            out.push_str(" * ");
            expr(b, out);
            out.push(')');
        }
    }
}

fn estr(e: &Expr) -> String {
    let mut s = String::new();
    expr(e, &mut s);
    s
}

fn cond(c: &Cond) -> String {
    match c {
        Cond::True => "true".to_string(),
        Cond::Eq(a, b) => format!("{} == {}", estr(a), estr(b)),
        Cond::Ne(a, b) => format!("{} != {}", estr(a), estr(b)),
        Cond::Lt(a, b) => format!("{} < {}", estr(a), estr(b)),
        Cond::Le(a, b) => format!("{} <= {}", estr(a), estr(b)),
        Cond::Gt(a, b) => format!("{} > {}", estr(a), estr(b)),
        Cond::Ge(a, b) => format!("{} >= {}", estr(a), estr(b)),
    }
}

fn sync_op(op: &SyncOp) -> String {
    match op {
        SyncOp::MutexLock(m) => format!("mutex.lock {}", estr(m)),
        SyncOp::MutexUnlock(m) => format!("mutex.unlock {}", estr(m)),
        SyncOp::RwLockRead(m) => format!("rwlock.rdlock {}", estr(m)),
        SyncOp::RwLockWrite(m) => format!("rwlock.wrlock {}", estr(m)),
        SyncOp::RwUnlock(m) => format!("rwlock.unlock {}", estr(m)),
        SyncOp::CondWait { cond, mutex } => {
            format!("cond.wait {}, {}", estr(cond), estr(mutex))
        }
        SyncOp::CondSignal(c) => format!("cond.signal {}", estr(c)),
        SyncOp::CondBroadcast(c) => format!("cond.broadcast {}", estr(c)),
        SyncOp::SemWait(s) => format!("sem.wait {}", estr(s)),
        SyncOp::SemPost(s) => format!("sem.post {}", estr(s)),
        SyncOp::QueuePut { queue, value } => {
            format!("queue.put {}, {}", estr(queue), estr(value))
        }
        SyncOp::QueueGet { queue, dst } => format!("r{} = queue.get {}", dst.0, estr(queue)),
    }
}

fn disasm_op(op: &Op, interner: &Interner) -> String {
    match op {
        Op::Assign { dst, value } => format!("r{} = {}", dst.0, estr(value)),
        Op::Load { dst, addr, size, loc } => {
            format!("r{} = load{}  [{}]    ; {}", dst.0, size, estr(addr), loc.display(interner))
        }
        Op::Store { addr, value, size, loc } => format!(
            "store{} [{}], {}    ; {}",
            size,
            estr(addr),
            estr(value),
            loc.display(interner)
        ),
        Op::AtomicRmw { dst, addr, delta, size, loc } => {
            let d = dst.map(|r| format!("r{} = ", r.0)).unwrap_or_default();
            format!(
                "{d}lock xadd{} [{}], {}    ; {}",
                size,
                estr(addr),
                estr(delta),
                loc.display(interner)
            )
        }
        Op::Jump(t) => format!("jmp {t}"),
        Op::BranchIfFalse { cond: c, target } => {
            format!("br.false ({}) -> {}", cond(c), target)
        }
        Op::Call { proc, args, dst, .. } => {
            let d = dst.map(|r| format!("r{} = ", r.0)).unwrap_or_default();
            let a: Vec<String> = args.iter().map(estr).collect();
            format!("{d}call p{}({})", proc.0, a.join(", "))
        }
        Op::Ret { value } => match value {
            Some(v) => format!("ret {}", estr(v)),
            None => "ret".to_string(),
        },
        Op::Spawn { proc, args, dst, .. } => {
            let a: Vec<String> = args.iter().map(estr).collect();
            format!("r{} = spawn p{}({})", dst.0, proc.0, a.join(", "))
        }
        Op::Join { handle, .. } => format!("join {}", estr(handle)),
        Op::NewSync { dst, kind, init } => {
            format!("r{} = new.{} (init {})", dst.0, kind.name(), estr(init))
        }
        Op::Sync { op, .. } => sync_op(op),
        Op::Alloc { dst, size, .. } => format!("r{} = alloc {}", dst.0, estr(size)),
        Op::Free { addr, .. } => format!("free {}", estr(addr)),
        Op::Client { req, .. } => match req {
            ClientOp::HgDestruct { addr, size } => {
                format!("client HG_DESTRUCT({}, {})", estr(addr), estr(size))
            }
            ClientOp::HgCleanMemory { addr, size } => {
                format!("client HG_CLEAN_MEMORY({}, {})", estr(addr), estr(size))
            }
            ClientOp::Label(sym) => format!("client LABEL({})", interner.resolve(*sym)),
        },
        Op::Yield => "yield".to_string(),
        Op::AssertEq { a, b, msg } => {
            format!("assert {} == {}  ; {:?}", estr(a), estr(b), msg)
        }
    }
}

fn disasm_proc(idx: usize, p: &FlatProc, interner: &Interner) -> String {
    let mut out = format!(
        "proc p{idx} {} (params: {}, regs: {}):\n",
        interner.resolve(p.name),
        p.nparams,
        p.nregs
    );
    for (pc, op) in p.code.iter().enumerate() {
        out.push_str(&format!("  {pc:4}: {}\n", disasm_op(op, interner)));
    }
    out
}

/// Disassemble a whole program.
pub fn disassemble(prog: &FlatProgram) -> String {
    let mut out = String::new();
    for (i, g) in prog.globals.iter().enumerate() {
        out.push_str(&format!(
            "global @g{i} {} ({} bytes)\n",
            prog.interner.resolve(g.name),
            g.size
        ));
    }
    out.push_str(&format!("entry: p{}\n\n", prog.entry.0));
    for (i, p) in prog.procs.iter().enumerate() {
        out.push_str(&disasm_proc(i, p, &prog.interner));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{ProcBuilder, ProgramBuilder};
    use crate::ir::{Cond as ICond, Expr as IExpr, SyncKind, SyncOp as ISyncOp};

    fn demo_program() -> FlatProgram {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("counter", 8);
        let loc = pb.loc("demo.cpp", 3, "worker");
        let mut w = ProcBuilder::new(1);
        w.at(loc);
        let m = w.param(0);
        w.lock(IExpr::Reg(m));
        let v = w.load_new(g, 8);
        w.begin_if(ICond::Lt(IExpr::Reg(v), IExpr::Const(10)));
        w.store(g, IExpr::Reg(v).add(1u64.into()), 8);
        w.end_if();
        w.unlock(IExpr::Reg(m));
        w.atomic_rmw(None, g, 1u64, 8);
        let worker = pb.add_proc("worker", w);
        let mut main = ProcBuilder::new(0);
        main.at(pb.loc("demo.cpp", 10, "main"));
        let mx = main.new_mutex();
        let q = main.new_sync(SyncKind::Queue, 4u64);
        main.sync(ISyncOp::QueuePut { queue: IExpr::Reg(q), value: IExpr::Const(1) });
        let h = main.spawn(worker, vec![IExpr::Reg(mx)]);
        main.join(h);
        let p = main.alloc(32u64);
        main.hg_destruct(p, 32u64);
        main.free(p);
        let main_id = pb.add_proc("main", main);
        pb.set_entry(main_id);
        pb.finish().lower()
    }

    #[test]
    fn disassembly_mentions_every_construct() {
        let text = disassemble(&demo_program());
        for needle in [
            "global @g0 counter (8 bytes)",
            "entry: p1",
            "proc p0 worker",
            "mutex.lock r0",
            "load8",
            "br.false",
            "store8",
            "lock xadd8",
            "new.mutex",
            "new.queue",
            "queue.put",
            "spawn p0",
            "join",
            "alloc",
            "client HG_DESTRUCT",
            "free",
            "demo.cpp:3 (worker)",
            "ret",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn pc_numbering_is_dense() {
        let prog = demo_program();
        let text = disassemble(&prog);
        // Every op of the worker appears with its pc.
        let worker_ops = prog.procs[0].code.len();
        for pc in 0..worker_ops {
            assert!(text.contains(&format!("{pc:4}: ")), "missing pc {pc}");
        }
    }
}
