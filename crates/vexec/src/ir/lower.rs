//! Lowering of the structured IR to a flat bytecode with explicit jumps.
//!
//! The interpreter executes [`FlatProgram`]s: each procedure is a `Vec<Op>`
//! with absolute jump targets, which keeps the per-thread execution state a
//! simple `(proc, pc)` pair per frame. `Repeat` loops get a hidden counter
//! register allocated during lowering.

use super::*;

/// Flat opcode. Mirrors [`Stmt`] minus structured control flow.
#[derive(Clone, Debug)]
pub enum Op {
    Assign {
        dst: RegId,
        value: Expr,
    },
    Load {
        dst: RegId,
        addr: Expr,
        size: u8,
        loc: SrcLoc,
    },
    Store {
        addr: Expr,
        value: Expr,
        size: u8,
        loc: SrcLoc,
    },
    AtomicRmw {
        dst: Option<RegId>,
        addr: Expr,
        delta: Expr,
        size: u8,
        loc: SrcLoc,
    },
    /// Unconditional jump to an absolute pc.
    Jump(u32),
    /// If `cond` is false, jump to `target`; otherwise fall through.
    BranchIfFalse {
        cond: Cond,
        target: u32,
    },
    Call {
        proc: ProcId,
        args: Vec<Expr>,
        dst: Option<RegId>,
        loc: SrcLoc,
    },
    Ret {
        value: Option<Expr>,
    },
    Spawn {
        proc: ProcId,
        args: Vec<Expr>,
        dst: RegId,
        loc: SrcLoc,
    },
    Join {
        handle: Expr,
        loc: SrcLoc,
    },
    NewSync {
        dst: RegId,
        kind: SyncKind,
        init: Expr,
    },
    Sync {
        op: SyncOp,
        loc: SrcLoc,
    },
    Alloc {
        dst: RegId,
        size: Expr,
        loc: SrcLoc,
    },
    Free {
        addr: Expr,
        loc: SrcLoc,
    },
    Client {
        req: ClientOp,
        loc: SrcLoc,
    },
    Yield,
    AssertEq {
        a: Expr,
        b: Expr,
        msg: String,
    },
}

/// A lowered procedure.
#[derive(Clone, Debug)]
pub struct FlatProc {
    pub name: Symbol,
    pub nparams: u16,
    pub nregs: u16,
    pub code: Vec<Op>,
}

/// A lowered, executable program.
#[derive(Clone, Debug)]
pub struct FlatProgram {
    pub interner: Interner,
    pub procs: Vec<FlatProc>,
    pub globals: Vec<GlobalDecl>,
    pub entry: ProcId,
}

impl FlatProgram {
    pub fn proc_name(&self, id: ProcId) -> &str {
        self.interner.resolve(self.procs[id.0 as usize].name)
    }

    /// Total number of ops across all procedures.
    pub fn op_count(&self) -> usize {
        self.procs.iter().map(|p| p.code.len()).sum()
    }
}

/// Lower a structured program.
pub fn lower(prog: &Program) -> FlatProgram {
    let procs = prog
        .procs
        .iter()
        .map(|p| {
            let mut lw = Lowerer { code: Vec::new(), nregs: p.nregs };
            lw.block(&p.body);
            // Implicit return for procedures that fall off the end.
            lw.code.push(Op::Ret { value: None });
            FlatProc { name: p.name, nparams: p.nparams, nregs: lw.nregs, code: lw.code }
        })
        .collect();
    FlatProgram {
        interner: prog.interner.clone(),
        procs,
        globals: prog.globals.clone(),
        entry: prog.entry,
    }
}

struct Lowerer {
    code: Vec<Op>,
    nregs: u16,
}

impl Lowerer {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn fresh_reg(&mut self) -> RegId {
        let r = RegId(self.nregs);
        self.nregs = self.nregs.checked_add(1).expect("register overflow in lowering");
        r
    }

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { dst, value } => {
                self.code.push(Op::Assign { dst: *dst, value: value.clone() })
            }
            Stmt::Load { dst, addr, size, loc } => {
                self.code.push(Op::Load { dst: *dst, addr: addr.clone(), size: *size, loc: *loc })
            }
            Stmt::Store { addr, value, size, loc } => self.code.push(Op::Store {
                addr: addr.clone(),
                value: value.clone(),
                size: *size,
                loc: *loc,
            }),
            Stmt::AtomicRmw { dst, addr, delta, size, loc } => self.code.push(Op::AtomicRmw {
                dst: *dst,
                addr: addr.clone(),
                delta: delta.clone(),
                size: *size,
                loc: *loc,
            }),
            Stmt::If { cond, then_branch, else_branch } => {
                let branch_at = self.pc();
                self.code.push(Op::Jump(0)); // placeholder BranchIfFalse
                self.block(then_branch);
                if else_branch.is_empty() {
                    let after = self.pc();
                    self.code[branch_at as usize] =
                        Op::BranchIfFalse { cond: cond.clone(), target: after };
                } else {
                    let jump_end_at = self.pc();
                    self.code.push(Op::Jump(0)); // placeholder Jump to end
                    let else_start = self.pc();
                    self.code[branch_at as usize] =
                        Op::BranchIfFalse { cond: cond.clone(), target: else_start };
                    self.block(else_branch);
                    let after = self.pc();
                    self.code[jump_end_at as usize] = Op::Jump(after);
                }
            }
            Stmt::While { cond, body } => {
                let head = self.pc();
                let branch_at = self.pc();
                self.code.push(Op::Jump(0)); // placeholder
                self.block(body);
                self.code.push(Op::Jump(head));
                let after = self.pc();
                self.code[branch_at as usize] =
                    Op::BranchIfFalse { cond: cond.clone(), target: after };
            }
            Stmt::Repeat { times, body } => {
                // counter := times; while counter > 0 { body; counter -= 1 }
                let counter = self.fresh_reg();
                self.code.push(Op::Assign { dst: counter, value: times.clone() });
                let head = self.pc();
                let branch_at = self.pc();
                self.code.push(Op::Jump(0)); // placeholder
                self.block(body);
                self.code.push(Op::Assign {
                    dst: counter,
                    value: Expr::Reg(counter).sub(Expr::Const(1)),
                });
                self.code.push(Op::Jump(head));
                let after = self.pc();
                self.code[branch_at as usize] = Op::BranchIfFalse {
                    cond: Cond::Gt(Expr::Reg(counter), Expr::Const(0)),
                    target: after,
                };
            }
            Stmt::Call { proc, args, dst, loc } => {
                self.code.push(Op::Call { proc: *proc, args: args.clone(), dst: *dst, loc: *loc })
            }
            Stmt::Return { value } => self.code.push(Op::Ret { value: value.clone() }),
            Stmt::Spawn { proc, args, dst, loc } => {
                self.code.push(Op::Spawn { proc: *proc, args: args.clone(), dst: *dst, loc: *loc })
            }
            Stmt::Join { handle, loc } => {
                self.code.push(Op::Join { handle: handle.clone(), loc: *loc })
            }
            Stmt::NewSync { dst, kind, init } => {
                self.code.push(Op::NewSync { dst: *dst, kind: *kind, init: init.clone() })
            }
            Stmt::Sync { op, loc } => self.code.push(Op::Sync { op: op.clone(), loc: *loc }),
            Stmt::Alloc { dst, size, loc } => {
                self.code.push(Op::Alloc { dst: *dst, size: size.clone(), loc: *loc })
            }
            Stmt::Free { addr, loc } => self.code.push(Op::Free { addr: addr.clone(), loc: *loc }),
            Stmt::Client { req, loc } => self.code.push(Op::Client { req: req.clone(), loc: *loc }),
            Stmt::Yield => self.code.push(Op::Yield),
            Stmt::AssertEq { a, b, msg } => {
                self.code.push(Op::AssertEq { a: a.clone(), b: b.clone(), msg: msg.clone() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::builder::{ProcBuilder, ProgramBuilder};

    fn lower_single(pb_main: ProcBuilder) -> FlatProgram {
        let mut pb = ProgramBuilder::new();
        let id = pb.add_proc("main", pb_main);
        pb.set_entry(id);
        pb.finish().lower()
    }

    #[test]
    fn straight_line_appends_implicit_ret() {
        let mut m = ProcBuilder::new(0);
        let r = m.reg();
        m.assign(r, 7u64);
        let fp = lower_single(m);
        let code = &fp.procs[0].code;
        assert_eq!(code.len(), 2);
        assert!(matches!(code[1], Op::Ret { value: None }));
    }

    #[test]
    fn if_without_else_branches_past_then() {
        let mut m = ProcBuilder::new(0);
        let r = m.reg();
        m.begin_if(Cond::Eq(Expr::Reg(r), Expr::Const(0)));
        m.assign(r, 1u64);
        m.assign(r, 2u64);
        m.end_if();
        let fp = lower_single(m);
        let code = &fp.procs[0].code;
        match &code[0] {
            Op::BranchIfFalse { target, .. } => assert_eq!(*target, 3),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_else_layout() {
        let mut m = ProcBuilder::new(0);
        let r = m.reg();
        m.begin_if(Cond::True);
        m.assign(r, 1u64);
        m.begin_else();
        m.assign(r, 2u64);
        m.end_if();
        let fp = lower_single(m);
        let code = &fp.procs[0].code;
        // 0: branch-if-false -> 3 (else start)
        // 1: r := 1
        // 2: jump -> 4 (after)
        // 3: r := 2
        // 4: ret
        match &code[0] {
            Op::BranchIfFalse { target, .. } => assert_eq!(*target, 3),
            other => panic!("{other:?}"),
        }
        match &code[2] {
            Op::Jump(t) => assert_eq!(*t, 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_loops_back_to_head() {
        let mut m = ProcBuilder::new(0);
        let r = m.reg();
        m.begin_while(Cond::Lt(Expr::Reg(r), Expr::Const(3)));
        m.assign(r, Expr::Reg(r).add(Expr::Const(1)));
        m.end_while();
        let fp = lower_single(m);
        let code = &fp.procs[0].code;
        // 0: branch-if-false -> 3
        // 1: r := r + 1
        // 2: jump -> 0
        match &code[2] {
            Op::Jump(t) => assert_eq!(*t, 0),
            other => panic!("{other:?}"),
        }
        match &code[0] {
            Op::BranchIfFalse { target, .. } => assert_eq!(*target, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repeat_allocates_hidden_counter() {
        let mut m = ProcBuilder::new(0);
        m.begin_repeat(5u64);
        m.yield_();
        m.end_repeat();
        let nregs_before = 0;
        let fp = lower_single(m);
        assert!(fp.procs[0].nregs > nregs_before);
        // shape: assign counter, branch, yield, decrement, jump, ret
        assert_eq!(fp.procs[0].code.len(), 6);
    }
}
