//! Ergonomic builders for guest programs.
//!
//! [`ProgramBuilder`] owns the interner, globals and procedure table and
//! supports forward declaration (`declare_proc` / `define_proc`) so that
//! procedures may call or spawn procedures defined later. [`ProcBuilder`]
//! accumulates the structured statement tree of one procedure, with a block
//! stack for `if`/`while`/`repeat` and a current-source-location cursor so
//! emit helpers stay terse.

use super::*;

/// Builder for a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    interner: Interner,
    procs: Vec<Option<Proc>>,
    proc_names: Vec<Symbol>,
    globals: Vec<GlobalDecl>,
    entry: Option<ProcId>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        ProgramBuilder {
            interner: Interner::new(),
            procs: Vec::new(),
            proc_names: Vec::new(),
            globals: Vec::new(),
            entry: None,
        }
    }

    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Make a source location.
    pub fn loc(&mut self, file: &str, line: u32, func: &str) -> SrcLoc {
        SrcLoc { file: self.interner.intern(file), line, func: self.interner.intern(func) }
    }

    /// Declare a global variable of `size` bytes.
    pub fn global(&mut self, name: &str, size: u64) -> GlobalId {
        assert!(size > 0, "zero-sized global {name}");
        let name = self.interner.intern(name);
        self.globals.push(GlobalDecl { name, size });
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Forward-declare a procedure so its id can be referenced before its
    /// body exists. The body must be supplied via [`Self::define_proc`].
    pub fn declare_proc(&mut self, name: &str) -> ProcId {
        let sym = self.interner.intern(name);
        self.procs.push(None);
        self.proc_names.push(sym);
        ProcId(self.procs.len() as u32 - 1)
    }

    /// Attach a finished body to a declared procedure.
    pub fn define_proc(&mut self, id: ProcId, pb: ProcBuilder) {
        let slot = &mut self.procs[id.0 as usize];
        assert!(slot.is_none(), "procedure defined twice");
        *slot = Some(pb.finish(self.proc_names[id.0 as usize]));
    }

    /// Declare-and-define in one step.
    pub fn add_proc(&mut self, name: &str, pb: ProcBuilder) -> ProcId {
        let id = self.declare_proc(name);
        self.define_proc(id, pb);
        id
    }

    /// Mark the entry procedure (the guest `main`). It must take no
    /// parameters.
    pub fn set_entry(&mut self, id: ProcId) {
        self.entry = Some(id);
    }

    /// Finish the program. Panics if a declared procedure was never defined
    /// or no entry point was set — both are builder bugs, not runtime
    /// conditions.
    pub fn finish(self) -> Program {
        let entry = self.entry.expect("no entry procedure set");
        let names = self.proc_names;
        let procs: Vec<Proc> = self
            .procs
            .into_iter()
            .enumerate()
            .map(|(i, p)| p.unwrap_or_else(|| panic!("procedure #{i} declared but never defined")))
            .collect();
        assert_eq!(procs.len(), names.len());
        assert_eq!(procs[entry.0 as usize].nparams, 0, "entry procedure must take no parameters");
        Program { interner: self.interner, procs, globals: self.globals, entry }
    }
}

enum BlockKind {
    Top,
    If { cond: Cond, then_done: Option<Vec<Stmt>> },
    While { cond: Cond },
    Repeat { times: Expr },
}

/// Builder for one procedure body.
pub struct ProcBuilder {
    nparams: u16,
    nregs: u16,
    blocks: Vec<(BlockKind, Vec<Stmt>)>,
    cur_loc: SrcLoc,
}

impl ProcBuilder {
    /// Create a builder for a procedure with `nparams` parameters, which
    /// occupy registers `0..nparams`.
    pub fn new(nparams: u16) -> Self {
        ProcBuilder {
            nparams,
            nregs: nparams,
            blocks: vec![(BlockKind::Top, Vec::new())],
            cur_loc: SrcLoc::UNKNOWN,
        }
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> RegId {
        let r = RegId(self.nregs);
        self.nregs = self.nregs.checked_add(1).expect("procedure register file overflow");
        r
    }

    /// The register holding parameter `i`.
    pub fn param(&self, i: u16) -> RegId {
        assert!(i < self.nparams, "parameter index out of range");
        RegId(i)
    }

    /// Set the current source location used by subsequent emit helpers.
    pub fn at(&mut self, loc: SrcLoc) -> &mut Self {
        self.cur_loc = loc;
        self
    }

    /// Current source location.
    pub fn here(&self) -> SrcLoc {
        self.cur_loc
    }

    /// Push a raw statement onto the current block.
    pub fn push(&mut self, stmt: Stmt) {
        self.blocks.last_mut().expect("block stack never empty").1.push(stmt);
    }

    // ---- straight-line helpers (all use the cursor location) ----

    pub fn assign(&mut self, dst: RegId, value: impl Into<Expr>) {
        self.push(Stmt::Assign { dst, value: value.into() });
    }

    /// Allocate a register, assign it, return it.
    pub fn let_(&mut self, value: impl Into<Expr>) -> RegId {
        let r = self.reg();
        self.assign(r, value);
        r
    }

    pub fn load(&mut self, dst: RegId, addr: impl Into<Expr>, size: u8) {
        let loc = self.cur_loc;
        self.push(Stmt::Load { dst, addr: addr.into(), size, loc });
    }

    /// Load into a fresh register.
    pub fn load_new(&mut self, addr: impl Into<Expr>, size: u8) -> RegId {
        let r = self.reg();
        self.load(r, addr, size);
        r
    }

    pub fn store(&mut self, addr: impl Into<Expr>, value: impl Into<Expr>, size: u8) {
        let loc = self.cur_loc;
        self.push(Stmt::Store { addr: addr.into(), value: value.into(), size, loc });
    }

    /// `LOCK`-prefixed fetch-and-add.
    pub fn atomic_rmw(
        &mut self,
        dst: Option<RegId>,
        addr: impl Into<Expr>,
        delta: impl Into<Expr>,
        size: u8,
    ) {
        let loc = self.cur_loc;
        self.push(Stmt::AtomicRmw { dst, addr: addr.into(), delta: delta.into(), size, loc });
    }

    pub fn call(&mut self, proc: ProcId, args: Vec<Expr>, dst: Option<RegId>) {
        let loc = self.cur_loc;
        self.push(Stmt::Call { proc, args, dst, loc });
    }

    pub fn ret(&mut self, value: Option<Expr>) {
        self.push(Stmt::Return { value });
    }

    pub fn spawn(&mut self, proc: ProcId, args: Vec<Expr>) -> RegId {
        let dst = self.reg();
        let loc = self.cur_loc;
        self.push(Stmt::Spawn { proc, args, dst, loc });
        dst
    }

    pub fn join(&mut self, handle: impl Into<Expr>) {
        let loc = self.cur_loc;
        self.push(Stmt::Join { handle: handle.into(), loc });
    }

    pub fn new_sync(&mut self, kind: SyncKind, init: impl Into<Expr>) -> RegId {
        let dst = self.reg();
        self.push(Stmt::NewSync { dst, kind, init: init.into() });
        dst
    }

    pub fn new_mutex(&mut self) -> RegId {
        self.new_sync(SyncKind::Mutex, 0u64)
    }

    pub fn sync(&mut self, op: SyncOp) {
        let loc = self.cur_loc;
        self.push(Stmt::Sync { op, loc });
    }

    pub fn lock(&mut self, m: impl Into<Expr>) {
        self.sync(SyncOp::MutexLock(m.into()));
    }

    pub fn unlock(&mut self, m: impl Into<Expr>) {
        self.sync(SyncOp::MutexUnlock(m.into()));
    }

    pub fn alloc(&mut self, size: impl Into<Expr>) -> RegId {
        let dst = self.reg();
        let loc = self.cur_loc;
        self.push(Stmt::Alloc { dst, size: size.into(), loc });
        dst
    }

    pub fn alloc_into(&mut self, dst: RegId, size: impl Into<Expr>) {
        let loc = self.cur_loc;
        self.push(Stmt::Alloc { dst, size: size.into(), loc });
    }

    pub fn free(&mut self, addr: impl Into<Expr>) {
        let loc = self.cur_loc;
        self.push(Stmt::Free { addr: addr.into(), loc });
    }

    pub fn client(&mut self, req: ClientOp) {
        let loc = self.cur_loc;
        self.push(Stmt::Client { req, loc });
    }

    /// Emit `VALGRIND_HG_DESTRUCT(addr, size)`.
    pub fn hg_destruct(&mut self, addr: impl Into<Expr>, size: impl Into<Expr>) {
        self.client(ClientOp::HgDestruct { addr: addr.into(), size: size.into() });
    }

    pub fn yield_(&mut self) {
        self.push(Stmt::Yield);
    }

    pub fn assert_eq(&mut self, a: impl Into<Expr>, b: impl Into<Expr>, msg: &str) {
        self.push(Stmt::AssertEq { a: a.into(), b: b.into(), msg: msg.to_string() });
    }

    // ---- structured control flow ----

    pub fn begin_if(&mut self, cond: Cond) {
        self.blocks.push((BlockKind::If { cond, then_done: None }, Vec::new()));
    }

    pub fn begin_else(&mut self) {
        let (kind, stmts) = self.blocks.pop().expect("begin_else without begin_if");
        match kind {
            BlockKind::If { cond, then_done: None } => {
                self.blocks.push((BlockKind::If { cond, then_done: Some(stmts) }, Vec::new()));
            }
            _ => panic!("begin_else does not match an open if"),
        }
    }

    pub fn end_if(&mut self) {
        let (kind, stmts) = self.blocks.pop().expect("end_if without begin_if");
        match kind {
            BlockKind::If { cond, then_done: None } => {
                self.push(Stmt::If { cond, then_branch: stmts, else_branch: Vec::new() });
            }
            BlockKind::If { cond, then_done: Some(then_branch) } => {
                self.push(Stmt::If { cond, then_branch, else_branch: stmts });
            }
            _ => panic!("end_if does not match an open if"),
        }
    }

    pub fn begin_while(&mut self, cond: Cond) {
        self.blocks.push((BlockKind::While { cond }, Vec::new()));
    }

    pub fn end_while(&mut self) {
        let (kind, stmts) = self.blocks.pop().expect("end_while without begin_while");
        match kind {
            BlockKind::While { cond } => self.push(Stmt::While { cond, body: stmts }),
            _ => panic!("end_while does not match an open while"),
        }
    }

    pub fn begin_repeat(&mut self, times: impl Into<Expr>) {
        self.blocks.push((BlockKind::Repeat { times: times.into() }, Vec::new()));
    }

    pub fn end_repeat(&mut self) {
        let (kind, stmts) = self.blocks.pop().expect("end_repeat without begin_repeat");
        match kind {
            BlockKind::Repeat { times } => self.push(Stmt::Repeat { times, body: stmts }),
            _ => panic!("end_repeat does not match an open repeat"),
        }
    }

    fn finish(mut self, name: Symbol) -> Proc {
        assert_eq!(self.blocks.len(), 1, "unclosed control-flow block in procedure");
        let (_, body) = self.blocks.pop().unwrap();
        Proc { name, nparams: self.nparams, nregs: self.nregs, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minimal_program() {
        let mut pb = ProgramBuilder::new();
        let mut main = ProcBuilder::new(0);
        let loc = pb.loc("main.cpp", 1, "main");
        main.at(loc);
        let g = pb.global("counter", 8);
        main.store(g, 1u64, 8);
        let main_id = pb.add_proc("main", main);
        pb.set_entry(main_id);
        let prog = pb.finish();
        assert_eq!(prog.procs.len(), 1);
        assert_eq!(prog.proc_name(main_id), "main");
        assert_eq!(prog.globals.len(), 1);
    }

    #[test]
    fn if_else_structure() {
        let mut main = ProcBuilder::new(0);
        let r = main.reg();
        main.begin_if(Cond::Eq(Expr::Reg(r), Expr::Const(0)));
        main.assign(r, 1u64);
        main.begin_else();
        main.assign(r, 2u64);
        main.end_if();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_proc("main", main);
        pb.set_entry(id);
        let prog = pb.finish();
        match &prog.procs[0].body[0] {
            Stmt::If { then_branch, else_branch, .. } => {
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn undefined_proc_panics() {
        let mut pb = ProgramBuilder::new();
        let missing = pb.declare_proc("missing");
        let mut main = ProcBuilder::new(0);
        main.call(missing, vec![], None);
        let id = pb.add_proc("main", main);
        pb.set_entry(id);
        let _ = pb.finish();
    }

    #[test]
    #[should_panic(expected = "unclosed control-flow block")]
    fn unclosed_block_panics() {
        let mut main = ProcBuilder::new(0);
        main.begin_while(Cond::True);
        let mut pb = ProgramBuilder::new();
        pb.add_proc("main", main);
    }

    #[test]
    fn params_occupy_low_registers() {
        let mut p = ProcBuilder::new(2);
        assert_eq!(p.param(0), RegId(0));
        assert_eq!(p.param(1), RegId(1));
        assert_eq!(p.reg(), RegId(2));
    }
}
