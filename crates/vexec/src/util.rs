//! Small shared utilities: a fast non-cryptographic hasher for dense integer
//! keys (the per-access hot path of every detector), and a string interner
//! used for source locations and symbol names.
//!
//! The hasher is the well-known `FxHash` mixing function (as used by rustc);
//! it is reimplemented here in ~20 lines rather than pulling in an extra
//! dependency, per the workspace's restricted dependency policy.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `FxHash`-style hasher: multiply-and-rotate mixing, very fast for small
/// integer-like keys. Not HashDoS resistant; all keys in this workspace are
/// program-internal dense ids, never attacker-controlled.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Interned string handle. Cheap to copy and compare; resolved back to text
/// through the [`Interner`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The empty string, pre-interned in every [`Interner`].
    pub const EMPTY: Symbol = Symbol(0);
}

/// Append-only string interner. Index 0 is always the empty string.
#[derive(Debug, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: FxHashMap<Box<str>, u32>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    pub fn new() -> Self {
        let mut i = Interner { strings: Vec::new(), lookup: FxHashMap::default() };
        i.intern("");
        i
    }

    /// Intern a string, returning a stable [`Symbol`].
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.lookup.get(s) {
            return Symbol(id);
        }
        let id = self.strings.len() as u32;
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, id);
        Symbol(id)
    }

    /// Resolve a symbol back to its text. Panics on a foreign symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        // Never empty: the empty string is pre-interned.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_roundtrip() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("world");
        let a2 = i.intern("hello");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "hello");
        assert_eq!(i.resolve(b), "world");
    }

    #[test]
    fn interner_empty_is_symbol_zero() {
        let mut i = Interner::new();
        assert_eq!(i.intern(""), Symbol::EMPTY);
        assert_eq!(i.resolve(Symbol::EMPTY), "");
    }

    #[test]
    fn fxhash_map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        for k in 0..1000u64 {
            assert_eq!(m[&k], k * 3);
        }
    }

    #[test]
    fn fxhash_distinguishes_close_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = bh.hash_one(1u64);
        let h2 = bh.hash_one(2u64);
        assert_ne!(h1, h2);
    }
}
