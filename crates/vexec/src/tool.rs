//! The tool (skin) interface: Valgrind's core→tool boundary.
//!
//! A [`Tool`] receives every observable [`Event`] as the VM executes, plus a
//! [`VmView`] for introspection (stack traces, allocation info, symbol
//! resolution). Detectors in `helgrind-core` implement this trait; the VM
//! knows nothing about them.

use crate::event::Event;
use crate::util::FxHashMap;
use crate::vm::{GuestError, VmView};

/// An execution-observing tool.
pub trait Tool {
    /// Called after each observable event, in program order.
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>);

    /// Called when the guest faults (illegal operation, protocol violation)
    /// just before the run terminates with
    /// [`crate::vm::Termination::GuestError`]. Tools can fold the fault
    /// into their report stream; the default ignores it.
    fn on_guest_fault(&mut self, _err: &GuestError, _vm: &VmView<'_>) {}

    /// Called once when the run terminates (for flushing summaries).
    fn on_finish(&mut self, _vm: &VmView<'_>) {}
}

impl<T: Tool + ?Sized> Tool for &mut T {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        (**self).on_event(ev, vm);
    }
    fn on_guest_fault(&mut self, err: &GuestError, vm: &VmView<'_>) {
        (**self).on_guest_fault(err, vm);
    }
    fn on_finish(&mut self, vm: &VmView<'_>) {
        (**self).on_finish(vm);
    }
}

/// A tool that does nothing: the "run on the VM without instrumentation"
/// baseline of §4.5.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTool;

impl Tool for NullTool {
    #[inline]
    fn on_event(&mut self, _ev: &Event, _vm: &VmView<'_>) {}
}

/// Counts events by kind; used by tests and the overhead benchmarks.
#[derive(Debug, Default, Clone)]
pub struct CountingTool {
    pub total: u64,
    pub by_kind: FxHashMap<&'static str, u64>,
    pub finished: bool,
}

impl CountingTool {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

impl Tool for CountingTool {
    fn on_event(&mut self, ev: &Event, _vm: &VmView<'_>) {
        self.total += 1;
        *self.by_kind.entry(ev.kind_name()).or_insert(0) += 1;
    }

    fn on_finish(&mut self, _vm: &VmView<'_>) {
        self.finished = true;
    }
}

/// Records the full event trace; for tests on small programs only.
#[derive(Debug, Default, Clone)]
pub struct RecordingTool {
    pub events: Vec<Event>,
}

impl RecordingTool {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tool for RecordingTool {
    fn on_event(&mut self, ev: &Event, _vm: &VmView<'_>) {
        self.events.push(*ev);
    }
}

/// Fan an event stream out to several tools (e.g. run the lockset and the
/// happens-before detector in the same execution, as Multi-Race does).
pub struct FanoutTool<'a> {
    tools: Vec<&'a mut dyn Tool>,
}

impl<'a> FanoutTool<'a> {
    pub fn new(tools: Vec<&'a mut dyn Tool>) -> Self {
        FanoutTool { tools }
    }
}

impl Tool for FanoutTool<'_> {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        for t in self.tools.iter_mut() {
            t.on_event(ev, vm);
        }
    }
    fn on_guest_fault(&mut self, err: &GuestError, vm: &VmView<'_>) {
        for t in self.tools.iter_mut() {
            t.on_guest_fault(err, vm);
        }
    }
    fn on_finish(&mut self, vm: &VmView<'_>) {
        for t in self.tools.iter_mut() {
            t.on_finish(vm);
        }
    }
}
