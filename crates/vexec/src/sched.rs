//! Schedulers: interleaving policies for the VM.
//!
//! Like Valgrind, the VM is single-threaded and serialises guest threads
//! (§3.3: "the virtual machine in itself is single-threaded"); the scheduler
//! decides which runnable thread advances next. Different policies reproduce
//! different interleavings, which is exactly the schedule-dependence the
//! paper discusses in §4.3 (false negatives under one order, detections
//! under another).
//!
//! All schedulers are deterministic given their construction parameters, so
//! every run is exactly reproducible.

use crate::event::ThreadId;

/// SplitMix64: the small, fast, deterministic PRNG shared by the seeded
/// schedulers and the fault injector. Every consumer owns its own instance,
/// so streams never interleave and runs stay exactly reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform pick in `0..n` (`n == 0` yields 0).
    pub fn pick(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Bernoulli draw with probability `permille / 1000`. A zero rate does
    /// not consume a draw, so disabled fault channels are free.
    pub fn chance(&mut self, permille: u32) -> bool {
        permille > 0 && self.next_u64() % 1000 < permille as u64
    }
}

/// Scheduling policy. `pick` returns an index into `runnable`, which is
/// always non-empty and sorted by thread id.
pub trait Scheduler {
    fn pick(&mut self, runnable: &[ThreadId], slot: u64) -> usize;
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Rotate through runnable threads, giving a fine-grained interleaving —
/// each thread advances by one observable event at a time.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    counter: u64,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[ThreadId], _slot: u64) -> usize {
        let idx = (self.counter % runnable.len() as u64) as usize;
        self.counter += 1;
        idx
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Seeded pseudo-random interleaving (SplitMix64). Useful for fuzzing the
/// schedule space; repeated runs with different seeds emulate the paper's
/// "repeated tests with different test data (resulting in different
/// interleavings)".
#[derive(Debug, Clone)]
pub struct SeededRandom {
    rng: SplitMix64,
}

impl SeededRandom {
    pub fn new(seed: u64) -> Self {
        SeededRandom { rng: SplitMix64::new(seed.wrapping_add(0x9E3779B97F4A7C15)) }
    }
}

impl Scheduler for SeededRandom {
    fn pick(&mut self, runnable: &[ThreadId], _slot: u64) -> usize {
        self.rng.pick(runnable.len() as u64) as usize
    }
    fn name(&self) -> &'static str {
        "seeded-random"
    }
}

/// Strict priority: always run the runnable thread that appears earliest in
/// `order`; threads not listed come after all listed ones, ordered by id.
/// This forces coarse-grained schedules like "thread A runs to completion
/// before thread B starts" — the tool for the §4.3 false-negative
/// experiment.
#[derive(Debug, Clone)]
pub struct PriorityOrder {
    order: Vec<ThreadId>,
}

impl PriorityOrder {
    pub fn new(order: Vec<ThreadId>) -> Self {
        PriorityOrder { order }
    }

    fn rank(&self, tid: ThreadId) -> (usize, u32) {
        match self.order.iter().position(|&t| t == tid) {
            Some(p) => (p, tid.0),
            None => (self.order.len(), tid.0),
        }
    }
}

impl Scheduler for PriorityOrder {
    fn pick(&mut self, runnable: &[ThreadId], _slot: u64) -> usize {
        let mut best = 0;
        for i in 1..runnable.len() {
            if self.rank(runnable[i]) < self.rank(runnable[best]) {
                best = i;
            }
        }
        best
    }
    fn name(&self) -> &'static str {
        "priority-order"
    }
}

/// Run each thread for a burst of `quantum` slots before rotating — a
/// coarser interleaving than [`RoundRobin`], closer to a real OS scheduler
/// with time slices.
#[derive(Debug, Clone)]
pub struct Quantum {
    quantum: u64,
    counter: u64,
}

impl Quantum {
    pub fn new(quantum: u64) -> Self {
        Quantum { quantum: quantum.max(1), counter: 0 }
    }
}

impl Scheduler for Quantum {
    fn pick(&mut self, runnable: &[ThreadId], _slot: u64) -> usize {
        let idx = ((self.counter / self.quantum) % runnable.len() as u64) as usize;
        self.counter += 1;
        idx
    }
    fn name(&self) -> &'static str {
        "quantum"
    }
}

/// PCT — probabilistic concurrency testing (Burckhardt et al.): each
/// thread gets a random priority; at `depth - 1` pre-chosen step indices
/// the running thread's priority drops below everyone else's. For a bug of
/// depth `d`, PCT exposes it with probability ≥ 1/(n·k^(d-1)) per run —
/// much better than uniform random for ordering bugs like the §4.3
/// false-negative schedule.
#[derive(Debug, Clone)]
pub struct Pct {
    rng: SplitMix64,
    /// Priority per thread id (higher runs first); lazily assigned.
    priorities: Vec<u64>,
    /// Remaining step indices at which to deprioritise the runner.
    change_points: Vec<u64>,
    next_low: u64,
}

impl Pct {
    /// `depth` is the bug depth to target (>= 1); `max_steps` bounds the
    /// step indices the change points are drawn from.
    pub fn new(seed: u64, depth: u32, max_steps: u64) -> Self {
        let mut p = Pct {
            rng: SplitMix64::new(seed.wrapping_add(0x9E3779B97F4A7C15)),
            priorities: Vec::new(),
            change_points: Vec::new(),
            next_low: 0,
        };
        let k = max_steps.max(1);
        for _ in 1..depth.max(1) {
            let cp = p.rng.next_u64() % k;
            p.change_points.push(cp);
        }
        p.change_points.sort_unstable();
        p
    }

    fn priority(&mut self, tid: ThreadId) -> u64 {
        let idx = tid.index();
        while self.priorities.len() <= idx {
            // Random high priorities; low band reserved for change points.
            let v = (self.rng.next_u64() % u64::MAX / 2).max(1 << 32);
            self.priorities.push(v);
        }
        self.priorities[idx]
    }
}

impl Scheduler for Pct {
    fn pick(&mut self, runnable: &[ThreadId], slot: u64) -> usize {
        // Highest priority runs.
        let mut best = 0;
        let mut best_pri = self.priority(runnable[0]);
        for (i, &t) in runnable.iter().enumerate().skip(1) {
            let p = self.priority(t);
            if p > best_pri {
                best = i;
                best_pri = p;
            }
        }
        // Change point: demote the chosen thread below everything.
        if self.change_points.first().is_some_and(|&cp| slot >= cp) {
            self.change_points.remove(0);
            let tid = runnable[best];
            self.next_low += 1;
            let low = self.next_low; // strictly increasing, all below 2^32
            self.priorities[tid.index()] = low;
            // Re-pick with the demotion applied.
            let mut b2 = 0;
            let mut p2 = self.priority(runnable[0]);
            for (i, &t) in runnable.iter().enumerate().skip(1) {
                let p = self.priority(t);
                if p > p2 {
                    b2 = i;
                    p2 = p;
                }
            }
            return b2;
        }
        best
    }

    fn name(&self) -> &'static str {
        "pct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tids(ids: &[u32]) -> Vec<ThreadId> {
        ids.iter().map(|&i| ThreadId(i)).collect()
    }

    #[test]
    fn splitmix_is_deterministic_and_chance_respects_bounds() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);

        let mut r = SplitMix64::new(1);
        assert!(!r.chance(0), "zero rate never fires");
        let hits = (0..1000).filter(|_| r.chance(1000)).count();
        assert_eq!(hits, 1000, "full rate always fires");
        assert_eq!(r.pick(0), 0);
        for _ in 0..100 {
            assert!(r.pick(3) < 3);
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobin::new();
        let r = tids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|i| s.pick(&r, i)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let r = tids(&[0, 1, 2, 3]);
        let mut a = SeededRandom::new(42);
        let mut b = SeededRandom::new(42);
        let pa: Vec<usize> = (0..32).map(|i| a.pick(&r, i)).collect();
        let pb: Vec<usize> = (0..32).map(|i| b.pick(&r, i)).collect();
        assert_eq!(pa, pb);
        let mut c = SeededRandom::new(43);
        let pc: Vec<usize> = (0..32).map(|i| c.pick(&r, i)).collect();
        assert_ne!(pa, pc, "different seeds should give different schedules");
    }

    #[test]
    fn seeded_random_stays_in_bounds() {
        let mut s = SeededRandom::new(7);
        for n in 1..5usize {
            let r = tids(&(0..n as u32).collect::<Vec<_>>());
            for i in 0..100 {
                assert!(s.pick(&r, i) < n);
            }
        }
    }

    #[test]
    fn priority_order_prefers_listed_threads() {
        let mut s = PriorityOrder::new(tids(&[2, 1]));
        let r = tids(&[0, 1, 2]);
        // 2 outranks 1 outranks 0 (unlisted come last).
        assert_eq!(r[s.pick(&r, 0)], ThreadId(2));
        let r2 = tids(&[0, 1]);
        assert_eq!(r2[s.pick(&r2, 0)], ThreadId(1));
        let r3 = tids(&[0]);
        assert_eq!(r3[s.pick(&r3, 0)], ThreadId(0));
    }

    #[test]
    fn quantum_runs_bursts() {
        let mut s = Quantum::new(3);
        let r = tids(&[0, 1]);
        let picks: Vec<usize> = (0..8).map(|i| s.pick(&r, i)).collect();
        assert_eq!(picks, vec![0, 0, 0, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn pct_is_deterministic_and_in_bounds() {
        let r = tids(&[0, 1, 2]);
        let run = |seed| {
            let mut s = Pct::new(seed, 3, 50);
            (0..50).map(|i| s.pick(&r, i)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        for &p in &run(5) {
            assert!(p < 3);
        }
    }

    #[test]
    fn pct_without_change_points_is_strict_priority() {
        // depth 1 → no change points → the same thread runs while runnable.
        let r = tids(&[0, 1, 2]);
        let mut s = Pct::new(9, 1, 100);
        let first = s.pick(&r, 0);
        for i in 1..20 {
            assert_eq!(s.pick(&r, i), first);
        }
    }

    #[test]
    fn pct_change_point_demotes_runner() {
        let r = tids(&[0, 1]);
        // depth 2, change point somewhere in the first steps.
        let mut s = Pct::new(3, 2, 4);
        let picks: Vec<usize> = (0..10).map(|i| s.pick(&r, i)).collect();
        // After the change point the OTHER thread must run.
        assert!(
            picks.windows(2).any(|w| w[0] != w[1]),
            "a demotion must switch threads: {picks:?}"
        );
    }
}
