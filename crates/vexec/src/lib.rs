//! # vexec — a deterministic virtual execution engine for multi-threaded guest programs
//!
//! This crate is the workspace's stand-in for Valgrind's binary
//! instrumentation framework (Nethercote & Seward). Where Valgrind JIT-
//! translates x86 binaries and lets a *tool* ("skin") instrument the
//! intermediate code, `vexec` interprets a small structured IR of
//! multi-threaded guest programs and streams every observable action —
//! memory accesses, lock operations, thread lifecycle, heap traffic, and
//! user-space *client requests* — to an attached [`tool::Tool`].
//!
//! Like Valgrind, the engine itself is single-threaded and serialises guest
//! threads under a deterministic, pluggable [`sched::Scheduler`]; different
//! schedulers reproduce different interleavings, which is essential to the
//! schedule-dependence experiments of the paper this workspace reproduces
//! (Mühlenfeld & Wotawa, *Fault Detection in Multi-Threaded C++ Server
//! Applications*, ENTCS 174, 2007).
//!
//! ## Quick tour
//!
//! ```
//! use vexec::ir::builder::{ProgramBuilder, ProcBuilder};
//! use vexec::sched::RoundRobin;
//! use vexec::tool::CountingTool;
//! use vexec::vm::run_program;
//!
//! // A guest program: main spawns a worker that increments a global.
//! let mut pb = ProgramBuilder::new();
//! let counter = pb.global("counter", 8);
//! let loc = pb.loc("demo.cpp", 3, "worker");
//!
//! let mut worker = ProcBuilder::new(0);
//! worker.at(loc);
//! let v = worker.load_new(counter, 8);
//! worker.store(counter, vexec::ir::Expr::Reg(v).add(1u64.into()), 8);
//! let worker_id = pb.add_proc("worker", worker);
//!
//! let mut main = ProcBuilder::new(0);
//! let mloc = pb.loc("demo.cpp", 10, "main");
//! main.at(mloc);
//! let h = main.spawn(worker_id, vec![]);
//! main.join(h);
//! let main_id = pb.add_proc("main", main);
//! pb.set_entry(main_id);
//!
//! let prog = pb.finish();
//! let mut tool = CountingTool::new();
//! let result = run_program(&prog, &mut tool, &mut RoundRobin::new());
//! assert!(result.termination.is_clean());
//! assert_eq!(tool.count("read"), 1);
//! assert_eq!(tool.count("write"), 1);
//! ```

pub mod event;
pub mod faults;
pub mod filter;
pub mod heap;
pub mod ir;
pub mod sched;
pub mod sync;
pub mod tool;
pub mod trace;
pub mod util;
pub mod vm;

pub use event::{AccessKind, AcqMode, ClientEv, Event, SyncId, ThreadId};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultStats};
pub use filter::{FilterCache, FilterStats, FilterTool};
pub use ir::builder::{ProcBuilder, ProgramBuilder};
pub use ir::{Cond, Expr, Program, SrcLoc, SyncKind, SyncOp};
pub use sched::{Pct, PriorityOrder, Quantum, RoundRobin, Scheduler, SeededRandom, SplitMix64};
pub use tool::{CountingTool, FanoutTool, NullTool, RecordingTool, Tool};
pub use trace::{Trace, TraceError, TraceWriter};
pub use vm::{
    run_flat, run_program, GuestError, GuestErrorKind, RunResult, RunStats, SlotMeter, Termination,
    Vm, VmOptions, VmView,
};
