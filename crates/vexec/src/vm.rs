//! The virtual machine: serialises guest threads under a [`Scheduler`],
//! interprets the flat bytecode, maintains guest memory and sync objects,
//! and streams [`Event`]s to the attached [`Tool`].
//!
//! Execution model: one *slot* = one scheduler decision. The chosen thread
//! executes opcodes until it (a) emits at least one observable event,
//! (b) blocks, (c) exits, or (d) yields. Silent opcodes (register
//! arithmetic, jumps, calls) are bounded per slot so a buggy guest cannot
//! spin silently forever.
//!
//! The VM is deterministic given `(program, scheduler, options)` — the
//! property the whole experiment suite relies on.

use crate::event::{AccessKind, AcqMode, ClientEv, Event, SyncId, ThreadId};
use crate::faults::{FaultInjector, FaultPlan, FaultStats};
use crate::heap::{Block, Heap, MemError};
use crate::ir::lower::{FlatProgram, Op};
use crate::ir::{ClientOp, Cond, Expr, ProcId, RegId, SrcLoc, SyncKind, SyncOp};
use crate::sched::Scheduler;
use crate::sync::{SyncError, SyncObj};
use crate::tool::Tool;
use crate::util::{Interner, Symbol};

/// Shared slot meter for multi-worker sweeps. Each VM adds slots to it as
/// they are consumed, so a coordinator fanning seeded runs out over a
/// worker pool sees a live running total (including in-flight runs) and
/// can stop claiming new runs the moment a shared watchdog budget
/// (`total-slots`) is exhausted. Runs already started always finish —
/// bounded by their own `max_slots` — which is what keeps every per-run
/// result, and therefore the merged summary, deterministic.
#[derive(Debug, Default)]
pub struct SlotMeter(std::sync::atomic::AtomicU64);

impl SlotMeter {
    pub fn new(initial: u64) -> Self {
        SlotMeter(std::sync::atomic::AtomicU64::new(initial))
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// VM tuning knobs.
#[derive(Clone, Debug)]
pub struct VmOptions {
    /// Maximum scheduler slots before the run is aborted.
    pub max_slots: u64,
    /// Maximum silent opcodes per slot (guards against silent spin loops).
    pub silent_op_budget: u32,
    /// Maximum call depth per thread.
    pub max_frames: usize,
    /// Optional fault-injection plan. `Some` builds a [`FaultInjector`]
    /// even when every rate is zero, so the hook cost stays measurable.
    pub faults: Option<FaultPlan>,
    /// Optional shared meter credited with every slot this VM consumes,
    /// live, for sweep-wide watchdogs across worker threads.
    pub slot_meter: Option<std::sync::Arc<SlotMeter>>,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            max_slots: 50_000_000,
            silent_op_budget: 1_000_000,
            max_frames: 256,
            faults: None,
            slot_meter: None,
        }
    }
}

/// A guest-level error that aborts the run.
#[derive(Clone, Debug)]
pub struct GuestError {
    pub tid: ThreadId,
    pub loc: SrcLoc,
    pub kind: GuestErrorKind,
}

#[derive(Clone, Debug)]
pub enum GuestErrorKind {
    Mem(MemError),
    Sync(SyncError),
    AssertFailed {
        msg: String,
        left: u64,
        right: u64,
    },
    BadJoin {
        handle: u64,
    },
    BadSyncHandle {
        handle: u64,
    },
    StackOverflow,
    SilentLoop,
    /// A thread violated the condvar wait protocol (e.g. a signalled waiter
    /// was not parked on a `CondWait` op). Previously a host panic; now a
    /// structured guest fault that tools observe via `on_guest_fault`.
    CondProtocol {
        detail: String,
    },
    /// A thread was scheduled with no active frame.
    MissingFrame,
}

impl std::fmt::Display for GuestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "guest error in thread {}: ", self.tid.0)?;
        match &self.kind {
            GuestErrorKind::Mem(e) => write!(f, "{e}"),
            GuestErrorKind::Sync(e) => write!(f, "{e}"),
            GuestErrorKind::AssertFailed { msg, left, right } => {
                write!(f, "assertion failed: {msg} (left={left}, right={right})")
            }
            GuestErrorKind::BadJoin { handle } => write!(f, "join of invalid handle {handle}"),
            GuestErrorKind::BadSyncHandle { handle } => {
                write!(f, "invalid sync handle {handle}")
            }
            GuestErrorKind::StackOverflow => write!(f, "guest stack overflow"),
            GuestErrorKind::SilentLoop => write!(f, "silent-op budget exhausted (spin loop?)"),
            GuestErrorKind::CondProtocol { detail } => {
                write!(f, "condvar protocol violation: {detail}")
            }
            GuestErrorKind::MissingFrame => write!(f, "thread scheduled with no active frame"),
        }
    }
}

/// Why a thread is parked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockOn {
    Mutex(SyncId),
    RwRead(SyncId),
    RwWrite(SyncId),
    /// Parked on a condvar, waiting for a signal.
    Cond(SyncId),
    Sem(SyncId),
    QueuePut(SyncId),
    QueueGet(SyncId),
    Join(ThreadId),
}

/// Description of one blocked thread at deadlock time.
#[derive(Clone, Debug)]
pub struct WaitInfo {
    pub tid: ThreadId,
    pub on: BlockOn,
    /// Threads that currently hold whatever `tid` is waiting for (empty for
    /// condvars/semaphores/queues, where any thread could unblock it).
    pub holders: Vec<ThreadId>,
    pub loc: SrcLoc,
}

/// How the run ended.
#[derive(Clone, Debug)]
pub enum Termination {
    /// Every thread ran to completion.
    AllExited,
    /// No runnable threads, but blocked ones remain.
    Deadlock(Vec<WaitInfo>),
    /// The guest performed an illegal operation.
    GuestError(GuestError),
    /// `max_slots` exceeded.
    FuelExhausted,
}

impl Termination {
    pub fn is_clean(&self) -> bool {
        matches!(self, Termination::AllExited)
    }
}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    pub slots: u64,
    pub events: u64,
    pub ops: u64,
    pub threads_created: u32,
    pub allocs: u64,
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub termination: Termination,
    pub stats: RunStats,
    /// Injected-fault counters; `Some` whenever a plan was attached.
    pub faults: Option<FaultStats>,
}

impl RunResult {
    /// Panic (with the termination) unless the run completed cleanly.
    /// Convenience for tests and examples.
    pub fn expect_clean(&self) -> &Self {
        assert!(
            self.termination.is_clean(),
            "run did not complete cleanly: {:?}",
            self.termination
        );
        self
    }
}

#[derive(Clone, Debug)]
struct Frame {
    proc: ProcId,
    pc: u32,
    regs: Vec<u64>,
    ret_dst: Option<RegId>,
    cur_loc: SrcLoc,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked(BlockOn),
    Exited,
}

#[derive(Clone, Debug)]
struct Thread {
    frames: Vec<Frame>,
    state: ThreadState,
    /// Set when this thread was signalled out of a `cond_wait` and now must
    /// re-acquire the mutex: `(condvar, mutex, signaler)`.
    cond_resume: Option<(SyncId, SyncId, ThreadId)>,
}

/// One step's outcome inside a slot.
enum Flow {
    /// Keep executing (silent op).
    Silent,
    /// Emitted event(s); end the slot.
    Emitted,
    /// Thread blocked; end the slot.
    Blocked,
    /// Thread exited; end the slot.
    Exited,
    /// Voluntary yield; end the slot.
    Yielded,
}

/// Read-only view of the VM handed to tools alongside each event.
pub struct VmView<'a> {
    vm: &'a Vm<'a>,
}

/// One stack frame in a tool-visible backtrace (innermost first).
#[derive(Clone, Copy, Debug)]
pub struct FrameInfo {
    pub func: Symbol,
    pub loc: SrcLoc,
}

impl<'a> VmView<'a> {
    pub fn interner(&self) -> &Interner {
        &self.vm.prog.interner
    }

    pub fn resolve(&self, sym: Symbol) -> &str {
        self.vm.prog.interner.resolve(sym)
    }

    /// Backtrace of `tid`, innermost frame first. Frame function names come
    /// from the source location (debug info), falling back to the
    /// procedure name when a frame has not yet executed a located op.
    pub fn stack(&self, tid: ThreadId) -> Vec<FrameInfo> {
        let t = &self.vm.threads[tid.index()];
        t.frames
            .iter()
            .rev()
            .map(|f| FrameInfo {
                func: if f.cur_loc.func != Symbol::EMPTY {
                    f.cur_loc.func
                } else {
                    self.vm.prog.procs[f.proc.0 as usize].name
                },
                loc: f.cur_loc,
            })
            .collect()
    }

    /// Number of live frames on `tid`'s stack.
    pub fn frame_count(&self, tid: ThreadId) -> usize {
        self.vm.threads[tid.index()].frames.len()
    }

    /// Frame `i` of `tid`'s stack in push order (0 = outermost), with the
    /// same function-name fallback as [`VmView::stack`].
    pub fn frame_info(&self, tid: ThreadId, i: usize) -> FrameInfo {
        let f = &self.vm.threads[tid.index()].frames[i];
        FrameInfo {
            func: if f.cur_loc.func != Symbol::EMPTY {
                f.cur_loc.func
            } else {
                self.vm.prog.procs[f.proc.0 as usize].name
            },
            loc: f.cur_loc,
        }
    }

    /// Allocation block containing `addr`, if any.
    pub fn block_info(&self, addr: u64) -> Option<Block> {
        self.vm.heap.block_containing(addr).copied()
    }

    /// Every block ever allocated (bump allocator: freed blocks stay,
    /// marked `freed`), in allocation order.
    pub fn heap_blocks(&self) -> &[Block] {
        self.vm.heap.blocks()
    }

    /// Number of threads ever created.
    pub fn thread_count(&self) -> u32 {
        self.vm.threads.len() as u32
    }

    /// Current slot number.
    pub fn slot(&self) -> u64 {
        self.vm.stats.slots
    }

    pub fn sync_kind(&self, sync: SyncId) -> Option<SyncKind> {
        self.vm.syncs.get(sync.index()).map(|s| s.kind)
    }
}

/// The virtual machine.
pub struct Vm<'p> {
    prog: &'p FlatProgram,
    opts: VmOptions,
    heap: Heap,
    global_addrs: Vec<u64>,
    threads: Vec<Thread>,
    syncs: Vec<SyncObj>,
    pending: Vec<Event>,
    stats: RunStats,
    injector: Option<FaultInjector>,
}

impl<'p> Vm<'p> {
    pub fn new(prog: &'p FlatProgram, opts: VmOptions) -> Self {
        let mut heap = Heap::new();
        let global_addrs = prog
            .globals
            .iter()
            .map(|g| heap.alloc(g.size, ThreadId::MAIN, SrcLoc::UNKNOWN))
            .collect();
        let entry = prog.entry;
        let main = Thread {
            frames: vec![Frame {
                proc: entry,
                pc: 0,
                regs: vec![0; prog.procs[entry.0 as usize].nregs as usize],
                ret_dst: None,
                cur_loc: SrcLoc::UNKNOWN,
            }],
            state: ThreadState::Runnable,
            cond_resume: None,
        };
        let injector = opts.faults.map(FaultInjector::new);
        Vm {
            prog,
            opts,
            heap,
            global_addrs,
            threads: vec![main],
            syncs: Vec::new(),
            pending: Vec::new(),
            stats: RunStats { threads_created: 1, ..Default::default() },
            injector,
        }
    }

    /// Run to termination, streaming events to `tool`.
    pub fn run(mut self, tool: &mut dyn Tool, sched: &mut dyn Scheduler) -> RunResult {
        let mut runnable: Vec<ThreadId> = Vec::new();
        let mut scratch: Vec<Event> = Vec::new();
        let termination = loop {
            runnable.clear();
            let mut any_alive = false;
            for (i, t) in self.threads.iter().enumerate() {
                match t.state {
                    ThreadState::Runnable => {
                        runnable.push(ThreadId(i as u32));
                        any_alive = true;
                    }
                    ThreadState::Blocked(_) => any_alive = true,
                    ThreadState::Exited => {}
                }
            }
            if !any_alive {
                break Termination::AllExited;
            }
            if runnable.is_empty() {
                break Termination::Deadlock(self.wait_infos());
            }
            if self.stats.slots >= self.opts.max_slots {
                break Termination::FuelExhausted;
            }
            let idx = sched.pick(&runnable, self.stats.slots);
            let tid = runnable[idx];
            self.stats.slots += 1;
            if let Some(m) = &self.opts.slot_meter {
                m.add(1);
            }
            if self.inject_pre_slot(tid) {
                // The scheduled thread died abruptly: the slot is consumed.
                self.drain(tool, &mut scratch);
                continue;
            }
            if let Err(e) = self.run_slot(tid) {
                // Deliver any events produced before the fault, then let the
                // tool observe the fault itself before the run ends.
                self.drain(tool, &mut scratch);
                tool.on_guest_fault(&e, &VmView { vm: &self });
                break Termination::GuestError(e);
            }
            self.drain(tool, &mut scratch);
        };
        tool.on_finish(&VmView { vm: &self });
        RunResult {
            termination,
            stats: self.stats,
            faults: self.injector.as_ref().map(|i| i.stats),
        }
    }

    /// Consult the fault injector before running `tid`'s slot. Returns true
    /// if the slot was consumed (the scheduled thread was killed).
    fn inject_pre_slot(&mut self, tid: ThreadId) -> bool {
        let Some(mut inj) = self.injector.take() else { return false };
        if inj.plan().wakeup_permille > 0 {
            self.inject_spurious_wakeup(&mut inj);
        }
        let mut consumed = false;
        if tid != ThreadId::MAIN && inj.should_kill() {
            self.kill_thread(tid, &mut inj);
            consumed = true;
        }
        self.injector = Some(inj);
        consumed
    }

    /// Wake one condvar waiter without a signal (POSIX-legal spurious
    /// wakeup). The waiter re-runs its `CondWait` in phase 2 — re-acquiring
    /// the mutex and reporting itself as its own signaler.
    fn inject_spurious_wakeup(&mut self, inj: &mut FaultInjector) {
        let waiters: Vec<(ThreadId, SyncId)> = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.state {
                ThreadState::Blocked(BlockOn::Cond(c)) => Some((ThreadId(i as u32), c)),
                _ => None,
            })
            .collect();
        if waiters.is_empty() || !inj.should_spurious_wakeup() {
            return;
        }
        let (w, cv) = waiters[inj.pick(waiters.len())];
        if let Ok(m) = self.cond_wait_mutex_of(w) {
            self.syncs[cv.index()].cond_unpark(w);
            self.threads[w.index()].cond_resume = Some((cv, m, w));
            self.threads[w.index()].state = ThreadState::Runnable;
        }
    }

    /// Abrupt thread death: frames vanish, held locks stay held, heap
    /// blocks stay allocated. Joiners are woken (as if the thread exited),
    /// but anything blocked on a lock it held now deadlocks — exactly the
    /// failure shape a crashed worker leaves behind in a real server.
    fn kill_thread(&mut self, victim: ThreadId, inj: &mut FaultInjector) {
        for s in &self.syncs {
            if s.is_held_by(victim) {
                inj.stats.leaked_locks += 1;
            }
        }
        let (_, leaked) = self.heap.live_blocks_by(victim);
        inj.stats.leaked_bytes += leaked;
        let t = &mut self.threads[victim.index()];
        t.frames.clear();
        t.cond_resume = None;
        t.state = ThreadState::Exited;
        self.pending.push(Event::ThreadExit { tid: victim });
        self.wake_joiners(victim);
    }

    fn inject_lock_fail(&mut self) -> bool {
        self.injector.as_mut().is_some_and(|i| i.should_fail_lock())
    }

    /// Allocation failure targets worker threads only: a server whose
    /// *startup* allocation fails just never comes up — the interesting
    /// resilience question is a request handler hitting OOM mid-flight.
    fn inject_alloc_fail(&mut self, tid: ThreadId) -> bool {
        tid != ThreadId::MAIN && self.injector.as_mut().is_some_and(|i| i.should_fail_alloc())
    }

    fn drain(&mut self, tool: &mut dyn Tool, scratch: &mut Vec<Event>) {
        if self.pending.is_empty() {
            return;
        }
        scratch.clear();
        std::mem::swap(&mut self.pending, scratch);
        self.stats.events += scratch.len() as u64;
        let view = VmView { vm: self };
        for ev in scratch.iter() {
            tool.on_event(ev, &view);
        }
    }

    fn wait_infos(&self) -> Vec<WaitInfo> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.state {
                ThreadState::Blocked(on) => {
                    let holders = match on {
                        BlockOn::Mutex(s) => {
                            self.syncs[s.index()].mutex_owner().into_iter().collect()
                        }
                        BlockOn::RwRead(s) | BlockOn::RwWrite(s) => {
                            self.syncs[s.index()].rw_holders()
                        }
                        BlockOn::Join(t2) => vec![t2],
                        _ => Vec::new(),
                    };
                    let loc = t.frames.last().map(|f| f.cur_loc).unwrap_or(SrcLoc::UNKNOWN);
                    Some(WaitInfo { tid: ThreadId(i as u32), on, holders, loc })
                }
                _ => None,
            })
            .collect()
    }

    /// Run one scheduling slot for `tid`.
    fn run_slot(&mut self, tid: ThreadId) -> Result<(), GuestError> {
        let mut silent: u32 = 0;
        loop {
            match self.exec_op(tid)? {
                Flow::Silent => {
                    silent += 1;
                    if silent > self.opts.silent_op_budget {
                        return Err(self.err(tid, GuestErrorKind::SilentLoop));
                    }
                }
                Flow::Emitted | Flow::Blocked | Flow::Exited | Flow::Yielded => return Ok(()),
            }
        }
    }

    fn err(&self, tid: ThreadId, kind: GuestErrorKind) -> GuestError {
        let loc =
            self.threads[tid.index()].frames.last().map(|f| f.cur_loc).unwrap_or(SrcLoc::UNKNOWN);
        GuestError { tid, loc, kind }
    }

    fn err_at(&self, tid: ThreadId, loc: SrcLoc, kind: GuestErrorKind) -> GuestError {
        GuestError { tid, loc, kind }
    }

    #[inline]
    fn frame(&self, tid: ThreadId) -> &Frame {
        self.threads[tid.index()].frames.last().expect("running thread has a frame")
    }

    #[inline]
    fn frame_mut(&mut self, tid: ThreadId) -> &mut Frame {
        self.threads[tid.index()].frames.last_mut().expect("running thread has a frame")
    }

    fn eval(&self, tid: ThreadId, e: &Expr) -> u64 {
        eval_expr(e, &self.frame(tid).regs, &self.global_addrs)
    }

    fn eval_cond(&self, tid: ThreadId, c: &Cond) -> bool {
        let f = self.frame(tid);
        eval_cond(c, &f.regs, &self.global_addrs)
    }

    fn set_reg(&mut self, tid: ThreadId, r: RegId, v: u64) {
        self.frame_mut(tid).regs[r.0 as usize] = v;
    }

    fn advance(&mut self, tid: ThreadId) {
        self.frame_mut(tid).pc += 1;
    }

    fn set_loc(&mut self, tid: ThreadId, loc: SrcLoc) {
        self.frame_mut(tid).cur_loc = loc;
    }

    fn sync_obj(
        &mut self,
        tid: ThreadId,
        handle: u64,
        loc: SrcLoc,
    ) -> Result<(SyncId, &mut SyncObj), GuestError> {
        let idx = handle as usize;
        if idx >= self.syncs.len() {
            return Err(self.err_at(tid, loc, GuestErrorKind::BadSyncHandle { handle }));
        }
        Ok((SyncId(handle as u32), &mut self.syncs[idx]))
    }

    /// Execute exactly one opcode of `tid`.
    fn exec_op(&mut self, tid: ThreadId) -> Result<Flow, GuestError> {
        self.stats.ops += 1;
        let prog = self.prog;
        let (proc, pc) = {
            let f = self.frame(tid);
            (f.proc, f.pc)
        };
        let op: &'p Op = &prog.procs[proc.0 as usize].code[pc as usize];
        match op {
            Op::Assign { dst, value } => {
                let v = self.eval(tid, value);
                self.set_reg(tid, *dst, v);
                self.advance(tid);
                Ok(Flow::Silent)
            }
            Op::Jump(t) => {
                self.frame_mut(tid).pc = *t;
                Ok(Flow::Silent)
            }
            Op::BranchIfFalse { cond, target } => {
                if self.eval_cond(tid, cond) {
                    self.advance(tid);
                } else {
                    self.frame_mut(tid).pc = *target;
                }
                Ok(Flow::Silent)
            }
            Op::Load { dst, addr, size, loc } => {
                self.set_loc(tid, *loc);
                let a = self.eval(tid, addr);
                let v = self
                    .heap
                    .read(a, *size)
                    .map_err(|e| self.err_at(tid, *loc, GuestErrorKind::Mem(e)))?;
                self.set_reg(tid, *dst, v);
                self.advance(tid);
                self.pending.push(Event::Access {
                    tid,
                    addr: a,
                    size: *size,
                    kind: AccessKind::Read,
                    loc: *loc,
                });
                Ok(Flow::Emitted)
            }
            Op::Store { addr, value, size, loc } => {
                self.set_loc(tid, *loc);
                let a = self.eval(tid, addr);
                let v = self.eval(tid, value);
                self.heap
                    .write(a, *size, v)
                    .map_err(|e| self.err_at(tid, *loc, GuestErrorKind::Mem(e)))?;
                self.advance(tid);
                self.pending.push(Event::Access {
                    tid,
                    addr: a,
                    size: *size,
                    kind: AccessKind::Write,
                    loc: *loc,
                });
                Ok(Flow::Emitted)
            }
            Op::AtomicRmw { dst, addr, delta, size, loc } => {
                self.set_loc(tid, *loc);
                let a = self.eval(tid, addr);
                let d = self.eval(tid, delta);
                let old = self
                    .heap
                    .read(a, *size)
                    .map_err(|e| self.err_at(tid, *loc, GuestErrorKind::Mem(e)))?;
                self.heap
                    .write(a, *size, old.wrapping_add(d))
                    .map_err(|e| self.err_at(tid, *loc, GuestErrorKind::Mem(e)))?;
                if let Some(dst) = dst {
                    self.set_reg(tid, *dst, old);
                }
                self.advance(tid);
                self.pending.push(Event::Access {
                    tid,
                    addr: a,
                    size: *size,
                    kind: AccessKind::AtomicRmw,
                    loc: *loc,
                });
                Ok(Flow::Emitted)
            }
            Op::Call { proc: callee, args, dst, loc } => {
                self.set_loc(tid, *loc);
                if self.threads[tid.index()].frames.len() >= self.opts.max_frames {
                    return Err(self.err_at(tid, *loc, GuestErrorKind::StackOverflow));
                }
                let callee_info = &prog.procs[callee.0 as usize];
                let mut regs = vec![0u64; callee_info.nregs as usize];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.eval(tid, a);
                }
                // Return resumes after this op.
                self.advance(tid);
                self.threads[tid.index()].frames.push(Frame {
                    proc: *callee,
                    pc: 0,
                    regs,
                    ret_dst: *dst,
                    cur_loc: *loc,
                });
                Ok(Flow::Silent)
            }
            Op::Ret { value } => {
                let v = value.as_ref().map(|e| self.eval(tid, e)).unwrap_or(0);
                let Some(frame) = self.threads[tid.index()].frames.pop() else {
                    return Err(self.err(tid, GuestErrorKind::MissingFrame));
                };
                if self.threads[tid.index()].frames.is_empty() {
                    self.threads[tid.index()].state = ThreadState::Exited;
                    self.pending.push(Event::ThreadExit { tid });
                    self.wake_joiners(tid);
                    Ok(Flow::Exited)
                } else {
                    if let Some(dst) = frame.ret_dst {
                        self.set_reg(tid, dst, v);
                    }
                    Ok(Flow::Silent)
                }
            }
            Op::Spawn { proc: child_proc, args, dst, loc } => {
                self.set_loc(tid, *loc);
                let callee_info = &prog.procs[child_proc.0 as usize];
                let mut regs = vec![0u64; callee_info.nregs as usize];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.eval(tid, a);
                }
                let child = ThreadId(self.threads.len() as u32);
                self.threads.push(Thread {
                    frames: vec![Frame {
                        proc: *child_proc,
                        pc: 0,
                        regs,
                        ret_dst: None,
                        cur_loc: *loc,
                    }],
                    state: ThreadState::Runnable,
                    cond_resume: None,
                });
                self.stats.threads_created += 1;
                self.set_reg(tid, *dst, child.0 as u64);
                self.advance(tid);
                self.pending.push(Event::ThreadCreate { parent: tid, child, loc: *loc });
                Ok(Flow::Emitted)
            }
            Op::Join { handle, loc } => {
                self.set_loc(tid, *loc);
                let h = self.eval(tid, handle);
                let target = ThreadId(h as u32);
                if h >= self.threads.len() as u64 || target == tid {
                    return Err(self.err_at(tid, *loc, GuestErrorKind::BadJoin { handle: h }));
                }
                if self.threads[target.index()].state == ThreadState::Exited {
                    self.advance(tid);
                    self.pending.push(Event::ThreadJoin { joiner: tid, joined: target, loc: *loc });
                    Ok(Flow::Emitted)
                } else {
                    self.threads[tid.index()].state = ThreadState::Blocked(BlockOn::Join(target));
                    Ok(Flow::Blocked)
                }
            }
            Op::NewSync { dst, kind, init } => {
                let init_v = self.eval(tid, init);
                let id = self.syncs.len() as u64;
                self.syncs.push(SyncObj::new(*kind, init_v));
                self.set_reg(tid, *dst, id);
                self.advance(tid);
                Ok(Flow::Silent)
            }
            Op::Sync { op, loc } => {
                self.set_loc(tid, *loc);
                self.exec_sync(tid, op, *loc)
            }
            Op::Alloc { dst, size, loc } => {
                self.set_loc(tid, *loc);
                if self.inject_alloc_fail(tid) {
                    // Allocation failure: `new` returns null and no Alloc
                    // event reaches the tool; a later dereference is a wild
                    // access, exactly as on a real OOM path.
                    self.set_reg(tid, *dst, 0);
                    self.advance(tid);
                    return Ok(Flow::Silent);
                }
                let sz = self.eval(tid, size);
                let addr = self.heap.alloc(sz, tid, *loc);
                self.stats.allocs += 1;
                self.set_reg(tid, *dst, addr);
                self.advance(tid);
                self.pending.push(Event::Alloc { tid, addr, size: sz.max(1), loc: *loc });
                Ok(Flow::Emitted)
            }
            Op::Free { addr, loc } => {
                self.set_loc(tid, *loc);
                let a = self.eval(tid, addr);
                let blk = self
                    .heap
                    .free(a)
                    .map_err(|e| self.err_at(tid, *loc, GuestErrorKind::Mem(e)))?;
                self.advance(tid);
                self.pending.push(Event::Free { tid, addr: a, size: blk.size, loc: *loc });
                Ok(Flow::Emitted)
            }
            Op::Client { req, loc } => {
                self.set_loc(tid, *loc);
                let ev = match req {
                    ClientOp::HgDestruct { addr, size } => ClientEv::HgDestruct {
                        addr: self.eval(tid, addr),
                        size: self.eval(tid, size),
                    },
                    ClientOp::HgCleanMemory { addr, size } => ClientEv::HgCleanMemory {
                        addr: self.eval(tid, addr),
                        size: self.eval(tid, size),
                    },
                    ClientOp::Label(sym) => ClientEv::Label(*sym),
                };
                self.advance(tid);
                self.pending.push(Event::Client { tid, req: ev, loc: *loc });
                Ok(Flow::Emitted)
            }
            Op::Yield => {
                self.advance(tid);
                Ok(Flow::Yielded)
            }
            Op::AssertEq { a, b, msg } => {
                let va = self.eval(tid, a);
                let vb = self.eval(tid, b);
                if va != vb {
                    let loc = self.frame(tid).cur_loc;
                    return Err(self.err_at(
                        tid,
                        loc,
                        GuestErrorKind::AssertFailed { msg: msg.clone(), left: va, right: vb },
                    ));
                }
                self.advance(tid);
                Ok(Flow::Silent)
            }
        }
    }

    fn exec_sync(&mut self, tid: ThreadId, op: &SyncOp, loc: SrcLoc) -> Result<Flow, GuestError> {
        match op {
            SyncOp::MutexLock(m) => {
                let h = self.eval(tid, m);
                if self.inject_lock_fail() {
                    // Timed-lock timeout: pc does not advance, the thread
                    // retries the acquisition the next time it is scheduled.
                    return Ok(Flow::Yielded);
                }
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                match obj.mutex_lock(tid) {
                    Ok(true) => {
                        self.advance(tid);
                        self.pending.push(Event::Acquire {
                            tid,
                            sync: sid,
                            kind: SyncKind::Mutex,
                            mode: AcqMode::Exclusive,
                            loc,
                        });
                        Ok(Flow::Emitted)
                    }
                    Ok(false) => {
                        self.threads[tid.index()].state = ThreadState::Blocked(BlockOn::Mutex(sid));
                        Ok(Flow::Blocked)
                    }
                    Err(e) => Err(self.err_at(tid, loc, GuestErrorKind::Sync(e))),
                }
            }
            SyncOp::MutexUnlock(m) => {
                let h = self.eval(tid, m);
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                obj.mutex_unlock(tid)
                    .map_err(|e| self.err_at(tid, loc, GuestErrorKind::Sync(e)))?;
                self.advance(tid);
                self.pending.push(Event::Release { tid, sync: sid, kind: SyncKind::Mutex, loc });
                self.wake_blocked_on(|b| matches!(b, BlockOn::Mutex(s) if *s == sid));
                Ok(Flow::Emitted)
            }
            SyncOp::RwLockRead(m) => {
                let h = self.eval(tid, m);
                if self.inject_lock_fail() {
                    return Ok(Flow::Yielded);
                }
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                match obj.rw_lock_read(tid) {
                    Ok(true) => {
                        self.advance(tid);
                        self.pending.push(Event::Acquire {
                            tid,
                            sync: sid,
                            kind: SyncKind::RwLock,
                            mode: AcqMode::Shared,
                            loc,
                        });
                        Ok(Flow::Emitted)
                    }
                    Ok(false) => {
                        self.threads[tid.index()].state =
                            ThreadState::Blocked(BlockOn::RwRead(sid));
                        Ok(Flow::Blocked)
                    }
                    Err(e) => Err(self.err_at(tid, loc, GuestErrorKind::Sync(e))),
                }
            }
            SyncOp::RwLockWrite(m) => {
                let h = self.eval(tid, m);
                if self.inject_lock_fail() {
                    return Ok(Flow::Yielded);
                }
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                match obj.rw_lock_write(tid) {
                    Ok(true) => {
                        self.advance(tid);
                        self.pending.push(Event::Acquire {
                            tid,
                            sync: sid,
                            kind: SyncKind::RwLock,
                            mode: AcqMode::Exclusive,
                            loc,
                        });
                        Ok(Flow::Emitted)
                    }
                    Ok(false) => {
                        self.threads[tid.index()].state =
                            ThreadState::Blocked(BlockOn::RwWrite(sid));
                        Ok(Flow::Blocked)
                    }
                    Err(e) => Err(self.err_at(tid, loc, GuestErrorKind::Sync(e))),
                }
            }
            SyncOp::RwUnlock(m) => {
                let h = self.eval(tid, m);
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                obj.rw_unlock(tid).map_err(|e| self.err_at(tid, loc, GuestErrorKind::Sync(e)))?;
                self.advance(tid);
                self.pending.push(Event::Release { tid, sync: sid, kind: SyncKind::RwLock, loc });
                self.wake_blocked_on(
                    |b| matches!(b, BlockOn::RwRead(s) | BlockOn::RwWrite(s) if *s == sid),
                );
                Ok(Flow::Emitted)
            }
            SyncOp::CondWait { cond, mutex } => {
                let ch = self.eval(tid, cond);
                let mh = self.eval(tid, mutex);
                if let Some((cv, m, signaler)) = self.threads[tid.index()].cond_resume {
                    // Phase 2: woken by a signal; re-acquire the mutex.
                    let (msid, mobj) = self.sync_obj(tid, m.0 as u64, loc)?;
                    debug_assert_eq!(msid, m);
                    match mobj.mutex_lock(tid) {
                        Ok(true) => {
                            self.threads[tid.index()].cond_resume = None;
                            self.advance(tid);
                            self.pending.push(Event::CondWake { tid, sync: cv, signaler, loc });
                            self.pending.push(Event::Acquire {
                                tid,
                                sync: m,
                                kind: SyncKind::Mutex,
                                mode: AcqMode::Exclusive,
                                loc,
                            });
                            Ok(Flow::Emitted)
                        }
                        Ok(false) => {
                            self.threads[tid.index()].state =
                                ThreadState::Blocked(BlockOn::Mutex(m));
                            Ok(Flow::Blocked)
                        }
                        Err(e) => Err(self.err_at(tid, loc, GuestErrorKind::Sync(e))),
                    }
                } else {
                    // Phase 1: release the mutex and park on the condvar.
                    let (msid, mobj) = self.sync_obj(tid, mh, loc)?;
                    mobj.mutex_unlock(tid)
                        .map_err(|e| self.err_at(tid, loc, GuestErrorKind::Sync(e)))?;
                    let (csid, cobj) = self.sync_obj(tid, ch, loc)?;
                    cobj.cond_park(tid)
                        .map_err(|e| self.err_at(tid, loc, GuestErrorKind::Sync(e)))?;
                    self.threads[tid.index()].state = ThreadState::Blocked(BlockOn::Cond(csid));
                    self.pending.push(Event::Release {
                        tid,
                        sync: msid,
                        kind: SyncKind::Mutex,
                        loc,
                    });
                    self.wake_blocked_on(|b| matches!(b, BlockOn::Mutex(s) if *s == msid));
                    Ok(Flow::Blocked)
                }
            }
            SyncOp::CondSignal(c) | SyncOp::CondBroadcast(c) => {
                let broadcast = matches!(op, SyncOp::CondBroadcast(_));
                let ch = self.eval(tid, c);
                let (csid, cobj) = self.sync_obj(tid, ch, loc)?;
                let woken = cobj
                    .cond_take_waiters(broadcast)
                    .map_err(|e| self.err_at(tid, loc, GuestErrorKind::Sync(e)))?;
                for w in woken {
                    // The waiter re-executes its CondWait in phase 2. It
                    // needs the mutex handle, which it stored in its own
                    // frame; recover it by re-evaluating its current op.
                    let m = self.cond_wait_mutex_of(w)?;
                    self.threads[w.index()].cond_resume = Some((csid, m, tid));
                    self.threads[w.index()].state = ThreadState::Runnable;
                }
                self.advance(tid);
                self.pending.push(Event::CondSignal { tid, sync: csid, broadcast, loc });
                Ok(Flow::Emitted)
            }
            SyncOp::SemWait(s) => {
                let h = self.eval(tid, s);
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                match obj.sem_try_wait() {
                    Ok(true) => {
                        self.advance(tid);
                        self.pending.push(Event::SemAcquired { tid, sync: sid, loc });
                        Ok(Flow::Emitted)
                    }
                    Ok(false) => {
                        self.threads[tid.index()].state = ThreadState::Blocked(BlockOn::Sem(sid));
                        Ok(Flow::Blocked)
                    }
                    Err(e) => Err(self.err_at(tid, loc, GuestErrorKind::Sync(e))),
                }
            }
            SyncOp::SemPost(s) => {
                let h = self.eval(tid, s);
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                obj.sem_post().map_err(|e| self.err_at(tid, loc, GuestErrorKind::Sync(e)))?;
                self.advance(tid);
                self.pending.push(Event::SemPost { tid, sync: sid, loc });
                self.wake_blocked_on(|b| matches!(b, BlockOn::Sem(s2) if *s2 == sid));
                Ok(Flow::Emitted)
            }
            SyncOp::QueuePut { queue, value } => {
                let h = self.eval(tid, queue);
                let v = self.eval(tid, value);
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                match obj.queue_try_put(v) {
                    Ok(Some(token)) => {
                        self.advance(tid);
                        self.pending.push(Event::QueuePut { tid, sync: sid, token, loc });
                        self.wake_blocked_on(|b| matches!(b, BlockOn::QueueGet(s2) if *s2 == sid));
                        Ok(Flow::Emitted)
                    }
                    Ok(None) => {
                        self.threads[tid.index()].state =
                            ThreadState::Blocked(BlockOn::QueuePut(sid));
                        Ok(Flow::Blocked)
                    }
                    Err(e) => Err(self.err_at(tid, loc, GuestErrorKind::Sync(e))),
                }
            }
            SyncOp::QueueGet { queue, dst } => {
                let h = self.eval(tid, queue);
                let (sid, obj) = self.sync_obj(tid, h, loc)?;
                match obj.queue_try_get() {
                    Ok(Some((v, token))) => {
                        self.set_reg(tid, *dst, v);
                        self.advance(tid);
                        self.pending.push(Event::QueueGot { tid, sync: sid, token, loc });
                        self.wake_blocked_on(|b| matches!(b, BlockOn::QueuePut(s2) if *s2 == sid));
                        Ok(Flow::Emitted)
                    }
                    Ok(None) => {
                        self.threads[tid.index()].state =
                            ThreadState::Blocked(BlockOn::QueueGet(sid));
                        Ok(Flow::Blocked)
                    }
                    Err(e) => Err(self.err_at(tid, loc, GuestErrorKind::Sync(e))),
                }
            }
        }
    }

    /// The mutex handle a cond-waiting thread passed to its `CondWait` op.
    /// A waiter parked anywhere else is a protocol violation — reported as
    /// a structured guest fault, never a host panic.
    fn cond_wait_mutex_of(&self, tid: ThreadId) -> Result<SyncId, GuestError> {
        let Some(f) = self.threads[tid.index()].frames.last() else {
            return Err(self.err(
                tid,
                GuestErrorKind::CondProtocol {
                    detail: format!("cond waiter thread {} has no frame", tid.0),
                },
            ));
        };
        let op = &self.prog.procs[f.proc.0 as usize].code[f.pc as usize];
        match op {
            Op::Sync { op: SyncOp::CondWait { mutex, .. }, .. } => {
                Ok(SyncId(eval_expr(mutex, &f.regs, &self.global_addrs) as u32))
            }
            other => Err(self.err_at(
                tid,
                f.cur_loc,
                GuestErrorKind::CondProtocol {
                    detail: format!("cond waiter parked on non-CondWait op {other:?}"),
                },
            )),
        }
    }

    fn wake_blocked_on(&mut self, pred: impl Fn(&BlockOn) -> bool) {
        for t in self.threads.iter_mut() {
            if let ThreadState::Blocked(on) = &t.state {
                if pred(on) {
                    t.state = ThreadState::Runnable;
                }
            }
        }
    }

    fn wake_joiners(&mut self, exited: ThreadId) {
        self.wake_blocked_on(|b| matches!(b, BlockOn::Join(t) if *t == exited));
    }
}

fn eval_expr(e: &Expr, regs: &[u64], globals: &[u64]) -> u64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Reg(r) => regs[r.0 as usize],
        Expr::Global(g) => globals[g.0 as usize],
        Expr::Add(a, b) => eval_expr(a, regs, globals).wrapping_add(eval_expr(b, regs, globals)),
        Expr::Sub(a, b) => eval_expr(a, regs, globals).wrapping_sub(eval_expr(b, regs, globals)),
        Expr::Mul(a, b) => eval_expr(a, regs, globals).wrapping_mul(eval_expr(b, regs, globals)),
    }
}

fn eval_cond(c: &Cond, regs: &[u64], globals: &[u64]) -> bool {
    let ev = |e: &Expr| eval_expr(e, regs, globals);
    match c {
        Cond::True => true,
        Cond::Eq(a, b) => ev(a) == ev(b),
        Cond::Ne(a, b) => ev(a) != ev(b),
        Cond::Lt(a, b) => ev(a) < ev(b),
        Cond::Le(a, b) => ev(a) <= ev(b),
        Cond::Gt(a, b) => ev(a) > ev(b),
        Cond::Ge(a, b) => ev(a) >= ev(b),
    }
}

/// Convenience: lower (if needed) and run a program.
pub fn run_flat(
    prog: &FlatProgram,
    tool: &mut dyn Tool,
    sched: &mut dyn Scheduler,
    opts: VmOptions,
) -> RunResult {
    Vm::new(prog, opts).run(tool, sched)
}

/// Convenience: run a structured [`crate::ir::Program`] with defaults.
pub fn run_program(
    prog: &crate::ir::Program,
    tool: &mut dyn Tool,
    sched: &mut dyn Scheduler,
) -> RunResult {
    let flat = prog.lower();
    run_flat(&flat, tool, sched, VmOptions::default())
}
