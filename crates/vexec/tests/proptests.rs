//! Property-based tests for the VM: determinism, sequential-consistency of
//! guest memory under locking, and liveness of the blocking primitives
//! across randomly generated programs and schedules.

use proptest::prelude::*;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Expr, Program, SyncKind, SyncOp};
use vexec::sched::{RoundRobin, SeededRandom};
use vexec::tool::{CountingTool, RecordingTool};
use vexec::vm::run_program;

/// One worker's behaviour in the generated program.
#[derive(Clone, Debug)]
struct WorkerSpec {
    locked_increments: u64,
    yields_between: bool,
    allocs: u64,
}

fn worker_strategy() -> impl Strategy<Value = WorkerSpec> {
    (1u64..20, any::<bool>(), 0u64..5).prop_map(|(locked_increments, yields_between, allocs)| {
        WorkerSpec { locked_increments, yields_between, allocs }
    })
}

/// Build a program: N workers each increment a global under a mutex their
/// given number of times, optionally yielding and allocating.
fn build_program(workers: &[WorkerSpec]) -> (Program, u64) {
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let m_cell = pb.global("mutex", 8);
    let mut worker_ids = Vec::new();
    for (i, spec) in workers.iter().enumerate() {
        let loc = pb.loc("gen.cpp", 10 + i as u32, "worker");
        let mut w = ProcBuilder::new(0);
        w.at(loc);
        let m = w.load_new(m_cell, 8);
        w.begin_repeat(spec.locked_increments);
        w.lock(m);
        let v = w.load_new(counter, 8);
        w.store(counter, Expr::Reg(v).add(1u64.into()), 8);
        w.unlock(m);
        if spec.yields_between {
            w.yield_();
        }
        w.end_repeat();
        for _ in 0..spec.allocs {
            let p = w.alloc(24u64);
            w.store(Expr::Reg(p), 7u64, 8);
            w.free(p);
        }
        worker_ids.push(pb.add_proc(&format!("worker{i}"), w));
    }
    let mloc = pb.loc("gen.cpp", 100, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let mut joins = Vec::new();
    for w in &worker_ids {
        joins.push(m.spawn(*w, vec![]));
    }
    for h in joins {
        m.join(h);
    }
    let expected: u64 = workers.iter().map(|w| w.locked_increments).sum();
    m.lock(mx);
    let v = m.load_new(counter, 8);
    m.unlock(mx);
    m.assert_eq(v, expected, "all locked increments must land");
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    (pb.finish(), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Guest-visible arithmetic is correct under every random schedule:
    /// the in-guest assert (counter == sum of increments) must pass.
    #[test]
    fn locked_counter_is_exact_under_random_schedules(
        workers in prop::collection::vec(worker_strategy(), 1..5),
        seed in any::<u64>(),
    ) {
        let (prog, _) = build_program(&workers);
        let mut tool = CountingTool::new();
        let r = run_program(&prog, &mut tool, &mut SeededRandom::new(seed));
        prop_assert!(r.termination.is_clean(), "{:?}", r.termination);
    }

    /// The VM is a deterministic function of (program, scheduler): same
    /// seed, same full event trace; and the trace is schedule-dependent in
    /// general but always contains the same number of acquire/release and
    /// alloc/free pairs.
    #[test]
    fn traces_are_deterministic_and_balanced(
        workers in prop::collection::vec(worker_strategy(), 1..4),
        seed in any::<u64>(),
    ) {
        let (prog, expected) = build_program(&workers);
        let mut t1 = RecordingTool::new();
        let mut t2 = RecordingTool::new();
        run_program(&prog, &mut t1, &mut SeededRandom::new(seed));
        run_program(&prog, &mut t2, &mut SeededRandom::new(seed));
        prop_assert_eq!(&t1.events, &t2.events);

        let count = |k: &str| t1.events.iter().filter(|e| e.kind_name() == k).count() as u64;
        // One acquire/release per increment, plus main's final check pair.
        prop_assert_eq!(count("acquire"), expected + 1);
        prop_assert_eq!(count("release"), expected + 1);
        prop_assert_eq!(count("alloc"), count("free"));
        let threads = workers.len() as u64;
        prop_assert_eq!(count("thread-create"), threads);
        prop_assert_eq!(count("thread-join"), threads);
        prop_assert_eq!(count("thread-exit"), threads + 1);
    }

    /// Bounded queues conserve messages under arbitrary schedules: total
    /// put == total got, and every token is got exactly once.
    #[test]
    fn queue_conserves_messages(
        n_msgs in 1u64..30,
        capacity in 1u64..6,
        consumers in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut pb = ProgramBuilder::new();
        let q_cell = pb.global("q", 8);
        let cloc = pb.loc("q.cpp", 5, "consumer");
        let mut c = ProcBuilder::new(0);
        c.at(cloc);
        let q = c.load_new(q_cell, 8);
        let running = c.let_(1u64);
        let v = c.reg();
        c.begin_while(vexec::ir::Cond::Ne(Expr::Reg(running), Expr::Const(0)));
        c.sync(SyncOp::QueueGet { queue: Expr::Reg(q), dst: v });
        c.begin_if(vexec::ir::Cond::Eq(Expr::Reg(v), Expr::Const(0)));
        c.assign(running, 0u64);
        c.end_if();
        c.end_while();
        let consumer = pb.add_proc("consumer", c);

        let mloc = pb.loc("q.cpp", 20, "main");
        let mut m = ProcBuilder::new(0);
        m.at(mloc);
        let q = m.new_sync(SyncKind::Queue, capacity);
        m.store(q_cell, q, 8);
        let mut joins = Vec::new();
        for _ in 0..consumers {
            joins.push(m.spawn(consumer, vec![]));
        }
        let i = m.let_(1u64);
        m.begin_repeat(n_msgs);
        m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Reg(i) });
        m.assign(i, Expr::Reg(i).add(1u64.into()));
        m.end_repeat();
        for _ in 0..consumers {
            m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Const(0) });
        }
        for h in joins {
            m.join(h);
        }
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();

        let mut rec = RecordingTool::new();
        let r = run_program(&prog, &mut rec, &mut SeededRandom::new(seed));
        prop_assert!(r.termination.is_clean(), "{:?}", r.termination);
        let mut put_tokens = Vec::new();
        let mut got_tokens = Vec::new();
        for e in &rec.events {
            match e {
                vexec::Event::QueuePut { token, .. } => put_tokens.push(*token),
                vexec::Event::QueueGot { token, .. } => got_tokens.push(*token),
                _ => {}
            }
        }
        prop_assert_eq!(put_tokens.len() as u64, n_msgs + consumers as u64);
        got_tokens.sort_unstable();
        let mut expected: Vec<u64> = put_tokens.clone();
        expected.sort_unstable();
        prop_assert_eq!(got_tokens, expected, "every message got exactly once");
    }

    /// Round-robin and random schedules agree on the final memory state
    /// (the guest assert checks it), differing only in interleaving.
    #[test]
    fn final_state_schedule_independent_for_locked_programs(
        workers in prop::collection::vec(worker_strategy(), 1..4),
    ) {
        let (prog, _) = build_program(&workers);
        let mut t = CountingTool::new();
        let r = run_program(&prog, &mut t, &mut RoundRobin::new());
        prop_assert!(r.termination.is_clean());
        for seed in [1u64, 99, 12345] {
            let mut t = CountingTool::new();
            let r = run_program(&prog, &mut t, &mut SeededRandom::new(seed));
            prop_assert!(r.termination.is_clean());
        }
    }
}

/// A kill-bait program: `workers` threads that only yield in a loop, so
/// every slot a worker holds is a kill opportunity and nothing else (no
/// locks, no allocation) can interfere with the fault channel under test.
fn kill_bait_program(workers: usize, yields: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("bait.cpp", 10, "spinner");
    let mut w = ProcBuilder::new(0);
    w.at(loc);
    w.begin_repeat(yields);
    w.yield_();
    w.end_repeat();
    w.ret(None);
    let wid = pb.add_proc("spinner", w);

    let mloc = pb.loc("bait.cpp", 30, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mut handles = Vec::new();
    for _ in 0..workers {
        handles.push(m.spawn(wid, vec![]));
    }
    for h in handles {
        m.join(h);
    }
    m.ret(None);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

proptest! {
    /// The dead-knob regression (sampler edition): every plan
    /// `FaultPlan::from_seed` derives has coherent kill knobs, and every
    /// *armed* plan actually kills when given enough opportunities — the
    /// bait program offers tens of thousands of worker slots, so even a
    /// 1-permille rate fires with probability 1 - 0.999^20000.
    #[test]
    fn armed_sampled_plans_actually_kill(seed in any::<u64>()) {
        use vexec::faults::FaultPlan;
        use vexec::vm::{run_flat, VmOptions};

        let plan = FaultPlan::from_seed(seed);
        prop_assert_eq!(
            plan.kill_permille == 0,
            plan.max_kills == 0,
            "incoherent kill knobs: {:?}", plan
        );
        if plan.kill_permille == 0 {
            return Ok(());
        }
        // Isolate the kill channel: other rates off, same seed and knobs.
        let plan = FaultPlan {
            wakeup_permille: 0,
            lockfail_permille: 0,
            allocfail_permille: 0,
            ..plan
        };
        let prog = kill_bait_program(4, 5_000);
        let flat = prog.lower();
        let mut t = CountingTool::new();
        let opts = VmOptions { faults: Some(plan), ..Default::default() };
        let r = run_flat(&flat, &mut t, &mut RoundRobin::new(), opts);
        prop_assert!(r.termination.is_clean(), "{:?}", r.termination);
        let kills = r.faults.expect("plan attached").kills;
        prop_assert!(
            kills >= 1 && kills <= plan.max_kills as u64,
            "armed plan {:?} killed {} times", plan, kills
        );
    }
}
