//! VM robustness: fuel exhaustion, silent-loop detection, stack overflow,
//! wild accesses and misuse all terminate with structured errors instead
//! of hanging or panicking.

use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Cond, Expr};
use vexec::sched::RoundRobin;
use vexec::tool::{CountingTool, NullTool};
use vexec::vm::{run_flat, GuestErrorKind, Termination, Vm, VmOptions};

fn run_with_opts(prog: &vexec::Program, opts: VmOptions) -> Termination {
    let flat = prog.lower();
    run_flat(&flat, &mut NullTool, &mut RoundRobin::new(), opts).termination
}

#[test]
fn fuel_exhaustion_is_reported() {
    // An endless loop of observable events.
    let mut pb = ProgramBuilder::new();
    let g = pb.global("g", 8);
    let loc = pb.loc("spin.cpp", 1, "main");
    let mut m = ProcBuilder::new(0);
    m.at(loc);
    m.begin_while(Cond::True);
    m.store(g, 1u64, 8);
    m.end_while();
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let t = run_with_opts(&prog, VmOptions { max_slots: 1_000, ..Default::default() });
    assert!(matches!(t, Termination::FuelExhausted), "{t:?}");
}

#[test]
fn silent_spin_loop_is_caught() {
    // An endless loop with no observable events at all.
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("spin.cpp", 1, "main");
    let mut m = ProcBuilder::new(0);
    m.at(loc);
    let r = m.reg();
    m.begin_while(Cond::True);
    m.assign(r, Expr::Reg(r).add(1u64.into()));
    m.end_while();
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let t = run_with_opts(&prog, VmOptions { silent_op_budget: 10_000, ..Default::default() });
    match t {
        Termination::GuestError(e) => {
            assert!(matches!(e.kind, GuestErrorKind::SilentLoop), "{e:?}")
        }
        other => panic!("expected silent-loop guest error, got {other:?}"),
    }
}

#[test]
fn runaway_recursion_overflows_cleanly() {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_proc("f");
    let loc = pb.loc("rec.cpp", 1, "f");
    let mut fb = ProcBuilder::new(0);
    fb.at(loc);
    fb.call(f, vec![], None);
    pb.define_proc(f, fb);
    let mut m = ProcBuilder::new(0);
    m.at(pb.loc("rec.cpp", 9, "main"));
    m.call(f, vec![], None);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let t = run_with_opts(&prog, VmOptions { max_frames: 64, ..Default::default() });
    match t {
        Termination::GuestError(e) => {
            assert!(matches!(e.kind, GuestErrorKind::StackOverflow), "{e:?}")
        }
        other => panic!("expected stack overflow, got {other:?}"),
    }
}

#[test]
fn wild_access_is_a_guest_error_with_location() {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("wild.cpp", 7, "main");
    let mut m = ProcBuilder::new(0);
    m.at(loc);
    let r = m.reg();
    m.load(r, 0xDEAD_0000u64, 8);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let mut tool = CountingTool::new();
    let r = vexec::vm::run_program(&prog, &mut tool, &mut RoundRobin::new());
    match r.termination {
        Termination::GuestError(e) => {
            assert!(matches!(e.kind, GuestErrorKind::Mem(_)), "{e:?}");
            assert_eq!(e.loc.line, 7, "error carries the faulting location");
        }
        other => panic!("expected wild access error, got {other:?}"),
    }
}

#[test]
fn join_of_bad_handle_is_a_guest_error() {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("bad.cpp", 3, "main");
    let mut m = ProcBuilder::new(0);
    m.at(loc);
    m.join(999u64);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();
    let t = run_with_opts(&prog, VmOptions::default());
    match t {
        Termination::GuestError(e) => {
            assert!(matches!(e.kind, GuestErrorKind::BadJoin { handle: 999 }), "{e:?}")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn bad_sync_handle_is_a_guest_error() {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("bad.cpp", 3, "main");
    let mut m = ProcBuilder::new(0);
    m.at(loc);
    m.lock(42u64); // no sync object with this handle
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();
    let t = run_with_opts(&prog, VmOptions::default());
    match t {
        Termination::GuestError(e) => {
            assert!(matches!(e.kind, GuestErrorKind::BadSyncHandle { handle: 42 }), "{e:?}")
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn guest_assert_failure_reports_values() {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("a.cpp", 5, "main");
    let mut m = ProcBuilder::new(0);
    m.at(loc);
    m.assert_eq(1u64, 2u64, "one is not two");
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();
    let t = run_with_opts(&prog, VmOptions::default());
    match t {
        Termination::GuestError(e) => match e.kind {
            GuestErrorKind::AssertFailed { msg, left, right } => {
                assert_eq!(msg, "one is not two");
                assert_eq!((left, right), (1, 2));
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn vm_can_be_driven_directly() {
    // The lower-level Vm::new/run API works as documented.
    let mut pb = ProgramBuilder::new();
    let g = pb.global("g", 8);
    let loc = pb.loc("v.cpp", 1, "main");
    let mut m = ProcBuilder::new(0);
    m.at(loc);
    m.store(g, 5u64, 8);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let flat = pb.finish().lower();
    let vm = Vm::new(&flat, VmOptions::default());
    let mut tool = CountingTool::new();
    let r = vm.run(&mut tool, &mut RoundRobin::new());
    assert!(r.termination.is_clean());
    assert_eq!(r.stats.events, 2); // store + thread-exit
    assert_eq!(r.stats.slots, 2);
    assert!(r.stats.ops >= 2);
}
