//! Integration tests for VM execution semantics: thread lifecycle, blocking
//! synchronisation, condition variables, queues, deadlock detection and
//! scheduler determinism.

use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Cond, Expr, SyncKind, SyncOp};
use vexec::sched::{PriorityOrder, RoundRobin, SeededRandom};
use vexec::tool::{CountingTool, RecordingTool};
use vexec::vm::{run_program, BlockOn, Termination};
use vexec::{Event, ThreadId};

/// Two workers each increment a global counter `n` times under a mutex;
/// final value must be exactly 2n under every scheduler.
fn locked_counter_program(n: u64) -> vexec::Program {
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let mutex_cell = pb.global("mutex_cell", 8);

    let wloc = pb.loc("counter.cpp", 5, "worker");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let m = w.load_new(mutex_cell, 8);
    w.begin_repeat(n);
    w.lock(m);
    let v = w.load_new(counter, 8);
    w.store(counter, Expr::Reg(v).add(1u64.into()), 8);
    w.unlock(m);
    w.end_repeat();
    let worker = pb.add_proc("worker", w);

    let mloc = pb.loc("counter.cpp", 20, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let m = main.new_mutex();
    main.store(mutex_cell, m, 8);
    let h1 = main.spawn(worker, vec![]);
    let h2 = main.spawn(worker, vec![]);
    main.join(h1);
    main.join(h2);
    let fin = main.load_new(counter, 8);
    main.assert_eq(fin, 2 * n, "counter must equal 2n");
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    pb.finish()
}

#[test]
fn mutex_protects_counter_under_round_robin() {
    let prog = locked_counter_program(50);
    let mut tool = CountingTool::new();
    let r = run_program(&prog, &mut tool, &mut RoundRobin::new());
    assert!(r.termination.is_clean(), "{:?}", r.termination);
    assert_eq!(tool.count("acquire"), 100);
    assert_eq!(tool.count("release"), 100);
    assert!(tool.finished);
}

#[test]
fn mutex_protects_counter_under_random_schedules() {
    let prog = locked_counter_program(25);
    for seed in 0..20 {
        let mut tool = CountingTool::new();
        let r = run_program(&prog, &mut tool, &mut SeededRandom::new(seed));
        assert!(r.termination.is_clean(), "seed {seed}: {:?}", r.termination);
    }
}

#[test]
fn deterministic_event_trace_per_seed() {
    let prog = locked_counter_program(10);
    let mut t1 = RecordingTool::new();
    let mut t2 = RecordingTool::new();
    run_program(&prog, &mut t1, &mut SeededRandom::new(7));
    run_program(&prog, &mut t2, &mut SeededRandom::new(7));
    assert_eq!(t1.events, t2.events, "same seed must give identical traces");
}

#[test]
fn spawn_join_ordering_events() {
    let mut pb = ProgramBuilder::new();
    let g = pb.global("x", 8);
    let wloc = pb.loc("t.cpp", 2, "child");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    w.store(g, 1u64, 8);
    let child = pb.add_proc("child", w);

    let mloc = pb.loc("t.cpp", 9, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let h = main.spawn(child, vec![]);
    main.join(h);
    let v = main.load_new(g, 8);
    main.assert_eq(v, 1u64, "child write visible after join");
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let mut rec = RecordingTool::new();
    let r = run_program(&prog, &mut rec, &mut RoundRobin::new());
    assert!(r.termination.is_clean());

    let kinds: Vec<&str> = rec.events.iter().map(|e| e.kind_name()).collect();
    // create must precede the child's write; join must follow the child's exit.
    let create = kinds.iter().position(|&k| k == "thread-create").unwrap();
    let exit = kinds.iter().position(|&k| k == "thread-exit").unwrap();
    let join = kinds.iter().position(|&k| k == "thread-join").unwrap();
    assert!(create < exit && exit < join);
    assert_eq!(r.stats.threads_created, 2);
}

#[test]
fn ab_ba_lock_order_deadlocks() {
    let mut pb = ProgramBuilder::new();
    let ma = pb.global("mutex_a", 8);
    let mb = pb.global("mutex_b", 8);

    // worker(first, second): lock(first); yield; lock(second); unlock both
    let loc = pb.loc("dl.cpp", 4, "worker");
    let mut w = ProcBuilder::new(2);
    w.at(loc);
    let first = w.param(0);
    let second = w.param(1);
    let f = w.load_new(Expr::Reg(first), 8);
    w.lock(f);
    w.yield_();
    let s = w.load_new(Expr::Reg(second), 8);
    w.lock(s);
    w.unlock(s);
    w.unlock(f);
    let worker = pb.add_proc("worker", w);

    let mloc = pb.loc("dl.cpp", 16, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let a = main.new_mutex();
    let b = main.new_mutex();
    main.store(ma, a, 8);
    main.store(mb, b, 8);
    let h1 = main.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
    let h2 = main.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
    main.join(h1);
    main.join(h2);
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();

    // Round-robin interleaves finely enough that both workers grab their
    // first lock before either grabs its second: guaranteed deadlock.
    let mut tool = CountingTool::new();
    let r = run_program(&prog, &mut tool, &mut RoundRobin::new());
    match r.termination {
        Termination::Deadlock(waits) => {
            // Main blocked on join + two workers blocked on each other's mutex.
            assert_eq!(waits.len(), 3);
            let worker_waits: Vec<_> =
                waits.iter().filter(|w| matches!(w.on, BlockOn::Mutex(_))).collect();
            assert_eq!(worker_waits.len(), 2);
            // Each worker's wanted mutex is held by the other worker.
            for w in worker_waits {
                assert_eq!(w.holders.len(), 1);
                assert_ne!(w.holders[0], w.tid);
            }
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn priority_order_serialises_threads_avoiding_deadlock() {
    // Same AB-BA program, but a scheduler that runs worker 1 to completion
    // first cannot deadlock — schedule dependence in action (§4.3).
    let mut pb = ProgramBuilder::new();
    let ma = pb.global("mutex_a", 8);
    let mb = pb.global("mutex_b", 8);
    let loc = pb.loc("dl.cpp", 4, "worker");
    let mut w = ProcBuilder::new(2);
    w.at(loc);
    let f = w.load_new(Expr::Reg(w.param(0)), 8);
    w.lock(f);
    let s = w.load_new(Expr::Reg(w.param(1)), 8);
    w.lock(s);
    w.unlock(s);
    w.unlock(f);
    let worker = pb.add_proc("worker", w);
    let mloc = pb.loc("dl.cpp", 16, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let a = main.new_mutex();
    let b = main.new_mutex();
    main.store(ma, a, 8);
    main.store(mb, b, 8);
    let h1 = main.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
    let h2 = main.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
    main.join(h1);
    main.join(h2);
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let mut tool = CountingTool::new();
    let mut sched = PriorityOrder::new(vec![ThreadId(1), ThreadId(2), ThreadId(0)]);
    let r = run_program(&prog, &mut tool, &mut sched);
    assert!(r.termination.is_clean(), "{:?}", r.termination);
}

#[test]
fn condvar_handoff() {
    // Producer sets data then signals; consumer waits until flag is set.
    let mut pb = ProgramBuilder::new();
    let data = pb.global("data", 8);
    let flag = pb.global("flag", 8);
    let cells = pb.global("cells", 16); // [mutex, cond]

    let ploc = pb.loc("cv.cpp", 5, "producer");
    let mut p = ProcBuilder::new(0);
    p.at(ploc);
    let m = p.load_new(Expr::Global(cells), 8);
    let cv = p.load_new(Expr::Global(cells).add(8u64.into()), 8);
    p.store(data, 42u64, 8);
    p.lock(m);
    p.store(flag, 1u64, 8);
    p.sync(SyncOp::CondSignal(Expr::Reg(cv)));
    p.unlock(m);
    let producer = pb.add_proc("producer", p);

    let cloc = pb.loc("cv.cpp", 15, "consumer");
    let mut c = ProcBuilder::new(0);
    c.at(cloc);
    let m = c.load_new(Expr::Global(cells), 8);
    let cv = c.load_new(Expr::Global(cells).add(8u64.into()), 8);
    c.lock(m);
    let f = c.reg();
    c.load(f, flag, 8);
    c.begin_while(Cond::Eq(Expr::Reg(f), Expr::Const(0)));
    c.sync(SyncOp::CondWait { cond: Expr::Reg(cv), mutex: Expr::Reg(m) });
    c.load(f, flag, 8);
    c.end_while();
    let d = c.load_new(data, 8);
    c.assert_eq(d, 42u64, "data visible after condvar handoff");
    c.unlock(m);
    let consumer = pb.add_proc("consumer", c);

    let mloc = pb.loc("cv.cpp", 30, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let m = main.new_mutex();
    let cv = main.new_sync(SyncKind::CondVar, 0u64);
    main.store(cells, m, 8);
    main.store(Expr::Global(cells).add(8u64.into()), cv, 8);
    // Spawn consumer first so it genuinely parks before the signal under
    // the priority scheduler used below.
    let hc = main.spawn(consumer, vec![]);
    let hp = main.spawn(producer, vec![]);
    main.join(hc);
    main.join(hp);
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();

    // Force consumer to park first: run it with top priority.
    let mut rec = RecordingTool::new();
    let mut sched = PriorityOrder::new(vec![ThreadId(1), ThreadId(2), ThreadId(0)]);
    let r = run_program(&prog, &mut rec, &mut sched);
    assert!(r.termination.is_clean(), "{:?}", r.termination);
    let kinds: Vec<&str> = rec.events.iter().map(|e| e.kind_name()).collect();
    assert!(kinds.contains(&"cond-signal"));
    assert!(kinds.contains(&"cond-wake"));
    // The wake must come after the signal.
    let sig = kinds.iter().position(|&k| k == "cond-signal").unwrap();
    let wake = kinds.iter().position(|&k| k == "cond-wake").unwrap();
    assert!(sig < wake);
    // And the wake event must name the signaller.
    match rec.events[wake] {
        Event::CondWake { signaler, .. } => assert_eq!(signaler, ThreadId(2)),
        _ => unreachable!(),
    }

    // Also passes under round-robin and random schedules (consumer may not
    // need to park at all if the producer wins the race; the while-loop
    // handles that).
    for seed in 0..10 {
        let mut t = CountingTool::new();
        let r = run_program(&prog, &mut t, &mut SeededRandom::new(seed));
        assert!(r.termination.is_clean(), "seed {seed}: {:?}", r.termination);
    }
}

#[test]
fn bounded_queue_blocks_producer_and_consumer() {
    // Producer pushes 20 values through a capacity-2 queue; consumer sums.
    let mut pb = ProgramBuilder::new();
    let qcell = pb.global("qcell", 8);
    let total = pb.global("total", 8);

    let ploc = pb.loc("q.cpp", 4, "producer");
    let mut p = ProcBuilder::new(0);
    p.at(ploc);
    let q = p.load_new(qcell, 8);
    let i = p.let_(1u64);
    p.begin_repeat(20u64);
    p.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Reg(i) });
    p.assign(i, Expr::Reg(i).add(1u64.into()));
    p.end_repeat();
    let producer = pb.add_proc("producer", p);

    let cloc = pb.loc("q.cpp", 14, "consumer");
    let mut c = ProcBuilder::new(0);
    c.at(cloc);
    let q = c.load_new(qcell, 8);
    let acc = c.let_(0u64);
    let v = c.reg();
    c.begin_repeat(20u64);
    c.sync(SyncOp::QueueGet { queue: Expr::Reg(q), dst: v });
    c.assign(acc, Expr::Reg(acc).add(Expr::Reg(v)));
    c.end_repeat();
    c.store(total, Expr::Reg(acc), 8);
    let consumer = pb.add_proc("consumer", c);

    let mloc = pb.loc("q.cpp", 25, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let q = main.new_sync(SyncKind::Queue, 2u64);
    main.store(qcell, q, 8);
    let hp = main.spawn(producer, vec![]);
    let hc = main.spawn(consumer, vec![]);
    main.join(hp);
    main.join(hc);
    let t = main.load_new(total, 8);
    main.assert_eq(t, (1..=20u64).sum::<u64>(), "queue must deliver all values");
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();

    for seed in 0..10 {
        let mut tool = CountingTool::new();
        let r = run_program(&prog, &mut tool, &mut SeededRandom::new(seed));
        assert!(r.termination.is_clean(), "seed {seed}: {:?}", r.termination);
        assert_eq!(tool.count("queue-put"), 20);
        assert_eq!(tool.count("queue-got"), 20);
    }
}

#[test]
fn queue_tokens_pair_puts_with_gets() {
    let mut pb = ProgramBuilder::new();
    let qcell = pb.global("qcell", 8);
    let loc = pb.loc("q.cpp", 4, "main");
    let mut main = ProcBuilder::new(0);
    main.at(loc);
    let q = main.new_sync(SyncKind::Queue, 4u64);
    main.store(qcell, q, 8);
    main.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Const(11) });
    main.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Const(22) });
    let d = main.reg();
    main.sync(SyncOp::QueueGet { queue: Expr::Reg(q), dst: d });
    main.assert_eq(Expr::Reg(d), 11u64, "fifo order");
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let mut rec = RecordingTool::new();
    run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
    let puts: Vec<u64> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            Event::QueuePut { token, .. } => Some(*token),
            _ => None,
        })
        .collect();
    let gots: Vec<u64> = rec
        .events
        .iter()
        .filter_map(|e| match e {
            Event::QueueGot { token, .. } => Some(*token),
            _ => None,
        })
        .collect();
    assert_eq!(puts, vec![0, 1]);
    assert_eq!(gots, vec![0]);
}

#[test]
fn semaphore_limits_concurrency() {
    // Gate of 1: semaphore acts as a lock around an unprotected counter.
    let mut pb = ProgramBuilder::new();
    let scell = pb.global("scell", 8);
    let counter = pb.global("counter", 8);
    let loc = pb.loc("sem.cpp", 4, "worker");
    let mut w = ProcBuilder::new(0);
    w.at(loc);
    let s = w.load_new(scell, 8);
    w.begin_repeat(10u64);
    w.sync(SyncOp::SemWait(Expr::Reg(s)));
    let v = w.load_new(counter, 8);
    w.store(counter, Expr::Reg(v).add(1u64.into()), 8);
    w.sync(SyncOp::SemPost(Expr::Reg(s)));
    w.end_repeat();
    let worker = pb.add_proc("worker", w);
    let mloc = pb.loc("sem.cpp", 15, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let s = main.new_sync(SyncKind::Semaphore, 1u64);
    main.store(scell, s, 8);
    let h1 = main.spawn(worker, vec![]);
    let h2 = main.spawn(worker, vec![]);
    main.join(h1);
    main.join(h2);
    let v = main.load_new(counter, 8);
    main.assert_eq(v, 20u64, "semaphore-gated counter");
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();
    for seed in 0..10 {
        let mut tool = CountingTool::new();
        let r = run_program(&prog, &mut tool, &mut SeededRandom::new(seed));
        assert!(r.termination.is_clean(), "seed {seed}: {:?}", r.termination);
    }
}

#[test]
fn rwlock_blocks_writer_until_readers_leave() {
    let mut pb = ProgramBuilder::new();
    let rwcell = pb.global("rwcell", 8);
    let data = pb.global("data", 8);
    let rloc = pb.loc("rw.cpp", 4, "reader");
    let mut rd = ProcBuilder::new(0);
    rd.at(rloc);
    let rw = rd.load_new(rwcell, 8);
    rd.begin_repeat(5u64);
    rd.sync(SyncOp::RwLockRead(Expr::Reg(rw)));
    let _v = rd.load_new(data, 8);
    rd.sync(SyncOp::RwUnlock(Expr::Reg(rw)));
    rd.end_repeat();
    let reader = pb.add_proc("reader", rd);

    let wloc = pb.loc("rw.cpp", 12, "writer");
    let mut wr = ProcBuilder::new(0);
    wr.at(wloc);
    let rw = wr.load_new(rwcell, 8);
    wr.begin_repeat(5u64);
    wr.sync(SyncOp::RwLockWrite(Expr::Reg(rw)));
    let v = wr.load_new(data, 8);
    wr.store(data, Expr::Reg(v).add(1u64.into()), 8);
    wr.sync(SyncOp::RwUnlock(Expr::Reg(rw)));
    wr.end_repeat();
    let writer = pb.add_proc("writer", wr);

    let mloc = pb.loc("rw.cpp", 22, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let rw = main.new_sync(SyncKind::RwLock, 0u64);
    main.store(rwcell, rw, 8);
    let h1 = main.spawn(reader, vec![]);
    let h2 = main.spawn(reader, vec![]);
    let h3 = main.spawn(writer, vec![]);
    main.join(h1);
    main.join(h2);
    main.join(h3);
    let v = main.load_new(data, 8);
    main.assert_eq(v, 5u64, "writer increments land");
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();
    for seed in 0..10 {
        let mut tool = CountingTool::new();
        let r = run_program(&prog, &mut tool, &mut SeededRandom::new(seed));
        assert!(r.termination.is_clean(), "seed {seed}: {:?}", r.termination);
    }
}

#[test]
fn guest_error_on_unlock_of_unowned_mutex() {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("bad.cpp", 3, "main");
    let mut main = ProcBuilder::new(0);
    main.at(loc);
    let m = main.new_mutex();
    main.unlock(m);
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();
    let mut tool = CountingTool::new();
    let r = run_program(&prog, &mut tool, &mut RoundRobin::new());
    assert!(matches!(r.termination, Termination::GuestError(_)));
}

#[test]
fn guest_error_on_use_after_free_free() {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("bad.cpp", 3, "main");
    let mut main = ProcBuilder::new(0);
    main.at(loc);
    let p = main.alloc(32u64);
    main.free(p);
    main.free(p); // double free
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();
    let mut tool = CountingTool::new();
    let r = run_program(&prog, &mut tool, &mut RoundRobin::new());
    assert!(matches!(r.termination, Termination::GuestError(_)));
}

#[test]
fn recursion_works_and_overflow_is_caught() {
    // fib via recursion exercises call/ret value plumbing.
    let mut pb = ProgramBuilder::new();
    let fib = pb.declare_proc("fib");
    let loc = pb.loc("fib.cpp", 1, "fib");
    let mut f = ProcBuilder::new(1);
    f.at(loc);
    let n = f.param(0);
    f.begin_if(Cond::Lt(Expr::Reg(n), Expr::Const(2)));
    f.ret(Some(Expr::Reg(n)));
    f.end_if();
    let a = f.reg();
    let b = f.reg();
    f.call(fib, vec![Expr::Reg(n).sub(1u64.into())], Some(a));
    f.call(fib, vec![Expr::Reg(n).sub(2u64.into())], Some(b));
    f.ret(Some(Expr::Reg(a).add(Expr::Reg(b))));
    pb.define_proc(fib, f);

    let mloc = pb.loc("fib.cpp", 10, "main");
    let mut main = ProcBuilder::new(0);
    main.at(mloc);
    let r = main.reg();
    main.call(fib, vec![Expr::Const(10)], Some(r));
    main.assert_eq(Expr::Reg(r), 55u64, "fib(10)");
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();
    let mut tool = CountingTool::new();
    run_program(&prog, &mut tool, &mut RoundRobin::new()).expect_clean();
}

#[test]
fn client_requests_reach_tools() {
    let mut pb = ProgramBuilder::new();
    let loc = pb.loc("annot.cpp", 7, "g");
    let mut main = ProcBuilder::new(0);
    main.at(loc);
    let p = main.alloc(24u64);
    main.hg_destruct(p, 24u64);
    main.free(p);
    let main_id = pb.add_proc("main", main);
    pb.set_entry(main_id);
    let prog = pb.finish();
    let mut rec = RecordingTool::new();
    run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
    let destructs: Vec<_> = rec
        .events
        .iter()
        .filter(|e| matches!(e, Event::Client { req: vexec::ClientEv::HgDestruct { .. }, .. }))
        .collect();
    assert_eq!(destructs.len(), 1);
}
