//! Regression tests for tool stacking: every hook of the [`Tool`] trait —
//! `on_event`, `on_guest_fault`, `on_finish` — must reach *every* tool in a
//! [`FanoutTool`] stack, including when the run ends in a structured guest
//! fault from an injected failure. (A stack that forwards only `on_event`
//! silently loses detector end-of-run flushes and fault diagnostics.)

use vexec::faults::FaultPlan;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::sched::RoundRobin;
use vexec::tool::{FanoutTool, Tool};
use vexec::vm::{run_flat, GuestError, Termination, VmOptions, VmView};
use vexec::Event;

/// Records exactly which hooks fired.
#[derive(Default)]
struct ProbeTool {
    events: u64,
    faults: Vec<String>,
    finishes: u64,
}

impl Tool for ProbeTool {
    fn on_event(&mut self, _ev: &Event, _vm: &VmView<'_>) {
        self.events += 1;
    }

    fn on_guest_fault(&mut self, err: &GuestError, _vm: &VmView<'_>) {
        self.faults.push(err.to_string());
    }

    fn on_finish(&mut self, _vm: &VmView<'_>) {
        self.finishes += 1;
    }
}

fn locked_counter_program() -> vexec::Program {
    let mut pb = ProgramBuilder::new();
    let counter = pb.global("counter", 8);
    let m_cell = pb.global("m_cell", 8);
    let wloc = pb.loc("stack.cpp", 5, "worker");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let mx = w.load_new(m_cell, 8);
    w.begin_repeat(8);
    w.lock(mx);
    let v = w.load_new(counter, 8);
    w.store(counter, vexec::ir::Expr::Reg(v).add(1u64.into()), 8);
    w.unlock(mx);
    // Per-iteration scratch buffer. Under an alloc-failure plan the
    // allocation returns null and the store becomes a wild write — the
    // structured guest fault the second test provokes.
    let buf = w.alloc(16u64);
    w.store(vexec::ir::Expr::Reg(buf), 1u64, 8);
    w.free(vexec::ir::Expr::Reg(buf));
    w.end_repeat();
    let worker = pb.add_proc("worker", w);

    let mloc = pb.loc("stack.cpp", 20, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let a = m.spawn(worker, vec![]);
    let b = m.spawn(worker, vec![]);
    m.join(a);
    m.join(b);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

#[test]
fn fanout_forwards_all_hooks_on_clean_run() {
    let flat = locked_counter_program().lower();
    let mut a = ProbeTool::default();
    let mut b = ProbeTool::default();
    {
        let mut stack = FanoutTool::new(vec![&mut a, &mut b]);
        let r = run_flat(&flat, &mut stack, &mut RoundRobin::new(), VmOptions::default());
        assert!(r.termination.is_clean(), "{:?}", r.termination);
    }
    assert!(a.events > 0);
    assert_eq!(a.events, b.events, "both tools must see the same stream");
    assert_eq!(a.finishes, 1);
    assert_eq!(b.finishes, 1);
    assert!(a.faults.is_empty() && b.faults.is_empty());
}

#[test]
fn fanout_forwards_guest_fault_to_every_tool() {
    let flat = locked_counter_program().lower();
    // Every worker allocation fails: the null-pointer store that follows
    // is a structured guest fault, which must fan out to both tools.
    let plan = FaultPlan {
        seed: 7,
        wakeup_permille: 0,
        lockfail_permille: 0,
        allocfail_permille: 1000,
        kill_permille: 0,
        max_kills: 0,
    };
    let opts = VmOptions { faults: Some(plan), max_slots: 100_000, ..Default::default() };
    let mut a = ProbeTool::default();
    let mut b = ProbeTool::default();
    let term = {
        let mut stack = FanoutTool::new(vec![&mut a, &mut b]);
        run_flat(&flat, &mut stack, &mut RoundRobin::new(), opts).termination
    };
    assert!(matches!(term, Termination::GuestError(_)), "{term:?}");
    assert_eq!(a.faults.len(), 1, "first tool missed the fault");
    assert_eq!(b.faults.len(), 1, "second tool missed the fault");
    assert_eq!(a.faults, b.faults, "tools saw different faults");
    assert_eq!(a.events, b.events);
    // on_finish still fires after a faulted run (detectors flush there).
    assert_eq!(a.finishes, 1);
    assert_eq!(b.finishes, 1);
}
