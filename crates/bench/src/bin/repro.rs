//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p race-bench --bin repro -- all
//! cargo run --release -p race-bench --bin repro -- fig6
//! cargo run --release -p race-bench --bin repro -- fig6 --json out.json
//! ```
//!
//! Subcommands: fig5 fig6 fig8 fig10 fig4 e6-falseneg e7-perf e8-bugs
//! e9-deadlock e10-ablation e11-alloc e12-queue-hb all

use race_bench::experiments::*;
use serde::Serialize;
use sipsim::native::WorkloadSpec;
use std::io::Write;

fn maybe_json<T: Serialize>(json_path: &Option<String>, name: &str, value: &T) {
    if let Some(path) = json_path {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open json output");
        let line = serde_json::json!({ "experiment": name, "result": value });
        writeln!(file, "{line}").expect("write json output");
    }
}

fn fig6(json: &Option<String>) {
    println!(
        "## E1 / Fig 6 — reported possible-data-race locations (paper values in parentheses)\n"
    );
    println!("{:<5} {:>16} {:>16} {:>16}  {:>8}", "Case", "Original", "HWLC", "HWLC+DR", "FP cut");
    let rows = e1_fig6();
    #[derive(Serialize)]
    struct Row {
        case: &'static str,
        original: usize,
        hwlc: usize,
        hwlc_dr: usize,
        paper: (usize, usize, usize),
        fp_reduction: f64,
        unexpected: usize,
    }
    let mut out = Vec::new();
    for row in &rows {
        let (po, ph, pd) = row.paper;
        println!(
            "{:<5} {:>10} ({:>4}) {:>10} ({:>4}) {:>10} ({:>4})  {:>7.1}%",
            row.name,
            row.original.locations,
            po,
            row.hwlc.locations,
            ph,
            row.hwlc_dr.locations,
            pd,
            row.fp_reduction() * 100.0
        );
        out.push(Row {
            case: row.name,
            original: row.original.locations,
            hwlc: row.hwlc.locations,
            hwlc_dr: row.hwlc_dr.locations,
            paper: row.paper,
            fp_reduction: row.fp_reduction(),
            unexpected: row.original.unexpected + row.hwlc.unexpected + row.hwlc_dr.unexpected,
        });
    }
    maybe_json(json, "fig6", &out);
    println!();
}

fn fig5(json: &Option<String>) {
    println!("## E2 / Fig 5 — warning breakdown by ground truth (Original configuration)\n");
    println!(
        "{:<5} {:>14} {:>16} {:>12} {:>12}",
        "Case", "bus-lock FP", "destructor FP", "real races", "unexpected"
    );
    let rows = e1_fig6();
    #[derive(Serialize)]
    struct Row {
        case: &'static str,
        bus_fp: usize,
        dtor_fp: usize,
        real: usize,
        unexpected: usize,
    }
    let mut out = Vec::new();
    for row in &rows {
        println!(
            "{:<5} {:>14} {:>16} {:>12} {:>12}",
            row.name,
            row.original.bus_fp,
            row.original.dtor_fp,
            row.original.real,
            row.original.unexpected
        );
        out.push(Row {
            case: row.name,
            bus_fp: row.original.bus_fp,
            dtor_fp: row.original.dtor_fp,
            real: row.original.real,
            unexpected: row.original.unexpected,
        });
    }
    maybe_json(json, "fig5", &out);
    println!();
}

fn fig8(json: &Option<String>) {
    println!("## E3 / Fig 8+9 — std::string refcount false positive\n");
    let r = e3_fig8();
    println!("Original bus-lock model: {} warning location(s)", r.original_locations);
    if let Some(rep) = &r.original_report {
        println!("{rep}");
    }
    println!("HWLC bus-lock model:     {} warning location(s)\n", r.hwlc_locations);
    maybe_json(json, "fig8", &r);
}

fn fig10(json: &Option<String>) {
    println!("## E4 / Fig 10+11 — ownership hand-off: thread-per-request vs thread pool\n");
    let r = e4_handoff();
    println!(
        "thread-per-request: {} total locations, {} hand-off FPs",
        r.tpr_total, r.tpr_handoff_fps
    );
    println!(
        "thread pool:        {} total locations, {} hand-off FPs",
        r.pool_total, r.pool_handoff_fps
    );
    println!(
        "thread pool + queue-aware hybrid (E12 / §5): {} hand-off FPs\n",
        r.pool_queue_hb_handoff_fps
    );
    maybe_json(json, "fig10", &r);
}

fn fig4(json: &Option<String>) {
    println!("## E5 / Fig 3+4 — automatic delete-annotation pipeline\n");
    let r = e5_pipeline();
    println!("delete sites annotated: {}", r.deletes_annotated);
    println!("--- annotated source (stage 2 output) ---");
    println!("{}", r.annotated_source);
    println!("plain build warnings:        {}", r.plain_warnings);
    println!("instrumented build warnings: {}\n", r.instrumented_warnings);
    maybe_json(json, "fig4", &r);
}

fn e6(json: &Option<String>) {
    println!("## E6 / §4.3 — schedule-dependent false negative\n");
    let r = e6_false_negative();
    println!("unlocked write observed first: {} warnings (the documented miss)", r.unlocked_first);
    println!("locked write observed first:   {} warnings", r.locked_first);
    println!(
        "random schedules: caught in {}/{} runs (\"repeated tests with different\n  test data could help find such data-races\")\n",
        r.random_caught, r.schedules_tried
    );
    maybe_json(json, "e6-falseneg", &r);
}

fn e7(json: &Option<String>) {
    println!("## E7 / §4.5 — execution overhead (paper: VM 8-10x, VM+analysis 20-30x)\n");
    let spec = WorkloadSpec { threads: 4, iterations: 5_000, parse_reads: 16 };
    let r = e7_performance(spec, 5);
    println!(
        "workload: {} threads x {} iterations, {} events",
        spec.threads, spec.iterations, r.events
    );
    println!("native threads:        {:>9.3} ms   (1.0x)", r.native_ms);
    println!("VM, no tool:           {:>9.3} ms   ({:.1}x)", r.vm_null_ms, r.vm_slowdown);
    println!("VM + Eraser (HWLC+DR): {:>9.3} ms   ({:.1}x)", r.vm_eraser_ms, r.analysis_slowdown);
    println!(
        "VM + DJIT:             {:>9.3} ms   ({:.1}x)",
        r.vm_djit_ms,
        r.vm_djit_ms / r.native_ms
    );
    println!(
        "VM + hybrid:           {:>9.3} ms   ({:.1}x)\n",
        r.vm_hybrid_ms,
        r.vm_hybrid_ms / r.native_ms
    );
    maybe_json(json, "e7-perf", &r);
}

fn e8(json: &Option<String>) {
    println!("## E8 / §4.1 — true positives survive HWLC+DR\n");
    let results = e8_true_positives();
    for b in &results {
        println!(
            "{:<26} {:<16} detected={} ({} location(s))",
            b.name, b.section, b.detected, b.locations
        );
    }
    println!();
    if let Some(first) = results.first().and_then(|b| b.first_report.clone()) {
        println!("example report:\n{first}");
    }
    maybe_json(json, "e8-bugs", &results);
}

fn e9(json: &Option<String>) {
    println!("## E9 / §2.1+§3.3 — deadlock prediction and detection\n");
    let r = e9_deadlock();
    println!("lock-order cycles predicted on a run that did NOT deadlock: {}", r.predicted_cycles);
    if let Some(rep) = &r.prediction_report {
        println!("{rep}");
    }
    println!(
        "concurrent run: actual deadlock = {}, blocked threads = {}\n",
        r.actual_deadlock, r.blocked_threads
    );
    maybe_json(json, "e9-deadlock", &r);
}

fn e10(json: &Option<String>) {
    println!("## E10 — ablations: thread segments and detector families\n");
    let r = e10_ablation();
    println!(
        "fork-join hand-off, thread segments ON  (Visual Threads): {} warnings",
        r.fork_join_with_segments
    );
    println!(
        "fork-join hand-off, thread segments OFF (plain Eraser):   {} warnings",
        r.fork_join_without_segments
    );
    println!();
    println!("queue hand-off under each detector:");
    println!("  lockset (Eraser):        {}", r.queue_lockset);
    println!("  happens-before (DJIT):   {}", r.queue_djit);
    println!("  hybrid:                  {}", r.queue_hybrid);
    println!("  hybrid + queue hb (E12): {}\n", r.queue_hybrid_qhb);
    maybe_json(json, "e10-ablation", &r);
}

fn e11(json: &Option<String>) {
    println!("## E11 / §4 — libstdc++ pooling allocator reuse\n");
    let r = e11_pool();
    println!("pooled allocator:   {} warning(s)", r.pooled_warnings);
    if let Some(rep) = &r.pooled_report {
        println!("{rep}");
    }
    println!("GLIBCPP_FORCE_NEW:  {} warning(s)\n", r.force_new_warnings);
    maybe_json(json, "e11-alloc", &r);
}

fn e12(json: &Option<String>) {
    println!("## E12 / §5 — higher-level synchronisation awareness (future work)\n");
    let r = e10_ablation();
    println!("queue hand-off FP under lockset: {}", r.queue_lockset);
    println!("after teaching the hybrid detector queue put/get edges: {}\n", r.queue_hybrid_qhb);
    maybe_json(json, "e12-queue-hb", &r);
}

fn e13(json: &Option<String>) {
    println!("## E13 / §2.2 — on-the-fly vs post-mortem analysis\n");
    let r = e13_offline();
    println!("T3 execution: {} events", r.events);
    println!(
        "trace log: {} bytes ({:.1} bytes/event) — the offline data cost",
        r.trace_bytes, r.bytes_per_event
    );
    println!("recording took {:.2} ms, post-mortem analysis {:.2} ms", r.record_ms, r.analyze_ms);
    println!(
        "warning locations: online {} == offline {}\n",
        r.online_locations, r.offline_locations
    );
    maybe_json(json, "e13-offline", &r);
}

fn e14(json: &Option<String>) {
    println!("## E14 / §2.3.2 — schedule exploration (repeated runs)\n");
    let r = e14_explore();
    println!("one round-robin run reports {} location(s)", r.single_run_locations);
    println!(
        "{} seeded runs report {} distinct location(s): {} robust, {} schedule-dependent\n",
        r.runs, r.distinct_locations, r.robust_locations, r.flaky_locations
    );
    maybe_json(json, "e14-explore", &r);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json: Option<String> = None;
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json = Some(it.next().expect("--json needs a path"));
        } else {
            cmds.push(a);
        }
    }
    if cmds.is_empty() {
        eprintln!(
            "usage: repro [--json out.jsonl] <fig5|fig6|fig8|fig10|fig4|e6-falseneg|e7-perf|e8-bugs|e9-deadlock|e10-ablation|e11-alloc|e12-queue-hb|e13-offline|e14-explore|all>"
        );
        std::process::exit(2);
    }
    for cmd in cmds {
        match cmd.as_str() {
            "fig5" => fig5(&json),
            "fig6" => fig6(&json),
            "fig8" => fig8(&json),
            "fig10" => fig10(&json),
            "fig4" => fig4(&json),
            "e6-falseneg" => e6(&json),
            "e7-perf" => e7(&json),
            "e8-bugs" => e8(&json),
            "e9-deadlock" => e9(&json),
            "e10-ablation" => e10(&json),
            "e11-alloc" => e11(&json),
            "e12-queue-hb" => e12(&json),
            "e13-offline" => e13(&json),
            "e14-explore" => e14(&json),
            "all" => {
                fig6(&json);
                fig5(&json);
                fig8(&json);
                fig10(&json);
                fig4(&json);
                e6(&json);
                e7(&json);
                e8(&json);
                e9(&json);
                e10(&json);
                e11(&json);
                e12(&json);
                e13(&json);
                e14(&json);
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
}
