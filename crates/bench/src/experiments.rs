//! Experiment runners: one function per table/figure of the paper (see the
//! per-experiment index in DESIGN.md). Each returns a serialisable result
//! the `repro` binary prints and EXPERIMENTS.md records.

use crate::scenarios::*;
use helgrind_core::{DetectorConfig, DjitDetector, EraserDetector, HybridDetector, ReportKind};
use minicpp::pipeline::{run_pipeline, SourceFile};
use serde::Serialize;
use sipsim::bugs::all_bugs;
use sipsim::native::{native_workload, vm_workload_program, WorkloadSpec};
use sipsim::proxy::{build_proxy, Dispatch, ProxyConfig, SiteLabel};
use sipsim::testcases::{reproduce_fig6, Fig6Row};
use std::time::Instant;
use vexec::sched::{PriorityOrder, RoundRobin, Scheduler};
use vexec::tool::NullTool;
use vexec::vm::{run_program, Termination};
use vexec::ThreadId;

fn eraser_locations(
    prog: &vexec::Program,
    cfg: DetectorConfig,
    sched: &mut dyn Scheduler,
) -> (usize, Vec<helgrind_core::Report>) {
    let mut det = EraserDetector::new(cfg);
    let r = run_program(prog, &mut det, sched);
    assert!(r.termination.is_clean(), "{:?}", r.termination);
    (det.sink.race_location_count(), det.sink.take_reports())
}

// ---------------------------------------------------------------------
// E1/E2 — Fig 5 + Fig 6
// ---------------------------------------------------------------------

/// E1/E2: the eight test cases under the three configurations.
pub fn e1_fig6() -> Vec<Fig6Row> {
    reproduce_fig6()
}

// ---------------------------------------------------------------------
// E3 — Fig 8/9
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct Fig8Result {
    pub original_locations: usize,
    pub original_report: Option<String>,
    pub hwlc_locations: usize,
}

pub fn e3_fig8() -> Fig8Result {
    let prog = fig8_string_program();
    let (orig, reports) =
        eraser_locations(&prog, DetectorConfig::original(), &mut RoundRobin::new());
    let (hwlc, _) = eraser_locations(&prog, DetectorConfig::hwlc(), &mut RoundRobin::new());
    Fig8Result {
        original_locations: orig,
        original_report: reports.first().map(|r| r.render()),
        hwlc_locations: hwlc,
    }
}

// ---------------------------------------------------------------------
// E4 — Fig 10/11 (+E12 queue-hb extension)
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct HandoffResult {
    /// Eraser HWLC+DR on a thread-per-request proxy: hand-off FP locations.
    pub tpr_handoff_fps: usize,
    pub tpr_total: usize,
    /// Same sites through a thread pool.
    pub pool_handoff_fps: usize,
    pub pool_total: usize,
    /// Hybrid detector with queue happens-before on the pool build.
    pub pool_queue_hb_handoff_fps: usize,
}

pub fn e4_handoff() -> HandoffResult {
    let small = |dispatch| ProxyConfig {
        bus_sites: 2,
        dtor_sites: 3,
        real_sites: 3,
        touches_per_site: 2,
        sites_per_handler: 4,
        dispatch,
        annotate_deletes: true,
    };
    let tpr = build_proxy(&small(Dispatch::ThreadPerRequest));
    let pool = build_proxy(&small(Dispatch::ThreadPool { workers: 3 }));

    let count_handoff = |reports: &[helgrind_core::Report], built: &sipsim::BuiltProxy| {
        reports
            .iter()
            .filter(|r| built.sites.classify(&r.file, r.line) == Some(SiteLabel::HandoffFp))
            .count()
    };

    let (tpr_total, tpr_reports) =
        eraser_locations(&tpr.program, DetectorConfig::hwlc_dr(), &mut RoundRobin::new());
    let (pool_total, pool_reports) =
        eraser_locations(&pool.program, DetectorConfig::hwlc_dr(), &mut RoundRobin::new());

    let mut qhb = HybridDetector::new(DetectorConfig::hybrid_queue_hb());
    run_program(&pool.program, &mut qhb, &mut RoundRobin::new());
    let qhb_reports = qhb.sink.take_reports();

    HandoffResult {
        tpr_handoff_fps: count_handoff(&tpr_reports, &tpr),
        tpr_total,
        pool_handoff_fps: count_handoff(&pool_reports, &pool),
        pool_total,
        pool_queue_hb_handoff_fps: count_handoff(&qhb_reports, &pool),
    }
}

// ---------------------------------------------------------------------
// E5 — Fig 3/4 (instrumentation pipeline)
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct PipelineResult {
    pub deletes_annotated: usize,
    pub annotated_source: String,
    pub plain_warnings: usize,
    pub instrumented_warnings: usize,
}

const PIPELINE_APP: &str = "
class SipObject { int refs; virtual ~SipObject() {} };
class Session : SipObject { int dialogs; ~Session() {} };
mutex g_m;
int g_pending;
void use_session(Session* s) {
    lock(g_m);
    s->refresh();
    s->dialogs = s->dialogs + 1;
    g_pending = g_pending - 1;
    int last = g_pending == 0;
    unlock(g_m);
    if (last == 1) {
        delete s;
    }
}
void worker(Session* s) { use_session(s); }
void main() {
    g_pending = 2;
    Session* s = new Session;
    s->dialogs = 0;
    thread a = spawn worker(s);
    thread b = spawn worker(s);
    join(a);
    join(b);
}
";

pub fn e5_pipeline() -> PipelineResult {
    let instrumented = run_pipeline(&[SourceFile::new("session.cpp", PIPELINE_APP)]).unwrap();
    let plain =
        run_pipeline(&[SourceFile::without_instrumentation("session.cpp", PIPELINE_APP)]).unwrap();
    let (plain_warnings, _) =
        eraser_locations(&plain.program, DetectorConfig::hwlc_dr(), &mut RoundRobin::new());
    let (instrumented_warnings, _) =
        eraser_locations(&instrumented.program, DetectorConfig::hwlc_dr(), &mut RoundRobin::new());
    PipelineResult {
        deletes_annotated: instrumented.deletes_annotated,
        annotated_source: instrumented
            .annotated_sources
            .first()
            .map(|(_, s)| s.clone())
            .unwrap_or_default(),
        plain_warnings,
        instrumented_warnings,
    }
}

// ---------------------------------------------------------------------
// E6 — §4.3 false negative
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct FalseNegativeResult {
    /// Unlocked write observed first: warnings (the documented miss → 0).
    pub unlocked_first: usize,
    /// Locked write observed first: warnings (the race is caught → 1).
    pub locked_first: usize,
    /// Out of `schedules_tried` random schedules, how many caught it.
    pub random_caught: usize,
    pub schedules_tried: usize,
}

pub fn e6_false_negative() -> FalseNegativeResult {
    let prog = false_negative_program();
    let order = |o: [u32; 3]| PriorityOrder::new(o.iter().map(|&t| ThreadId(t)).collect());
    let (unlocked_first, _) =
        eraser_locations(&prog, DetectorConfig::hwlc_dr(), &mut order([0, 1, 2]));
    let (locked_first, _) =
        eraser_locations(&prog, DetectorConfig::hwlc_dr(), &mut order([0, 2, 1]));
    let schedules_tried = 20;
    let mut random_caught = 0;
    for seed in 0..schedules_tried {
        let mut sched = vexec::sched::SeededRandom::new(seed as u64);
        let (n, _) = eraser_locations(&prog, DetectorConfig::hwlc_dr(), &mut sched);
        if n > 0 {
            random_caught += 1;
        }
    }
    FalseNegativeResult { unlocked_first, locked_first, random_caught, schedules_tried }
}

// ---------------------------------------------------------------------
// E7 — §4.5 performance
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct PerfResult {
    pub native_ms: f64,
    pub vm_null_ms: f64,
    pub vm_eraser_ms: f64,
    pub vm_djit_ms: f64,
    pub vm_hybrid_ms: f64,
    /// VM (no tool) / native — the paper reports 8–10× for bare Valgrind.
    pub vm_slowdown: f64,
    /// VM + lockset analysis / native — the paper reports 20–30×.
    pub analysis_slowdown: f64,
    pub events: u64,
}

pub fn e7_performance(spec: WorkloadSpec, repeats: u32) -> PerfResult {
    let prog = vm_workload_program(spec);

    let time_ms = |f: &mut dyn FnMut()| {
        // One warm-up, then the median-ish best of `repeats`.
        f();
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };

    let native_ms = time_ms(&mut || {
        native_workload(spec);
    });
    let mut events = 0;
    let vm_null_ms = time_ms(&mut || {
        let r = run_program(&prog, &mut NullTool, &mut RoundRobin::new());
        events = r.stats.events;
    });
    let vm_eraser_ms = time_ms(&mut || {
        let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
        run_program(&prog, &mut det, &mut RoundRobin::new());
    });
    let vm_djit_ms = time_ms(&mut || {
        let mut det = DjitDetector::new(DetectorConfig::djit());
        run_program(&prog, &mut det, &mut RoundRobin::new());
    });
    let vm_hybrid_ms = time_ms(&mut || {
        let mut det = HybridDetector::new(DetectorConfig::hybrid());
        run_program(&prog, &mut det, &mut RoundRobin::new());
    });

    PerfResult {
        native_ms,
        vm_null_ms,
        vm_eraser_ms,
        vm_djit_ms,
        vm_hybrid_ms,
        vm_slowdown: vm_null_ms / native_ms,
        analysis_slowdown: vm_eraser_ms / native_ms,
        events,
    }
}

// ---------------------------------------------------------------------
// E8 — §4.1 true positives
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct BugResult {
    pub name: String,
    pub section: String,
    pub detected: bool,
    pub locations: usize,
    pub first_report: Option<String>,
}

pub fn e8_true_positives() -> Vec<BugResult> {
    all_bugs()
        .into_iter()
        .map(|bug| {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            let mut sched: Box<dyn Scheduler> = match &bug.schedule {
                Some(order) => {
                    Box::new(PriorityOrder::new(order.iter().map(|&t| ThreadId(t)).collect()))
                }
                None => Box::new(RoundRobin::new()),
            };
            run_program(&bug.program, &mut det, sched.as_mut());
            let reports = det.sink.take_reports();
            BugResult {
                name: bug.name.to_string(),
                section: bug.section.to_string(),
                detected: !reports.is_empty(),
                locations: reports.len(),
                first_report: reports.first().map(|r| r.render()),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E9 — deadlocks
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct DeadlockResult {
    /// Lock-order cycles predicted on the serialized (non-deadlocking) run.
    pub predicted_cycles: usize,
    pub prediction_report: Option<String>,
    /// Did the concurrent run actually deadlock, and how many threads
    /// were blocked?
    pub actual_deadlock: bool,
    pub blocked_threads: usize,
}

pub fn e9_deadlock() -> DeadlockResult {
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let r = run_program(&ab_ba_program(true), &mut det, &mut RoundRobin::new());
    assert!(r.termination.is_clean());
    let predicted = det.sink.count_kind(ReportKind::LockOrderCycle);
    let report = det
        .sink
        .reports()
        .iter()
        .find(|r| r.kind == ReportKind::LockOrderCycle)
        .map(|r| r.render());

    let r = run_program(&ab_ba_program(false), &mut NullTool, &mut RoundRobin::new());
    let (actual, blocked) = match r.termination {
        Termination::Deadlock(waits) => (true, waits.len()),
        _ => (false, 0),
    };
    DeadlockResult {
        predicted_cycles: predicted,
        prediction_report: report,
        actual_deadlock: actual,
        blocked_threads: blocked,
    }
}

// ---------------------------------------------------------------------
// E10 — ablations: thread segments, detector comparison
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct AblationResult {
    /// Fork-join hand-off with thread segments (Visual Threads): warnings.
    pub fork_join_with_segments: usize,
    /// Same, with plain Eraser ownership (segments disabled).
    pub fork_join_without_segments: usize,
    /// Queue hand-off: lockset vs DJIT vs hybrid (plain) vs hybrid+queue.
    pub queue_lockset: usize,
    pub queue_djit: usize,
    pub queue_hybrid: usize,
    pub queue_hybrid_qhb: usize,
}

pub fn e10_ablation() -> AblationResult {
    let fj = fork_join_handoff_program();
    let (with_seg, _) = eraser_locations(&fj, DetectorConfig::hwlc_dr(), &mut RoundRobin::new());
    let mut no_seg_cfg = DetectorConfig::hwlc_dr();
    no_seg_cfg.thread_segments = false;
    let (without_seg, _) = eraser_locations(&fj, no_seg_cfg, &mut RoundRobin::new());

    let q = queue_handoff_program();
    let (lockset, _) = eraser_locations(&q, DetectorConfig::hwlc_dr(), &mut RoundRobin::new());
    let mut djit = DjitDetector::new(DetectorConfig::djit());
    run_program(&q, &mut djit, &mut RoundRobin::new());
    let mut hybrid = HybridDetector::new(DetectorConfig::hybrid());
    run_program(&q, &mut hybrid, &mut RoundRobin::new());
    let mut hybrid_qhb = HybridDetector::new(DetectorConfig::hybrid_queue_hb());
    run_program(&q, &mut hybrid_qhb, &mut RoundRobin::new());

    AblationResult {
        fork_join_with_segments: with_seg,
        fork_join_without_segments: without_seg,
        queue_lockset: lockset,
        queue_djit: djit.sink.race_location_count(),
        queue_hybrid: hybrid.sink.race_location_count(),
        queue_hybrid_qhb: hybrid_qhb.sink.race_location_count(),
    }
}

// ---------------------------------------------------------------------
// E11 — pooled allocator
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct PoolResult {
    pub pooled_warnings: usize,
    pub pooled_report: Option<String>,
    pub force_new_warnings: usize,
}

pub fn e11_pool() -> PoolResult {
    let (pooled, reports) = eraser_locations(
        &pool_reuse_program(false),
        DetectorConfig::hwlc_dr(),
        &mut RoundRobin::new(),
    );
    let (force_new, _) = eraser_locations(
        &pool_reuse_program(true),
        DetectorConfig::hwlc_dr(),
        &mut RoundRobin::new(),
    );
    PoolResult {
        pooled_warnings: pooled,
        pooled_report: reports.first().map(|r| r.render()),
        force_new_warnings: force_new,
    }
}

// ---------------------------------------------------------------------
// E13 — §2.2 on-the-fly vs post-mortem analysis
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct OfflineResult {
    pub events: u64,
    pub trace_bytes: usize,
    pub bytes_per_event: f64,
    pub online_locations: usize,
    pub offline_locations: usize,
    pub record_ms: f64,
    pub analyze_ms: f64,
}

/// Record a full T3 execution trace, analyse it post mortem, and compare
/// the verdict with on-the-fly analysis — plus the log-volume cost the
/// paper warns about ("offline techniques suffer from their need for
/// large amount of data").
pub fn e13_offline() -> OfflineResult {
    use helgrind_core::offline::analyze_trace;
    use vexec::trace::TraceWriter;

    let tc = &sipsim::testcases()[2]; // T3
    let built = tc.build();

    // On-the-fly.
    let (online_locations, _) =
        eraser_locations(&built.program, DetectorConfig::original(), &mut RoundRobin::new());

    // Record.
    let t0 = Instant::now();
    let mut writer = TraceWriter::new();
    let r = run_program(&built.program, &mut writer, &mut RoundRobin::new());
    assert!(r.termination.is_clean());
    let record_ms = t0.elapsed().as_secs_f64() * 1e3;
    let trace = writer.finish();

    // Analyse post mortem.
    let t1 = Instant::now();
    let offline = analyze_trace(&trace, DetectorConfig::original(), false).unwrap();
    let analyze_ms = t1.elapsed().as_secs_f64() * 1e3;

    OfflineResult {
        events: trace.event_count(),
        trace_bytes: trace.bytes_len(),
        bytes_per_event: trace.bytes_per_event(),
        online_locations,
        offline_locations: offline.race_location_count(),
        record_ms,
        analyze_ms,
    }
}

// ---------------------------------------------------------------------
// E14 — §2.3.2 schedule exploration
// ---------------------------------------------------------------------

#[derive(Debug, Serialize)]
pub struct ExploreResult {
    pub runs: usize,
    pub distinct_locations: usize,
    pub robust_locations: usize,
    pub flaky_locations: usize,
    /// Locations a single round-robin run reports (what one test run sees).
    pub single_run_locations: usize,
}

/// Run the §4.3 false-negative program under many schedules: the explorer
/// finds the flaky warning that a single run can miss.
pub fn e14_explore() -> ExploreResult {
    use helgrind_core::explore::explore_schedules;
    let prog = false_negative_program();
    let summary = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 40, 0x5EED);
    let (single, _) = eraser_locations(&prog, DetectorConfig::hwlc_dr(), &mut RoundRobin::new());
    ExploreResult {
        runs: summary.runs,
        distinct_locations: summary.locations.len(),
        robust_locations: summary.robust().count(),
        flaky_locations: summary.flaky().count(),
        single_run_locations: single,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_offline_agrees_with_online() {
        let r = e13_offline();
        assert_eq!(r.online_locations, r.offline_locations);
        assert_eq!(r.online_locations, 252, "T3's Fig 6 Original count");
        assert!(r.trace_bytes > 0 && r.bytes_per_event > 0.0);
    }

    #[test]
    fn e14_explorer_finds_the_flaky_race() {
        let r = e14_explore();
        assert_eq!(r.distinct_locations, 1);
        assert_eq!(r.flaky_locations, 1, "the §4.3 race is schedule-dependent");
        assert_eq!(r.robust_locations, 0);
    }

    #[test]
    fn e3_fig8_shape() {
        let r = e3_fig8();
        assert_eq!(r.original_locations, 1);
        assert_eq!(r.hwlc_locations, 0);
        assert!(r.original_report.unwrap().contains("_M_grab"));
    }

    #[test]
    fn e4_handoff_shape() {
        let r = e4_handoff();
        assert_eq!(r.tpr_handoff_fps, 0);
        assert!(r.pool_handoff_fps >= 1);
        assert_eq!(r.pool_queue_hb_handoff_fps, 0);
    }

    #[test]
    fn e5_pipeline_shape() {
        let r = e5_pipeline();
        assert_eq!(r.deletes_annotated, 1);
        assert!(r.annotated_source.contains("ca_deletor_single"));
        assert!(r.plain_warnings > 0);
        assert_eq!(r.instrumented_warnings, 0);
    }

    #[test]
    fn e6_false_negative_shape() {
        let r = e6_false_negative();
        assert_eq!(r.unlocked_first, 0);
        assert_eq!(r.locked_first, 1);
        assert!(r.random_caught > 0, "repeated runs with different schedules help (§2.3.2)");
    }

    #[test]
    fn e8_all_bugs_detected() {
        let results = e8_true_positives();
        assert_eq!(results.len(), 5);
        for b in results {
            assert!(b.detected, "{} must be detected", b.name);
        }
    }

    #[test]
    fn e9_deadlock_shape() {
        let r = e9_deadlock();
        assert_eq!(r.predicted_cycles, 1);
        assert!(r.actual_deadlock);
        assert_eq!(r.blocked_threads, 3); // two workers + joining main
    }

    #[test]
    fn e10_ablation_shape() {
        let r = e10_ablation();
        assert_eq!(r.fork_join_with_segments, 0, "Visual Threads refinement");
        assert!(r.fork_join_without_segments > 0, "plain Eraser FPs");
        assert!(r.queue_lockset > 0);
        assert!(r.queue_djit > 0);
        assert!(r.queue_hybrid > 0);
        assert_eq!(r.queue_hybrid_qhb, 0);
    }

    #[test]
    fn e11_pool_shape() {
        let r = e11_pool();
        assert!(r.pooled_warnings > 0, "invisible recycling causes FPs");
        assert_eq!(r.force_new_warnings, 0, "GLIBCPP_FORCE_NEW removes them");
    }
}
