//! # race-bench — the reproduction harness
//!
//! One runner per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index). The `repro` binary prints every table; the
//! Criterion benches in `benches/` measure the §4.5 overhead story.

pub mod experiments;
pub mod scenarios;
