//! Guest-program builders shared by the `repro` binary, the Criterion
//! benches, and the workspace integration tests. Each corresponds to a
//! figure or section of the paper.

use cxxmodel::pool::PoolAllocator;
use cxxmodel::string::{emit_copy, emit_create, emit_drop, StringSite};
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Expr, Program, SyncKind, SyncOp};

/// Fig 8: the COW string refcount program (`stringtest.cpp`).
pub fn fig8_string_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let cell = pb.global("g_text", 8);
    let site = StringSite::new(&mut pb, "stringtest.cpp", 21);

    let wloc = pb.loc("stringtest.cpp", 10, "workerThread");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let rep = w.load_new(cell, 8);
    let copy = emit_copy(&mut w, rep, site);
    emit_drop(&mut w, copy, site, 40, None);
    let worker = pb.add_proc("workerThread", w);

    let mloc = pb.loc("stringtest.cpp", 16, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let rep = emit_create(&mut m, 16);
    m.store(cell, Expr::Reg(rep), 8);
    let h = m.spawn(worker, vec![]);
    m.yield_(); // sleep(1)
    let l22 = pb.loc("stringtest.cpp", 22, "main");
    m.at(l22);
    let copy = emit_copy(&mut m, rep, site); // <- reported conflict (Fig 8)
    emit_drop(&mut m, copy, site, 40, None);
    m.join(h);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

/// §4.3: the schedule-dependent false negative (unlocked writer A, locked
/// writer B). Returns the program; drive it with `PriorityOrder` schedules
/// `[0,1,2]` (A first → missed) and `[0,2,1]` (B first → reported).
pub fn false_negative_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let data = pb.global("g_shared", 8);
    let m_cell = pb.global("g_mutex", 8);

    let aloc = pb.loc("fn.cpp", 5, "writer_unlocked");
    let mut a = ProcBuilder::new(0);
    a.at(aloc);
    // Some preamble work (parsing, logging, ...) before the racy store, so
    // either order genuinely occurs across schedules.
    a.yield_();
    a.yield_();
    a.yield_();
    a.store(data, 1u64, 8);
    let wa = pb.add_proc("writer_unlocked", a);

    let bloc = pb.loc("fn.cpp", 12, "writer_locked");
    let mut b = ProcBuilder::new(0);
    b.at(bloc);
    let mx = b.load_new(m_cell, 8);
    b.lock(mx);
    b.store(data, 2u64, 8);
    b.unlock(mx);
    let wb = pb.add_proc("writer_locked", b);

    let mloc = pb.loc("fn.cpp", 20, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let h1 = m.spawn(wa, vec![]);
    let h2 = m.spawn(wb, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

/// §4 (libstdc++ note) / E11: pooled-allocator reuse. A block is shared
/// under a lock, released to the pool, recycled and reused — with pooling
/// the detector sees no free/alloc boundary and warns; with
/// `GLIBCPP_FORCE_NEW` semantics it stays silent.
pub fn pool_reuse_program(force_new: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let pool = PoolAllocator::install(&mut pb, force_new);
    let cell = pb.global("g_node", 8);
    let m_cell = pb.global("g_mutex", 8);

    let wloc = pb.loc("container.cpp", 30, "worker");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let mx = w.load_new(m_cell, 8);
    w.lock(mx);
    let p = w.load_new(cell, 8);
    let v = w.load_new(Expr::Reg(p), 8);
    w.store(Expr::Reg(p), Expr::Reg(v).add(1u64.into()), 8);
    w.unlock(mx);
    let worker = pb.add_proc("worker", w);

    let mloc = pb.loc("container.cpp", 50, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    pool.emit_init(&mut m);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let p = pool.emit_alloc(&mut m, 64);
    m.store(Expr::Reg(p), 1u64, 8);
    m.store(cell, Expr::Reg(p), 8);
    let h1 = m.spawn(worker, vec![]);
    let h2 = m.spawn(worker, vec![]);
    m.join(h1);
    m.join(h2);
    // The container node is released and the storage recycled for an
    // unrelated, single-threaded purpose.
    pool.emit_free(&mut m, p, 64);
    let q = pool.emit_alloc(&mut m, 64);
    let reuse_loc = pb.loc("container.cpp", 61, "main");
    m.at(reuse_loc);
    m.store(Expr::Reg(q), 7u64, 8);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

/// E9: AB-BA lock inversion. `serialized = true` runs the two workers one
/// after the other (no actual deadlock, but the lock-order graph sees the
/// inversion); `false` lets them overlap (deadlocks under round-robin).
pub fn ab_ba_program(serialized: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let ma = pb.global("g_mutex_a", 8);
    let mb = pb.global("g_mutex_b", 8);
    let loc = pb.loc("transfer.cpp", 12, "transfer");
    let mut w = ProcBuilder::new(2);
    w.at(loc);
    let f = w.load_new(Expr::Reg(w.param(0)), 8);
    w.lock(f);
    w.yield_();
    let s = w.load_new(Expr::Reg(w.param(1)), 8);
    w.lock(s);
    w.unlock(s);
    w.unlock(f);
    let worker = pb.add_proc("transfer", w);

    let mloc = pb.loc("transfer.cpp", 30, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let a = m.new_mutex();
    let b = m.new_mutex();
    m.store(ma, a, 8);
    m.store(mb, b, 8);
    if serialized {
        let h1 = m.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
        m.join(h1);
        let h2 = m.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
        m.join(h2);
    } else {
        let h1 = m.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
        let h2 = m.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
        m.join(h1);
        m.join(h2);
    }
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

/// E10 fork/join workload: parent initialises data, workers process under
/// create/join hand-off — clean *with* thread segments, a warning without.
pub fn fork_join_handoff_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let wloc = pb.loc("handoff.cpp", 8, "stage");
    let mut w = ProcBuilder::new(1);
    w.at(wloc);
    let buf = w.param(0);
    let v = w.load_new(Expr::Reg(buf), 8);
    w.store(Expr::Reg(buf), Expr::Reg(v).add(1u64.into()), 8);
    let stage = pb.add_proc("stage", w);

    let mloc = pb.loc("handoff.cpp", 20, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let buf = m.alloc(16u64);
    m.store(Expr::Reg(buf), 1u64, 8);
    // Three sequential stages, each a fresh thread (Fig 2's TS chain).
    for _ in 0..3 {
        let h = m.spawn(stage, vec![Expr::Reg(buf)]);
        m.join(h);
    }
    let v = m.load_new(Expr::Reg(buf), 8);
    m.assert_eq(v, 4u64, "all stages ran");
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

/// E4/E12 miniature: producer writes a message, hands it to a consumer via
/// a bounded queue, consumer writes it.
pub fn queue_handoff_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let q_cell = pb.global("g_queue", 8);

    let wloc = pb.loc("pool.cpp", 10, "pool_worker");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let q = w.load_new(q_cell, 8);
    let msg = w.reg();
    w.sync(SyncOp::QueueGet { queue: Expr::Reg(q), dst: msg });
    let ploc = pb.loc("pool.cpp", 14, "pool_worker");
    w.at(ploc);
    let v = w.load_new(Expr::Reg(msg), 8);
    w.store(Expr::Reg(msg), Expr::Reg(v).add(1u64.into()), 8);
    let worker = pb.add_proc("pool_worker", w);

    let mloc = pb.loc("pool.cpp", 24, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let q = m.new_sync(SyncKind::Queue, 4u64);
    m.store(q_cell, q, 8);
    let h = m.spawn(worker, vec![]); // worker exists before the message
    let msg = m.alloc(16u64);
    m.store(Expr::Reg(msg), 7u64, 8);
    m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Reg(msg) });
    m.join(h);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::sched::RoundRobin;
    use vexec::tool::NullTool;
    use vexec::vm::{run_program, Termination};

    #[test]
    fn scenarios_execute() {
        for prog in [
            fig8_string_program(),
            false_negative_program(),
            pool_reuse_program(true),
            pool_reuse_program(false),
            ab_ba_program(true),
            fork_join_handoff_program(),
            queue_handoff_program(),
        ] {
            let r = run_program(&prog, &mut NullTool, &mut RoundRobin::new());
            assert!(r.termination.is_clean(), "{:?}", r.termination);
        }
        // The concurrent AB-BA variant deadlocks by design.
        let r = run_program(&ab_ba_program(false), &mut NullTool, &mut RoundRobin::new());
        assert!(matches!(r.termination, Termination::Deadlock(_)));
    }
}
