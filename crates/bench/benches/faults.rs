//! Fault-injector overhead benchmark.
//!
//! The chaos harness promises that carrying a fault plan is close to free
//! when no fault actually fires: `VmOptions { faults: None }` skips the
//! injector entirely, while `Some(FaultPlan::disabled())` builds the
//! injector and pays the per-slot / per-sync-op hook checks but never
//! draws from the PRNG. The third configuration measures a realistic
//! active plan so the cost of *firing* faults (extra wakeups, retried
//! locks) is visible separately from the cost of *checking* for them.
//!
//! Run with: `cargo bench -p race-bench --bench faults`

use criterion::{criterion_group, criterion_main, Criterion};
use helgrind_core::{DetectorConfig, EraserDetector};
use sipsim::native::{vm_workload_program, WorkloadSpec};
use std::hint::black_box;
use vexec::faults::FaultPlan;
use vexec::sched::RoundRobin;
use vexec::tool::NullTool;
use vexec::vm::{run_flat, VmOptions};

const SPEC: WorkloadSpec = WorkloadSpec { threads: 4, iterations: 1_000, parse_reads: 16 };

fn bench_faults(c: &mut Criterion) {
    let prog = vm_workload_program(SPEC);
    let flat = prog.lower();
    let mut group = c.benchmark_group("faults");
    group.sample_size(10);

    let run = |faults: Option<FaultPlan>| {
        let opts = VmOptions { faults, ..Default::default() };
        let r = run_flat(&flat, &mut NullTool, &mut RoundRobin::new(), opts);
        black_box(r.stats.events)
    };

    group.bench_function("vm-faults-none", |b| b.iter(|| run(None)));

    group
        .bench_function("vm-faults-disabled-plan", |b| b.iter(|| run(Some(FaultPlan::disabled()))));

    group.bench_function("vm-faults-active-plan", |b| {
        b.iter(|| run(Some(FaultPlan::from_seed(0xC0FFEE))))
    });

    // Same comparison under a real detector: the hook cost must stay
    // negligible relative to analysis cost.
    group.bench_function("vm-eraser-faults-none", |b| {
        b.iter(|| {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            let opts = VmOptions::default();
            run_flat(&flat, &mut det, &mut RoundRobin::new(), opts);
            black_box(det.sink.location_count())
        })
    });

    group.bench_function("vm-eraser-faults-disabled-plan", |b| {
        b.iter(|| {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            let opts = VmOptions { faults: Some(FaultPlan::disabled()), ..Default::default() };
            run_flat(&flat, &mut det, &mut RoundRobin::new(), opts);
            black_box(det.sink.location_count())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
