//! Detector micro-benchmarks: per-event cost of each algorithm on the
//! proxy workload, and the effect of the interned-lockset representation
//! (the Eraser-paper lockset-index scheme) exercised through deep lock
//! nesting.
//!
//! Run with: `cargo bench -p race-bench --bench detectors`

use criterion::{criterion_group, criterion_main, Criterion};
use helgrind_core::{DetectorConfig, DjitDetector, EraserDetector, HybridDetector};
use sipsim::proxy::{build_proxy, Dispatch, ProxyConfig};
use std::hint::black_box;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Expr, Program};
use vexec::sched::RoundRobin;
use vexec::vm::run_program;

fn proxy_program() -> vexec::Program {
    build_proxy(&ProxyConfig {
        bus_sites: 10,
        dtor_sites: 20,
        real_sites: 10,
        touches_per_site: 2,
        sites_per_handler: 10,
        dispatch: Dispatch::ThreadPerRequest,
        annotate_deletes: true,
    })
    .program
}

/// Workers repeatedly acquire a nested stack of locks around accesses:
/// stresses lockset interning and the intersection cache.
fn nested_locks_program(depth: u64, iters: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    let cells = pb.global("g_locks", 8 * depth);
    let data = pb.global("g_data", 8);

    let wloc = pb.loc("nested.cpp", 5, "worker");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let handles: Vec<_> =
        (0..depth).map(|i| w.load_new(Expr::Global(cells).add(Expr::Const(8 * i)), 8)).collect();
    w.begin_repeat(iters);
    for &h in &handles {
        w.lock(h);
    }
    let v = w.load_new(data, 8);
    w.store(data, Expr::Reg(v).add(1u64.into()), 8);
    for &h in handles.iter().rev() {
        w.unlock(h);
    }
    w.end_repeat();
    let worker = pb.add_proc("worker", w);

    let mloc = pb.loc("nested.cpp", 30, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    for i in 0..depth {
        let mx = m.new_mutex();
        m.store(Expr::Global(cells).add(Expr::Const(8 * i)), mx, 8);
    }
    let h1 = m.spawn(worker, vec![]);
    let h2 = m.spawn(worker, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

fn bench_detectors_on_proxy(c: &mut Criterion) {
    let prog = proxy_program();
    let mut group = c.benchmark_group("proxy-workload");
    group.sample_size(10);
    group.bench_function("eraser-original", |b| {
        b.iter(|| {
            let mut det = EraserDetector::new(DetectorConfig::original());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });
    group.bench_function("eraser-hwlc-dr", |b| {
        b.iter(|| {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });
    group.bench_function("djit", |b| {
        b.iter(|| {
            let mut det = DjitDetector::new(DetectorConfig::djit());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });
    group.bench_function("hybrid", |b| {
        b.iter(|| {
            let mut det = HybridDetector::new(DetectorConfig::hybrid_queue_hb());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });
    group.finish();
}

fn bench_lockset_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("lockset-nesting");
    group.sample_size(10);
    for depth in [1u64, 4, 8] {
        let prog = nested_locks_program(depth, 200);
        group.bench_function(format!("depth-{depth}"), |b| {
            b.iter(|| {
                let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
                run_program(&prog, &mut det, &mut RoundRobin::new());
                black_box(det.sink.location_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors_on_proxy, bench_lockset_interning);
criterion_main!(benches);
