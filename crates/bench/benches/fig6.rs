//! E1 / Fig 6 as a benchmark: time to run one full evaluation test case
//! (T3, the smallest) under each detector configuration — the cost of the
//! debugging process itself, per configuration.
//!
//! Run with: `cargo bench -p race-bench --bench fig6`

use criterion::{criterion_group, criterion_main, Criterion};
use helgrind_core::{DetectorConfig, EraserDetector};
use sipsim::testcases::testcases;
use std::hint::black_box;
use vexec::sched::RoundRobin;
use vexec::vm::run_program;

fn bench_fig6_case(c: &mut Criterion) {
    let t3 = &testcases()[2];
    assert_eq!(t3.name, "T3");
    let built = t3.build();
    let mut group = c.benchmark_group("fig6-T3");
    group.sample_size(10);
    for (name, cfg) in [
        ("original", DetectorConfig::original()),
        ("hwlc", DetectorConfig::hwlc()),
        ("hwlc-dr", DetectorConfig::hwlc_dr()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut det = EraserDetector::new(cfg);
                run_program(&built.program, &mut det, &mut RoundRobin::new());
                black_box(det.sink.location_count())
            })
        });
    }
    group.finish();
}

fn bench_proxy_build(c: &mut Criterion) {
    let t3 = &testcases()[2];
    let mut group = c.benchmark_group("fig6-build");
    group.sample_size(10);
    group.bench_function("build-T3-program", |b| b.iter(|| black_box(t3.build().handlers)));
    group.finish();
}

criterion_group!(benches, bench_fig6_case, bench_proxy_build);
criterion_main!(benches);
