//! Vector-clock vs FastTrack-epoch micro-benchmarks.
//!
//! Isolates the two costs the adaptive epoch representation trades
//! between:
//!
//! * `epoch-*` — the O(1) fast paths: a same-epoch scalar compare and an
//!   `Epoch::visible_to` bounds-checked single-lane read;
//! * `vc-*` — the O(width) work each fast-path hit avoids: cloning a
//!   read vector clock, folding in the new read, and a full `leq` scan;
//! * `hb-soup-*` — the whole `HbEngine` on a read-heavy event soup, once
//!   with the adaptive lattice and once in `hb_reference` mode, so the
//!   end-to-end win (not just the inner-loop delta) is on record.
//!
//! Run with: `cargo bench -p race-bench --bench vc`

use criterion::{criterion_group, criterion_main, Criterion};
use helgrind_core::{DetectorConfig, Epoch, HbEngine, SmallVc, VectorClock};
use std::hint::black_box;
use vexec::event::{AccessKind, AcqMode, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};

const LOC: SrcLoc = SrcLoc::UNKNOWN;

fn access(tid: u32, addr: u64, kind: AccessKind) -> Event {
    Event::Access { tid: ThreadId(tid), addr, size: 8, kind, loc: LOC }
}

fn bench_vc_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("vc");
    group.sample_size(10);

    let mut tvc = VectorClock::new();
    for t in 0..8usize {
        tvc.set(t, 42 + t as u32);
    }
    let e = Epoch { tid: 3, clock: 41 };

    // Same-epoch compare: the write/read fast path's first test.
    group.bench_function("epoch-same-compare-10k", |b| {
        let cur = Epoch { tid: 3, clock: 41 };
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(black_box(e) == black_box(cur));
            }
        })
    });

    // Epoch visibility: one lane read + compare against the accessor's
    // clock — the ordered-read / ordered-write check.
    group.bench_function("epoch-visible-to-10k", |b| {
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(black_box(e).visible_to(black_box(&tvc)));
            }
        })
    });

    // The full-VC read update the epoch lattice avoids: clone the read
    // clock, fold in the new read, scan it against the thread clock.
    group.bench_function("vc-clone-set-leq-10k", |b| {
        let mut reads = VectorClock::new();
        for t in 0..8usize {
            reads.set(t, 7 * t as u32);
        }
        b.iter(|| {
            for _ in 0..10_000 {
                let mut j = black_box(&reads).clone();
                j.set(e.tid as usize, e.clock);
                black_box(j.leq(black_box(&tvc)));
            }
        })
    });

    // Promoted read-share state: the inline small-VC update + scan used
    // once two concurrent readers exist (no heap traffic below 8 lanes).
    group.bench_function("smallvc-set-leq-10k", |b| {
        let base = SmallVc::pair(Epoch { tid: 1, clock: 5 }, Epoch { tid: 2, clock: 9 });
        b.iter(|| {
            for _ in 0..10_000 {
                let mut svc = black_box(&base).clone();
                svc.set(e.tid as usize, e.clock);
                black_box(svc.leq(black_box(&tvc)));
            }
        })
    });

    group.finish();
}

fn bench_hb_soup(c: &mut Criterion) {
    let mut group = c.benchmark_group("hb-soup");
    group.sample_size(10);

    // Read-heavy lock-protected soup: 4 threads round-robin over 64
    // granules, 7 reads per write, each burst under a common mutex so
    // every read after the first is thread-local or ordered — the case
    // the epoch lattice keeps in Single(e) with O(1) checks.
    let mut soup: Vec<Event> = Vec::new();
    for round in 0..2_000u64 {
        let t = (round % 4) as u32;
        soup.push(Event::Acquire {
            tid: ThreadId(t),
            sync: SyncId(0),
            kind: SyncKind::Mutex,
            mode: AcqMode::Exclusive,
            loc: LOC,
        });
        let a = 0x4000 + (round % 64) * 8;
        soup.push(access(t, a, AccessKind::Write));
        for _ in 0..7 {
            soup.push(access(t, a, AccessKind::Read));
        }
        soup.push(Event::Release {
            tid: ThreadId(t),
            sync: SyncId(0),
            kind: SyncKind::Mutex,
            loc: LOC,
        });
    }

    for (name, reference) in [("adaptive", false), ("reference", true)] {
        group.bench_function(name, |b| {
            let cfg = DetectorConfig { hb_reference: reference, ..DetectorConfig::djit() };
            b.iter(|| {
                let mut eng = HbEngine::new(cfg);
                for ev in &soup {
                    black_box(eng.on_event(ev));
                }
                black_box(eng.shadowed_granules())
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_vc_micro, bench_hb_soup);
criterion_main!(benches);
