//! Trace subsystem benchmarks: codec throughput (events/sec through
//! encode and decode) and record-mode overhead against the inline
//! detectors over the same workload.
//!
//! The number that justifies the subsystem: `vm-record` must sit well
//! below `vm-hybrid` — recording in production and analyzing offline has
//! to be cheaper than detecting inline.
//!
//! Run with: `cargo bench -p race-bench --bench trace`

use criterion::{criterion_group, criterion_main, Criterion};
use helgrind_core::{DetectorConfig, EraserDetector, HybridDetector};
use raceline_trace::format::{decode_record, encode_event, CodecState, Cursor};
use raceline_trace::writer::TraceWriter;
use sipsim::native::{vm_workload_program, WorkloadSpec};
use std::hint::black_box;
use vexec::sched::RoundRobin;
use vexec::tool::{NullTool, RecordingTool};
use vexec::vm::run_program;

const SPEC: WorkloadSpec = WorkloadSpec { threads: 4, iterations: 1_000, parse_reads: 16 };

fn bench_codec(c: &mut Criterion) {
    // One VM run supplies a realistic event mix; the codec is then
    // measured in isolation over that stream.
    let prog = vm_workload_program(SPEC);
    let mut rec = RecordingTool::new();
    run_program(&prog, &mut rec, &mut RoundRobin::new());
    let events = rec.events;

    let mut encoded = Vec::new();
    let mut st = CodecState::default();
    for ev in &events {
        encode_event(&mut encoded, &mut st, ev);
    }

    let mut group = c.benchmark_group("trace-codec");
    group.sample_size(20);
    group.bench_function(format!("encode-{}-events", events.len()), |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            let mut st = CodecState::default();
            for ev in &events {
                encode_event(&mut buf, &mut st, ev);
            }
            black_box(buf.len())
        })
    });
    group.bench_function(format!("decode-{}-events", events.len()), |b| {
        b.iter(|| {
            let mut c = Cursor::new(&encoded, 0);
            let mut st = CodecState::default();
            let mut n = 0u64;
            while !c.is_empty() {
                decode_record(&mut c, &mut st, u32::MAX).expect("self-encoded stream");
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_record_overhead(c: &mut Criterion) {
    let prog = vm_workload_program(SPEC);
    let mut group = c.benchmark_group("trace-overhead");
    group.sample_size(10);

    group.bench_function("vm-no-tool", |b| {
        b.iter(|| {
            let r = run_program(&prog, &mut NullTool, &mut RoundRobin::new());
            black_box(r.stats.events)
        })
    });

    group.bench_function("vm-record", |b| {
        b.iter(|| {
            let mut w = TraceWriter::new(Vec::with_capacity(1 << 20));
            let r = run_program(&prog, &mut w, &mut RoundRobin::new());
            let s = w.finish(&r.termination, &r.stats, r.faults.as_ref()).expect("vec sink");
            black_box(s.bytes)
        })
    });

    group.bench_function("vm-eraser-hwlc-dr", |b| {
        b.iter(|| {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });

    group.bench_function("vm-hybrid", |b| {
        b.iter(|| {
            let mut det = HybridDetector::new(DetectorConfig::hybrid());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_codec, bench_record_overhead);
criterion_main!(benches);
