//! E7 / §4.5 — execution overhead benchmark.
//!
//! The paper: "Execution of the program with analysis using the presented
//! algorithm is 20-30 times slower than when run without Helgrind ... If
//! run on Valgrind, the program is slowed down by a factor of 8-10 without
//! instrumentation." The shape to reproduce: native < VM(no tool) <
//! VM+detector, with analysis a small-integer multiple of the bare VM.
//!
//! Run with: `cargo bench -p race-bench --bench overhead`

use criterion::{criterion_group, criterion_main, Criterion};
use helgrind_core::{DetectorConfig, DjitDetector, EraserDetector, HybridDetector};
use sipsim::native::{native_workload, vm_workload_program, WorkloadSpec};
use std::hint::black_box;
use vexec::sched::RoundRobin;
use vexec::tool::NullTool;
use vexec::vm::run_program;

const SPEC: WorkloadSpec = WorkloadSpec { threads: 4, iterations: 1_000, parse_reads: 16 };

fn bench_overhead(c: &mut Criterion) {
    let prog = vm_workload_program(SPEC);
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);

    group.bench_function("native-threads", |b| b.iter(|| black_box(native_workload(SPEC))));

    group.bench_function("vm-no-tool", |b| {
        b.iter(|| {
            let r = run_program(&prog, &mut NullTool, &mut RoundRobin::new());
            black_box(r.stats.events)
        })
    });

    group.bench_function("vm-eraser-original", |b| {
        b.iter(|| {
            let mut det = EraserDetector::new(DetectorConfig::original());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });

    group.bench_function("vm-eraser-hwlc-dr", |b| {
        b.iter(|| {
            let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });

    group.bench_function("vm-djit", |b| {
        b.iter(|| {
            let mut det = DjitDetector::new(DetectorConfig::djit());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });

    group.bench_function("vm-hybrid", |b| {
        b.iter(|| {
            let mut det = HybridDetector::new(DetectorConfig::hybrid());
            run_program(&prog, &mut det, &mut RoundRobin::new());
            black_box(det.sink.location_count())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
