//! Shadow-memory and parallel-exploration benchmarks.
//!
//! Three cost centres the page-table refactor targets, isolated from the
//! VM interpreter so a regression is attributable:
//!
//! * `access-*` — the per-access hot path of the lockset engine (shadow
//!   lookup + state step + writeback), on a cache-friendly single granule
//!   and on a 64K-granule sweep where the two-level layout matters;
//! * `lock-roundtrip` — acquire/release, which rebuilds the four interned
//!   locksets (allocation-free since the borrowed-slice intern);
//! * `page-reset` — `Alloc` over a large range, which must unmap whole
//!   pages instead of deleting granules one hash entry at a time.
//!
//! The `explore-T*` group times the same schedule sweep on 1, 4 and 8
//! worker threads; the merged summary is bit-identical across them, so
//! the only thing allowed to change is wall-clock time.
//!
//! Run with: `cargo bench -p race-bench --bench shadow`

use criterion::{criterion_group, criterion_main, Criterion};
use helgrind_core::explore::{explore_schedules_with, ExploreLimits};
use helgrind_core::{DetectorConfig, LocksetEngine};
use sipsim::native::{vm_workload_program, WorkloadSpec};
use std::hint::black_box;
use vexec::event::{AccessKind, AcqMode, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};

const LOC: SrcLoc = SrcLoc::UNKNOWN;

fn access(tid: u32, addr: u64, kind: AccessKind) -> Event {
    Event::Access { tid: ThreadId(tid), addr, size: 8, kind, loc: LOC }
}

fn bench_shadow(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow");
    group.sample_size(10);

    // Steady-state shared-modified granule: two threads, one address,
    // alternating writes under a common lock. 10_000 accesses per iter.
    group.bench_function("access-hot-10k", |b| {
        let mut eng = LocksetEngine::new(DetectorConfig::hwlc_dr());
        for t in 0..2 {
            eng.on_event(&Event::Acquire {
                tid: ThreadId(t),
                sync: SyncId(0),
                kind: SyncKind::Mutex,
                mode: AcqMode::Exclusive,
                loc: LOC,
            });
        }
        b.iter(|| {
            for i in 0..10_000u64 {
                let r = eng.on_event(&access((i & 1) as u32, 0x2000, AccessKind::Write));
                black_box(r);
            }
        })
    });

    // 64K distinct granules touched in order: page materialisation plus
    // the last-page cache riding each 1024-slot secondary end to end.
    group.bench_function("access-spread-64k", |b| {
        b.iter(|| {
            let mut eng = LocksetEngine::new(DetectorConfig::hwlc_dr());
            for i in 0..65_536u64 {
                let r = eng.on_event(&access(0, 0x2000 + i * 8, AccessKind::Write));
                black_box(r);
            }
            black_box(eng.shadowed_granules())
        })
    });

    // Lock/unlock pair: rebuilds the interned locksets twice. 10_000
    // round-trips per iter.
    group.bench_function("lock-roundtrip-10k", |b| {
        let mut eng = LocksetEngine::new(DetectorConfig::hwlc_dr());
        b.iter(|| {
            for _ in 0..10_000 {
                eng.on_event(&Event::Acquire {
                    tid: ThreadId(0),
                    sync: SyncId(1),
                    kind: SyncKind::Mutex,
                    mode: AcqMode::Exclusive,
                    loc: LOC,
                });
                eng.on_event(&Event::Release {
                    tid: ThreadId(0),
                    sync: SyncId(1),
                    kind: SyncKind::Mutex,
                    loc: LOC,
                });
            }
            black_box(eng.accesses)
        })
    });

    // Alloc over 512 KiB of populated shadow: full secondaries must be
    // dropped wholesale, not granule by granule.
    group.bench_function("page-reset-512k", |b| {
        let mut eng = LocksetEngine::new(DetectorConfig::hwlc_dr());
        b.iter(|| {
            for i in 0..(512 * 1024 / 64) {
                // Touch one granule per 64 bytes so pages are mapped.
                eng.on_event(&access(0, 0x10000 + i * 64, AccessKind::Write));
            }
            eng.on_event(&Event::Alloc {
                tid: ThreadId(0),
                addr: 0x10000,
                size: 512 * 1024,
                loc: LOC,
            });
            black_box(eng.shadowed_granules())
        })
    });

    group.finish();
}

fn bench_explore(c: &mut Criterion) {
    let prog = vm_workload_program(WorkloadSpec { threads: 4, iterations: 120, parse_reads: 16 });
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);

    for jobs in [1usize, 4, 8] {
        group.bench_function(format!("sweep-24-T{jobs}"), |b| {
            b.iter(|| {
                let limits = ExploreLimits { jobs, ..Default::default() };
                let s = explore_schedules_with(
                    &prog,
                    DetectorConfig::hwlc_dr(),
                    24,
                    0xACE,
                    limits,
                    None,
                );
                black_box((s.runs, s.slots_used))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_shadow, bench_explore);
criterion_main!(benches);
