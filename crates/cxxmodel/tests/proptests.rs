//! Property-based tests for the C++ object model: layout invariants over
//! random class hierarchies, destructor-chain structure, and refcounted
//! string conservation under random copy/drop sequences.

use cxxmodel::classes::{ClassId, ClassModel};
use cxxmodel::string::{emit_copy, emit_create, emit_drop, StringSite, OFF_DATA};
use proptest::prelude::*;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::sched::RoundRobin;
use vexec::tool::RecordingTool;
use vexec::vm::run_program;
use vexec::Event;

/// Build a random single-inheritance forest: each class optionally derives
/// from an earlier one.
fn build_hierarchy(
    pb: &mut ProgramBuilder,
    spec: &[(Option<usize>, u32)],
) -> (ClassModel, Vec<ClassId>) {
    let mut model = ClassModel::new();
    let mut ids = Vec::new();
    for (i, &(base, fields)) in spec.iter().enumerate() {
        let base_id = if ids.is_empty() { None } else { base.map(|b| ids[b % ids.len()]) };
        let id = model.declare(pb, &format!("C{i}"), "h.cpp", 10 * (i as u32 + 1), base_id, fields);
        ids.push(id);
    }
    (model, ids)
}

fn hierarchy_strategy() -> impl Strategy<Value = Vec<(Option<usize>, u32)>> {
    prop::collection::vec((prop::option::of(0usize..8), 0u32..5), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layout invariants: size = 8 + 8·total_fields; field offsets are
    /// dense, within bounds, and chain length equals inheritance depth.
    #[test]
    fn layout_invariants(spec in hierarchy_strategy()) {
        let mut pb = ProgramBuilder::new();
        let (model, ids) = build_hierarchy(&mut pb, &spec);
        for &id in &ids {
            let total = model.total_fields(id);
            prop_assert_eq!(model.size_of(id), 8 + total as u64 * 8);
            for f in 0..total {
                let off = model.field_offset(id, f);
                prop_assert!(off >= 8);
                prop_assert!(off < model.size_of(id));
                prop_assert_eq!(off % 8, 0);
            }
            let chain = model.chain(id);
            prop_assert_eq!(chain[0], id, "chain starts at the derived class");
            // Chain sizes are monotonically decreasing along bases.
            for w in chain.windows(2) {
                prop_assert!(model.total_fields(w[0]) >= model.total_fields(w[1]));
            }
            // Field count equals the sum over the chain.
            let sum: u32 = chain.iter().map(|&c| model.get(c).own_fields).sum();
            prop_assert_eq!(sum, total);
        }
    }

    /// `new` + `delete` produce exactly one vptr write per class in the
    /// chain on each side, in opposite orders, plus alloc/free.
    #[test]
    fn ctor_dtor_chain_structure(spec in hierarchy_strategy(), pick in any::<prop::sample::Index>()) {
        let mut pb = ProgramBuilder::new();
        let (model, ids) = build_hierarchy(&mut pb, &spec);
        let id = ids[pick.index(ids.len())];
        let depth = model.chain(id).len();

        let loc = pb.loc("t.cpp", 1, "main");
        let mut m = ProcBuilder::new(0);
        m.at(loc);
        let obj = model.emit_new(&mut m, id);
        model.emit_delete(&mut m, obj, id, false, None);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();

        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        let writes: Vec<u64> = rec.events.iter().filter_map(|e| match e {
            Event::Access { kind: vexec::AccessKind::Write, addr, .. } => Some(*addr),
            _ => None,
        }).collect();
        // ctor chain + dtor chain, all to offset 0 (the vptr).
        prop_assert_eq!(writes.len(), 2 * depth);
        let base_addr = writes[0];
        prop_assert!(writes.iter().all(|&a| a == base_addr));
        let allocs = rec.events.iter().filter(|e| matches!(e, Event::Alloc { .. })).count();
        let frees = rec.events.iter().filter(|e| matches!(e, Event::Free { .. })).count();
        prop_assert_eq!((allocs, frees), (1, 1));
    }

    /// Refcounted strings: for any interleaved sequence of copies and
    /// drops ending balanced, the rep is freed exactly once, by the last
    /// dropper.
    #[test]
    fn string_refcount_conservation(n_copies in 0usize..8) {
        let mut pb = ProgramBuilder::new();
        let site = StringSite::new(&mut pb, "s.cpp", 10);
        let loc = pb.loc("s.cpp", 1, "main");
        let mut m = ProcBuilder::new(0);
        m.at(loc);
        let rep = emit_create(&mut m, 8);
        let mut handles = vec![rep];
        for _ in 0..n_copies {
            let c = emit_copy(&mut m, rep, site);
            handles.push(c);
        }
        for h in handles {
            emit_drop(&mut m, h, site, OFF_DATA + 8, None);
        }
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();
        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        let frees = rec.events.iter().filter(|e| matches!(e, Event::Free { .. })).count();
        prop_assert_eq!(frees, 1, "the rep is freed exactly once");
        let rmws = rec.events.iter().filter(|e| matches!(
            e, Event::Access { kind: vexec::AccessKind::AtomicRmw, .. })).count();
        prop_assert_eq!(rmws, 2 * n_copies + 1, "one inc per copy, one dec per drop");
    }
}
