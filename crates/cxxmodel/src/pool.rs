//! The libstdc++ pooling allocator model (§4 of the paper):
//!
//! "An issue arising when using Helgrind with the GNU C++ Standard Library
//! is false reporting due to the memory allocation strategy in the standard
//! container objects. Memory is reused internally and accesses to the
//! reused memory regions are reported as data races, even though the
//! accesses are separated by freeing and allocating, as Helgrind does not
//! know anything about them. Fortunately, the allocation strategy ... is
//! configurable with environment variables."
//!
//! The pool keeps a mutex-protected free list threaded *through the freed
//! blocks themselves* (like `__pool_alloc`). Freed blocks are recycled
//! without any `Free`/`Alloc` event reaching the tool, so shadow state
//! survives across logical object lifetimes — the source of the E11 false
//! positives. With `force_new = true` (the `GLIBCPP_FORCE_NEW` environment
//! switch) every request goes to the real allocator and the tool sees the
//! alloc/free pair, resetting shadow state.

use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Cond, Expr, GlobalId, ProcId, RegId};

/// Handles to an installed pool allocator.
#[derive(Clone, Copy, Debug)]
pub struct PoolAllocator {
    /// `pool_alloc(size) -> addr`
    pub alloc_proc: ProcId,
    /// `pool_free(addr, size)`
    pub free_proc: ProcId,
    head: GlobalId,
    mutex_cell: GlobalId,
    /// Was the pool installed with `GLIBCPP_FORCE_NEW` semantics?
    pub force_new: bool,
}

impl PoolAllocator {
    /// Declare the pool's globals and procedures in `pb`.
    ///
    /// `force_new = true` models `GLIBCPP_FORCE_NEW=1`: the pool degenerates
    /// to plain `new`/`delete` and the detector sees every transition.
    pub fn install(pb: &mut ProgramBuilder, force_new: bool) -> PoolAllocator {
        let head = pb.global("__pool_free_list", 8);
        let mutex_cell = pb.global("__pool_mutex", 8);

        // pool_alloc(size) -> addr
        let alloc_proc = pb.declare_proc("__pool_alloc");
        let aloc = pb.loc("libstdc++/pool_allocator.h", 120, "__pool_alloc::allocate");
        let mut a = ProcBuilder::new(1);
        a.at(aloc);
        let size = a.param(0);
        if force_new {
            let fresh = a.alloc(Expr::Reg(size));
            a.ret(Some(Expr::Reg(fresh)));
        } else {
            let m = a.load_new(mutex_cell, 8);
            a.lock(m);
            let h = a.load_new(head, 8);
            a.begin_if(Cond::Ne(Expr::Reg(h), Expr::Const(0)));
            {
                // Pop: head := *head (the link is stored in the block).
                let next = a.load_new(Expr::Reg(h), 8);
                a.store(head, Expr::Reg(next), 8);
                a.unlock(m);
                a.ret(Some(Expr::Reg(h)));
            }
            a.end_if();
            a.unlock(m);
            let fresh = a.alloc(Expr::Reg(size));
            a.ret(Some(Expr::Reg(fresh)));
        }
        pb.define_proc(alloc_proc, a);

        // pool_free(addr, size)
        let free_proc = pb.declare_proc("__pool_free");
        let floc = pb.loc("libstdc++/pool_allocator.h", 150, "__pool_alloc::deallocate");
        let mut f = ProcBuilder::new(2);
        f.at(floc);
        let addr = f.param(0);
        if force_new {
            f.free(Expr::Reg(addr));
        } else {
            let m = f.load_new(mutex_cell, 8);
            f.lock(m);
            // Push: *addr := head; head := addr. The link write lands in
            // memory the program just "freed" — invisible recycling.
            let h = f.load_new(head, 8);
            f.store(Expr::Reg(addr), Expr::Reg(h), 8);
            f.store(head, Expr::Reg(addr), 8);
            f.unlock(m);
        }
        pb.define_proc(free_proc, f);

        PoolAllocator { alloc_proc, free_proc, head, mutex_cell, force_new }
    }

    /// Emit the pool's runtime initialisation; call once at the start of
    /// the guest `main`.
    pub fn emit_init(&self, proc: &mut ProcBuilder) {
        let m = proc.new_mutex();
        proc.store(self.mutex_cell, m, 8);
        proc.store(self.head, 0u64, 8);
    }

    /// Emit `pool_alloc(size)`; returns the register with the address.
    pub fn emit_alloc(&self, proc: &mut ProcBuilder, size: u64) -> RegId {
        let dst = proc.reg();
        proc.call(self.alloc_proc, vec![Expr::Const(size)], Some(dst));
        dst
    }

    /// Emit `pool_free(addr, size)`.
    pub fn emit_free(&self, proc: &mut ProcBuilder, addr: RegId, size: u64) {
        proc.call(self.free_proc, vec![Expr::Reg(addr), Expr::Const(size)], None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::sched::RoundRobin;
    use vexec::tool::{CountingTool, RecordingTool};
    use vexec::vm::run_program;
    use vexec::Event;

    fn pool_roundtrip_program(force_new: bool) -> vexec::Program {
        let mut pb = ProgramBuilder::new();
        let pool = PoolAllocator::install(&mut pb, force_new);
        let loc = pb.loc("t.cpp", 1, "main");
        let mut m = ProcBuilder::new(0);
        m.at(loc);
        pool.emit_init(&mut m);
        let a = pool.emit_alloc(&mut m, 64);
        m.store(Expr::Reg(a), 7u64, 8);
        pool.emit_free(&mut m, a, 64);
        let b = pool.emit_alloc(&mut m, 64);
        m.store(Expr::Reg(b), 9u64, 8);
        pool.emit_free(&mut m, b, 64);
        // With pooling, b must reuse a's address; record it for the test
        // via an assert inside the guest.
        if !force_new {
            m.assert_eq(Expr::Reg(a), Expr::Reg(b), "pool must recycle the block");
        }
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        pb.finish()
    }

    #[test]
    fn pool_recycles_addresses_without_events() {
        let prog = pool_roundtrip_program(false);
        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        let allocs = rec.events.iter().filter(|e| matches!(e, Event::Alloc { .. })).count();
        let frees = rec.events.iter().filter(|e| matches!(e, Event::Free { .. })).count();
        assert_eq!(allocs, 1, "second allocation served from the pool");
        assert_eq!(frees, 0, "pool frees are invisible to the tool");
    }

    #[test]
    fn force_new_goes_to_the_real_allocator() {
        let prog = pool_roundtrip_program(true);
        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        let allocs = rec.events.iter().filter(|e| matches!(e, Event::Alloc { .. })).count();
        let frees = rec.events.iter().filter(|e| matches!(e, Event::Free { .. })).count();
        assert_eq!(allocs, 2);
        assert_eq!(frees, 2);
    }

    #[test]
    fn pool_is_thread_safe_under_contention() {
        // Two workers allocate/free in a loop; the guest must terminate
        // cleanly (no double free, no assert failure).
        let mut pb = ProgramBuilder::new();
        let pool = PoolAllocator::install(&mut pb, false);
        let wloc = pb.loc("t.cpp", 10, "worker");
        let mut w = ProcBuilder::new(0);
        w.at(wloc);
        w.begin_repeat(20u64);
        let a = pool.emit_alloc(&mut w, 64);
        w.store(Expr::Reg(a), 1u64, 8);
        pool.emit_free(&mut w, a, 64);
        w.end_repeat();
        let worker = pb.add_proc("worker", w);
        let mloc = pb.loc("t.cpp", 20, "main");
        let mut m = ProcBuilder::new(0);
        m.at(mloc);
        pool.emit_init(&mut m);
        let h1 = m.spawn(worker, vec![]);
        let h2 = m.spawn(worker, vec![]);
        m.join(h1);
        m.join(h2);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();
        let mut tool = CountingTool::new();
        run_program(&prog, &mut tool, &mut RoundRobin::new()).expect_clean();
    }
}
