//! The C++ object model: classes with single inheritance, virtual tables,
//! and — crucially for the paper — the hidden writes performed by
//! constructor and destructor chains.
//!
//! "When the destructor of an object is called every destructor of its
//! parent classes is called prior to actually releasing the memory ... The
//! destructor of the super-class should only see the properties of its
//! class and therefore the environment has to be changed ... This change is
//! done by writing to a location in the object's memory" (§3.1). Those vptr
//! writes are what Helgrind flags; each `~Class` has its own source
//! location, so every polymorphic class destroyed after sharing contributes
//! one distinct false-positive location (the dominant FP class in Fig 5/6).
//!
//! Layout: `[vptr: 8][base fields...][own fields...]`, all fields 8 bytes.

use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Expr, ProcId, RegId, SrcLoc};

/// Id of a declared class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClassId(pub u32);

/// A class description.
#[derive(Clone, Debug)]
pub struct ClassDesc {
    pub name: String,
    pub base: Option<ClassId>,
    /// Number of fields declared by this class itself (each 8 bytes).
    pub own_fields: u32,
    /// Does the hierarchy have a vtable? (All our modelled classes do.)
    pub has_virtual: bool,
    /// Location of the compiler-generated vptr write in `Class::Class`.
    pub ctor_loc: SrcLoc,
    /// Location of the compiler-generated vptr write in `Class::~Class`.
    pub dtor_loc: SrcLoc,
}

/// Registry of modelled classes.
#[derive(Debug, Default)]
pub struct ClassModel {
    classes: Vec<ClassDesc>,
}

impl ClassModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a class. `file`/`line` position its constructor/destructor
    /// in the synthetic source tree (the destructor gets `line + 1`).
    pub fn declare(
        &mut self,
        pb: &mut ProgramBuilder,
        name: &str,
        file: &str,
        line: u32,
        base: Option<ClassId>,
        own_fields: u32,
    ) -> ClassId {
        if let Some(b) = base {
            assert!((b.0 as usize) < self.classes.len(), "base class not declared");
        }
        let ctor_loc = pb.loc(file, line, &format!("{name}::{name}"));
        let dtor_loc = pb.loc(file, line + 1, &format!("{name}::~{name}"));
        self.classes.push(ClassDesc {
            name: name.to_string(),
            base,
            own_fields,
            has_virtual: true,
            ctor_loc,
            dtor_loc,
        });
        ClassId(self.classes.len() as u32 - 1)
    }

    pub fn get(&self, id: ClassId) -> &ClassDesc {
        &self.classes[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The inheritance chain, most-derived first.
    pub fn chain(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(b) = self.get(cur).base {
            out.push(b);
            cur = b;
        }
        out
    }

    /// Total number of fields including inherited ones.
    pub fn total_fields(&self, id: ClassId) -> u32 {
        self.chain(id).iter().map(|c| self.get(*c).own_fields).sum()
    }

    /// Object size in bytes: vptr + all fields.
    pub fn size_of(&self, id: ClassId) -> u64 {
        8 + self.total_fields(id) as u64 * 8
    }

    /// Byte offset of field `i` (0-based, counting inherited fields first).
    pub fn field_offset(&self, id: ClassId, i: u32) -> u64 {
        assert!(i < self.total_fields(id), "field index out of range");
        8 + i as u64 * 8
    }

    /// The vtable "address" stored in the vptr for a given dynamic type.
    pub fn vtable_value(&self, id: ClassId) -> u64 {
        VTABLE_BASE + id.0 as u64
    }

    /// Emit `new Class`: allocate and run the constructor chain
    /// (base-to-derived vptr writes, fields zeroed by the allocator).
    /// Returns the register holding the object address.
    pub fn emit_new(&self, proc: &mut ProcBuilder, id: ClassId) -> RegId {
        let obj = proc.alloc(self.size_of(id));
        self.emit_construct(proc, obj, id);
        obj
    }

    /// Emit the constructor chain for an object already allocated at `obj`.
    pub fn emit_construct(&self, proc: &mut ProcBuilder, obj: RegId, id: ClassId) {
        let mut chain = self.chain(id);
        chain.reverse(); // base first, like real C++ construction order
        let saved = proc.here();
        for c in chain {
            let desc = self.get(c);
            proc.at(desc.ctor_loc);
            proc.store(Expr::Reg(obj), self.vtable_value(c), 8);
        }
        proc.at(saved);
    }

    /// Emit a virtual call: dispatch reads the vptr. (The call body itself
    /// is the caller's business; this models only the dispatch load.)
    pub fn emit_virtual_dispatch(&self, proc: &mut ProcBuilder, obj: RegId) -> RegId {
        proc.load_new(Expr::Reg(obj), 8)
    }

    /// Emit `delete obj`: optional `VALGRIND_HG_DESTRUCT` annotation (the
    /// DR improvement, Fig 4), the destructor chain (derived-to-base vptr
    /// writes, each at its own `~Class` location), then the release —
    /// either the real `Free` or a call to a pool deallocator.
    pub fn emit_delete(
        &self,
        proc: &mut ProcBuilder,
        obj: RegId,
        id: ClassId,
        annotated: bool,
        pool_free: Option<ProcId>,
    ) {
        let size = self.size_of(id);
        if annotated {
            // delete ca_deletor_single(p): the annotation runs before the
            // destructor (Fig 4).
            proc.hg_destruct(Expr::Reg(obj), size);
        }
        let saved = proc.here();
        for c in self.chain(id) {
            let desc = self.get(c);
            proc.at(desc.dtor_loc);
            proc.store(Expr::Reg(obj), self.vtable_value(c), 8);
        }
        proc.at(saved);
        match pool_free {
            None => proc.free(Expr::Reg(obj)),
            Some(p) => proc.call(p, vec![Expr::Reg(obj), Expr::Const(size)], None),
        }
    }
}

/// A recognisable (non-heap) address range for vtable constants.
const VTABLE_BASE: u64 = 0xBEEF_0000;

#[cfg(test)]
mod tests {
    use super::*;
    use helpers::*;

    mod helpers {
        use super::*;

        pub fn model_with_hierarchy(
            pb: &mut ProgramBuilder,
        ) -> (ClassModel, ClassId, ClassId, ClassId) {
            let mut m = ClassModel::new();
            let base = m.declare(pb, "SipMessage", "msg.cpp", 10, None, 2);
            let mid = m.declare(pb, "SipRequest", "msg.cpp", 40, Some(base), 1);
            let leaf = m.declare(pb, "InviteRequest", "msg.cpp", 70, Some(mid), 3);
            (m, base, mid, leaf)
        }
    }

    #[test]
    fn chain_is_derived_first() {
        let mut pb = ProgramBuilder::new();
        let (m, base, mid, leaf) = model_with_hierarchy(&mut pb);
        assert_eq!(m.chain(leaf), vec![leaf, mid, base]);
        assert_eq!(m.chain(base), vec![base]);
    }

    #[test]
    fn layout_accumulates_fields() {
        let mut pb = ProgramBuilder::new();
        let (m, base, mid, leaf) = model_with_hierarchy(&mut pb);
        assert_eq!(m.total_fields(base), 2);
        assert_eq!(m.total_fields(mid), 3);
        assert_eq!(m.total_fields(leaf), 6);
        assert_eq!(m.size_of(base), 8 + 16);
        assert_eq!(m.size_of(leaf), 8 + 48);
        assert_eq!(m.field_offset(leaf, 0), 8);
        assert_eq!(m.field_offset(leaf, 5), 48);
    }

    #[test]
    #[should_panic(expected = "field index out of range")]
    fn field_offset_bounds_checked() {
        let mut pb = ProgramBuilder::new();
        let (m, base, _, _) = model_with_hierarchy(&mut pb);
        m.field_offset(base, 2);
    }

    #[test]
    fn dtor_locations_are_distinct_per_class() {
        let mut pb = ProgramBuilder::new();
        let (m, base, mid, leaf) = model_with_hierarchy(&mut pb);
        let locs = [m.get(base).dtor_loc, m.get(mid).dtor_loc, m.get(leaf).dtor_loc];
        assert_ne!(locs[0], locs[1]);
        assert_ne!(locs[1], locs[2]);
    }

    #[test]
    fn vtable_values_are_distinct() {
        let mut pb = ProgramBuilder::new();
        let (m, base, mid, leaf) = model_with_hierarchy(&mut pb);
        let vs = [m.vtable_value(base), m.vtable_value(mid), m.vtable_value(leaf)];
        assert_ne!(vs[0], vs[1]);
        assert_ne!(vs[1], vs[2]);
    }
}
