//! The GNU libstdc++-3.x copy-on-write `std::string` model (Fig 8/9 of the
//! paper).
//!
//! Layout of the shared representation (`_Rep`):
//!
//! ```text
//! [refcount: 8][length: 8][capacity: 8][data...]
//! ```
//!
//! Copying a string reads the rep (COW uniqueness check — a *plain* read)
//! and bumps the reference count with a `LOCK`-prefixed increment
//! (`_M_grab`). Dropping decrements with a `LOCK`-prefixed `xadd` and frees
//! the rep when the old count was 1. This mixed plain-read /
//! bus-locked-write protocol is exactly what the original Helgrind bus-lock
//! model misclassifies and the HWLC correction fixes.

use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Cond, Expr, ProcId, RegId, SrcLoc};

/// Byte offsets within a string rep.
pub const OFF_REFCOUNT: u64 = 0;
pub const OFF_LENGTH: u64 = 8;
pub const OFF_CAPACITY: u64 = 16;
pub const OFF_DATA: u64 = 24;

/// Source locations for one string operation call site. Each *call site*
/// in the modelled application gets its own `StringSite`, so warning
/// locations count per-site exactly like Helgrind's per-location reports.
#[derive(Clone, Copy, Debug)]
pub struct StringSite {
    /// The COW uniqueness / rep read (plain read).
    pub check_loc: SrcLoc,
    /// The `_M_grab` / `_M_dispose` refcount RMW (`LOCK`-prefixed).
    pub rmw_loc: SrcLoc,
}

impl StringSite {
    /// Conventional site: `<file>:<line>` with libstdc++-style functions.
    pub fn new(pb: &mut ProgramBuilder, file: &str, line: u32) -> Self {
        StringSite {
            check_loc: pb.loc(file, line, "std::string::string"),
            rmw_loc: pb.loc(file, line + 1, "std::string::_Rep::_M_grab"),
        }
    }
}

/// Emit the creation of a string rep with `capacity` data bytes; returns
/// the register holding the rep address. Refcount starts at 1.
pub fn emit_create(proc: &mut ProcBuilder, capacity: u64) -> RegId {
    let rep = proc.alloc(OFF_DATA + capacity.max(8));
    proc.store(Expr::Reg(rep), 1u64, 8); // refcount = 1
    proc.store(Expr::offset(rep, OFF_LENGTH), 0u64, 8);
    proc.store(Expr::offset(rep, OFF_CAPACITY), capacity.max(8), 8);
    rep
}

/// Emit a copy of the string whose rep address is in `src` (the
/// `std::string(const std::string&)` constructor): plain read of the rep
/// followed by the bus-locked refcount increment. Returns a register
/// holding the copy's rep address (same rep — COW).
pub fn emit_copy(proc: &mut ProcBuilder, src: RegId, site: StringSite) -> RegId {
    let saved = proc.here();
    proc.at(site.check_loc);
    let _len = proc.load_new(Expr::offset(src, OFF_LENGTH), 8); // rep inspection
    let _rc = proc.load_new(Expr::offset(src, OFF_REFCOUNT), 8); // COW check (plain read!)
    proc.at(site.rmw_loc);
    proc.atomic_rmw(None, Expr::offset(src, OFF_REFCOUNT), 1u64, 8); // LOCK xadd
    proc.at(saved);
    let copy = proc.reg();
    proc.assign(copy, Expr::Reg(src));
    copy
}

/// Emit the destruction of a string handle: bus-locked decrement; the
/// thread that takes the count to zero frees (or pool-frees) the rep.
pub fn emit_drop(
    proc: &mut ProcBuilder,
    rep: RegId,
    site: StringSite,
    rep_size: u64,
    pool_free: Option<ProcId>,
) {
    let saved = proc.here();
    proc.at(site.rmw_loc);
    let old = proc.reg();
    proc.atomic_rmw(Some(old), Expr::offset(rep, OFF_REFCOUNT), (-1i64) as u64, 8);
    proc.at(saved);
    proc.begin_if(Cond::Eq(Expr::Reg(old), Expr::Const(1)));
    match pool_free {
        None => proc.free(Expr::Reg(rep)),
        Some(p) => proc.call(p, vec![Expr::Reg(rep), Expr::Const(rep_size)], None),
    }
    proc.end_if();
}

/// Emit a read of the string contents (e.g. serialising a header value):
/// plain reads of length + first data word.
pub fn emit_read(proc: &mut ProcBuilder, rep: RegId, loc: SrcLoc) {
    let saved = proc.here();
    proc.at(loc);
    let _len = proc.load_new(Expr::offset(rep, OFF_LENGTH), 8);
    let _d = proc.load_new(Expr::offset(rep, OFF_DATA), 8);
    proc.at(saved);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::sched::RoundRobin;
    use vexec::tool::RecordingTool;
    use vexec::vm::run_program;
    use vexec::{AccessKind, Event};

    /// A single-threaded create→copy→drop×2 roundtrip must free exactly
    /// once and issue exactly two `LOCK`-prefixed RMWs (one grab, one
    /// final dispose... plus the intermediate dispose: 1 copy + 2 drops).
    #[test]
    fn refcount_protocol_frees_exactly_once() {
        let mut pb = ProgramBuilder::new();
        let site = StringSite::new(&mut pb, "t.cpp", 5);
        let loc = pb.loc("t.cpp", 1, "main");
        let mut m = ProcBuilder::new(0);
        m.at(loc);
        let s = emit_create(&mut m, 16);
        let c = emit_copy(&mut m, s, site);
        emit_drop(&mut m, c, site, OFF_DATA + 16, None);
        emit_drop(&mut m, s, site, OFF_DATA + 16, None);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();

        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        let frees = rec.events.iter().filter(|e| matches!(e, Event::Free { .. })).count();
        assert_eq!(frees, 1, "rep freed exactly once");
        let rmws = rec
            .events
            .iter()
            .filter(|e| matches!(e, Event::Access { kind: AccessKind::AtomicRmw, .. }))
            .count();
        assert_eq!(rmws, 3, "one grab + two disposes");
    }

    #[test]
    fn drop_without_copy_frees() {
        let mut pb = ProgramBuilder::new();
        let site = StringSite::new(&mut pb, "t.cpp", 5);
        let loc = pb.loc("t.cpp", 1, "main");
        let mut m = ProcBuilder::new(0);
        m.at(loc);
        let s = emit_create(&mut m, 8);
        emit_drop(&mut m, s, site, OFF_DATA + 8, None);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();
        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        assert_eq!(rec.events.iter().filter(|e| matches!(e, Event::Free { .. })).count(), 1);
    }

    #[test]
    fn sites_have_distinct_locations() {
        let mut pb = ProgramBuilder::new();
        let a = StringSite::new(&mut pb, "x.cpp", 10);
        let b = StringSite::new(&mut pb, "x.cpp", 20);
        assert_ne!(a.rmw_loc, b.rmw_loc);
        assert_ne!(a.check_loc, b.check_loc);
    }
}
