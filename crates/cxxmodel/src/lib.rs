//! # cxxmodel — C++ runtime-behaviour model for guest programs
//!
//! The paper's false-positive taxonomy is rooted in concrete C++
//! implementation behaviour: compiler-generated destructor chains writing
//! vptrs (§3.1/§4.2.1), the libstdc++ copy-on-write `std::string` whose
//! reference count mixes plain reads with `LOCK`-prefixed writes
//! (§4.2.2, Fig 8/9), and the pooling allocator that recycles memory
//! invisibly (§4). This crate generates those exact guest access patterns
//! as `vexec` IR, so detectors are exercised by the real protocols rather
//! than hand-picked event sequences.

pub mod classes;
pub mod pool;
pub mod string;

pub use classes::{ClassDesc, ClassId, ClassModel};
pub use pool::PoolAllocator;
pub use string::{emit_copy, emit_create, emit_drop, emit_read, StringSite};
