//! Happens-before race detection in the DJIT tradition (§2.2 of the paper),
//! with FastTrack-style adaptive epochs for the common single-reader /
//! single-writer case.
//!
//! Unlike the lockset algorithm, this engine only reports *apparent* races:
//! two accesses, at least one a write, unordered by the observed
//! happens-before relation. It therefore reports a subset of the lockset
//! warnings and misses races that a different schedule would expose — the
//! trade-off the paper describes when comparing Eraser and DJIT.
//!
//! Happens-before edges observed:
//! * thread create / join;
//! * mutex release → subsequent acquire (and rwlock, conservatively in both
//!   modes: POSIX rwlock operations do synchronise);
//! * semaphore post → wait (if `cfg.sem_hb`);
//! * bounded-queue put → matching get (if `cfg.queue_hb` — the paper's §5
//!   "higher level synchronization" extension, E12);
//! * condvar signal → wake (if `cfg.condvar_hb`; off by default since the
//!   paper notes this assumption is unsound in general);
//! * `LOCK`-prefixed RMW as atomic acquire/release on its own address (if
//!   `cfg.atomic_sync`), the way modern detectors treat `std::atomic`.

use crate::config::DetectorConfig;
use crate::shadowmem::PageTable;
use crate::vc::{Epoch, SmallVc, VectorClock};
use vexec::event::{AccessKind, ClientEv, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};
use vexec::util::FxHashMap;

/// Read history of a granule: the adaptive FastTrack lattice
/// (`None → Single → Shared`, demoted back by the next write), plus the
/// reference full-VC representation the equivalence gates run against.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ReadState {
    None,
    /// All relevant reads collapse to one epoch (the common case: a
    /// single thread, or each reader ordered after the previous one).
    Single(Epoch),
    /// Genuinely concurrent readers: promoted to a read-share clock,
    /// inline in the shadow slot (no allocation for tids below
    /// [`crate::vc::SMALL_VC_LANES`]).
    Shared(SmallVc),
    /// `cfg.hb_reference`: every read keeps its component in a full
    /// clock; never constructed by the adaptive path.
    Ref(Box<RefReads>),
}

/// Reference-mode read state. `vc` is the ground truth the verdict is
/// computed from; `last`/`chain` mirror what the adaptive lattice would
/// hold so the conflict *strings* also come out byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RefReads {
    vc: VectorClock,
    /// Most recent read epoch (the adaptive `Single` survivor while
    /// `chain` holds).
    last: Epoch,
    /// True while every read so far satisfied the adaptive collapse
    /// condition (same thread as, or visible to, the next reader) — i.e.
    /// while the adaptive engine would still be in `Single` state.
    chain: bool,
}

#[derive(Clone, Debug)]
struct HbVar {
    /// Epoch of the last write. `Epoch::ZERO` means "never written" —
    /// real epochs have `clock >= 1`, and `ZERO` is visible to every
    /// clock, so the virgin case needs no separate branch on the hot
    /// path (and no `Option` tag in the shadow slot).
    last_write: Epoch,
    reads: ReadState,
    reported: bool,
}

impl Default for HbVar {
    fn default() -> Self {
        HbVar { last_write: Epoch::ZERO, reads: ReadState::None, reported: false }
    }
}

/// Adaptive-representation counters, surfaced by `--stats` (stderr).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Accesses fully served by the O(1) same-epoch fast paths (shadow
    /// state already holds exactly the current epoch; no transition).
    pub epoch_hits: u64,
    /// Single-reader epochs promoted to a read-share clock because a
    /// second thread read concurrently.
    pub promotions: u64,
    /// Read-share states demoted back to a plain write epoch by the next
    /// write.
    pub demotions: u64,
    /// Accesses that did full vector-clock work on the shadow state
    /// (read-share compares/updates; every read in reference mode).
    pub vc_fallbacks: u64,
}

/// A race found by the happens-before engine.
#[derive(Clone, Debug)]
pub struct HbRaceInfo {
    pub tid: ThreadId,
    pub addr: u64,
    pub kind: AccessKind,
    pub loc: SrcLoc,
    /// What the access conflicted with ("unordered prior write by thread 2").
    pub conflict: String,
}

/// The happens-before engine.
#[derive(Debug)]
pub struct HbEngine {
    cfg: DetectorConfig,
    threads: Vec<VectorClock>,
    locks: FxHashMap<SyncId, VectorClock>,
    sems: FxHashMap<SyncId, VectorClock>,
    condvars: FxHashMap<SyncId, VectorClock>,
    queue_msgs: FxHashMap<(SyncId, u64), VectorClock>,
    atomics: FxHashMap<u64, VectorClock>,
    shadow: PageTable<HbVar>,
    report_once: bool,
    pub accesses: u64,
    /// Granules never tracked because the shadow budget was exhausted.
    shadow_overflow: u64,
    epoch_stats: EpochStats,
}

impl HbEngine {
    pub fn new(cfg: DetectorConfig) -> Self {
        assert!(cfg.granule.is_power_of_two());
        HbEngine {
            cfg,
            threads: Vec::new(),
            locks: FxHashMap::default(),
            sems: FxHashMap::default(),
            condvars: FxHashMap::default(),
            queue_msgs: FxHashMap::default(),
            atomics: FxHashMap::default(),
            shadow: PageTable::new(cfg.granule),
            report_once: true,
            accesses: 0,
            shadow_overflow: 0,
            epoch_stats: EpochStats::default(),
        }
    }

    pub fn set_report_once(&mut self, v: bool) {
        self.report_once = v;
    }

    /// Initialise `tid`'s clock if needed. An associated function over the
    /// raw field so callers can keep borrowing other fields (`locks`,
    /// `shadow`, ...) — the hot paths join clocks through disjoint field
    /// borrows instead of cloning.
    fn ensure_thread(threads: &mut Vec<VectorClock>, tid: ThreadId) {
        let idx = tid.index();
        if threads.len() <= idx {
            threads.resize_with(idx + 1, VectorClock::new);
        }
        if threads[idx].get(idx) == 0 {
            threads[idx].set(idx, 1);
        }
    }

    fn vc_mut(&mut self, tid: ThreadId) -> &mut VectorClock {
        Self::ensure_thread(&mut self.threads, tid);
        &mut self.threads[tid.index()]
    }

    fn epoch(&mut self, tid: ThreadId) -> Epoch {
        let idx = tid.index();
        let vc = self.vc_mut(tid);
        Epoch { tid: tid.0, clock: vc.get(idx) }
    }

    /// Feed one event; returns race info if it exposes an HB violation.
    pub fn on_event(&mut self, ev: &Event) -> Option<HbRaceInfo> {
        match *ev {
            Event::Access { tid, addr, size, kind, loc } => {
                self.on_access(tid, addr, size, kind, loc)
            }
            Event::ThreadCreate { parent, child, .. } => {
                let pvc = self.vc_mut(parent).clone();
                let cvc = self.vc_mut(child);
                cvc.join(&pvc);
                let p = parent.index();
                self.vc_mut(parent).inc(p);
                None
            }
            Event::ThreadJoin { joiner, joined, .. } => {
                let jvc = self.vc_mut(joined).clone();
                self.vc_mut(joiner).join(&jvc);
                None
            }
            Event::Acquire { tid, sync, kind, .. } => {
                if kind == SyncKind::RwLock && !self.cfg.track_rwlocks {
                    return None;
                }
                // Disjoint-field borrows (`locks` read, `threads` written):
                // no clock is cloned on the lock hot path.
                Self::ensure_thread(&mut self.threads, tid);
                if let Some(lvc) = self.locks.get(&sync) {
                    self.threads[tid.index()].join(lvc);
                }
                None
            }
            Event::Release { tid, sync, kind, .. } => {
                if kind == SyncKind::RwLock && !self.cfg.track_rwlocks {
                    return None;
                }
                Self::ensure_thread(&mut self.threads, tid);
                let idx = tid.index();
                self.locks.entry(sync).or_default().join(&self.threads[idx]);
                self.threads[idx].inc(idx);
                None
            }
            Event::SemPost { tid, sync, .. } => {
                if self.cfg.sem_hb {
                    Self::ensure_thread(&mut self.threads, tid);
                    let idx = tid.index();
                    self.sems.entry(sync).or_default().join(&self.threads[idx]);
                    self.threads[idx].inc(idx);
                }
                None
            }
            Event::SemAcquired { tid, sync, .. } => {
                if self.cfg.sem_hb {
                    Self::ensure_thread(&mut self.threads, tid);
                    if let Some(svc) = self.sems.get(&sync) {
                        self.threads[tid.index()].join(svc);
                    }
                }
                None
            }
            Event::QueuePut { tid, sync, token, .. } => {
                if self.cfg.queue_hb {
                    // The message carries a snapshot, so this clone is the
                    // data structure, not an artefact of borrowing.
                    let idx = tid.index();
                    Self::ensure_thread(&mut self.threads, tid);
                    self.queue_msgs.insert((sync, token), self.threads[idx].clone());
                    self.threads[idx].inc(idx);
                }
                None
            }
            Event::QueueGot { tid, sync, token, .. } => {
                if self.cfg.queue_hb {
                    if let Some(mvc) = self.queue_msgs.remove(&(sync, token)) {
                        self.vc_mut(tid).join(&mvc);
                    }
                }
                None
            }
            Event::CondSignal { tid, sync, .. } => {
                if self.cfg.condvar_hb {
                    Self::ensure_thread(&mut self.threads, tid);
                    let idx = tid.index();
                    self.condvars.entry(sync).or_default().join(&self.threads[idx]);
                    self.threads[idx].inc(idx);
                }
                None
            }
            Event::CondWake { tid, sync, .. } => {
                if self.cfg.condvar_hb {
                    Self::ensure_thread(&mut self.threads, tid);
                    if let Some(cvc) = self.condvars.get(&sync) {
                        self.threads[tid.index()].join(cvc);
                    }
                }
                None
            }
            Event::Alloc { addr, size, .. } => {
                self.reset_range(addr, size);
                None
            }
            Event::Client { req: ClientEv::HgCleanMemory { addr, size }, .. } => {
                self.reset_range(addr, size);
                None
            }
            _ => None,
        }
    }

    fn reset_range(&mut self, addr: u64, size: u64) {
        // Shadow state resets page-granularly; the (sparse) atomic clocks
        // only need a walk when any exist at all.
        self.shadow.reset_range(addr, size);
        if !self.atomics.is_empty() {
            let g = self.cfg.granule;
            let start = addr & !(g - 1);
            let end = (addr + size.max(1) - 1) & !(g - 1);
            let mut a = start;
            while a <= end {
                self.atomics.remove(&a);
                a += g;
            }
        }
    }

    fn on_access(
        &mut self,
        tid: ThreadId,
        addr: u64,
        size: u8,
        kind: AccessKind,
        loc: SrcLoc,
    ) -> Option<HbRaceInfo> {
        self.accesses += 1;
        let g_size = self.cfg.granule;
        let start = addr & !(g_size - 1);
        let end = (addr + size.max(1) as u64 - 1) & !(g_size - 1);

        // Atomic RMW: synchronise through the per-granule atomic clock
        // *before* the race check, so paired atomics are ordered.
        if kind == AccessKind::AtomicRmw && self.cfg.atomic_sync {
            Self::ensure_thread(&mut self.threads, tid);
            let mut a = start;
            while a <= end {
                if let Some(avc) = self.atomics.get(&a) {
                    self.threads[tid.index()].join(avc);
                }
                a += g_size;
            }
        }

        // `cur` (also initialising the thread's clock) is taken once; the
        // loop then reads the clock through a shared borrow of `threads`
        // while mutating `shadow` — disjoint fields, so the per-access
        // vector-clock clone the old code paid is gone. Representation
        // counters accumulate in locals for the same reason and flush
        // after the loop.
        let cur = self.epoch(tid);
        let tidx = tid.index();
        let is_write = kind.is_write();
        let reference = self.cfg.hb_reference;
        let mut race = None;
        let (mut hits, mut promotions, mut demotions, mut fallbacks) = (0u64, 0u64, 0u64, 0u64);
        let mut a = start;
        while a <= end {
            // Budget degradation: once the shadow map is full, untracked
            // granules stay untracked (coverage shrinks, nothing is
            // fabricated); tracked ones keep updating.
            if self.shadow.len() >= self.cfg.budget.max_shadow_words && !self.shadow.contains(a) {
                self.shadow_overflow += 1;
                a += g_size;
                continue;
            }
            let tvc = &self.threads[tidx];
            let var = self.shadow.get_or_insert_default(a);

            // FastTrack same-epoch write rule: the granule's whole shadow
            // state is already exactly `cur` (this thread wrote in this
            // epoch, nothing read since) — re-writing cannot conflict and
            // moves nothing.
            if is_write && var.last_write == cur && matches!(var.reads, ReadState::None) {
                hits += 1;
                a += g_size;
                continue;
            }

            let mut conflict: Option<String> = None;
            // Write-X conflict: the previous write must be visible.
            // `Epoch::ZERO` (never written) is visible to every clock, so
            // the virgin case needs no separate branch.
            let w = var.last_write;
            if !w.visible_to(tvc) {
                conflict =
                    Some(format!("unordered prior write by thread {} (epoch {})", w.tid, w.clock));
            }
            // Read-write conflict: a write must also see all prior reads.
            if is_write && conflict.is_none() {
                match &var.reads {
                    ReadState::None => {}
                    ReadState::Single(e) => {
                        if !e.visible_to(tvc) {
                            conflict = Some(format!("unordered prior read by thread {}", e.tid));
                        }
                    }
                    ReadState::Shared(svc) => {
                        fallbacks += 1;
                        if !svc.leq(tvc) {
                            conflict = Some("unordered prior reads".to_string());
                        }
                    }
                    ReadState::Ref(r) => {
                        fallbacks += 1;
                        if !r.vc.leq(tvc) {
                            // While the collapse chain held, the adaptive
                            // lattice would still be `Single(last)` and the
                            // verdicts agree by visibility transitivity;
                            // after a break it would be `Shared`.
                            conflict = Some(if r.chain {
                                format!("unordered prior read by thread {}", r.last.tid)
                            } else {
                                "unordered prior reads".to_string()
                            });
                        }
                    }
                }
            }
            if let Some(c) = conflict {
                if !var.reported {
                    if self.report_once {
                        var.reported = true;
                    }
                    if race.is_none() {
                        race = Some(HbRaceInfo { tid, addr: a.max(addr), kind, loc, conflict: c });
                    }
                }
            }
            // Shadow transition.
            if is_write {
                // Demotion: every write collapses the read state back to a
                // plain write epoch (the lattice's downward step).
                if matches!(var.reads, ReadState::Shared(_)) {
                    demotions += 1;
                }
                var.last_write = cur;
                var.reads = ReadState::None;
            } else if reference {
                // Reference mode: the verdict clock keeps every reader's
                // component; `last`/`chain` shadow the adaptive lattice.
                fallbacks += 1;
                let mut r = match std::mem::replace(&mut var.reads, ReadState::None) {
                    ReadState::Ref(r) => r,
                    _ => Box::new(RefReads {
                        vc: VectorClock::new(),
                        last: Epoch::ZERO,
                        chain: true,
                    }),
                };
                if r.chain {
                    r.chain = r.last.tid == cur.tid || r.last.visible_to(tvc);
                }
                r.vc.set(cur.tid as usize, cur.clock);
                r.last = cur;
                var.reads = ReadState::Ref(r);
            } else if matches!(&var.reads, ReadState::Single(e) if *e == cur) {
                // FastTrack same-epoch read rule: the state already holds
                // exactly this epoch; only the O(1) write-visibility check
                // above was needed.
                hits += 1;
            } else {
                var.reads = match std::mem::replace(&mut var.reads, ReadState::None) {
                    ReadState::None => ReadState::Single(cur),
                    ReadState::Single(e) => {
                        if e.tid == cur.tid || e.visible_to(tvc) {
                            ReadState::Single(cur)
                        } else {
                            // Promotion: a second thread read concurrently.
                            promotions += 1;
                            ReadState::Shared(SmallVc::pair(e, cur))
                        }
                    }
                    ReadState::Shared(mut svc) => {
                        fallbacks += 1;
                        svc.set(cur.tid as usize, cur.clock);
                        ReadState::Shared(svc)
                    }
                    // `cfg.hb_reference` is fixed at construction, so the
                    // adaptive path never sees reference state.
                    r @ ReadState::Ref(_) => r,
                };
            }
            a += g_size;
        }
        self.epoch_stats.epoch_hits += hits;
        self.epoch_stats.promotions += promotions;
        self.epoch_stats.demotions += demotions;
        self.epoch_stats.vc_fallbacks += fallbacks;

        // Publish the atomic clock after the access. Disjoint-field
        // borrows (`threads` read, `atomics` written) plus `clone_from`
        // keep the steady state allocation-free: a republish overwrites
        // the existing clock's buffer in place instead of dropping it
        // and cloning a fresh one.
        if kind == AccessKind::AtomicRmw && self.cfg.atomic_sync {
            let tvc = &self.threads[tidx];
            let mut a = start;
            while a <= end {
                self.atomics
                    .entry(a)
                    .and_modify(|avc| avc.clone_from(tvc))
                    .or_insert_with(|| tvc.clone());
                a += g_size;
            }
            self.threads[tidx].inc(tidx);
        }
        race
    }

    /// Number of shadowed granules (stats).
    pub fn shadowed_granules(&self) -> usize {
        self.shadow.len()
    }

    /// High-water mark of live shadow granules (see
    /// [`crate::shadowmem::PageTable::peak_len`]).
    pub fn peak_shadowed_granules(&self) -> usize {
        self.shadow.peak_len()
    }

    /// True if the shadow budget degraded this engine's coverage.
    pub fn truncated(&self) -> bool {
        self.shadow_overflow > 0
    }

    /// Granules dropped by the shadow budget.
    pub fn shadow_overflow(&self) -> u64 {
        self.shadow_overflow
    }

    /// Adaptive-representation counters (`--stats`).
    pub fn epoch_stats(&self) -> EpochStats {
        self.epoch_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const L: SrcLoc = SrcLoc::UNKNOWN;

    fn acc(tid: ThreadId, addr: u64, kind: AccessKind) -> Event {
        Event::Access { tid, addr, size: 8, kind, loc: L }
    }

    fn lock(tid: ThreadId, s: u32) -> Event {
        Event::Acquire {
            tid,
            sync: SyncId(s),
            kind: SyncKind::Mutex,
            mode: vexec::event::AcqMode::Exclusive,
            loc: L,
        }
    }

    fn unlock(tid: ThreadId, s: u32) -> Event {
        Event::Release { tid, sync: SyncId(s), kind: SyncKind::Mutex, loc: L }
    }

    fn create(p: ThreadId, c: ThreadId) -> Event {
        Event::ThreadCreate { parent: p, child: c, loc: L }
    }

    #[test]
    fn fork_handoff_is_ordered() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        assert!(e.on_event(&acc(T0, 0x1000, AccessKind::Write)).is_none());
        e.on_event(&create(T0, T1));
        assert!(e.on_event(&acc(T1, 0x1000, AccessKind::Write)).is_none());
        e.on_event(&Event::ThreadJoin { joiner: T0, joined: T1, loc: L });
        assert!(e.on_event(&acc(T0, 0x1000, AccessKind::Read)).is_none());
    }

    #[test]
    fn unordered_write_write_is_race() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        assert!(e.on_event(&acc(T1, 0x1000, AccessKind::Write)).is_none());
        let race = e.on_event(&acc(T2, 0x1000, AccessKind::Write));
        assert!(race.is_some());
        assert!(race.unwrap().conflict.contains("write by thread 1"));
    }

    #[test]
    fn mutex_orders_critical_sections() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&lock(T1, 0));
        assert!(e.on_event(&acc(T1, 0x2000, AccessKind::Write)).is_none());
        e.on_event(&unlock(T1, 0));
        e.on_event(&lock(T2, 0));
        assert!(e.on_event(&acc(T2, 0x2000, AccessKind::Write)).is_none());
        e.on_event(&unlock(T2, 0));
    }

    #[test]
    fn djit_misses_race_hidden_by_coincidental_lock_order() {
        // §2.2 / §4.3: DJIT only sees the observed order. If T1's unlocked
        // write is ordered before T2's locked write by a coincidental
        // happens-before chain (here: T1 releases some unrelated lock that
        // T2 later acquires), no race is reported although the locking
        // discipline is broken — the lockset algorithm would flag this.
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0x3000, AccessKind::Write)); // unlocked write
        e.on_event(&lock(T1, 9)); // unrelated lock creates an hb chain
        e.on_event(&unlock(T1, 9));
        e.on_event(&lock(T2, 9));
        e.on_event(&unlock(T2, 9));
        e.on_event(&lock(T2, 0));
        let race = e.on_event(&acc(T2, 0x3000, AccessKind::Write));
        e.on_event(&unlock(T2, 0));
        assert!(race.is_none(), "DJIT is schedule-dependent and misses this");
    }

    #[test]
    fn read_write_race_detected() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        assert!(e.on_event(&acc(T1, 0x4000, AccessKind::Read)).is_none());
        let race = e.on_event(&acc(T2, 0x4000, AccessKind::Write));
        assert!(race.is_some());
        assert!(race.unwrap().conflict.contains("read"));
    }

    #[test]
    fn concurrent_reads_are_fine_and_promote_to_shared() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&acc(T0, 0x5000, AccessKind::Write));
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        // Both children inherited the parent write via create.
        assert!(e.on_event(&acc(T1, 0x5000, AccessKind::Read)).is_none());
        assert!(e.on_event(&acc(T2, 0x5000, AccessKind::Read)).is_none());
        // A later unordered write conflicts with both reads.
        let race = e.on_event(&acc(T0, 0x5000, AccessKind::Write));
        assert!(race.is_some());
    }

    #[test]
    fn atomic_rmw_pairs_are_ordered_when_atomic_sync() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        assert!(e.on_event(&acc(T1, 0x6000, AccessKind::AtomicRmw)).is_none());
        assert!(e.on_event(&acc(T2, 0x6000, AccessKind::AtomicRmw)).is_none());
        assert!(e.on_event(&acc(T1, 0x6000, AccessKind::AtomicRmw)).is_none());
    }

    #[test]
    fn atomic_rmw_flagged_without_atomic_sync() {
        let mut cfg = DetectorConfig::djit();
        cfg.atomic_sync = false;
        let mut e = HbEngine::new(cfg);
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        assert!(e.on_event(&acc(T1, 0x6000, AccessKind::AtomicRmw)).is_none());
        assert!(e.on_event(&acc(T2, 0x6000, AccessKind::AtomicRmw)).is_some());
    }

    #[test]
    fn queue_handoff_ordered_only_with_queue_hb() {
        let put = Event::QueuePut { tid: T1, sync: SyncId(3), token: 7, loc: L };
        let got = Event::QueueGot { tid: T2, sync: SyncId(3), token: 7, loc: L };
        // Without queue_hb: race.
        let mut e = HbEngine::new(DetectorConfig::hybrid());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0x7000, AccessKind::Write));
        e.on_event(&put);
        e.on_event(&got);
        assert!(e.on_event(&acc(T2, 0x7000, AccessKind::Write)).is_some());
        // With queue_hb: ordered (E12).
        let mut e = HbEngine::new(DetectorConfig::hybrid_queue_hb());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0x7000, AccessKind::Write));
        e.on_event(&put);
        e.on_event(&got);
        assert!(e.on_event(&acc(T2, 0x7000, AccessKind::Write)).is_none());
    }

    #[test]
    fn queue_tokens_pair_individually() {
        // Two messages: consumer of message B is not ordered after the
        // producer's post-B writes, only after pre-B ones.
        let mut e = HbEngine::new(DetectorConfig::hybrid_queue_hb());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&Event::QueuePut { tid: T1, sync: SyncId(3), token: 0, loc: L });
        e.on_event(&acc(T1, 0x7100, AccessKind::Write)); // after put 0
        e.on_event(&Event::QueueGot { tid: T2, sync: SyncId(3), token: 0, loc: L });
        // T2 got message 0 only — T1's later write is unordered.
        assert!(e.on_event(&acc(T2, 0x7100, AccessKind::Write)).is_some());
    }

    #[test]
    fn semaphore_post_wait_orders() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0x8000, AccessKind::Write));
        e.on_event(&Event::SemPost { tid: T1, sync: SyncId(4), loc: L });
        e.on_event(&Event::SemAcquired { tid: T2, sync: SyncId(4), loc: L });
        assert!(e.on_event(&acc(T2, 0x8000, AccessKind::Write)).is_none());
    }

    #[test]
    fn alloc_resets_hb_state() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0x9000, AccessKind::Write));
        e.on_event(&Event::Alloc { tid: T2, addr: 0x9000, size: 8, loc: L });
        assert!(e.on_event(&acc(T2, 0x9000, AccessKind::Write)).is_none());
    }

    #[test]
    fn report_once_latches_per_granule() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0xA000, AccessKind::Write));
        assert!(e.on_event(&acc(T2, 0xA000, AccessKind::Write)).is_some());
        assert!(e.on_event(&acc(T1, 0xA000, AccessKind::Write)).is_none());
    }

    #[test]
    fn epoch_stats_count_hits_promotions_demotions() {
        let mut e = HbEngine::new(DetectorConfig::djit());
        e.on_event(&acc(T0, 0x5000, AccessKind::Write));
        // Same epoch, nothing read since: the O(1) write fast path.
        e.on_event(&acc(T0, 0x5000, AccessKind::Write));
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0x5000, AccessKind::Read));
        // Same epoch re-read: the O(1) read fast path.
        e.on_event(&acc(T1, 0x5000, AccessKind::Read));
        // Concurrent second reader: promotion to a read-share clock.
        e.on_event(&acc(T2, 0x5000, AccessKind::Read));
        // Next write demotes back to an epoch (and races, which is fine).
        e.on_event(&acc(T1, 0x5000, AccessKind::Write));
        let s = e.epoch_stats();
        assert_eq!(s.epoch_hits, 2);
        assert_eq!(s.promotions, 1);
        assert_eq!(s.demotions, 1);
        assert_eq!(s.vc_fallbacks, 1, "the demoting write compared the read-share clock");
    }

    fn assert_modes_agree(evs: &[Event]) {
        let cfg = DetectorConfig::djit();
        let rcfg = DetectorConfig { hb_reference: true, ..cfg };
        let mut adaptive = HbEngine::new(cfg);
        let mut reference = HbEngine::new(rcfg);
        for ev in evs {
            let a = adaptive.on_event(ev).map(|x| x.conflict);
            let r = reference.on_event(ev).map(|x| x.conflict);
            assert_eq!(a, r, "modes diverge on {ev:?}");
        }
        assert_eq!(adaptive.shadowed_granules(), reference.shadowed_granules());
        assert_eq!(adaptive.peak_shadowed_granules(), reference.peak_shadowed_granules());
    }

    #[test]
    fn reference_mode_matches_adaptive_reports() {
        // Chained readers collapse to a single epoch; the unordered write
        // then names the chain survivor in both modes.
        assert_modes_agree(&[
            create(T0, T1),
            create(T0, T2),
            acc(T1, 0x5000, AccessKind::Read),
            lock(T1, 0),
            unlock(T1, 0),
            lock(T2, 0),
            acc(T2, 0x5000, AccessKind::Read),
            unlock(T2, 0),
            acc(T0, 0x5000, AccessKind::Write),
        ]);
        // Concurrent readers promote; the write then sees "prior reads".
        assert_modes_agree(&[
            acc(T0, 0x6000, AccessKind::Write),
            create(T0, T1),
            create(T0, T2),
            acc(T1, 0x6000, AccessKind::Read),
            acc(T2, 0x6000, AccessKind::Read),
            acc(T0, 0x6000, AccessKind::Write),
        ]);
        // Unordered write-write names the prior write's epoch identically.
        assert_modes_agree(&[
            create(T0, T1),
            create(T0, T2),
            acc(T1, 0x7000, AccessKind::Write),
            acc(T2, 0x7000, AccessKind::Write),
            acc(T2, 0x7000, AccessKind::Read),
        ]);
    }

    #[test]
    fn reference_mode_counts_every_read_as_fallback() {
        let cfg = DetectorConfig { hb_reference: true, ..DetectorConfig::djit() };
        let mut e = HbEngine::new(cfg);
        e.on_event(&create(T0, T1));
        e.on_event(&acc(T1, 0x5000, AccessKind::Read));
        e.on_event(&acc(T1, 0x5000, AccessKind::Read));
        let s = e.epoch_stats();
        assert_eq!(s.vc_fallbacks, 2);
        assert_eq!(s.promotions, 0);
    }
}
