//! Post-mortem (offline) analysis of recorded execution traces — the
//! alternative execution mode §2.2 and §4.5 discuss: "on-the-fly analysis
//! usually has a significant negative impact on the execution speed of the
//! analyzed program. Offline analysis needs information logging which may
//! result in heavy memory usage."
//!
//! The detector engines are pure event consumers, so the same algorithms
//! run unchanged over a [`vexec::trace::Trace`]. What offline analysis
//! loses is live VM context: reports carry locations but no call stacks or
//! allocation-block annotations.

use crate::config::DetectorConfig;
use crate::eraser::{LocksetEngine, RaceInfo};
use crate::hb::{HbEngine, HbRaceInfo};
use crate::lockorder::{CycleInfo, LockOrderGraph};
use vexec::ir::SrcLoc;
use vexec::trace::{Trace, TraceError};
use vexec::util::FxHashSet;

/// Result of analysing a trace offline.
#[derive(Debug, Default)]
pub struct OfflineAnalysis {
    /// Lockset races, deduplicated by (access kind, location).
    pub races: Vec<RaceInfo>,
    /// Happens-before races (only if requested), deduplicated likewise.
    pub hb_races: Vec<HbRaceInfo>,
    /// Predicted lock-order cycles.
    pub cycles: Vec<CycleInfo>,
    /// Events processed.
    pub events: u64,
}

impl OfflineAnalysis {
    /// Distinct lockset race locations (the Fig 6 metric).
    pub fn race_location_count(&self) -> usize {
        self.races.len()
    }
}

/// Analyse a recorded trace with the lockset engine (and optionally the
/// happens-before engine) — the post-mortem pipeline.
pub fn analyze_trace(
    trace: &Trace,
    cfg: DetectorConfig,
    with_hb: bool,
) -> Result<OfflineAnalysis, TraceError> {
    let mut lockset = LocksetEngine::new(cfg);
    let mut hb = with_hb.then(|| HbEngine::new(cfg));
    let mut lockorder = LockOrderGraph::new();
    let mut out = OfflineAnalysis::default();
    let mut seen: FxHashSet<(bool, SrcLoc)> = FxHashSet::default();
    let mut hb_seen: FxHashSet<SrcLoc> = FxHashSet::default();

    for ev in trace.iter() {
        let ev = ev?;
        out.events += 1;
        if let Some(race) = lockset.on_event(&ev) {
            if seen.insert((race.kind.is_write(), race.loc)) {
                out.races.push(race);
            }
        }
        if let Some(hb) = hb.as_mut() {
            if let Some(race) = hb.on_event(&ev) {
                if hb_seen.insert(race.loc) {
                    out.hb_races.push(race);
                }
            }
        }
        if let Some(cycle) = lockorder.on_event(&ev) {
            out.cycles.push(cycle);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::EraserDetector;
    use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
    use vexec::ir::{Expr, Program};
    use vexec::sched::RoundRobin;
    use vexec::trace::TraceWriter;
    use vexec::vm::run_program;

    fn racy_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 8);
        let loc = pb.loc("off.cpp", 3, "worker");
        let mut w = ProcBuilder::new(0);
        w.at(loc);
        let v = w.load_new(g, 8);
        w.store(g, Expr::Reg(v).add(1u64.into()), 8);
        let worker = pb.add_proc("worker", w);
        let mut m = ProcBuilder::new(0);
        m.at(pb.loc("off.cpp", 10, "main"));
        let h1 = m.spawn(worker, vec![]);
        let h2 = m.spawn(worker, vec![]);
        m.join(h1);
        m.join(h2);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        pb.finish()
    }

    #[test]
    fn offline_equals_online_verdict() {
        let prog = racy_program();

        // Online: detector attached to the live run.
        let mut online = EraserDetector::new(DetectorConfig::hwlc_dr());
        run_program(&prog, &mut online, &mut RoundRobin::new()).expect_clean();

        // Offline: record the trace, analyse post mortem.
        let mut writer = TraceWriter::new();
        run_program(&prog, &mut writer, &mut RoundRobin::new()).expect_clean();
        let trace = writer.finish();
        let offline = analyze_trace(&trace, DetectorConfig::hwlc_dr(), true).unwrap();

        assert_eq!(offline.race_location_count(), online.sink.race_location_count());
        assert_eq!(offline.events, trace.event_count());
        // The offline race points at the same source location.
        let on = &online.sink.reports()[0];
        let off = &offline.races[0];
        assert_eq!(off.loc.line, on.line);
        // HB engine agrees here (unordered writes).
        assert_eq!(offline.hb_races.len(), 1);
    }

    #[test]
    fn offline_detects_lock_order_cycles() {
        // AB-BA serialized: record + analyse.
        let mut pb = ProgramBuilder::new();
        let ma = pb.global("ma", 8);
        let mb = pb.global("mb", 8);
        let loc = pb.loc("dl.cpp", 5, "w");
        let mut w = ProcBuilder::new(2);
        w.at(loc);
        let f = w.load_new(Expr::Reg(w.param(0)), 8);
        let s = w.load_new(Expr::Reg(w.param(1)), 8);
        w.lock(f);
        w.lock(s);
        w.unlock(s);
        w.unlock(f);
        let worker = pb.add_proc("w", w);
        let mut m = ProcBuilder::new(0);
        m.at(pb.loc("dl.cpp", 20, "main"));
        let a = m.new_mutex();
        let b = m.new_mutex();
        m.store(ma, a, 8);
        m.store(mb, b, 8);
        let h1 = m.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
        m.join(h1);
        let h2 = m.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
        m.join(h2);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        let prog = pb.finish();

        let mut writer = TraceWriter::new();
        run_program(&prog, &mut writer, &mut RoundRobin::new()).expect_clean();
        let offline = analyze_trace(&writer.finish(), DetectorConfig::hwlc_dr(), false).unwrap();
        assert_eq!(offline.cycles.len(), 1);
        assert!(offline.hb_races.is_empty());
    }

    #[test]
    fn trace_size_accounting() {
        let prog = racy_program();
        let mut writer = TraceWriter::new();
        run_program(&prog, &mut writer, &mut RoundRobin::new()).expect_clean();
        let trace = writer.finish();
        assert!(trace.bytes_len() > 0);
        // Events are fixed-width encoded; average well under 40 bytes.
        assert!(trace.bytes_per_event() < 40.0, "{}", trace.bytes_per_event());
    }
}
