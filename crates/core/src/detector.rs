//! Tool wrappers: detectors that plug the engines into the VM's
//! [`vexec::tool::Tool`] interface and collect [`Report`]s in a
//! [`ReportSink`].
//!
//! * [`EraserDetector`] — the paper's subject: Helgrind's lockset algorithm
//!   (configure with [`DetectorConfig::original`], [`DetectorConfig::hwlc`]
//!   or [`DetectorConfig::hwlc_dr`] for the three Fig 6 columns), plus the
//!   lock-order deadlock predictor.
//! * [`DjitDetector`] — the DJIT-style pure happens-before baseline (§2.2).
//! * [`HybridDetector`] — lockset ∧ happens-before, in the spirit of
//!   O'Callahan & Choi's hybrid detection [12]: a warning is issued only if
//!   the locking discipline is violated *and* the accesses are unordered.
//!
//! Each detector exposes its event handling twice: `handle_event` takes
//! any [`ReportCtx`] — the live VM inline, or a trace-replay context
//! offline — and the [`Tool`] impl simply delegates with the [`VmView`].
//! One code path means offline analysis reproduces inline reports
//! byte-for-byte.

use crate::config::DetectorConfig;
use crate::eraser::{LocksetEngine, RaceInfo};
use crate::hb::{EpochStats, HbEngine, HbRaceInfo};
use crate::lockorder::{CycleInfo, LockOrderGraph};
use crate::report::{resolve_context, Report, ReportCtx, ReportKind, ReportSink};
use crate::suppress::SuppressionSet;
use vexec::event::{AccessKind, Event, ThreadId};
use vexec::ir::SrcLoc;
use vexec::tool::Tool;
use vexec::vm::{GuestError, VmView};

fn race_report_kind(kind: AccessKind) -> ReportKind {
    if kind.is_write() {
        ReportKind::RaceWrite
    } else {
        ReportKind::RaceRead
    }
}

fn hb_report_kind(kind: AccessKind) -> ReportKind {
    if kind.is_write() {
        ReportKind::HbRaceWrite
    } else {
        ReportKind::HbRaceRead
    }
}

fn build_report(
    ctx: &dyn ReportCtx,
    kind: ReportKind,
    tid: ThreadId,
    addr: u64,
    loc: SrcLoc,
    details: String,
) -> Report {
    let (stack, block) = resolve_context(ctx, tid, addr);
    Report {
        kind,
        tid: tid.0,
        file: ctx.resolve_sym(loc.file).to_string(),
        line: loc.line,
        func: ctx.resolve_sym(loc.func).to_string(),
        addr,
        stack,
        block,
        details,
        truncated: false,
    }
}

/// Per-engine analysis counters, surfaced by `raceline check --stats` /
/// `analyze --stats` (stderr only — stdout report identity is the
/// filter-equivalence contract and these counters legitimately differ
/// between filtered and unfiltered runs).
#[derive(Clone, Copy, Debug)]
pub struct EngineStats {
    /// Engine label ("lockset" or "hb").
    pub name: &'static str,
    /// Memory accesses the engine processed.
    pub accesses: u64,
    /// Granules dropped on the floor after the shadow budget filled.
    pub shadow_overflow: u64,
    /// Live shadow granules at the moment the stats were taken.
    pub live_granules: usize,
    /// High-water mark of live shadow granules over the engine's lifetime.
    pub peak_granules: usize,
    /// Adaptive epoch-representation counters; `None` for engines that do
    /// not carry happens-before shadow state (the lockset engine).
    pub epoch: Option<EpochStats>,
}

/// The Eraser/Helgrind lockset detector with lock-order deadlock
/// prediction.
pub struct EraserDetector {
    engine: LocksetEngine,
    lockorder: LockOrderGraph,
    pub sink: ReportSink,
    /// Detect lock-order cycles too (on by default, like Helgrind).
    pub detect_lock_order: bool,
    /// Rendered guest fault, if the run ended with one (diagnostic, not a
    /// warning — the guest crashed, the detector did not).
    pub guest_fault: Option<String>,
}

impl EraserDetector {
    pub fn new(cfg: DetectorConfig) -> Self {
        Self::with_suppressions(cfg, SuppressionSet::default())
    }

    pub fn with_suppressions(cfg: DetectorConfig, supp: SuppressionSet) -> Self {
        let mut sink = ReportSink::with_suppressions(supp);
        sink.set_max_reports(cfg.budget.max_reports);
        EraserDetector {
            engine: LocksetEngine::new(cfg),
            lockorder: LockOrderGraph::new(),
            sink,
            detect_lock_order: true,
            guest_fault: None,
        }
    }

    pub fn config(&self) -> &DetectorConfig {
        self.engine.config()
    }

    pub fn engine(&self) -> &LocksetEngine {
        &self.engine
    }

    /// Analysis counters for `--stats`.
    pub fn engine_stats(&self) -> Vec<EngineStats> {
        vec![EngineStats {
            name: "lockset",
            accesses: self.engine.accesses,
            shadow_overflow: self.engine.shadow_overflow(),
            live_granules: self.engine.shadowed_granules(),
            peak_granules: self.engine.peak_shadowed_granules(),
            epoch: None,
        }]
    }

    /// True if any budget cap degraded this run's results.
    pub fn truncated(&self) -> bool {
        self.engine.truncated() || self.sink.truncated()
    }

    /// Feed one event; context-agnostic (inline VM or trace replay).
    pub fn handle_event(&mut self, ev: &Event, ctx: &dyn ReportCtx) {
        if let Some(race) = self.engine.on_event(ev) {
            self.report_race(ctx, race);
        }
        if self.detect_lock_order {
            if let Some(cycle) = self.lockorder.on_event(ev) {
                self.report_cycle(ctx, cycle);
            }
        }
    }

    /// End-of-stream flush (mirrors [`Tool::on_finish`]).
    pub fn handle_finish(&mut self) {
        if self.truncated() {
            self.sink.mark_truncated();
        }
    }

    fn report_race(&mut self, ctx: &dyn ReportCtx, race: RaceInfo) {
        let kind = race_report_kind(race.kind);
        if self.sink.seen(kind, race.loc) {
            return;
        }
        let mut details = format!("Previous state: {}", race.prev_state);
        if let Some((ptid, pkind, ploc)) = race.prev_access {
            details.push_str(&format!(
                "\n   This conflicts with a previous {} by thread {} at {}:{} ({})",
                if pkind.is_write() { "write" } else { "read" },
                ptid.0,
                ctx.resolve_sym(ploc.file),
                ploc.line,
                ctx.resolve_sym(ploc.func),
            ));
        }
        let report = build_report(ctx, kind, race.tid, race.addr, race.loc, details);
        self.sink.add(race.loc, report);
    }

    fn report_cycle(&mut self, ctx: &dyn ReportCtx, cycle: CycleInfo) {
        let kind = ReportKind::LockOrderCycle;
        if self.sink.seen(kind, cycle.loc) {
            return;
        }
        let report = build_report(ctx, kind, cycle.tid, 0, cycle.loc, cycle.describe());
        self.sink.add(cycle.loc, report);
    }
}

impl Tool for EraserDetector {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        self.handle_event(ev, vm);
    }

    fn on_guest_fault(&mut self, err: &GuestError, _vm: &VmView<'_>) {
        self.guest_fault = Some(err.to_string());
    }

    fn on_finish(&mut self, _vm: &VmView<'_>) {
        self.handle_finish();
    }
}

/// The DJIT-style happens-before detector.
pub struct DjitDetector {
    engine: HbEngine,
    pub sink: ReportSink,
    /// Rendered guest fault, if the run ended with one.
    pub guest_fault: Option<String>,
}

impl DjitDetector {
    pub fn new(cfg: DetectorConfig) -> Self {
        let mut sink = ReportSink::new();
        sink.set_max_reports(cfg.budget.max_reports);
        DjitDetector { engine: HbEngine::new(cfg), sink, guest_fault: None }
    }

    /// Analysis counters for `--stats`.
    pub fn engine_stats(&self) -> Vec<EngineStats> {
        vec![EngineStats {
            name: "hb",
            accesses: self.engine.accesses,
            shadow_overflow: self.engine.shadow_overflow(),
            live_granules: self.engine.shadowed_granules(),
            peak_granules: self.engine.peak_shadowed_granules(),
            epoch: Some(self.engine.epoch_stats()),
        }]
    }

    /// True if any budget cap degraded this run's results.
    pub fn truncated(&self) -> bool {
        self.engine.truncated() || self.sink.truncated()
    }

    /// Feed one event; context-agnostic (inline VM or trace replay).
    pub fn handle_event(&mut self, ev: &Event, ctx: &dyn ReportCtx) {
        if let Some(race) = self.engine.on_event(ev) {
            self.report_race(ctx, race);
        }
    }

    /// End-of-stream flush (mirrors [`Tool::on_finish`]).
    pub fn handle_finish(&mut self) {
        if self.truncated() {
            self.sink.mark_truncated();
        }
    }

    fn report_race(&mut self, ctx: &dyn ReportCtx, race: HbRaceInfo) {
        let kind = hb_report_kind(race.kind);
        if self.sink.seen(kind, race.loc) {
            return;
        }
        let report = build_report(ctx, kind, race.tid, race.addr, race.loc, race.conflict.clone());
        self.sink.add(race.loc, report);
    }
}

impl Tool for DjitDetector {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        self.handle_event(ev, vm);
    }

    fn on_guest_fault(&mut self, err: &GuestError, _vm: &VmView<'_>) {
        self.guest_fault = Some(err.to_string());
    }

    fn on_finish(&mut self, _vm: &VmView<'_>) {
        self.handle_finish();
    }
}

/// Hybrid detection: a race is reported only when the lockset discipline is
/// violated **and** the happens-before relation does not order the
/// accesses. Higher-level hand-off primitives (message queues) can feed
/// the HB side via `DetectorConfig::hybrid_queue_hb()`, implementing the
/// paper's §5 proposal and eliminating the Fig 11 thread-pool false
/// positives.
pub struct HybridDetector {
    lockset: LocksetEngine,
    hb: HbEngine,
    pub sink: ReportSink,
    /// Rendered guest fault, if the run ended with one.
    pub guest_fault: Option<String>,
}

impl HybridDetector {
    pub fn new(cfg: DetectorConfig) -> Self {
        let mut lockset = LocksetEngine::new(cfg);
        let mut hb = HbEngine::new(cfg);
        // Both engines keep flagging (no per-granule latch); the sink
        // deduplicates by location.
        lockset.set_report_once(false);
        hb.set_report_once(false);
        let mut sink = ReportSink::new();
        sink.set_max_reports(cfg.budget.max_reports);
        HybridDetector { lockset, hb, sink, guest_fault: None }
    }

    /// Analysis counters for `--stats`.
    pub fn engine_stats(&self) -> Vec<EngineStats> {
        vec![
            EngineStats {
                name: "lockset",
                accesses: self.lockset.accesses,
                shadow_overflow: self.lockset.shadow_overflow(),
                live_granules: self.lockset.shadowed_granules(),
                peak_granules: self.lockset.peak_shadowed_granules(),
                epoch: None,
            },
            EngineStats {
                name: "hb",
                accesses: self.hb.accesses,
                shadow_overflow: self.hb.shadow_overflow(),
                live_granules: self.hb.shadowed_granules(),
                peak_granules: self.hb.peak_shadowed_granules(),
                epoch: Some(self.hb.epoch_stats()),
            },
        ]
    }

    /// True if any budget cap degraded this run's results.
    pub fn truncated(&self) -> bool {
        self.lockset.truncated() || self.hb.truncated() || self.sink.truncated()
    }

    /// Feed one event; context-agnostic (inline VM or trace replay).
    pub fn handle_event(&mut self, ev: &Event, ctx: &dyn ReportCtx) {
        let ls_race = self.lockset.on_event(ev);
        let hb_race = self.hb.on_event(ev);
        if let (Some(ls), Some(hb)) = (ls_race, hb_race) {
            let kind = race_report_kind(ls.kind);
            if self.sink.seen(kind, ls.loc) {
                return;
            }
            let details = format!("Previous state: {}; hb: {}", ls.prev_state, hb.conflict);
            let report = build_report(ctx, kind, ls.tid, ls.addr, ls.loc, details);
            self.sink.add(ls.loc, report);
        }
    }

    /// End-of-stream flush (mirrors [`Tool::on_finish`]).
    pub fn handle_finish(&mut self) {
        if self.truncated() {
            self.sink.mark_truncated();
        }
    }
}

impl Tool for HybridDetector {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        self.handle_event(ev, vm);
    }

    fn on_guest_fault(&mut self, err: &GuestError, _vm: &VmView<'_>) {
        self.guest_fault = Some(err.to_string());
    }

    fn on_finish(&mut self, _vm: &VmView<'_>) {
        self.handle_finish();
    }
}

/// A name-dispatched live detector: any of the three engines behind one
/// concrete [`Tool`], for drivers that pick the engine at runtime (the
/// soak loop, benches) without monomorphizing every call site. The
/// offline twin is [`crate::replay::ReplayDetector`]; the name → engine
/// mapping here matches the CLI's (`djit` → HB, `hybrid*` → hybrid,
/// everything else → lockset with suppressions applied in the sink).
#[allow(clippy::large_enum_variant)] // one detector per phase, never collections of them
pub enum AnyDetector {
    Eraser(EraserDetector),
    Djit(DjitDetector),
    Hybrid(HybridDetector),
}

impl AnyDetector {
    pub fn by_name(name: &str, cfg: DetectorConfig, supp: SuppressionSet) -> Self {
        match name {
            "djit" => AnyDetector::Djit(DjitDetector::new(cfg)),
            "hybrid" | "hybrid-queue" => AnyDetector::Hybrid(HybridDetector::new(cfg)),
            _ => AnyDetector::Eraser(EraserDetector::with_suppressions(cfg, supp)),
        }
    }

    pub fn truncated(&self) -> bool {
        match self {
            AnyDetector::Eraser(d) => d.truncated(),
            AnyDetector::Djit(d) => d.truncated(),
            AnyDetector::Hybrid(d) => d.truncated(),
        }
    }

    pub fn engine_stats(&self) -> Vec<EngineStats> {
        match self {
            AnyDetector::Eraser(d) => d.engine_stats(),
            AnyDetector::Djit(d) => d.engine_stats(),
            AnyDetector::Hybrid(d) => d.engine_stats(),
        }
    }

    pub fn guest_fault(&self) -> Option<&str> {
        match self {
            AnyDetector::Eraser(d) => d.guest_fault.as_deref(),
            AnyDetector::Djit(d) => d.guest_fault.as_deref(),
            AnyDetector::Hybrid(d) => d.guest_fault.as_deref(),
        }
    }

    pub fn take_reports(&mut self) -> Vec<Report> {
        match self {
            AnyDetector::Eraser(d) => d.sink.take_reports(),
            AnyDetector::Djit(d) => d.sink.take_reports(),
            AnyDetector::Hybrid(d) => d.sink.take_reports(),
        }
    }
}

impl Tool for AnyDetector {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        match self {
            AnyDetector::Eraser(d) => d.on_event(ev, vm),
            AnyDetector::Djit(d) => d.on_event(ev, vm),
            AnyDetector::Hybrid(d) => d.on_event(ev, vm),
        }
    }

    fn on_guest_fault(&mut self, err: &GuestError, vm: &VmView<'_>) {
        match self {
            AnyDetector::Eraser(d) => d.on_guest_fault(err, vm),
            AnyDetector::Djit(d) => d.on_guest_fault(err, vm),
            AnyDetector::Hybrid(d) => d.on_guest_fault(err, vm),
        }
    }

    fn on_finish(&mut self, vm: &VmView<'_>) {
        match self {
            AnyDetector::Eraser(d) => d.on_finish(vm),
            AnyDetector::Djit(d) => d.on_finish(vm),
            AnyDetector::Hybrid(d) => d.on_finish(vm),
        }
    }
}

#[cfg(test)]
mod tests {
    // Detector-level behaviour is covered by the crate-level integration
    // tests (tests/detectors.rs) which run real guest programs through the
    // VM; here we only check construction invariants.
    use super::*;

    #[test]
    fn constructors_wire_configs() {
        let e = EraserDetector::new(DetectorConfig::original());
        assert!(!e.config().honor_destruct);
        let e = EraserDetector::new(DetectorConfig::hwlc_dr());
        assert!(e.config().honor_destruct);
        let _ = DjitDetector::new(DetectorConfig::djit());
        let _ = HybridDetector::new(DetectorConfig::hybrid_queue_hb());
    }

    #[test]
    fn suppressions_attach() {
        let supp = SuppressionSet::parse("{\n s\n H:Race\n fun:ignored_*\n}").unwrap();
        let e = EraserDetector::with_suppressions(DetectorConfig::hwlc(), supp);
        assert_eq!(e.sink.location_count(), 0);
    }
}
