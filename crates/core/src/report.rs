//! Warning reports and the report sink.
//!
//! Reports mirror Helgrind's output (Fig 9 of the paper): kind, acting
//! thread, source location, a resolved backtrace, and — for data races —
//! the shadow-state transition and allocation block containing the address.
//! The sink deduplicates by *(kind, location)*, because the paper's
//! headline numbers are counts of distinct "reported locations" (Fig 5/6),
//! and applies Valgrind-style suppressions.

use crate::suppress::SuppressionSet;
use serde::{Deserialize, Serialize};
use vexec::event::ThreadId;
use vexec::ir::SrcLoc;
use vexec::util::{FxHashSet, Symbol};
use vexec::vm::VmView;

/// The kind of a warning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, PartialOrd, Ord)]
pub enum ReportKind {
    /// Lockset violation on a read (Eraser family).
    RaceRead,
    /// Lockset violation on a write (Eraser family).
    RaceWrite,
    /// Happens-before violation on a read (DJIT family).
    HbRaceRead,
    /// Happens-before violation on a write (DJIT family).
    HbRaceWrite,
    /// Cycle in the lock acquisition order graph (potential deadlock).
    LockOrderCycle,
    /// Static lint: acquiring a lock already held on every path here.
    DoubleLock,
    /// Static lint: releasing a lock not held on any path here.
    UnlockWithoutLock,
    /// Static lint: a `return` path keeps a lock the function releases on
    /// another path.
    LockLeak,
    /// Static lint: `delete` of a polymorphic object the DR annotation
    /// pass has not rewritten (the destructor FP stays live).
    UnannotatedDelete,
    /// Static lint: `delete` while holding a lock.
    DeleteWhileLocked,
    /// Static escape analysis: a reference to lock-protected state flows
    /// out of its critical section (return value, out-parameter, store or
    /// spawn capture) and is used after the guarding lock is released.
    EscapingGuardedRef,
}

impl ReportKind {
    pub fn name(self) -> &'static str {
        match self {
            ReportKind::RaceRead => "Race (read)",
            ReportKind::RaceWrite => "Race (write)",
            ReportKind::HbRaceRead => "HbRace (read)",
            ReportKind::HbRaceWrite => "HbRace (write)",
            ReportKind::LockOrderCycle => "LockOrder",
            ReportKind::DoubleLock => "DoubleLock",
            ReportKind::UnlockWithoutLock => "UnlockWithoutLock",
            ReportKind::LockLeak => "LockLeak",
            ReportKind::UnannotatedDelete => "UnannotatedDelete",
            ReportKind::DeleteWhileLocked => "DeleteWhileLocked",
            ReportKind::EscapingGuardedRef => "EscapingGuardedRef",
        }
    }

    /// Stable machine token, used by the explore checkpoint format.
    pub fn code(self) -> &'static str {
        match self {
            ReportKind::RaceRead => "RaceRead",
            ReportKind::RaceWrite => "RaceWrite",
            ReportKind::HbRaceRead => "HbRaceRead",
            ReportKind::HbRaceWrite => "HbRaceWrite",
            ReportKind::LockOrderCycle => "LockOrderCycle",
            ReportKind::DoubleLock => "DoubleLock",
            ReportKind::UnlockWithoutLock => "UnlockWithoutLock",
            ReportKind::LockLeak => "LockLeak",
            ReportKind::UnannotatedDelete => "UnannotatedDelete",
            ReportKind::DeleteWhileLocked => "DeleteWhileLocked",
            ReportKind::EscapingGuardedRef => "EscapingGuardedRef",
        }
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(s: &str) -> Option<ReportKind> {
        Some(match s {
            "RaceRead" => ReportKind::RaceRead,
            "RaceWrite" => ReportKind::RaceWrite,
            "HbRaceRead" => ReportKind::HbRaceRead,
            "HbRaceWrite" => ReportKind::HbRaceWrite,
            "LockOrderCycle" => ReportKind::LockOrderCycle,
            "DoubleLock" => ReportKind::DoubleLock,
            "UnlockWithoutLock" => ReportKind::UnlockWithoutLock,
            "LockLeak" => ReportKind::LockLeak,
            "UnannotatedDelete" => ReportKind::UnannotatedDelete,
            "DeleteWhileLocked" => ReportKind::DeleteWhileLocked,
            "EscapingGuardedRef" => ReportKind::EscapingGuardedRef,
            _ => return None,
        })
    }

    /// The suppression-file kind token (Valgrind writes `Helgrind:Race`).
    pub fn suppression_token(self) -> &'static str {
        match self {
            ReportKind::RaceRead | ReportKind::RaceWrite => "Race",
            ReportKind::HbRaceRead | ReportKind::HbRaceWrite => "HbRace",
            ReportKind::LockOrderCycle => "LockOrder",
            ReportKind::DoubleLock => "DoubleLock",
            ReportKind::UnlockWithoutLock => "UnlockWithoutLock",
            ReportKind::LockLeak => "LockLeak",
            ReportKind::UnannotatedDelete => "UnannotatedDelete",
            ReportKind::DeleteWhileLocked => "DeleteWhileLocked",
            ReportKind::EscapingGuardedRef => "EscapingGuardedRef",
        }
    }
}

/// One frame of a resolved backtrace.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StackFrame {
    pub func: String,
    pub file: String,
    pub line: u32,
}

impl std::fmt::Display for StackFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}:{})", self.func, self.file, self.line)
    }
}

/// A fully resolved warning, self-contained (no interner needed).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    pub kind: ReportKind,
    pub tid: u32,
    pub file: String,
    pub line: u32,
    pub func: String,
    /// Faulting address for races, 0 otherwise.
    pub addr: u64,
    /// Backtrace, innermost first.
    pub stack: Vec<StackFrame>,
    /// "Address is N bytes inside a block of size M alloc'd by thread T".
    pub block: Option<String>,
    /// Human-readable transition description ("Previous state: shared RO,
    /// no locks" in Helgrind's output).
    pub details: String,
    /// True when the producing engine hit a [`crate::budget`] cap, so this
    /// run's findings may be incomplete or imprecise (summarized state).
    pub truncated: bool,
}

impl Report {
    /// The dedup key: kind + source location.
    pub fn location_key(&self) -> (ReportKind, String, u32, String) {
        (self.kind, self.file.clone(), self.line, self.func.clone())
    }

    /// Render in a Helgrind-like multi-line format.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Possible {} by thread {} at {:#x}\n   at {} ({}:{})\n",
            self.kind.name(),
            self.tid,
            self.addr,
            self.func,
            self.file,
            self.line
        );
        for f in self.stack.iter().skip(1) {
            s.push_str(&format!("   by {f}\n"));
        }
        if let Some(b) = &self.block {
            s.push_str(&format!("   {b}\n"));
        }
        if !self.details.is_empty() {
            s.push_str(&format!("   {}\n", self.details));
        }
        s
    }
}

/// Everything a detector needs to turn a raw finding into a resolved
/// [`Report`]: symbol strings, the acting thread's backtrace, and the
/// allocation block containing an address.
///
/// Implemented by the live [`VmView`] (inline detection) and by the trace
/// replay context (offline analysis), so both paths resolve reports
/// through identical code — which is what makes `raceline analyze` output
/// byte-identical to inline `raceline check`.
pub trait ReportCtx {
    /// Resolve an interned symbol to its string.
    fn resolve_sym(&self, sym: Symbol) -> &str;
    /// Backtrace of `tid`, innermost frame first, fully resolved.
    fn stack_of(&self, tid: ThreadId) -> Vec<StackFrame>;
    /// The "Address … inside a block …" note for `addr`, if any block
    /// contains it (format via [`format_block_note`]).
    fn block_note(&self, addr: u64) -> Option<String>;
}

/// The one true rendering of a report's allocation-block note; every
/// [`ReportCtx`] must produce block notes through this helper.
pub fn format_block_note(addr: u64, base: u64, size: u64, alloc_tid: u32, freed: bool) -> String {
    format!(
        "Address {:#x} is {} bytes inside a block of size {} alloc'd by thread {}{}",
        addr,
        addr - base,
        size,
        alloc_tid,
        if freed { " (freed)" } else { "" }
    )
}

impl ReportCtx for VmView<'_> {
    fn resolve_sym(&self, sym: Symbol) -> &str {
        self.resolve(sym)
    }

    fn stack_of(&self, tid: ThreadId) -> Vec<StackFrame> {
        self.stack(tid)
            .into_iter()
            .map(|f| StackFrame {
                func: self.resolve(f.func).to_string(),
                file: self.resolve(f.loc.file).to_string(),
                line: f.loc.line,
            })
            .collect()
    }

    fn block_note(&self, addr: u64) -> Option<String> {
        self.block_info(addr)
            .map(|b| format_block_note(addr, b.addr, b.size, b.alloc_tid.0, b.freed))
    }
}

/// Helper: build the resolved stack + block description from any context.
pub fn resolve_context(
    ctx: &dyn ReportCtx,
    tid: ThreadId,
    addr: u64,
) -> (Vec<StackFrame>, Option<String>) {
    (ctx.stack_of(tid), ctx.block_note(addr))
}

/// Collects reports, deduplicates by location, applies suppressions, and
/// enforces the report-count budget (further reports are counted in
/// `dropped` rather than stored).
#[derive(Debug)]
pub struct ReportSink {
    reports: Vec<Report>,
    seen: FxHashSet<(ReportKind, SrcLoc)>,
    suppressions: SuppressionSet,
    max_reports: usize,
    /// Reports dropped by suppressions.
    pub suppressed: u64,
    /// Reports dropped as duplicate locations.
    pub duplicates: u64,
    /// Distinct reports dropped because the budget cap was reached.
    pub dropped: u64,
}

impl Default for ReportSink {
    fn default() -> Self {
        ReportSink {
            reports: Vec::new(),
            seen: FxHashSet::default(),
            suppressions: SuppressionSet::default(),
            max_reports: usize::MAX,
            suppressed: 0,
            duplicates: 0,
            dropped: 0,
        }
    }
}

impl ReportSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_suppressions(suppressions: SuppressionSet) -> Self {
        ReportSink { suppressions, ..Default::default() }
    }

    /// Cap the number of stored reports (budget degradation).
    pub fn set_max_reports(&mut self, max: usize) {
        self.max_reports = max;
    }

    /// True if the cap dropped at least one distinct report.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Offer a report keyed by its raw (interned) location. Returns `true`
    /// if the report was recorded as a new distinct location.
    pub fn add(&mut self, key_loc: SrcLoc, report: Report) -> bool {
        if !self.seen.insert((report.kind, key_loc)) {
            self.duplicates += 1;
            return false;
        }
        if self.suppressions.matches(&report) {
            self.suppressed += 1;
            return false;
        }
        if self.reports.len() >= self.max_reports {
            self.dropped += 1;
            return false;
        }
        self.reports.push(report);
        true
    }

    /// Mark every stored report as coming from a degraded (budget-capped)
    /// run. Called by the engines at finish time.
    pub fn mark_truncated(&mut self) {
        for r in &mut self.reports {
            r.truncated = true;
        }
    }

    /// Has this (kind, location) already been recorded or suppressed?
    pub fn seen(&self, kind: ReportKind, loc: SrcLoc) -> bool {
        self.seen.contains(&(kind, loc))
    }

    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Number of distinct reported locations (the paper's metric).
    pub fn location_count(&self) -> usize {
        self.reports.len()
    }

    pub fn count_kind(&self, kind: ReportKind) -> usize {
        self.reports.iter().filter(|r| r.kind == kind).count()
    }

    /// Distinct race locations (read + write, lockset or HB family).
    pub fn race_location_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    ReportKind::RaceRead
                        | ReportKind::RaceWrite
                        | ReportKind::HbRaceRead
                        | ReportKind::HbRaceWrite
                )
            })
            .count()
    }

    pub fn take_reports(&mut self) -> Vec<Report> {
        std::mem::take(&mut self.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::util::Symbol;

    fn mk_report(kind: ReportKind, line: u32) -> Report {
        Report {
            kind,
            tid: 1,
            file: "a.cpp".into(),
            line,
            func: "f".into(),
            addr: 0x2000,
            stack: vec![StackFrame { func: "f".into(), file: "a.cpp".into(), line }],
            block: None,
            details: String::new(),
            truncated: false,
        }
    }

    fn loc(line: u32) -> SrcLoc {
        SrcLoc { file: Symbol(1), line, func: Symbol(2) }
    }

    #[test]
    fn dedup_by_kind_and_location() {
        let mut sink = ReportSink::new();
        assert!(sink.add(loc(3), mk_report(ReportKind::RaceWrite, 3)));
        assert!(!sink.add(loc(3), mk_report(ReportKind::RaceWrite, 3)));
        assert!(sink.add(loc(3), mk_report(ReportKind::RaceRead, 3)), "kinds dedup separately");
        assert!(sink.add(loc(4), mk_report(ReportKind::RaceWrite, 4)));
        assert_eq!(sink.location_count(), 3);
        assert_eq!(sink.duplicates, 1);
    }

    #[test]
    fn count_kind_filters() {
        let mut sink = ReportSink::new();
        sink.add(loc(1), mk_report(ReportKind::RaceWrite, 1));
        sink.add(loc(2), mk_report(ReportKind::LockOrderCycle, 2));
        assert_eq!(sink.count_kind(ReportKind::RaceWrite), 1);
        assert_eq!(sink.count_kind(ReportKind::LockOrderCycle), 1);
        assert_eq!(sink.race_location_count(), 1);
    }

    #[test]
    fn report_cap_drops_and_counts() {
        let mut sink = ReportSink::new();
        sink.set_max_reports(2);
        assert!(sink.add(loc(1), mk_report(ReportKind::RaceWrite, 1)));
        assert!(sink.add(loc(2), mk_report(ReportKind::RaceWrite, 2)));
        assert!(!sink.add(loc(3), mk_report(ReportKind::RaceWrite, 3)), "over budget");
        assert_eq!(sink.location_count(), 2);
        assert_eq!(sink.dropped, 1);
        assert!(sink.truncated());
        sink.mark_truncated();
        assert!(sink.reports().iter().all(|r| r.truncated));
    }

    #[test]
    fn kind_code_round_trips() {
        for k in [
            ReportKind::RaceRead,
            ReportKind::RaceWrite,
            ReportKind::HbRaceRead,
            ReportKind::HbRaceWrite,
            ReportKind::LockOrderCycle,
            ReportKind::DoubleLock,
            ReportKind::UnlockWithoutLock,
            ReportKind::LockLeak,
            ReportKind::UnannotatedDelete,
            ReportKind::DeleteWhileLocked,
            ReportKind::EscapingGuardedRef,
        ] {
            assert_eq!(ReportKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ReportKind::from_code("Nonsense"), None);
    }

    #[test]
    fn render_is_helgrind_like() {
        let r = mk_report(ReportKind::RaceWrite, 22);
        let out = r.render();
        assert!(out.contains("Possible Race (write) by thread 1"));
        assert!(out.contains("a.cpp:22"));
    }

    #[test]
    fn suppression_token_groups_race_kinds() {
        assert_eq!(ReportKind::RaceRead.suppression_token(), "Race");
        assert_eq!(ReportKind::RaceWrite.suppression_token(), "Race");
        assert_eq!(ReportKind::LockOrderCycle.suppression_token(), "LockOrder");
    }
}
