//! Lock-order-graph deadlock prediction.
//!
//! Helgrind "also does dead-lock detection" (§3.3 of the paper — which let
//! the authors disable the application's own, racy, deadlock detector).
//! The classic technique: maintain a directed graph with an edge `a → b`
//! whenever a thread acquires `b` while holding `a`; a cycle means some
//! schedule can deadlock, even if this run did not.

use crate::locksets::LockId;
use vexec::event::{Event, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};
use vexec::util::{FxHashMap, FxHashSet};

/// A predicted deadlock: a cycle in the acquisition-order graph.
#[derive(Clone, Debug)]
pub struct CycleInfo {
    /// The lock cycle, e.g. `[a, b, a]` for an AB-BA inversion.
    pub cycle: Vec<LockId>,
    /// Thread whose acquisition closed the cycle.
    pub tid: ThreadId,
    /// Location of the closing acquisition.
    pub loc: SrcLoc,
    /// Locations where each edge of the cycle was first observed.
    pub edge_locs: Vec<SrcLoc>,
}

impl CycleInfo {
    pub fn describe(&self) -> String {
        let names: Vec<String> = self
            .cycle
            .iter()
            .map(|l| match l.to_sync() {
                Some(s) => format!("lock#{}", s.0),
                None => "BUSLOCK".to_string(),
            })
            .collect();
        format!("lock order cycle: {}", names.join(" -> "))
    }
}

/// The lock-order analyser.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    /// Per-thread held locks, in acquisition order.
    held: Vec<Vec<LockId>>,
    /// Acquisition-order edges.
    edges: FxHashMap<LockId, FxHashSet<LockId>>,
    /// Where each edge was first seen.
    edge_locs: FxHashMap<(LockId, LockId), SrcLoc>,
    /// Canonicalised cycles already reported.
    seen_cycles: FxHashSet<Vec<LockId>>,
}

impl LockOrderGraph {
    pub fn new() -> Self {
        Self::default()
    }

    fn held_mut(&mut self, tid: ThreadId) -> &mut Vec<LockId> {
        let idx = tid.index();
        if self.held.len() <= idx {
            self.held.resize_with(idx + 1, Vec::new);
        }
        &mut self.held[idx]
    }

    /// Feed one event; returns a cycle if this acquisition creates one.
    pub fn on_event(&mut self, ev: &Event) -> Option<CycleInfo> {
        match *ev {
            Event::Acquire { tid, sync, kind, loc, .. } => {
                // Condvar re-acquisitions and rwlocks participate like
                // mutexes; semaphores and queues are not lock-shaped.
                if !matches!(kind, SyncKind::Mutex | SyncKind::RwLock) {
                    return None;
                }
                let lock = LockId::from_sync(sync);
                // Index-walk the held list (no clone): `held` is only read
                // here while `edges`/`edge_locs` are written.
                let n_held = self.held_mut(tid).len();
                let mut result = None;
                for k in 0..n_held {
                    let h = self.held[tid.index()][k];
                    if h == lock {
                        continue;
                    }
                    let fresh = self.edges.entry(h).or_default().insert(lock);
                    if fresh {
                        self.edge_locs.entry((h, lock)).or_insert(loc);
                        // Adding h→lock closes a cycle iff lock reaches h.
                        if let Some(mut path) = self.path(lock, h) {
                            // path: lock ... h; the new edge h→lock closes it.
                            path.push(lock);
                            let canon = canonicalise(&path);
                            if self.seen_cycles.insert(canon) && result.is_none() {
                                let edge_locs = path
                                    .windows(2)
                                    .map(|w| {
                                        self.edge_locs
                                            .get(&(w[0], w[1]))
                                            .copied()
                                            .unwrap_or(SrcLoc::UNKNOWN)
                                    })
                                    .collect();
                                result = Some(CycleInfo { cycle: path, tid, loc, edge_locs });
                            }
                        }
                    }
                }
                self.held_mut(tid).push(lock);
                result
            }
            Event::Release { tid, sync, kind, .. } => {
                if !matches!(kind, SyncKind::Mutex | SyncKind::RwLock) {
                    return None;
                }
                let lock = LockId::from_sync(sync);
                let held = self.held_mut(tid);
                if let Some(pos) = held.iter().rposition(|&l| l == lock) {
                    held.remove(pos);
                }
                None
            }
            _ => None,
        }
    }

    /// DFS path from `from` to `to` along acquisition edges.
    fn path(&self, from: LockId, to: LockId) -> Option<Vec<LockId>> {
        let mut stack = vec![(from, vec![from])];
        let mut visited = FxHashSet::default();
        visited.insert(from);
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if let Some(nexts) = self.edges.get(&node) {
                for &n in nexts {
                    if visited.insert(n) {
                        let mut p = path.clone();
                        p.push(n);
                        stack.push((n, p));
                    }
                }
            }
        }
        None
    }

    /// Number of distinct edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }
}

/// Canonical form of a cycle `[a, ..., a]`: drop the closing element,
/// rotate so the minimum lock comes first.
fn canonicalise(cycle: &[LockId]) -> Vec<LockId> {
    let body = &cycle[..cycle.len() - 1];
    let min_pos = body.iter().enumerate().min_by_key(|&(_, l)| l).map(|(i, _)| i).unwrap_or(0);
    let mut out = Vec::with_capacity(body.len());
    out.extend_from_slice(&body[min_pos..]);
    out.extend_from_slice(&body[..min_pos]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::event::{AcqMode, SyncId};

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const T3: ThreadId = ThreadId(3);
    const L: SrcLoc = SrcLoc::UNKNOWN;

    fn lock(tid: ThreadId, s: u32) -> Event {
        Event::Acquire {
            tid,
            sync: SyncId(s),
            kind: SyncKind::Mutex,
            mode: AcqMode::Exclusive,
            loc: L,
        }
    }

    fn unlock(tid: ThreadId, s: u32) -> Event {
        Event::Release { tid, sync: SyncId(s), kind: SyncKind::Mutex, loc: L }
    }

    #[test]
    fn ab_ba_inversion_detected_even_without_actual_deadlock() {
        let mut g = LockOrderGraph::new();
        // T1: A then B (runs to completion — no deadlock happens).
        assert!(g.on_event(&lock(T1, 0)).is_none());
        assert!(g.on_event(&lock(T1, 1)).is_none());
        g.on_event(&unlock(T1, 1));
        g.on_event(&unlock(T1, 0));
        // T2: B then A.
        assert!(g.on_event(&lock(T2, 1)).is_none());
        let cycle = g.on_event(&lock(T2, 0));
        assert!(cycle.is_some(), "potential deadlock must be predicted");
        let c = cycle.unwrap();
        assert_eq!(c.tid, T2);
        assert_eq!(c.cycle.len(), 3);
        assert_eq!(c.cycle.first(), c.cycle.last());
    }

    #[test]
    fn consistent_order_is_clean() {
        let mut g = LockOrderGraph::new();
        for t in [T1, T2, T3] {
            assert!(g.on_event(&lock(t, 0)).is_none());
            assert!(g.on_event(&lock(t, 1)).is_none());
            assert!(g.on_event(&lock(t, 2)).is_none());
            g.on_event(&unlock(t, 2));
            g.on_event(&unlock(t, 1));
            g.on_event(&unlock(t, 0));
        }
        assert_eq!(g.edge_count(), 3); // 0→1, 0→2, 1→2
    }

    #[test]
    fn three_lock_cycle_detected() {
        let mut g = LockOrderGraph::new();
        // 0→1, 1→2, then 2→0 closes the triangle.
        g.on_event(&lock(T1, 0));
        g.on_event(&lock(T1, 1));
        g.on_event(&unlock(T1, 1));
        g.on_event(&unlock(T1, 0));
        g.on_event(&lock(T2, 1));
        g.on_event(&lock(T2, 2));
        g.on_event(&unlock(T2, 2));
        g.on_event(&unlock(T2, 1));
        g.on_event(&lock(T3, 2));
        let cycle = g.on_event(&lock(T3, 0));
        assert!(cycle.is_some());
        assert_eq!(cycle.unwrap().cycle.len(), 4); // a→b→c→a
    }

    #[test]
    fn duplicate_cycles_reported_once() {
        let mut g = LockOrderGraph::new();
        g.on_event(&lock(T1, 0));
        g.on_event(&lock(T1, 1));
        g.on_event(&unlock(T1, 1));
        g.on_event(&unlock(T1, 0));
        g.on_event(&lock(T2, 1));
        assert!(g.on_event(&lock(T2, 0)).is_some());
        g.on_event(&unlock(T2, 0));
        g.on_event(&unlock(T2, 1));
        // Same inversion again: the edge already exists, no new report.
        g.on_event(&lock(T3, 1));
        assert!(g.on_event(&lock(T3, 0)).is_none());
    }

    #[test]
    fn nested_same_lock_reacquire_ignored_gracefully() {
        let mut g = LockOrderGraph::new();
        g.on_event(&lock(T1, 0));
        // Self-edge would be nonsense; guarded by the h == lock check.
        assert!(g.on_event(&lock(T1, 0)).is_none());
    }

    #[test]
    fn describe_names_the_cycle() {
        let mut g = LockOrderGraph::new();
        g.on_event(&lock(T1, 0));
        g.on_event(&lock(T1, 1));
        g.on_event(&unlock(T1, 1));
        g.on_event(&unlock(T1, 0));
        g.on_event(&lock(T2, 1));
        let c = g.on_event(&lock(T2, 0)).unwrap();
        let d = c.describe();
        assert!(d.contains("lock order cycle"), "{d}");
        assert!(d.contains("->"));
    }
}
