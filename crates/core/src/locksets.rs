//! Interned lock-sets with a memoised intersection, following the
//! representation described in the Eraser paper: every distinct set of
//! locks is stored once and named by a small index, so the per-access hot
//! path `C(v) := C(v) ∩ locks_held(t)` is a single cache lookup.

use vexec::event::SyncId;
use vexec::util::FxHashMap;

/// A lock identity inside lock-sets. `BUS` is the virtual hardware bus
/// lock of §3.1/§4.2.2; guest sync objects map to `LockId(sync.0 + 1)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LockId(pub u32);

impl LockId {
    /// The virtual x86 bus lock.
    pub const BUS: LockId = LockId(0);

    pub fn from_sync(s: SyncId) -> LockId {
        LockId(s.0 + 1)
    }

    /// The guest sync object, unless this is the bus lock.
    pub fn to_sync(self) -> Option<SyncId> {
        (self != LockId::BUS).then(|| SyncId(self.0 - 1))
    }
}

/// Handle to an interned lock-set. `LockSetId::EMPTY` (the `Default`) is
/// always the empty set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct LockSetId(pub u32);

impl LockSetId {
    pub const EMPTY: LockSetId = LockSetId(0);
}

/// The lock-set interning table.
///
/// The table can be capped (`set_max_sets`, wired from
/// [`crate::budget::DetectorBudget::max_locksets`]). At capacity,
/// operations that would create a *new* set degrade to an existing one —
/// `with`/`without`/`intersect` return their input set, `intern` falls back
/// to `EMPTY` only for genuinely new combinations — and an overflow counter
/// records every such fallback so the engine can flag its reports as
/// truncated.
#[derive(Debug)]
pub struct LockSetTable {
    sets: Vec<Box<[LockId]>>,
    lookup: FxHashMap<Box<[LockId]>, LockSetId>,
    intersect_cache: FxHashMap<(LockSetId, LockSetId), LockSetId>,
    with_cache: FxHashMap<(LockSetId, LockId), LockSetId>,
    without_cache: FxHashMap<(LockSetId, LockId), LockSetId>,
    max_sets: usize,
    overflows: u64,
}

impl Default for LockSetTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LockSetTable {
    pub fn new() -> Self {
        let mut t = LockSetTable {
            sets: Vec::new(),
            lookup: FxHashMap::default(),
            intersect_cache: FxHashMap::default(),
            with_cache: FxHashMap::default(),
            without_cache: FxHashMap::default(),
            max_sets: usize::MAX,
            overflows: 0,
        };
        let empty = t.intern_sorted(Vec::new());
        debug_assert_eq!(empty, LockSetId::EMPTY);
        t
    }

    /// Cap the number of distinct sets (>= 1 so `EMPTY` always exists).
    pub fn set_max_sets(&mut self, max: usize) {
        self.max_sets = max.max(1);
    }

    /// True if no new set can be interned.
    pub fn at_capacity(&self) -> bool {
        self.sets.len() >= self.max_sets
    }

    /// Times an operation degraded because the table was full.
    pub fn overflow_count(&self) -> u64 {
        self.overflows
    }

    /// Intern a sorted, deduped set; `fallback` is returned (and the
    /// overflow counted) when the set is new but the table is full.
    fn intern_sorted_or(&mut self, locks: Vec<LockId>, fallback: LockSetId) -> LockSetId {
        debug_assert!(locks.windows(2).all(|w| w[0] < w[1]), "set must be sorted+unique");
        if let Some(&id) = self.lookup.get(locks.as_slice()) {
            return id;
        }
        if self.at_capacity() {
            self.overflows += 1;
            return fallback;
        }
        let id = LockSetId(self.sets.len() as u32);
        let boxed: Box<[LockId]> = locks.into_boxed_slice();
        self.sets.push(boxed.clone());
        self.lookup.insert(boxed, id);
        id
    }

    fn intern_sorted(&mut self, locks: Vec<LockId>) -> LockSetId {
        self.intern_sorted_or(locks, LockSetId::EMPTY)
    }

    /// Intern from a borrowed sorted+deduped slice. The common case — the
    /// set already exists — is a single hash probe with **no allocation**,
    /// which is what the lock/unlock hot path needs; the slice is copied
    /// into the table only the first time a combination is seen. Falls
    /// back to `EMPTY` at capacity, like [`Self::intern`].
    pub fn intern_sorted_slice(&mut self, locks: &[LockId]) -> LockSetId {
        debug_assert!(locks.windows(2).all(|w| w[0] < w[1]), "set must be sorted+unique");
        if let Some(&id) = self.lookup.get(locks) {
            return id;
        }
        if self.at_capacity() {
            self.overflows += 1;
            return LockSetId::EMPTY;
        }
        let id = LockSetId(self.sets.len() as u32);
        let boxed: Box<[LockId]> = locks.into();
        self.sets.push(boxed.clone());
        self.lookup.insert(boxed, id);
        id
    }

    /// Intern an arbitrary collection of locks (sorted and deduped here).
    pub fn intern(&mut self, mut locks: Vec<LockId>) -> LockSetId {
        locks.sort_unstable();
        locks.dedup();
        self.intern_sorted(locks)
    }

    /// The members of a set, sorted.
    pub fn elements(&self, id: LockSetId) -> &[LockId] {
        &self.sets[id.0 as usize]
    }

    pub fn is_empty(&self, id: LockSetId) -> bool {
        id == LockSetId::EMPTY
    }

    pub fn len(&self, id: LockSetId) -> usize {
        self.sets[id.0 as usize].len()
    }

    pub fn contains(&self, id: LockSetId, lock: LockId) -> bool {
        self.sets[id.0 as usize].binary_search(&lock).is_ok()
    }

    /// Memoised intersection. The hot-path operation: on a cache hit no
    /// allocation or set walk happens.
    pub fn intersect(&mut self, a: LockSetId, b: LockSetId) -> LockSetId {
        if a == b {
            return a;
        }
        if a == LockSetId::EMPTY || b == LockSetId::EMPTY {
            return LockSetId::EMPTY;
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&id) = self.intersect_cache.get(&key) {
            return id;
        }
        let (sa, sb) = (&self.sets[a.0 as usize], &self.sets[b.0 as usize]);
        let mut out = Vec::with_capacity(sa.len().min(sb.len()));
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(sa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        // Degradation fallback: `a` is a superset of the true intersection,
        // so a full table over-approximates the candidate set.
        let id = self.intern_sorted_or(out, a);
        self.intersect_cache.insert(key, id);
        id
    }

    /// Set with one extra member. At capacity the input set is returned
    /// (the new lock is not recorded). Memoised: lock/unlock calls this
    /// twice per operation (to add the bus lock), so a repeat query must be
    /// one hash probe with no allocation.
    pub fn with(&mut self, id: LockSetId, lock: LockId) -> LockSetId {
        if let Some(&r) = self.with_cache.get(&(id, lock)) {
            return r;
        }
        let r = if self.contains(id, lock) {
            id
        } else {
            let mut v: Vec<LockId> = self.sets[id.0 as usize].to_vec();
            v.push(lock);
            v.sort_unstable();
            self.intern_sorted_or(v, id)
        };
        self.with_cache.insert((id, lock), r);
        r
    }

    /// Set with one member removed. At capacity the input set is returned
    /// (a superset of the true result). Memoised like [`Self::with`] —
    /// unlock calls this on the hot path.
    pub fn without(&mut self, id: LockSetId, lock: LockId) -> LockSetId {
        if let Some(&r) = self.without_cache.get(&(id, lock)) {
            return r;
        }
        let r = if !self.contains(id, lock) {
            id
        } else {
            let v: Vec<LockId> =
                self.sets[id.0 as usize].iter().copied().filter(|&l| l != lock).collect();
            self.intern_sorted_or(v, id)
        };
        self.without_cache.insert((id, lock), r);
        r
    }

    /// Number of distinct sets interned (for stats/benches).
    pub fn distinct_sets(&self) -> usize {
        self.sets.len()
    }

    /// Distinct pairs memoised by [`Self::intersect`]. Keys are normalised
    /// to `a.0 <= b.0` before lookup and insert — intersection is
    /// symmetric, so `(a, b)` and `(b, a)` share one entry.
    pub fn intersect_cache_entries(&self) -> usize {
        self.intersect_cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<LockId> {
        v.iter().map(|&i| LockId(i)).collect()
    }

    #[test]
    fn empty_set_is_id_zero() {
        let mut t = LockSetTable::new();
        assert_eq!(t.intern(vec![]), LockSetId::EMPTY);
        assert!(t.is_empty(LockSetId::EMPTY));
    }

    #[test]
    fn interning_is_canonical() {
        let mut t = LockSetTable::new();
        let a = t.intern(ids(&[3, 1, 2]));
        let b = t.intern(ids(&[1, 2, 3]));
        let c = t.intern(ids(&[2, 1, 3, 3]));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(t.elements(a), &ids(&[1, 2, 3])[..]);
    }

    #[test]
    fn intersection_basics() {
        let mut t = LockSetTable::new();
        let a = t.intern(ids(&[1, 2, 3]));
        let b = t.intern(ids(&[2, 3, 4]));
        let i = t.intersect(a, b);
        assert_eq!(t.elements(i), &ids(&[2, 3])[..]);
        // Symmetric and cached.
        assert_eq!(t.intersect(b, a), i);
        // Identity and empty.
        assert_eq!(t.intersect(a, a), a);
        assert_eq!(t.intersect(a, LockSetId::EMPTY), LockSetId::EMPTY);
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let mut t = LockSetTable::new();
        let a = t.intern(ids(&[1]));
        let b = t.intern(ids(&[2]));
        assert_eq!(t.intersect(a, b), LockSetId::EMPTY);
    }

    #[test]
    fn with_and_without() {
        let mut t = LockSetTable::new();
        let a = t.intern(ids(&[1, 3]));
        let b = t.with(a, LockId(2));
        assert_eq!(t.elements(b), &ids(&[1, 2, 3])[..]);
        assert_eq!(t.with(b, LockId(2)), b);
        let c = t.without(b, LockId(1));
        assert_eq!(t.elements(c), &ids(&[2, 3])[..]);
        assert_eq!(t.without(c, LockId(9)), c);
    }

    #[test]
    fn bus_lock_mapping() {
        assert_eq!(LockId::from_sync(SyncId(0)), LockId(1));
        assert_eq!(LockId(1).to_sync(), Some(SyncId(0)));
        assert_eq!(LockId::BUS.to_sync(), None);
    }

    #[test]
    fn capped_table_degrades_instead_of_growing() {
        let mut t = LockSetTable::new();
        let a = t.intern(ids(&[1, 2]));
        let b = t.intern(ids(&[2, 3]));
        t.set_max_sets(t.distinct_sets());
        assert!(t.at_capacity());

        // Existing sets still intern to themselves.
        assert_eq!(t.intern(ids(&[1, 2])), a);
        assert_eq!(t.overflow_count(), 0);

        // New combinations degrade to documented fallbacks.
        let sets_before = t.distinct_sets();
        assert_eq!(t.with(a, LockId(9)), a, "with falls back to the input set");
        assert_eq!(t.without(a, LockId(1)), a, "without falls back to the input set");
        let i = t.intersect(a, b);
        assert_eq!(i, a, "intersect falls back to its left operand");
        assert_eq!(t.distinct_sets(), sets_before, "no growth at capacity");
        assert_eq!(t.overflow_count(), 3);
    }

    #[test]
    fn intersect_cache_key_is_order_normalised() {
        let mut t = LockSetTable::new();
        let a = t.intern(ids(&[1, 2, 3]));
        let b = t.intern(ids(&[2, 3, 4]));
        let i1 = t.intersect(a, b);
        let entries = t.intersect_cache_entries();
        assert_eq!(entries, 1);
        let i2 = t.intersect(b, a);
        assert_eq!(i1, i2);
        assert_eq!(t.intersect_cache_entries(), entries, "(b,a) must hit the (a,b) entry");
    }

    #[test]
    fn intern_sorted_slice_matches_owned_intern() {
        let mut t = LockSetTable::new();
        let owned = t.intern(ids(&[1, 4, 7]));
        let sl = [LockId(1), LockId(4), LockId(7)];
        assert_eq!(t.intern_sorted_slice(&sl), owned);
        let fresh = t.intern_sorted_slice(&[LockId(2), LockId(5)]);
        assert_eq!(t.elements(fresh), &ids(&[2, 5])[..]);
        // At capacity a new combination degrades to EMPTY, like intern.
        t.set_max_sets(t.distinct_sets());
        assert_eq!(t.intern_sorted_slice(&[LockId(8)]), LockSetId::EMPTY);
        assert_eq!(t.overflow_count(), 1);
    }

    #[test]
    fn intersect_cache_stable_under_many_ops() {
        let mut t = LockSetTable::new();
        let a = t.intern(ids(&[1, 2, 3, 4, 5]));
        let b = t.intern(ids(&[4, 5, 6]));
        let first = t.intersect(a, b);
        for _ in 0..100 {
            assert_eq!(t.intersect(a, b), first);
        }
        assert_eq!(t.elements(first), &ids(&[4, 5])[..]);
    }
}
