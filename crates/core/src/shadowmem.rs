//! Two-level page-table shadow memory in the Helgrind/Memcheck tradition.
//!
//! The detectors' hot path is one shadow lookup per accessed granule; the
//! original representation paid a full `FxHashMap<u64, Shadow>` probe for
//! each. This module replaces it with the layout production shadow-memory
//! tools use:
//!
//! * a **primary map** from page number (granule index `>> PAGE_BITS`) to a
//!   dense **secondary** array of [`PAGE_SLOTS`] shadow slots, so a hit
//!   costs one hash probe per *page*, then plain indexing;
//! * a **one-entry last-page cache**: streaming access patterns (arrays,
//!   adjacent fields, the same counter hammered in a loop) resolve against
//!   the cached secondary without touching the hash map at all;
//! * a distinguished shared **virgin secondary**: pages never written (or
//!   reset wholesale) are represented by the [`VIRGIN`] sentinel, which the
//!   cache can hold too — repeated reads of untracked memory allocate
//!   nothing and still skip the hash probe;
//! * **page-granular reset**: [`PageTable::reset_range`] drops whole
//!   secondaries for fully covered pages (recycling their storage through a
//!   free list) instead of removing granules one hash lookup at a time, the
//!   way `malloc`/`HG_CLEAN_MEMORY` used to be handled.
//!
//! Budget semantics are preserved exactly: [`PageTable::len`] counts **live
//! granules**, not pages, so `DetectorBudget::max_shadow_words` behaves
//! bit-for-bit like the old map's `len()` — the equivalence is pinned by a
//! property test in `crates/core/tests/shadow_equivalence.rs`.

use vexec::util::FxHashMap;

/// log2 of the number of granule slots per secondary.
const PAGE_BITS: u32 = 10;
/// Granule slots per secondary (8 KiB of guest memory at the default
/// 8-byte granule).
pub const PAGE_SLOTS: usize = 1 << PAGE_BITS;
const SLOT_MASK: u64 = (PAGE_SLOTS as u64) - 1;
/// Sentinel secondary index: the shared virgin page. Never a real index —
/// secondaries are capped far below `u32::MAX` by the shadow-word budget.
const VIRGIN: u32 = u32::MAX;

#[derive(Debug)]
struct Secondary<T> {
    slots: Box<[Option<T>]>,
    /// Occupied slots; the page is dropped back to virgin when this
    /// reaches zero.
    live: usize,
}

impl<T> Secondary<T> {
    fn fresh() -> Self {
        Secondary { slots: (0..PAGE_SLOTS).map(|_| None).collect(), live: 0 }
    }
}

/// Two-level shadow map keyed by address, at a fixed power-of-two granule.
///
/// All lookups that may update the last-page cache take `&mut self`; the
/// cold [`PageTable::peek`] exists for `&self` diagnostics accessors.
#[derive(Debug)]
pub struct PageTable<T> {
    granule_shift: u32,
    /// Primary: page number → index into `secondaries`.
    pages: FxHashMap<u64, u32>,
    secondaries: Vec<Secondary<T>>,
    /// Recycled secondary indices; their slots are cleared on reuse.
    free: Vec<u32>,
    /// One-entry cache: (page number, secondary index or `VIRGIN`).
    cache: (u64, u32),
    /// Live granules across all pages — the budget-visible count.
    live: usize,
    /// High-water mark of `live` over the table's lifetime; the
    /// memory-flatness evidence `--mem-report` prints.
    peak: usize,
}

impl<T> PageTable<T> {
    pub fn new(granule: u64) -> Self {
        assert!(granule.is_power_of_two(), "granule must be a power of two");
        PageTable {
            granule_shift: granule.trailing_zeros(),
            pages: FxHashMap::default(),
            secondaries: Vec::new(),
            free: Vec::new(),
            // Page u64::MAX is unreachable (PAGE_BITS shifts it below),
            // so this sentinel can never alias a real page.
            cache: (u64::MAX, VIRGIN),
            live: 0,
            peak: 0,
        }
    }

    #[inline]
    fn page_of(&self, addr: u64) -> (u64, usize) {
        let gidx = addr >> self.granule_shift;
        (gidx >> PAGE_BITS, (gidx & SLOT_MASK) as usize)
    }

    /// Secondary index of `page`, through the one-entry cache.
    #[inline]
    fn lookup(&mut self, page: u64) -> u32 {
        if self.cache.0 == page {
            return self.cache.1;
        }
        let idx = self.pages.get(&page).copied().unwrap_or(VIRGIN);
        self.cache = (page, idx);
        idx
    }

    /// Live granules tracked (the number the shadow budget caps).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest live-granule count ever reached. Unlike [`Self::len`] this
    /// is monotone: `reset_range` reclamation lowers `len` but never the
    /// peak, so a flat peak across soak phases proves reclamation kept up.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Mapped (non-virgin) pages — stats for benches and diagnostics.
    pub fn pages_mapped(&self) -> usize {
        self.pages.len()
    }

    /// Shadow of the granule containing `addr`.
    #[inline]
    pub fn get(&mut self, addr: u64) -> Option<&T> {
        let (page, slot) = self.page_of(addr);
        let idx = self.lookup(page);
        if idx == VIRGIN {
            return None;
        }
        self.secondaries[idx as usize].slots[slot].as_ref()
    }

    /// Writable shadow of the granule containing `addr` — the access hot
    /// path updates a tracked granule in place through this single lookup.
    #[inline]
    pub fn get_mut(&mut self, addr: u64) -> Option<&mut T> {
        let (page, slot) = self.page_of(addr);
        let idx = self.lookup(page);
        if idx == VIRGIN {
            return None;
        }
        self.secondaries[idx as usize].slots[slot].as_mut()
    }

    #[inline]
    pub fn contains(&mut self, addr: u64) -> bool {
        self.get(addr).is_some()
    }

    /// Cache-neutral lookup for `&self` accessors (tests, diagnostics).
    pub fn peek(&self, addr: u64) -> Option<&T> {
        let (page, slot) = self.page_of(addr);
        let idx = if self.cache.0 == page {
            self.cache.1
        } else {
            self.pages.get(&page).copied().unwrap_or(VIRGIN)
        };
        if idx == VIRGIN {
            None
        } else {
            self.secondaries[idx as usize].slots[slot].as_ref()
        }
    }

    /// Map `page` to a writable secondary, allocating or recycling one if
    /// it is currently virgin.
    fn materialize(&mut self, page: u64) -> u32 {
        let idx = self.lookup(page);
        if idx != VIRGIN {
            return idx;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                let sec = &mut self.secondaries[i as usize];
                for s in sec.slots.iter_mut() {
                    *s = None;
                }
                sec.live = 0;
                i
            }
            None => {
                self.secondaries.push(Secondary::fresh());
                (self.secondaries.len() - 1) as u32
            }
        };
        self.pages.insert(page, idx);
        self.cache = (page, idx);
        idx
    }

    #[inline]
    pub fn insert(&mut self, addr: u64, value: T) {
        let (page, slot) = self.page_of(addr);
        let idx = self.materialize(page);
        let sec = &mut self.secondaries[idx as usize];
        let s = &mut sec.slots[slot];
        if s.is_none() {
            sec.live += 1;
            self.live += 1;
            self.peak = self.peak.max(self.live);
        }
        *s = Some(value);
    }

    /// Shadow of the granule containing `addr`, created as `T::default()`
    /// if untracked (the happens-before engine's access pattern).
    #[inline]
    pub fn get_or_insert_default(&mut self, addr: u64) -> &mut T
    where
        T: Default,
    {
        let (page, slot) = self.page_of(addr);
        let idx = self.materialize(page);
        let sec = &mut self.secondaries[idx as usize];
        let s = &mut sec.slots[slot];
        if s.is_none() {
            sec.live += 1;
            self.live += 1;
            self.peak = self.peak.max(self.live);
            *s = Some(T::default());
        }
        s.as_mut().expect("slot populated above")
    }

    pub fn remove(&mut self, addr: u64) -> Option<T> {
        let (page, slot) = self.page_of(addr);
        let idx = self.lookup(page);
        if idx == VIRGIN {
            return None;
        }
        let sec = &mut self.secondaries[idx as usize];
        let old = sec.slots[slot].take();
        if old.is_some() {
            sec.live -= 1;
            self.live -= 1;
            if self.secondaries[idx as usize].live == 0 {
                self.drop_page(page, idx);
            }
        }
        old
    }

    /// Unmap `page`, recycling its secondary. The caller has already
    /// accounted the live-count delta.
    fn drop_page(&mut self, page: u64, idx: u32) {
        self.pages.remove(&page);
        self.free.push(idx);
        if self.cache.0 == page {
            self.cache.1 = VIRGIN;
        }
    }

    /// Clear slots `lo..=hi` of `page`, dropping the page if it empties.
    fn clear_slots(&mut self, page: u64, lo: usize, hi: usize) {
        let idx = self.lookup(page);
        if idx == VIRGIN {
            return;
        }
        let sec = &mut self.secondaries[idx as usize];
        let mut cleared = 0usize;
        for s in sec.slots[lo..=hi].iter_mut() {
            if s.take().is_some() {
                cleared += 1;
            }
        }
        sec.live -= cleared;
        self.live -= cleared;
        if self.secondaries[idx as usize].live == 0 {
            self.drop_page(page, idx);
        }
    }

    /// Drop every mapped page in `lo..=hi` wholesale.
    fn drop_full_pages(&mut self, lo: u64, hi: u64) {
        let span = hi - lo + 1;
        if span > self.pages.len() as u64 {
            // The range outnumbers the mapped pages: scan the map once
            // instead of probing every page number in the span.
            let hit: Vec<(u64, u32)> = self
                .pages
                .iter()
                .filter(|&(&p, _)| lo <= p && p <= hi)
                .map(|(&p, &i)| (p, i))
                .collect();
            for (p, i) in hit {
                self.live -= self.secondaries[i as usize].live;
                self.drop_page(p, i);
            }
        } else {
            for p in lo..=hi {
                if let Some(&i) = self.pages.get(&p) {
                    self.live -= self.secondaries[i as usize].live;
                    self.drop_page(p, i);
                }
            }
        }
    }

    /// Reset every granule overlapping `[addr, addr + size)` to virgin.
    ///
    /// Fully covered pages are unmapped in one step (their secondaries go
    /// to the free list); only the partial edge pages are cleared slot by
    /// slot. Equivalent to removing each granule individually.
    pub fn reset_range(&mut self, addr: u64, size: u64) {
        let start_g = addr >> self.granule_shift;
        let end_g = (addr + size.max(1) - 1) >> self.granule_shift;
        let first_page = start_g >> PAGE_BITS;
        let last_page = end_g >> PAGE_BITS;
        let start_slot = (start_g & SLOT_MASK) as usize;
        let end_slot = (end_g & SLOT_MASK) as usize;

        if first_page == last_page {
            if start_slot == 0 && end_slot == PAGE_SLOTS - 1 {
                self.drop_full_pages(first_page, first_page);
            } else {
                self.clear_slots(first_page, start_slot, end_slot);
            }
            return;
        }
        let full_lo = if start_slot == 0 {
            first_page
        } else {
            self.clear_slots(first_page, start_slot, PAGE_SLOTS - 1);
            first_page + 1
        };
        let full_hi = if end_slot == PAGE_SLOTS - 1 {
            last_page
        } else {
            self.clear_slots(last_page, 0, end_slot);
            last_page - 1
        };
        if full_lo <= full_hi {
            self.drop_full_pages(full_lo, full_hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable<u32> {
        PageTable::new(8)
    }

    #[test]
    fn get_of_untracked_is_none_and_allocates_nothing() {
        let mut t = pt();
        assert_eq!(t.get(0x1000), None);
        assert_eq!(t.get(0xFFFF_0000), None);
        assert_eq!(t.len(), 0);
        assert_eq!(t.pages_mapped(), 0);
    }

    #[test]
    fn insert_get_roundtrip_and_granule_masking() {
        let mut t = pt();
        t.insert(0x1000, 7);
        assert_eq!(t.get(0x1000), Some(&7));
        // Any address inside the granule resolves to the same slot.
        assert_eq!(t.get(0x1007), Some(&7));
        assert_eq!(t.peek(0x1003), Some(&7));
        assert_eq!(t.get(0x1008), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn len_counts_granules_not_pages() {
        let mut t = pt();
        // Three granules on one page, one on a far page.
        t.insert(0x1000, 1);
        t.insert(0x1008, 2);
        t.insert(0x1010, 3);
        t.insert(0x90_0000, 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.pages_mapped(), 2);
        // Overwrites don't change the count.
        t.insert(0x1008, 9);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0x1008), Some(&9));
    }

    #[test]
    fn remove_drops_empty_pages() {
        let mut t = pt();
        t.insert(0x1000, 1);
        t.insert(0x1008, 2);
        assert_eq!(t.remove(0x1000), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.pages_mapped(), 1);
        assert_eq!(t.remove(0x1008), Some(2));
        assert_eq!(t.len(), 0);
        assert_eq!(t.pages_mapped(), 0, "emptied page must unmap");
        assert_eq!(t.remove(0x1008), None);
        // Reads after the drop see virgin again (cache must not go stale).
        assert_eq!(t.get(0x1000), None);
    }

    #[test]
    fn reset_range_partial_page() {
        let mut t = pt();
        for i in 0..8u64 {
            t.insert(0x1000 + i * 8, i as u32);
        }
        t.reset_range(0x1008, 16); // clears granules at 0x1008 and 0x1010
        assert_eq!(t.get(0x1000), Some(&0));
        assert_eq!(t.get(0x1008), None);
        assert_eq!(t.get(0x1010), None);
        assert_eq!(t.get(0x1018), Some(&3));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn reset_range_spanning_full_pages() {
        let mut t = pt();
        let page_bytes = (PAGE_SLOTS as u64) * 8;
        // One granule on each of four consecutive pages, starting page-aligned.
        for p in 0..4u64 {
            t.insert(p * page_bytes + 64, p as u32);
        }
        assert_eq!(t.pages_mapped(), 4);
        // Reset from mid-page 0 to mid-page 3: pages 1 and 2 are fully
        // covered, 0 and 3 partially.
        t.reset_range(32, 3 * page_bytes + 64);
        assert_eq!(t.get(64), None, "partial first page cleared in-range slot");
        assert_eq!(t.get(page_bytes + 64), None);
        assert_eq!(t.get(2 * page_bytes + 64), None);
        assert_eq!(t.get(3 * page_bytes + 64), None);
        assert_eq!(t.len(), 0);
        assert_eq!(t.pages_mapped(), 0);
    }

    #[test]
    fn reset_range_keeps_out_of_range_edges() {
        let mut t = pt();
        let page_bytes = (PAGE_SLOTS as u64) * 8;
        t.insert(8, 1); // page 0, slot 1 — below the reset range
        t.insert(page_bytes - 8, 2); // page 0, last slot — inside
        t.insert(page_bytes, 3); // page 1, slot 0 — inside
        t.insert(page_bytes + 16, 4); // page 1, slot 2 — above
        t.reset_range(16, page_bytes); // granules 2 ..= PAGE_SLOTS+1
        assert_eq!(t.get(8), Some(&1));
        assert_eq!(t.get(page_bytes - 8), None);
        assert_eq!(t.get(page_bytes), None);
        assert_eq!(t.get(page_bytes + 16), Some(&4));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn secondaries_are_recycled_clean() {
        let mut t = pt();
        t.insert(0x1000, 42);
        t.reset_range(0, 1 << 20); // drops page 0 to the free list
        assert_eq!(t.len(), 0);
        // Reuse the recycled secondary for a different page: stale slots
        // must not leak through.
        t.insert(0x4000_0000, 7);
        assert_eq!(t.get(0x4000_0000), Some(&7));
        let page_bytes = (PAGE_SLOTS as u64) * 8;
        let same_page_other_slot = 0x4000_0000 / page_bytes * page_bytes + 8;
        assert_eq!(t.get(same_page_other_slot), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn peak_is_monotone_across_reset_range() {
        let mut t: PageTable<u64> = PageTable::new(8);
        for round in 0..4u64 {
            let base = 0x1000 + round * 0x10000;
            for i in 0..100u64 {
                t.insert(base + i * 8, i);
            }
            assert_eq!(t.len(), 100);
            assert_eq!(t.peak_len(), 100, "flat peak: each round reclaims fully");
            t.reset_range(base, 100 * 8);
            assert_eq!(t.len(), 0);
            assert_eq!(t.peak_len(), 100, "reclamation never lowers the peak");
        }
        // Growth past the old peak moves it.
        for i in 0..150u64 {
            t.insert(0x9000_0000 + i * 8, i);
        }
        assert_eq!(t.peak_len(), 150);
    }

    #[test]
    fn get_or_insert_default_tracks_live_count() {
        let mut t: PageTable<u64> = PageTable::new(8);
        *t.get_or_insert_default(0x2000) += 5;
        assert_eq!(t.len(), 1);
        *t.get_or_insert_default(0x2000) += 1;
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0x2000), Some(&6));
    }

    #[test]
    fn huge_reset_range_scans_map_not_span() {
        let mut t = pt();
        t.insert(0x1000, 1);
        t.insert(0xFFFF_FF00, 2);
        // A span of ~2^40 pages must complete instantly by scanning the
        // two mapped pages instead of the span.
        t.reset_range(0, u64::MAX / 2);
        assert_eq!(t.len(), 0);
    }
}
