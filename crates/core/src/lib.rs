//! # helgrind-core — dynamic fault detection over the `vexec` event stream
//!
//! A Rust reproduction of the detection stack from Mühlenfeld & Wotawa,
//! *Fault Detection in Multi-Threaded C++ Server Applications* (ENTCS 174,
//! 2007): the Eraser lockset algorithm as shipped in Valgrind's Helgrind
//! tool, the Visual Threads thread-segment refinement, and the paper's two
//! improvements — the corrected hardware bus-lock model (**HWLC**) and
//! automatic destructor annotation (**DR**) — plus the comparison baselines
//! it discusses (DJIT-style happens-before detection, hybrid detection) and
//! lock-order deadlock prediction.
//!
//! All detectors are pure consumers of [`vexec::Event`] streams: they
//! implement [`vexec::tool::Tool`] and can be attached to any guest
//! program execution.
//!
//! ## The three configurations of the paper's evaluation (Fig 6)
//!
//! ```
//! use helgrind_core::{DetectorConfig, EraserDetector};
//!
//! let original = EraserDetector::new(DetectorConfig::original());
//! let hwlc     = EraserDetector::new(DetectorConfig::hwlc());
//! let hwlc_dr  = EraserDetector::new(DetectorConfig::hwlc_dr());
//! assert!(hwlc_dr.config().honor_destruct);
//! # let _ = (original, hwlc);
//! ```

pub mod budget;
pub mod config;
pub mod detector;
pub mod eraser;
pub mod explore;
pub mod hb;
pub mod lockorder;
pub mod locksets;
pub mod offline;
pub mod replay;
pub mod report;
pub mod segments;
pub mod shadowmem;
pub mod suppress;
pub mod vc;

pub use budget::{BudgetSpec, DetectorBudget};
pub use config::{BusLockModel, DetectorConfig};
pub use detector::{AnyDetector, DjitDetector, EngineStats, EraserDetector, HybridDetector};
pub use eraser::{LocksetEngine, RaceInfo, VarState};
pub use explore::{
    explore_schedules, explore_schedules_directed, explore_schedules_with, trim_torn_tail,
    DirectedTarget, ExploreCheckpoint, ExploreLimits, ExploreSummary, LocationHit,
};
pub use hb::{EpochStats, HbEngine, HbRaceInfo};
pub use lockorder::{CycleInfo, LockOrderGraph};
pub use locksets::{LockId, LockSetId, LockSetTable};
pub use offline::{analyze_trace, OfflineAnalysis};
pub use replay::{
    analyze_trace_bytes, analyze_trace_repair, warning_fingerprint, RepairInfo, ReplayCtx,
    ReplayDetector, ReplayOutcome,
};
pub use report::{format_block_note, Report, ReportCtx, ReportKind, ReportSink, StackFrame};
pub use segments::{SegmentGraph, SegmentId};
pub use shadowmem::PageTable;
pub use suppress::{Suppression, SuppressionSet};
pub use vc::{Epoch, SmallVc, VectorClock, SMALL_VC_LANES};
