//! Graceful-degradation budgets for the detectors.
//!
//! The paper ran its tracer against a 500 kLOC SIP proxy for hours; at that
//! scale unbounded shadow state is a liability. A [`DetectorBudget`] caps
//! the three growth points of the lockset/HB engines — shadow words, the
//! lock-set intern table, and collected reports — and the engines *degrade*
//! when a cap is hit instead of aborting:
//!
//! * **Shadow words**: new granules stop being tracked (accesses to already
//!   tracked granules keep updating). Under-approximates coverage; never
//!   fabricates a race.
//! * **Lock-sets**: when the intern table is full, operations that would
//!   create a new set fall back to an existing superset (candidate sets
//!   stay too big → over-approximates locking; may miss races, never
//!   fabricates one).
//! * **Reports**: further reports are counted but dropped.
//!
//! Every degradation sets a `truncated` flag that surfaces on
//! [`crate::report::Report`] and in `raceline --json`, so downstream
//! tooling can tell a complete answer from a summarized one.

use serde::{Deserialize, Serialize};
use vexec::faults::parse_u64;

/// Caps on detector state. `usize::MAX` (the default) means unlimited.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DetectorBudget {
    /// Maximum distinct shadow granules tracked per engine.
    pub max_shadow_words: usize,
    /// Maximum distinct lock-sets interned.
    pub max_locksets: usize,
    /// Maximum reports retained by the sink.
    pub max_reports: usize,
}

impl DetectorBudget {
    pub fn unlimited() -> Self {
        DetectorBudget {
            max_shadow_words: usize::MAX,
            max_locksets: usize::MAX,
            max_reports: usize::MAX,
        }
    }

    pub fn is_unlimited(&self) -> bool {
        *self == Self::unlimited()
    }
}

impl Default for DetectorBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A parsed `--budget` spec: detector caps plus an optional VM fuel cap
/// (`slots=`, per run) and an exploration-wide watchdog (`total-slots=`,
/// summed across every run of an `--explore` sweep). The fuel caps belong
/// to [`vexec::VmOptions`] / the explore driver rather than the detector
/// but ride in the same flag for convenience.
///
/// In a parallel sweep (`--jobs N`) the `total-slots` running total is a
/// shared atomic meter (`vexec::vm::SlotMeter`) credited live by every
/// worker; a worker consults it before claiming the next seed, so the
/// watchdog cuts the sweep off at run granularity without perturbing any
/// individual run's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetSpec {
    pub detector: DetectorBudget,
    pub max_slots: Option<u64>,
    pub total_slots: Option<u64>,
}

impl BudgetSpec {
    /// Parse a spec like
    /// `shadow=10000,locksets=256,reports=64,slots=50000,total-slots=1000000`.
    /// Omitted keys stay unlimited.
    pub fn parse(spec: &str) -> Result<BudgetSpec, String> {
        let mut out = BudgetSpec {
            detector: DetectorBudget::unlimited(),
            max_slots: None,
            total_slots: None,
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("budget spec entry `{part}` is not key=value"))?;
            let v = parse_u64(value.trim())?;
            match key.trim() {
                "shadow" => out.detector.max_shadow_words = v as usize,
                "locksets" => out.detector.max_locksets = v as usize,
                "reports" => out.detector.max_reports = v as usize,
                "slots" => out.max_slots = Some(v),
                "total-slots" | "total_slots" => out.total_slots = Some(v),
                other => {
                    return Err(format!(
                        "unknown budget key `{other}` \
                         (expected shadow|locksets|reports|slots|total-slots)"
                    ));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_default() {
        assert!(DetectorBudget::default().is_unlimited());
    }

    #[test]
    fn parse_full_spec() {
        let b = BudgetSpec::parse("shadow=10000,locksets=256,reports=64,slots=50000").unwrap();
        assert_eq!(b.detector.max_shadow_words, 10_000);
        assert_eq!(b.detector.max_locksets, 256);
        assert_eq!(b.detector.max_reports, 64);
        assert_eq!(b.max_slots, Some(50_000));
        assert!(!b.detector.is_unlimited());
    }

    #[test]
    fn parse_partial_spec_leaves_rest_unlimited() {
        let b = BudgetSpec::parse("reports=1").unwrap();
        assert_eq!(b.detector.max_reports, 1);
        assert_eq!(b.detector.max_shadow_words, usize::MAX);
        assert_eq!(b.max_slots, None);
        assert_eq!(b.total_slots, None);
    }

    #[test]
    fn parse_total_slots_watchdog() {
        let b = BudgetSpec::parse("total-slots=1000000").unwrap();
        assert_eq!(b.total_slots, Some(1_000_000));
        assert_eq!(BudgetSpec::parse("total_slots=7").unwrap().total_slots, Some(7));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(BudgetSpec::parse("shadow").is_err());
        assert!(BudgetSpec::parse("bogus=1").is_err());
        assert!(BudgetSpec::parse("shadow=xyz").is_err());
    }
}
