//! Schedule exploration: run a program under many seeded interleavings and
//! aggregate the warnings.
//!
//! §2.3.2: "Repeated tests with different test data (resulting in
//! different interleavings) could help find such data-races, if they
//! exist." The explorer automates exactly that for the §4.3
//! schedule-dependent cases: each seed produces a different serialisation,
//! and the union of reported locations (with per-location hit counts)
//! shows which warnings are schedule-robust and which only surface
//! sometimes.

use crate::config::DetectorConfig;
use crate::detector::EraserDetector;
use crate::report::{Report, ReportKind, StackFrame};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vexec::event::{Event, ThreadId};
use vexec::faults::FaultPlan;
use vexec::filter::FilterTool;
use vexec::ir::lower::FlatProgram;
use vexec::ir::Program;
use vexec::sched::{Scheduler, SeededRandom};
use vexec::tool::Tool;
use vexec::util::FxHashMap;
use vexec::vm::{run_flat, GuestError, SlotMeter, Termination, VmOptions, VmView};

/// One distinct warning location across the exploration.
#[derive(Clone, Debug)]
pub struct LocationHit {
    /// A representative report from the first run that found it.
    pub report: Report,
    /// In how many runs this location was reported.
    pub hits: usize,
    /// 1-based index of the first run that reported this location — the
    /// "schedules until found" metric the directed-exploration gate
    /// compares. `0` when the location was restored from a checkpoint
    /// (found somewhere in the resumed prefix).
    pub first_run: usize,
}

impl LocationHit {
    /// Fraction of runs that reported this location.
    pub fn hit_rate(&self, runs: usize) -> f64 {
        self.hits as f64 / runs.max(1) as f64
    }
}

/// Resource limits for an exploration sweep — the "watchdog" side of the
/// fault-resilience work: a runaway schedule (live-lock under injected
/// faults, pathological interleaving) must not hang the explorer; it ends
/// the sweep early with a *partial* summary flagged [`ExploreSummary::timed_out`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreLimits {
    /// Per-run slot cap (fuel); `None` uses the VM default.
    pub max_slots_per_run: Option<u64>,
    /// Total slot budget across the whole sweep; once consumed, remaining
    /// seeds are skipped and the summary is partial. In parallel sweeps
    /// the running total lives in a shared [`SlotMeter`], so workers stop
    /// claiming new seeds promptly.
    pub total_slot_budget: Option<u64>,
    /// Fault plan injected into every run (same plan, per-run schedules).
    pub faults: Option<FaultPlan>,
    /// Worker threads for the sweep; `0` or `1` runs sequentially. Every
    /// value produces a bit-identical summary and checkpoint — see the
    /// merge protocol notes on [`explore_schedules_with`].
    pub jobs: usize,
    /// Disable the redundant-access filter cache in front of the detector.
    /// The filter is report-preserving, so this only trades speed for
    /// nothing — it exists for the equivalence gates and for debugging.
    pub no_filter: bool,
}

/// Aggregated exploration outcome.
#[derive(Debug, Default)]
pub struct ExploreSummary {
    /// Seeds requested.
    pub runs: usize,
    /// Seeds actually executed (equals `runs` unless the watchdog fired);
    /// includes runs restored from a resume checkpoint.
    pub completed_runs: usize,
    pub clean_runs: usize,
    pub deadlocked_runs: usize,
    pub failed_runs: usize,
    /// Runs that hit the per-run slot cap (also counted in `failed_runs`).
    pub fuel_exhausted_runs: usize,
    /// True when any watchdog fired: a run ran out of fuel or the total
    /// slot budget was consumed before every seed ran. The summary is then
    /// a partial (but still deterministic) view.
    pub timed_out: bool,
    /// Base seed the sweep started from (seed of run *i* is `base_seed + i`).
    pub base_seed: u64,
    /// Scheduler slots consumed across all completed runs.
    pub slots_used: u64,
    /// Distinct warning locations, most-frequently-hit first.
    pub locations: Vec<LocationHit>,
}

impl ExploreSummary {
    /// Snapshot this summary as a resumable checkpoint. Reports are
    /// summarized to their top stack frame; hit counts and verdict
    /// counters round-trip exactly.
    pub fn checkpoint(&self) -> ExploreCheckpoint {
        ExploreCheckpoint {
            base_seed: self.base_seed,
            runs: self.runs,
            next_index: self.completed_runs,
            clean_runs: self.clean_runs,
            deadlocked_runs: self.deadlocked_runs,
            failed_runs: self.failed_runs,
            fuel_exhausted_runs: self.fuel_exhausted_runs,
            slots_used: self.slots_used,
            locations: self.locations.clone(),
        }
    }
}

impl ExploreSummary {
    /// Locations found in *every* run (schedule-robust warnings).
    pub fn robust(&self) -> impl Iterator<Item = &LocationHit> {
        let runs = self.runs;
        self.locations.iter().filter(move |l| l.hits == runs)
    }

    /// Locations found in some but not all runs — exactly the §4.3 class
    /// that single-run testing can miss.
    pub fn flaky(&self) -> impl Iterator<Item = &LocationHit> {
        let runs = self.runs;
        self.locations.iter().filter(move |l| l.hits > 0 && l.hits < runs)
    }
}

/// Run `program` under `runs` different seeded-random schedules with a
/// fresh detector per run and aggregate distinct warning locations.
pub fn explore_schedules(
    program: &Program,
    cfg: DetectorConfig,
    runs: usize,
    base_seed: u64,
) -> ExploreSummary {
    explore_schedules_with(program, cfg, runs, base_seed, ExploreLimits::default(), None)
}

/// Everything one seeded run contributes to the summary. Each run is
/// deterministic given `(program, seed, options)`, so an outcome does not
/// depend on which worker produced it or when.
struct RunOutcome {
    slots: u64,
    termination: Termination,
    reports: Vec<Report>,
}

fn run_seed(
    flat: &FlatProgram,
    cfg: DetectorConfig,
    base_seed: u64,
    i: usize,
    opts: &VmOptions,
    no_filter: bool,
) -> RunOutcome {
    let mut sched = SeededRandom::new(base_seed.wrapping_add(i as u64));
    let (r, mut det) = if no_filter {
        let mut det = EraserDetector::new(cfg);
        let r = run_flat(flat, &mut det, &mut sched, opts.clone());
        (r, det)
    } else {
        let mut tool = FilterTool::new(EraserDetector::new(cfg));
        let r = run_flat(flat, &mut tool, &mut sched, opts.clone());
        (r, tool.into_parts().0)
    };
    RunOutcome {
        slots: r.stats.slots,
        termination: r.termination,
        reports: det.sink.take_reports(),
    }
}

/// One static finding the directed sweep should try to confirm: the
/// release/use window of an escaping guarded reference (the watch point is
/// the release site), or the location of a static-only race (the watch
/// point is the access itself).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirectedTarget {
    pub file: String,
    pub line: u32,
}

/// Probe variants tried per target before falling back to seeded runs.
const PROBE_VARIANTS: u64 = 2;

#[derive(Clone, Debug)]
struct DirectedProbe {
    target: DirectedTarget,
    variant: u64,
}

fn build_probes(targets: &[DirectedTarget], runs: usize) -> Vec<DirectedProbe> {
    let mut probes = Vec::new();
    for target in targets {
        for variant in 0..PROBE_VARIANTS {
            probes.push(DirectedProbe { target: target.clone(), variant });
        }
    }
    probes.truncate(runs);
    probes
}

/// Tool wrapper that watches for the target window: whenever a thread
/// releases a lock — or touches memory — at the target source line, it is
/// flagged for deprioritization, so another thread gets to run *inside*
/// the release/use window before the flagged thread reaches its
/// post-release use.
struct WindowWatch<T> {
    inner: T,
    file: String,
    line: u32,
    flag: Rc<Cell<Option<ThreadId>>>,
}

impl<T: Tool> Tool for WindowWatch<T> {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        if let Event::Release { tid, loc, .. } | Event::Access { tid, loc, .. } = *ev {
            if loc.line == self.line && vm.resolve(loc.file) == self.file {
                self.flag.set(Some(tid));
            }
        }
        self.inner.on_event(ev, vm);
    }
    fn on_guest_fault(&mut self, err: &GuestError, vm: &VmView<'_>) {
        self.inner.on_guest_fault(err, vm);
    }
    fn on_finish(&mut self, vm: &VmView<'_>) {
        self.inner.on_finish(vm);
    }
}

/// Coarse strict-priority scheduler with window preemption: threads run in
/// a rotation determined by the probe variant until the [`WindowWatch`]
/// flags one, which is then pushed to the back of the priority order. The
/// net effect is the Fig 7 confirmation order: the flagged thread finishes
/// its critical section, every other thread runs through the window, and
/// only then does the flagged thread reach its post-release use.
struct DirectedSched {
    /// Preferred first guest thread (rotation origin).
    pref: u32,
    /// Deprioritized threads, in flag order.
    depri: Vec<ThreadId>,
    flag: Rc<Cell<Option<ThreadId>>>,
}

impl Scheduler for DirectedSched {
    fn pick(&mut self, runnable: &[ThreadId], _slot: u64) -> usize {
        if let Some(t) = self.flag.take() {
            if !self.depri.contains(&t) {
                self.depri.push(t);
            }
        }
        let rank = |tid: ThreadId| -> (u64, u64) {
            match self.depri.iter().position(|&d| d == tid) {
                Some(pos) => (1, pos as u64),
                None => (0, u64::from(tid.0.wrapping_sub(self.pref))),
            }
        };
        runnable.iter().enumerate().min_by_key(|(_, &tid)| rank(tid)).map(|(i, _)| i).unwrap_or(0)
    }
    fn name(&self) -> &'static str {
        "directed"
    }
}

/// Run one directed probe. Deterministic given `(program, probe, options)`
/// — the probe scheduler and watch share no state with other runs — so
/// probe outcomes merge exactly like seeded ones.
fn run_probe(
    flat: &FlatProgram,
    cfg: DetectorConfig,
    probe: &DirectedProbe,
    opts: &VmOptions,
    no_filter: bool,
) -> RunOutcome {
    let flag: Rc<Cell<Option<ThreadId>>> = Rc::new(Cell::new(None));
    let mut sched =
        DirectedSched { pref: 1 + probe.variant as u32, depri: Vec::new(), flag: flag.clone() };
    let (r, mut det) = if no_filter {
        let mut tool = WindowWatch {
            inner: EraserDetector::new(cfg),
            file: probe.target.file.clone(),
            line: probe.target.line,
            flag,
        };
        let r = run_flat(flat, &mut tool, &mut sched, opts.clone());
        (r, tool.inner)
    } else {
        let mut tool = WindowWatch {
            inner: FilterTool::new(EraserDetector::new(cfg)),
            file: probe.target.file.clone(),
            line: probe.target.line,
            flag,
        };
        let r = run_flat(flat, &mut tool, &mut sched, opts.clone());
        (r, tool.inner.into_parts().0)
    };
    RunOutcome {
        slots: r.stats.slots,
        termination: r.termination,
        reports: det.sink.take_reports(),
    }
}

/// Dispatch run index `i`: the probe prefix first, then the seeded sweep
/// (seed `base_seed + (i - probes.len())`, so the seeded tail visits the
/// same seeds an undirected sweep starts with).
fn run_index(
    flat: &FlatProgram,
    cfg: DetectorConfig,
    base_seed: u64,
    i: usize,
    opts: &VmOptions,
    no_filter: bool,
    probes: &[DirectedProbe],
) -> RunOutcome {
    match probes.get(i) {
        Some(p) => run_probe(flat, cfg, p, opts, no_filter),
        None => run_seed(flat, cfg, base_seed, i - probes.len(), opts, no_filter),
    }
}

/// Fold one run's outcome into the summary — the single accounting path
/// shared by the sequential loop and the parallel merge.
fn fold_outcome(
    summary: &mut ExploreSummary,
    agg: &mut FxHashMap<(String, u32, String), LocationHit>,
    o: RunOutcome,
    i: usize,
) {
    summary.slots_used += o.slots;
    match o.termination {
        Termination::AllExited => summary.clean_runs += 1,
        Termination::Deadlock(_) => summary.deadlocked_runs += 1,
        Termination::FuelExhausted => {
            summary.failed_runs += 1;
            summary.fuel_exhausted_runs += 1;
            summary.timed_out = true;
        }
        Termination::GuestError(_) => summary.failed_runs += 1,
    }
    for report in o.reports {
        let key = (report.file.clone(), report.line, report.func.clone());
        agg.entry(key).and_modify(|l| l.hits += 1).or_insert(LocationHit {
            report,
            hits: 1,
            first_run: i + 1,
        });
    }
    summary.completed_runs = i + 1;
}

/// [`explore_schedules`] with watchdog limits, optional fault injection,
/// checkpoint/resume and a worker pool.
///
/// When `resume` is given it must come from a sweep over the same program
/// with the same `base_seed` (the checkpoint records it; mismatches are
/// the caller's bug — the explorer trusts the counters as-is). Execution
/// continues from the first seed the checkpoint had not completed, so an
/// interrupted sweep plus its resumed remainder visits exactly the same
/// seeds as an uninterrupted one.
///
/// ## Deterministic parallel merge
///
/// With `limits.jobs > 1` the seeds run on a scoped pool of plain std
/// threads, and the result is still **bit-identical** to the sequential
/// sweep. The protocol:
///
/// 1. Workers claim seed indices in increasing order from a shared
///    atomic counter, so the claimed set is always a contiguous prefix.
/// 2. Before each claim a worker consults the shared [`SlotMeter`]
///    (credited live by every VM, including in-flight runs); once it
///    shows the `total_slot_budget` consumed, no further seed starts.
///    Claimed runs always finish — bounded by their own per-run fuel —
///    because a later run's result may be needed by the merge.
/// 3. Each run is deterministic given its seed, so per-index outcomes are
///    schedule-independent; they are merged by a sequential fold in index
///    order that applies the budget cut-off exactly as the sequential
///    loop would. Any index the fold reaches is guaranteed claimed: were
///    it not, every worker observed `>= budget` spent on *earlier*
///    indices alone, and the fold stops at the same prefix sum.
pub fn explore_schedules_with(
    program: &Program,
    cfg: DetectorConfig,
    runs: usize,
    base_seed: u64,
    limits: ExploreLimits,
    resume: Option<&ExploreCheckpoint>,
) -> ExploreSummary {
    explore_impl(program, cfg, runs, base_seed, limits, resume, &[])
}

/// [`explore_schedules_with`] with a directed prefix: the first run
/// indices execute one probe per `(target, variant)` pair — a strict
/// priority schedule that preempts at the target's release/use window —
/// before the sweep falls back to the usual seeded random walk. Probe
/// runs are deterministic (no seed involved), so the whole sweep keeps
/// the byte-identical `--jobs N` merge guarantee.
pub fn explore_schedules_directed(
    program: &Program,
    cfg: DetectorConfig,
    runs: usize,
    base_seed: u64,
    limits: ExploreLimits,
    resume: Option<&ExploreCheckpoint>,
    targets: &[DirectedTarget],
) -> ExploreSummary {
    let probes = build_probes(targets, runs);
    explore_impl(program, cfg, runs, base_seed, limits, resume, &probes)
}

fn explore_impl(
    program: &Program,
    cfg: DetectorConfig,
    runs: usize,
    base_seed: u64,
    limits: ExploreLimits,
    resume: Option<&ExploreCheckpoint>,
    probes: &[DirectedProbe],
) -> ExploreSummary {
    let mut agg: FxHashMap<(String, u32, String), LocationHit> = FxHashMap::default();
    let mut summary = ExploreSummary { runs, base_seed, ..Default::default() };
    let mut start = 0usize;
    if let Some(ck) = resume {
        start = ck.next_index.min(runs);
        summary.completed_runs = start;
        summary.clean_runs = ck.clean_runs;
        summary.deadlocked_runs = ck.deadlocked_runs;
        summary.failed_runs = ck.failed_runs;
        summary.fuel_exhausted_runs = ck.fuel_exhausted_runs;
        summary.slots_used = ck.slots_used;
        for l in &ck.locations {
            let key = (l.report.file.clone(), l.report.line, l.report.func.clone());
            agg.insert(key, l.clone());
        }
    }
    let flat = program.lower();
    let opts = VmOptions {
        max_slots: limits.max_slots_per_run.unwrap_or(VmOptions::default().max_slots),
        faults: limits.faults,
        ..Default::default()
    };
    let jobs = limits.jobs.max(1).min(runs.saturating_sub(start).max(1));
    if jobs == 1 {
        for i in start..runs {
            if let Some(budget) = limits.total_slot_budget {
                if summary.slots_used >= budget {
                    summary.timed_out = true;
                    break;
                }
            }
            let o = run_index(&flat, cfg, base_seed, i, &opts, limits.no_filter, probes);
            fold_outcome(&mut summary, &mut agg, o, i);
        }
    } else {
        let meter = Arc::new(SlotMeter::new(summary.slots_used));
        let mut worker_opts = opts.clone();
        worker_opts.slot_meter = Some(meter.clone());
        let next = AtomicUsize::new(start);
        let mut outcomes: Vec<Option<RunOutcome>> = Vec::new();
        outcomes.resize_with(runs - start, || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    let (flat, worker_opts, next, meter) = (&flat, &worker_opts, &next, &meter);
                    s.spawn(move || {
                        let mut local: Vec<(usize, RunOutcome)> = Vec::new();
                        loop {
                            if let Some(budget) = limits.total_slot_budget {
                                if meter.total() >= budget {
                                    break;
                                }
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= runs {
                                break;
                            }
                            local.push((
                                i,
                                run_index(
                                    flat,
                                    cfg,
                                    base_seed,
                                    i,
                                    worker_opts,
                                    limits.no_filter,
                                    probes,
                                ),
                            ));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, o) in h.join().expect("explore worker panicked") {
                    outcomes[i - start] = Some(o);
                }
            }
        });
        for i in start..runs {
            if let Some(budget) = limits.total_slot_budget {
                if summary.slots_used >= budget {
                    summary.timed_out = true;
                    break;
                }
            }
            match outcomes[i - start].take() {
                Some(o) => fold_outcome(&mut summary, &mut agg, o, i),
                // Unreachable while the claim protocol holds (see the merge
                // notes above); degrade to a budget stop rather than panic.
                None => {
                    summary.timed_out = true;
                    break;
                }
            }
        }
    }
    let mut locations: Vec<LocationHit> = agg.into_values().collect();
    locations.sort_by(|a, b| {
        b.hits
            .cmp(&a.hits)
            .then_with(|| a.report.file.cmp(&b.report.file))
            .then_with(|| a.report.line.cmp(&b.report.line))
    });
    summary.locations = locations;
    summary
}

/// Resumable snapshot of a (possibly interrupted) exploration sweep.
///
/// Serialized as a line-oriented text format (`render`/`parse`) rather
/// than JSON: the vendored serde shim emits but does not parse JSON, and
/// a checkpoint that can be written but never read back is useless.
/// Location lines keep a summarized report — top stack frame only, no
/// heap-block note — which is exactly the degradation contract used
/// elsewhere: resumed sweeps stay deterministic in *which* locations they
/// count, at reduced per-report detail.
#[derive(Clone, Debug, Default)]
pub struct ExploreCheckpoint {
    pub base_seed: u64,
    pub runs: usize,
    /// First seed index not yet executed.
    pub next_index: usize,
    pub clean_runs: usize,
    pub deadlocked_runs: usize,
    pub failed_runs: usize,
    pub fuel_exhausted_runs: usize,
    pub slots_used: u64,
    pub locations: Vec<LocationHit>,
}

const CHECKPOINT_MAGIC: &str = "raceline-explore-checkpoint v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

impl ExploreCheckpoint {
    /// Serialize to the line-oriented text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(CHECKPOINT_MAGIC);
        out.push('\n');
        out.push_str(&format!("base_seed {}\n", self.base_seed));
        out.push_str(&format!("runs {}\n", self.runs));
        out.push_str(&format!("next_index {}\n", self.next_index));
        out.push_str(&format!("clean {}\n", self.clean_runs));
        out.push_str(&format!("deadlocked {}\n", self.deadlocked_runs));
        out.push_str(&format!("failed {}\n", self.failed_runs));
        out.push_str(&format!("fuel_exhausted {}\n", self.fuel_exhausted_runs));
        out.push_str(&format!("slots_used {}\n", self.slots_used));
        for l in &self.locations {
            let r = &l.report;
            out.push_str(&format!(
                "loc {}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                l.hits,
                r.kind.code(),
                r.tid,
                r.addr,
                r.line,
                esc(&r.file),
                esc(&r.func),
                esc(&r.details),
            ));
        }
        out
    }

    /// Parse the format produced by [`Self::render`].
    pub fn parse(text: &str) -> Result<ExploreCheckpoint, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == CHECKPOINT_MAGIC => {}
            other => return Err(format!("bad checkpoint header: {other:?}")),
        }
        let mut ck = ExploreCheckpoint::default();
        for (ln, line) in lines.enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("checkpoint line {}: missing value", ln + 2))?;
            let num = |s: &str| {
                s.parse::<u64>().map_err(|_| format!("checkpoint line {}: bad number", ln + 2))
            };
            match key {
                "base_seed" => ck.base_seed = num(rest)?,
                "runs" => ck.runs = num(rest)? as usize,
                "next_index" => ck.next_index = num(rest)? as usize,
                "clean" => ck.clean_runs = num(rest)? as usize,
                "deadlocked" => ck.deadlocked_runs = num(rest)? as usize,
                "failed" => ck.failed_runs = num(rest)? as usize,
                "fuel_exhausted" => ck.fuel_exhausted_runs = num(rest)? as usize,
                "slots_used" => ck.slots_used = num(rest)?,
                "loc" => {
                    let fields: Vec<&str> = rest.split('\t').collect();
                    if fields.len() != 8 {
                        return Err(format!(
                            "checkpoint line {}: expected 8 loc fields, got {}",
                            ln + 2,
                            fields.len()
                        ));
                    }
                    let kind = ReportKind::from_code(fields[1]).ok_or_else(|| {
                        format!("checkpoint line {}: unknown report kind {:?}", ln + 2, fields[1])
                    })?;
                    let file = unesc(fields[5]);
                    let func = unesc(fields[6]);
                    let line_no = num(fields[4])? as u32;
                    ck.locations.push(LocationHit {
                        hits: num(fields[0])? as usize,
                        first_run: 0,
                        report: Report {
                            kind,
                            tid: num(fields[2])? as u32,
                            file: file.clone(),
                            line: line_no,
                            func: func.clone(),
                            addr: num(fields[3])?,
                            stack: vec![StackFrame { func, file, line: line_no }],
                            block: None,
                            details: unesc(fields[7]),
                            truncated: false,
                        },
                    });
                }
                other => return Err(format!("checkpoint line {}: unknown key {other:?}", ln + 2)),
            }
        }
        Ok(ck)
    }

    /// Like [`Self::parse`], but tolerant of the one corruption an
    /// interrupted write can leave behind: a truncated final record. On a
    /// strict-parse failure, drop the trailing partial line (or, when the
    /// text ends in a newline, the last full line) and retry once. Returns
    /// the checkpoint plus whether a repair was applied; errors on
    /// interior lines still propagate — those are real corruption, not a
    /// torn tail.
    pub fn parse_repair(text: &str) -> Result<(ExploreCheckpoint, bool), String> {
        let first_err = match Self::parse(text) {
            Ok(ck) => return Ok((ck, false)),
            Err(e) => e,
        };
        let Some(trimmed) = trim_torn_tail(text) else {
            return Err(first_err);
        };
        match Self::parse(trimmed) {
            Ok(ck) => Ok((ck, true)),
            Err(_) => Err(first_err),
        }
    }
}

/// The prefix of `text` with the torn tail removed: everything after the
/// last newline when the text does not end in one (an interrupted write
/// mid-line), otherwise the last *complete* line (an interrupted write
/// that happened to stop on a line boundary — the line itself is
/// suspect). `None` when nothing parseable would remain. Shared by every
/// line-oriented checkpoint format's `parse_repair`.
pub fn trim_torn_tail(text: &str) -> Option<&str> {
    match text.rfind('\n') {
        Some(nl) if nl + 1 < text.len() => Some(&text[..nl + 1]),
        Some(nl) => text[..nl].rfind('\n').map(|prev| &text[..prev + 1]),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
    use vexec::ir::Expr;

    /// Program with one schedule-robust race (two unlocked writers) and
    /// one schedule-dependent race (§4.3 unlocked-vs-locked pair).
    fn mixed_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let robust = pb.global("g_robust", 8);
        let flaky = pb.global("g_flaky", 8);
        let m_cell = pb.global("g_mutex", 8);

        let loc_r = pb.loc("mix.cpp", 5, "robust_writer");
        let mut wr = ProcBuilder::new(0);
        wr.at(loc_r);
        wr.store(robust, 1u64, 8);
        let robust_writer = pb.add_proc("robust_writer", wr);

        let loc_u = pb.loc("mix.cpp", 15, "flaky_unlocked");
        let mut wu = ProcBuilder::new(0);
        wu.at(loc_u);
        wu.yield_();
        wu.store(flaky, 1u64, 8);
        let flaky_unlocked = pb.add_proc("flaky_unlocked", wu);

        let loc_l = pb.loc("mix.cpp", 25, "flaky_locked");
        let mut wl = ProcBuilder::new(0);
        wl.at(loc_l);
        let mx = wl.load_new(m_cell, 8);
        wl.lock(mx);
        wl.store(flaky, 2u64, 8);
        wl.unlock(mx);
        let flaky_locked = pb.add_proc("flaky_locked", wl);

        let mloc = pb.loc("mix.cpp", 40, "main");
        let mut m = ProcBuilder::new(0);
        m.at(mloc);
        let mx = m.new_mutex();
        m.store(m_cell, mx, 8);
        let joins = vec![
            m.spawn(robust_writer, vec![]),
            m.spawn(robust_writer, vec![]),
            m.spawn(flaky_unlocked, vec![]),
            m.spawn(flaky_locked, vec![]),
        ];
        for h in joins {
            m.join(h);
        }
        // Keep the robust race from depending on which writer goes first:
        // both writers write without locks, so any order races.
        let _ = Expr::Const(0);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        pb.finish()
    }

    #[test]
    fn explorer_separates_robust_from_flaky_warnings() {
        let prog = mixed_program();
        let summary = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 40, 0xDEED);
        assert_eq!(summary.runs, 40);
        assert_eq!(summary.clean_runs, 40);
        let robust: Vec<_> = summary.robust().collect();
        let flaky: Vec<_> = summary.flaky().collect();
        assert!(
            robust.iter().any(|l| l.report.func == "robust_writer"),
            "two unlocked writers race under every schedule: {summary:?}"
        );
        assert!(
            flaky.iter().any(|l| l.report.func == "flaky_unlocked"),
            "the §4.3 pair must be schedule-dependent: {summary:?}"
        );
        for l in &summary.locations {
            assert!(l.hit_rate(summary.runs) > 0.0 && l.hit_rate(summary.runs) <= 1.0);
        }
    }

    #[test]
    fn watchdog_budget_yields_partial_summary_and_resume_completes_it() {
        let prog = mixed_program();
        let full = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 12, 0xDEED);
        assert!(!full.timed_out);
        assert_eq!(full.completed_runs, 12);

        // A tiny total budget stops the sweep early with timed_out set.
        let limits =
            ExploreLimits { total_slot_budget: Some(full.slots_used / 4), ..Default::default() };
        let partial =
            explore_schedules_with(&prog, DetectorConfig::hwlc_dr(), 12, 0xDEED, limits, None);
        assert!(partial.timed_out);
        assert!(partial.completed_runs < 12, "{partial:?}");

        // Checkpoint round-trips through the text format.
        let ck = partial.checkpoint();
        let reparsed = ExploreCheckpoint::parse(&ck.render()).unwrap();
        assert_eq!(reparsed.next_index, ck.next_index);
        assert_eq!(reparsed.slots_used, ck.slots_used);
        assert_eq!(reparsed.locations.len(), ck.locations.len());

        // Resuming from the checkpoint visits exactly the remaining seeds:
        // same per-location hit counts as the uninterrupted sweep.
        let resumed = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            12,
            0xDEED,
            ExploreLimits::default(),
            Some(&reparsed),
        );
        assert_eq!(resumed.completed_runs, 12);
        assert_eq!(resumed.clean_runs, full.clean_runs);
        let key = |s: &ExploreSummary| {
            s.locations
                .iter()
                .map(|l| (l.report.file.clone(), l.report.line, l.hits))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&resumed), key(&full));
    }

    #[test]
    fn per_run_fuel_cap_marks_timed_out_without_panicking() {
        let prog = mixed_program();
        let limits = ExploreLimits { max_slots_per_run: Some(3), ..Default::default() };
        let s = explore_schedules_with(&prog, DetectorConfig::hwlc_dr(), 4, 1, limits, None);
        assert!(s.timed_out);
        assert_eq!(s.fuel_exhausted_runs, 4);
        assert_eq!(s.completed_runs, 4);
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(ExploreCheckpoint::parse("not a checkpoint").is_err());
        let bad = format!("{}\nloc 1\tNope\t0\t0\t0\tf\tg\td\n", "raceline-explore-checkpoint v1");
        assert!(ExploreCheckpoint::parse(&bad).is_err());
    }

    #[test]
    fn checkpoint_escapes_details_round_trip() {
        let mut ck =
            ExploreCheckpoint { base_seed: 9, runs: 3, next_index: 2, ..Default::default() };
        ck.locations.push(LocationHit {
            first_run: 1,
            report: Report {
                kind: ReportKind::RaceWrite,
                tid: 2,
                file: "a b.cpp".into(),
                line: 7,
                func: "op<>".into(),
                addr: 64,
                stack: vec![StackFrame { func: "op<>".into(), file: "a b.cpp".into(), line: 7 }],
                block: None,
                details: "line one\n\tline\\two".into(),
                truncated: false,
            },
            hits: 5,
        });
        let back = ExploreCheckpoint::parse(&ck.render()).unwrap();
        assert_eq!(back.locations[0].hits, 5);
        assert_eq!(back.locations[0].report.details, "line one\n\tline\\two");
        assert_eq!(back.locations[0].report.file, "a b.cpp");
    }

    #[test]
    fn checkpoint_repair_drops_torn_tail() {
        let mut ck =
            ExploreCheckpoint { base_seed: 7, runs: 10, next_index: 6, ..Default::default() };
        ck.clean_runs = 6;
        let full = ck.render();
        // Interrupted write: the final line is cut mid-record, no newline.
        let torn = &full[..full.len() - 3];
        assert!(ExploreCheckpoint::parse(torn).is_err(), "strict parse must reject");
        let (back, repaired) = ExploreCheckpoint::parse_repair(torn).unwrap();
        assert!(repaired);
        assert_eq!(back.base_seed, 7);
        assert_eq!(back.next_index, 6);
    }

    #[test]
    fn checkpoint_repair_is_noop_on_clean_input() {
        let ck = ExploreCheckpoint { base_seed: 3, runs: 4, ..Default::default() };
        let (back, repaired) = ExploreCheckpoint::parse_repair(&ck.render()).unwrap();
        assert!(!repaired);
        assert_eq!(back.base_seed, 3);
    }

    #[test]
    fn checkpoint_repair_rejects_interior_corruption() {
        let ck = ExploreCheckpoint { base_seed: 1, runs: 2, ..Default::default() };
        // Corrupt an interior line, keep the tail intact: not a torn write.
        let bad = ck.render().replace("runs 2", "runs two");
        assert!(ExploreCheckpoint::parse_repair(&bad).is_err());
        assert!(ExploreCheckpoint::parse_repair("garbage, not a checkpoint").is_err());
    }

    /// Full observable state of a summary, for bit-identity assertions.
    fn fingerprint(s: &ExploreSummary) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}\n{}",
            s.runs,
            s.completed_runs,
            s.clean_runs,
            s.deadlocked_runs,
            s.failed_runs,
            s.fuel_exhausted_runs,
            s.timed_out,
            s.base_seed,
            s.slots_used,
            s.checkpoint().render(),
        )
    }

    #[test]
    fn filtered_sweep_is_bit_identical_to_unfiltered() {
        let prog = mixed_program();
        let filtered = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            24,
            0xDEED,
            ExploreLimits::default(),
            None,
        );
        let unfiltered = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            24,
            0xDEED,
            ExploreLimits { no_filter: true, ..Default::default() },
            None,
        );
        assert_eq!(fingerprint(&filtered), fingerprint(&unfiltered));
        for (a, b) in filtered.locations.iter().zip(unfiltered.locations.iter()) {
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.report.details, b.report.details);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let prog = mixed_program();
        let seq = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            24,
            0xDEED,
            ExploreLimits { jobs: 1, ..Default::default() },
            None,
        );
        let par = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            24,
            0xDEED,
            ExploreLimits { jobs: 8, ..Default::default() },
            None,
        );
        assert_eq!(fingerprint(&seq), fingerprint(&par));
        // Representative reports (full detail, not just locations) match too.
        for (a, b) in seq.locations.iter().zip(par.locations.iter()) {
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.report.details, b.report.details);
            assert_eq!(a.report.tid, b.report.tid);
            assert_eq!(a.report.addr, b.report.addr);
        }
    }

    #[test]
    fn parallel_budget_cutoff_matches_sequential() {
        let prog = mixed_program();
        let full = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 12, 0xDEED);
        let limits =
            ExploreLimits { total_slot_budget: Some(full.slots_used / 3), ..Default::default() };
        let seq =
            explore_schedules_with(&prog, DetectorConfig::hwlc_dr(), 12, 0xDEED, limits, None);
        assert!(seq.timed_out);
        let par = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            12,
            0xDEED,
            ExploreLimits { jobs: 8, ..limits },
            None,
        );
        assert_eq!(fingerprint(&seq), fingerprint(&par), "budget cut-off must merge identically");
    }

    #[test]
    fn parallel_resume_is_bit_identical_to_sequential_resume() {
        let prog = mixed_program();
        let full = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 12, 0xDEED);
        let limits =
            ExploreLimits { total_slot_budget: Some(full.slots_used / 4), ..Default::default() };
        let partial =
            explore_schedules_with(&prog, DetectorConfig::hwlc_dr(), 12, 0xDEED, limits, None);
        let ck = partial.checkpoint();
        let seq = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            12,
            0xDEED,
            ExploreLimits::default(),
            Some(&ck),
        );
        let par = explore_schedules_with(
            &prog,
            DetectorConfig::hwlc_dr(),
            12,
            0xDEED,
            ExploreLimits { jobs: 4, ..Default::default() },
            Some(&ck),
        );
        assert_eq!(fingerprint(&seq), fingerprint(&par));
    }

    #[test]
    fn explorer_is_deterministic_per_base_seed() {
        let prog = mixed_program();
        let a = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 10, 7);
        let b = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 10, 7);
        let key = |s: &ExploreSummary| {
            s.locations
                .iter()
                .map(|l| (l.report.file.clone(), l.report.line, l.hits))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }

    /// The Fig 7 shape in IR: a reader loads the guarded slot under the
    /// lock, releases at fig7.cpp:30, and dereferences *after* release at
    /// :31; a disciplined writer mutates the same object under the lock.
    /// The race only reports when the locked write lands between the
    /// reader's release and its post-release use — the window a
    /// [`DirectedTarget`] at fig7.cpp:30 preempts into.
    fn fig7_ir_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let slot = pb.global("g_slot", 8);
        let obj = pb.global("g_obj", 8);
        let m_cell = pb.global("g_m", 8);

        let loc_get = pb.loc("fig7.cpp", 30, "reader");
        let loc_use = pb.loc("fig7.cpp", 31, "reader");
        let mut rd = ProcBuilder::new(0);
        rd.at(loc_get);
        let mx = rd.load_new(m_cell, 8);
        rd.lock(mx);
        let _h = rd.load_new(slot, 8);
        rd.unlock(mx);
        rd.at(loc_use);
        let v = rd.load_new(obj, 8);
        rd.store(obj, Expr::Reg(v).add(Expr::Const(1)), 8);
        let reader = pb.add_proc("reader", rd);

        let loc_w = pb.loc("fig7.cpp", 40, "locked_writer");
        let mut wr = ProcBuilder::new(0);
        wr.at(loc_w);
        let mx = wr.load_new(m_cell, 8);
        wr.lock(mx);
        let v = wr.load_new(obj, 8);
        wr.store(obj, Expr::Reg(v).add(Expr::Const(2)), 8);
        wr.unlock(mx);
        let writer = pb.add_proc("locked_writer", wr);

        let mloc = pb.loc("fig7.cpp", 50, "main");
        let mut m = ProcBuilder::new(0);
        m.at(mloc);
        let mx = m.new_mutex();
        m.store(m_cell, mx, 8);
        m.store(slot, 1u64, 8);
        let a = m.spawn(reader, vec![]);
        let b = m.spawn(writer, vec![]);
        m.join(a);
        m.join(b);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        pb.finish()
    }

    /// The PR's headline acceptance property: a sweep directed at the Fig 7
    /// release site confirms the schedule-dependent race in strictly fewer
    /// schedules than the undirected random sweep from the same base seed.
    #[test]
    fn directed_probe_confirms_before_undirected_sweep() {
        let prog = fig7_ir_program();
        // Pinned to a base seed whose undirected sweep needs several runs
        // to stumble into the confirming order (run 4); the directed probe
        // always confirms on run 1, making "strictly fewer" meaningful.
        let seed = 0x1C;
        let first_hit = |s: &ExploreSummary| {
            s.locations
                .iter()
                .filter(|l| l.report.line == 31)
                .map(|l| l.first_run)
                .min()
                .unwrap_or(usize::MAX)
        };
        let undirected = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 16, seed);
        let u = first_hit(&undirected);
        assert!(u != usize::MAX, "undirected sweep must eventually find the race: {undirected:?}");
        let targets = [DirectedTarget { file: "fig7.cpp".into(), line: 30 }];
        let directed = explore_schedules_directed(
            &prog,
            DetectorConfig::hwlc_dr(),
            16,
            seed,
            ExploreLimits::default(),
            None,
            &targets,
        );
        let d = first_hit(&directed);
        assert_eq!(d, 1, "the first probe preempts straight into the window: {directed:?}");
        assert!(d < u, "directed first hit {d} must beat undirected {u}");
    }

    #[test]
    fn directed_parallel_is_bit_identical_to_sequential() {
        let prog = fig7_ir_program();
        let targets = [
            DirectedTarget { file: "fig7.cpp".into(), line: 30 },
            DirectedTarget { file: "fig7.cpp".into(), line: 40 },
        ];
        let seq = explore_schedules_directed(
            &prog,
            DetectorConfig::hwlc_dr(),
            24,
            0xACE,
            ExploreLimits { jobs: 1, ..Default::default() },
            None,
            &targets,
        );
        let par = explore_schedules_directed(
            &prog,
            DetectorConfig::hwlc_dr(),
            24,
            0xACE,
            ExploreLimits { jobs: 8, ..Default::default() },
            None,
            &targets,
        );
        assert_eq!(fingerprint(&seq), fingerprint(&par));
        for (a, b) in seq.locations.iter().zip(par.locations.iter()) {
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.first_run, b.first_run);
            assert_eq!(a.report.details, b.report.details);
        }
    }
}
