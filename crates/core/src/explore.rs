//! Schedule exploration: run a program under many seeded interleavings and
//! aggregate the warnings.
//!
//! §2.3.2: "Repeated tests with different test data (resulting in
//! different interleavings) could help find such data-races, if they
//! exist." The explorer automates exactly that for the §4.3
//! schedule-dependent cases: each seed produces a different serialisation,
//! and the union of reported locations (with per-location hit counts)
//! shows which warnings are schedule-robust and which only surface
//! sometimes.

use crate::config::DetectorConfig;
use crate::detector::EraserDetector;
use crate::report::Report;
use vexec::ir::Program;
use vexec::sched::SeededRandom;
use vexec::util::FxHashMap;
use vexec::vm::{run_program, Termination};

/// One distinct warning location across the exploration.
#[derive(Clone, Debug)]
pub struct LocationHit {
    /// A representative report from the first run that found it.
    pub report: Report,
    /// In how many runs this location was reported.
    pub hits: usize,
}

impl LocationHit {
    /// Fraction of runs that reported this location.
    pub fn hit_rate(&self, runs: usize) -> f64 {
        self.hits as f64 / runs.max(1) as f64
    }
}

/// Aggregated exploration outcome.
#[derive(Debug, Default)]
pub struct ExploreSummary {
    pub runs: usize,
    pub clean_runs: usize,
    pub deadlocked_runs: usize,
    pub failed_runs: usize,
    /// Distinct warning locations, most-frequently-hit first.
    pub locations: Vec<LocationHit>,
}

impl ExploreSummary {
    /// Locations found in *every* run (schedule-robust warnings).
    pub fn robust(&self) -> impl Iterator<Item = &LocationHit> {
        let runs = self.runs;
        self.locations.iter().filter(move |l| l.hits == runs)
    }

    /// Locations found in some but not all runs — exactly the §4.3 class
    /// that single-run testing can miss.
    pub fn flaky(&self) -> impl Iterator<Item = &LocationHit> {
        let runs = self.runs;
        self.locations.iter().filter(move |l| l.hits > 0 && l.hits < runs)
    }
}

/// Run `program` under `runs` different seeded-random schedules with a
/// fresh detector per run and aggregate distinct warning locations.
pub fn explore_schedules(
    program: &Program,
    cfg: DetectorConfig,
    runs: usize,
    base_seed: u64,
) -> ExploreSummary {
    let mut agg: FxHashMap<(String, u32, String), LocationHit> = FxHashMap::default();
    let mut summary = ExploreSummary { runs, ..Default::default() };
    for i in 0..runs {
        let mut det = EraserDetector::new(cfg);
        let mut sched = SeededRandom::new(base_seed.wrapping_add(i as u64));
        let r = run_program(program, &mut det, &mut sched);
        match r.termination {
            Termination::AllExited => summary.clean_runs += 1,
            Termination::Deadlock(_) => summary.deadlocked_runs += 1,
            _ => summary.failed_runs += 1,
        }
        for report in det.sink.take_reports() {
            let key = (report.file.clone(), report.line, report.func.clone());
            agg.entry(key).and_modify(|l| l.hits += 1).or_insert(LocationHit { report, hits: 1 });
        }
    }
    let mut locations: Vec<LocationHit> = agg.into_values().collect();
    locations.sort_by(|a, b| {
        b.hits
            .cmp(&a.hits)
            .then_with(|| a.report.file.cmp(&b.report.file))
            .then_with(|| a.report.line.cmp(&b.report.line))
    });
    summary.locations = locations;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
    use vexec::ir::Expr;

    /// Program with one schedule-robust race (two unlocked writers) and
    /// one schedule-dependent race (§4.3 unlocked-vs-locked pair).
    fn mixed_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let robust = pb.global("g_robust", 8);
        let flaky = pb.global("g_flaky", 8);
        let m_cell = pb.global("g_mutex", 8);

        let loc_r = pb.loc("mix.cpp", 5, "robust_writer");
        let mut wr = ProcBuilder::new(0);
        wr.at(loc_r);
        wr.store(robust, 1u64, 8);
        let robust_writer = pb.add_proc("robust_writer", wr);

        let loc_u = pb.loc("mix.cpp", 15, "flaky_unlocked");
        let mut wu = ProcBuilder::new(0);
        wu.at(loc_u);
        wu.yield_();
        wu.store(flaky, 1u64, 8);
        let flaky_unlocked = pb.add_proc("flaky_unlocked", wu);

        let loc_l = pb.loc("mix.cpp", 25, "flaky_locked");
        let mut wl = ProcBuilder::new(0);
        wl.at(loc_l);
        let mx = wl.load_new(m_cell, 8);
        wl.lock(mx);
        wl.store(flaky, 2u64, 8);
        wl.unlock(mx);
        let flaky_locked = pb.add_proc("flaky_locked", wl);

        let mloc = pb.loc("mix.cpp", 40, "main");
        let mut m = ProcBuilder::new(0);
        m.at(mloc);
        let mx = m.new_mutex();
        m.store(m_cell, mx, 8);
        let joins = vec![
            m.spawn(robust_writer, vec![]),
            m.spawn(robust_writer, vec![]),
            m.spawn(flaky_unlocked, vec![]),
            m.spawn(flaky_locked, vec![]),
        ];
        for h in joins {
            m.join(h);
        }
        // Keep the robust race from depending on which writer goes first:
        // both writers write without locks, so any order races.
        let _ = Expr::Const(0);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
        pb.finish()
    }

    #[test]
    fn explorer_separates_robust_from_flaky_warnings() {
        let prog = mixed_program();
        let summary = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 40, 0xDEED);
        assert_eq!(summary.runs, 40);
        assert_eq!(summary.clean_runs, 40);
        let robust: Vec<_> = summary.robust().collect();
        let flaky: Vec<_> = summary.flaky().collect();
        assert!(
            robust.iter().any(|l| l.report.func == "robust_writer"),
            "two unlocked writers race under every schedule: {summary:?}"
        );
        assert!(
            flaky.iter().any(|l| l.report.func == "flaky_unlocked"),
            "the §4.3 pair must be schedule-dependent: {summary:?}"
        );
        for l in &summary.locations {
            assert!(l.hit_rate(summary.runs) > 0.0 && l.hit_rate(summary.runs) <= 1.0);
        }
    }

    #[test]
    fn explorer_is_deterministic_per_base_seed() {
        let prog = mixed_program();
        let a = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 10, 7);
        let b = explore_schedules(&prog, DetectorConfig::hwlc_dr(), 10, 7);
        let key = |s: &ExploreSummary| {
            s.locations
                .iter()
                .map(|l| (l.report.file.clone(), l.report.line, l.hits))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }
}
