//! The Eraser lockset algorithm (Savage et al.) as implemented in Helgrind,
//! with the Visual Threads thread-segment refinement and the two
//! improvements contributed by the paper:
//!
//! * **HWLC** — the hardware bus lock modelled as a read-write lock held in
//!   read mode by every plain read and in write mode by `LOCK`-prefixed
//!   writes (instead of a plain mutex held only during `LOCK`-prefixed
//!   instructions), plus interception of POSIX rwlocks;
//! * **DR** — honouring `VALGRIND_HG_DESTRUCT` client requests emitted by
//!   the automatic delete-annotation pass: the destroyed object's memory
//!   becomes exclusively owned by the deleting thread's current segment, so
//!   the vptr writes of the destructor chain stop producing warnings while
//!   accesses by *other* threads during destruction are still caught.
//!
//! Per-location state machine (Fig 1 of the paper):
//!
//! ```text
//! VIRGIN --any access--> EXCLUSIVE(segment)
//! EXCLUSIVE --access by hb-ordered segment--> EXCLUSIVE(new segment)
//! EXCLUSIVE --concurrent read--> SHARED-READ(C := locks_held(t))
//! EXCLUSIVE --concurrent write--> SHARED-MODIFIED(C := write_locks_held(t))
//! SHARED-READ --read--> C := C ∩ locks_held(t)          (never warns)
//! SHARED-READ --write--> SHARED-MODIFIED, C := C ∩ write_locks_held(t)
//! SHARED-MODIFIED --access--> intersect; warn once when C = ∅
//! ```

use crate::config::{BusLockModel, DetectorConfig};
use crate::locksets::{LockId, LockSetId, LockSetTable};
use crate::segments::{SegmentGraph, SegmentId};
use crate::shadowmem::PageTable;
use vexec::event::{AccessKind, AcqMode, ClientEv, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};

/// Shadow state of one granule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarState {
    Virgin,
    Exclusive { seg: SegmentId },
    SharedRead { ls: LockSetId },
    SharedMod { ls: LockSetId, reported: bool },
}

impl VarState {
    /// Helgrind-style description ("Previous state: shared RO, no locks").
    pub fn describe(&self, table: &LockSetTable) -> String {
        match self {
            VarState::Virgin => "virgin".to_string(),
            VarState::Exclusive { seg } => format!("exclusive (segment {})", seg.0),
            VarState::SharedRead { ls } => {
                format!("shared RO, {}", describe_ls(table, *ls))
            }
            VarState::SharedMod { ls, .. } => {
                format!("shared modified, {}", describe_ls(table, *ls))
            }
        }
    }
}

fn describe_ls(table: &LockSetTable, ls: LockSetId) -> String {
    if table.is_empty(ls) {
        "no locks".to_string()
    } else {
        let names: Vec<String> = table
            .elements(ls)
            .iter()
            .map(|l| match l.to_sync() {
                None => "BUSLOCK".to_string(),
                Some(s) => format!("lock#{}", s.0),
            })
            .collect();
        format!("locks held: {{{}}}", names.join(", "))
    }
}

/// A race found by the lockset engine.
#[derive(Clone, Debug)]
pub struct RaceInfo {
    pub tid: ThreadId,
    pub addr: u64,
    pub kind: AccessKind,
    pub loc: SrcLoc,
    /// State the granule was in before this access.
    pub prev_state: String,
    /// The previous access to this granule (Helgrind 3.x prints "this
    /// conflicts with a previous access" — so do we).
    pub prev_access: Option<(ThreadId, AccessKind, SrcLoc)>,
}

#[derive(Clone, Debug, Default)]
struct ThreadLocks {
    /// Held locks in acquisition order, with mode.
    held: Vec<(LockId, AcqMode)>,
    /// Interned: all locks held in any mode.
    any: LockSetId,
    /// Interned: locks held in write (exclusive) mode.
    write: LockSetId,
    /// `any ∪ {BUS}` — a plain read under the rw-lock bus model.
    any_bus: LockSetId,
    /// `write ∪ {BUS}` — the write half of a `LOCK`-prefixed RMW.
    write_bus: LockSetId,
}

/// Per-granule shadow record: the Eraser state plus the most recent
/// access, kept for conflict reporting.
#[derive(Clone, Copy, Debug)]
struct Shadow {
    state: VarState,
    last: Option<(ThreadId, AccessKind, SrcLoc)>,
}

/// The lockset engine: a pure consumer of the event stream, returning race
/// information instead of reporting directly (so the hybrid detector can
/// reuse it).
#[derive(Debug)]
pub struct LocksetEngine {
    cfg: DetectorConfig,
    pub table: LockSetTable,
    shadow: PageTable<Shadow>,
    threads: Vec<ThreadLocks>,
    /// Reused by `rebuild_locksets` so lock/unlock never allocates once
    /// the thread's lock-sets are interned.
    scratch: Vec<LockId>,
    segments: SegmentGraph,
    /// When false (hybrid mode), the per-granule `reported` latch is not
    /// set, so every empty-lockset access yields a candidate race.
    report_once: bool,
    /// Statistics: number of accesses processed.
    pub accesses: u64,
    /// Granules never tracked because the shadow budget was exhausted.
    shadow_overflow: u64,
}

impl LocksetEngine {
    pub fn new(cfg: DetectorConfig) -> Self {
        assert!(cfg.granule.is_power_of_two(), "granule must be a power of two");
        let mut table = LockSetTable::new();
        table.set_max_sets(cfg.budget.max_locksets);
        LocksetEngine {
            cfg,
            table,
            shadow: PageTable::new(cfg.granule),
            threads: Vec::new(),
            scratch: Vec::new(),
            segments: SegmentGraph::new(cfg.thread_segments),
            report_once: true,
            accesses: 0,
            shadow_overflow: 0,
        }
    }

    /// Hybrid mode: do not latch `reported`; the caller deduplicates.
    pub fn set_report_once(&mut self, v: bool) {
        self.report_once = v;
    }

    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    fn thread_mut(&mut self, tid: ThreadId) -> &mut ThreadLocks {
        let idx = tid.index();
        if self.threads.len() <= idx {
            self.threads.resize_with(idx + 1, ThreadLocks::default);
        }
        &mut self.threads[idx]
    }

    /// The four interned locksets of a thread. `any_bus`/`write_bus` always
    /// contain BUS, so a default-constructed (never-rebuilt) entry is
    /// recognisable by its empty `any_bus` and initialised lazily.
    fn locksets_of(&mut self, tid: ThreadId) -> (LockSetId, LockSetId, LockSetId, LockSetId) {
        let needs_init =
            self.threads.get(tid.index()).is_none_or(|t| t.any_bus == LockSetId::EMPTY);
        if needs_init {
            self.thread_mut(tid);
            self.rebuild_locksets(tid);
        }
        let t = &self.threads[tid.index()];
        (t.any, t.write, t.any_bus, t.write_bus)
    }

    fn rebuild_locksets(&mut self, tid: ThreadId) {
        // Hot path (every lock/unlock): gather held locks into the reused
        // scratch buffer and intern from the borrowed slice, so nothing is
        // allocated once these sets exist in the table.
        self.thread_mut(tid);
        self.scratch.clear();
        self.scratch.extend(self.threads[tid.index()].held.iter().map(|&(l, _)| l));
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let any_id = self.table.intern_sorted_slice(&self.scratch);
        self.scratch.clear();
        self.scratch.extend(
            self.threads[tid.index()]
                .held
                .iter()
                .filter(|&&(_, m)| m == AcqMode::Exclusive)
                .map(|&(l, _)| l),
        );
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let write_id = self.table.intern_sorted_slice(&self.scratch);
        let any_bus = self.table.with(any_id, LockId::BUS);
        let write_bus = self.table.with(write_id, LockId::BUS);
        let t = self.thread_mut(tid);
        t.any = any_id;
        t.write = write_id;
        t.any_bus = any_bus;
        t.write_bus = write_bus;
    }

    /// Recompute the bus-extended variants after `any`/`write` changed.
    fn set_locksets(&mut self, tid: ThreadId, any: LockSetId, write: LockSetId) {
        let any_bus = self.table.with(any, LockId::BUS);
        let write_bus = self.table.with(write, LockId::BUS);
        let t = self.thread_mut(tid);
        t.any = any;
        t.write = write;
        t.any_bus = any_bus;
        t.write_bus = write_bus;
    }

    fn acquire(&mut self, tid: ThreadId, sync: SyncId, mode: AcqMode) {
        let lock = LockId::from_sync(sync);
        let t = self.thread_mut(tid);
        let had_any = t.held.iter().any(|&(l, _)| l == lock);
        let had_excl = t.held.iter().any(|&(l, m)| l == lock && m == AcqMode::Exclusive);
        t.held.push((lock, mode));
        if t.any_bus == LockSetId::EMPTY {
            // First lock op of this thread: initialise all four sets.
            self.rebuild_locksets(tid);
            return;
        }
        // Incremental: the new interned sets differ from the old by at most
        // this one lock, so each is a memoised single-probe `with` instead
        // of re-gathering and re-hashing the whole held list.
        let (any, write) = (t.any, t.write);
        let any = if had_any { any } else { self.table.with(any, lock) };
        let write = if mode == AcqMode::Exclusive && !had_excl {
            self.table.with(write, lock)
        } else {
            write
        };
        self.set_locksets(tid, any, write);
    }

    fn release(&mut self, tid: ThreadId, sync: SyncId) {
        let lock = LockId::from_sync(sync);
        let t = self.thread_mut(tid);
        let Some(pos) = t.held.iter().rposition(|&(l, _)| l == lock) else {
            return;
        };
        let removed_mode = t.held[pos].1;
        t.held.remove(pos);
        if t.any_bus == LockSetId::EMPTY {
            self.rebuild_locksets(tid);
            return;
        }
        // Re-entrant locks: the set only shrinks once the last instance
        // (per mode class) is released.
        let still_any = t.held.iter().any(|&(l, _)| l == lock);
        let still_excl = t.held.iter().any(|&(l, m)| l == lock && m == AcqMode::Exclusive);
        let (any, write) = (t.any, t.write);
        let any = if still_any { any } else { self.table.without(any, lock) };
        let write = if removed_mode == AcqMode::Exclusive && !still_excl {
            self.table.without(write, lock)
        } else {
            write
        };
        self.set_locksets(tid, any, write);
    }

    fn reset_range(&mut self, addr: u64, size: u64) {
        // Page-granular: fully covered pages are unmapped wholesale instead
        // of removing each granule with its own hash lookup.
        self.shadow.reset_range(addr, size);
    }

    fn mark_exclusive_range(&mut self, tid: ThreadId, addr: u64, size: u64) {
        let seg = self.segments.current(tid);
        let g = self.cfg.granule;
        let start = addr & !(g - 1);
        let end = (addr + size.max(1) - 1) & !(g - 1);
        let mut a = start;
        while a <= end {
            // Per-slot (not a page drop): the previous access must survive
            // for conflict reporting. Consecutive granules hit the page
            // table's last-page cache, so this stays cheap.
            let last = self.shadow.get(a).and_then(|s| s.last);
            self.shadow_set(a, Shadow { state: VarState::Exclusive { seg }, last });
            a += g;
        }
    }

    /// Shadow write honouring the budget: once `max_shadow_words` distinct
    /// granules are tracked, *new* granules are dropped (counted in
    /// `shadow_overflow`) while existing ones keep updating. Coverage is
    /// under-approximated; no race is ever fabricated by the cap. The page
    /// table counts live granules, so the cap is as exact as the old map's.
    fn shadow_set(&mut self, g: u64, s: Shadow) {
        if self.shadow.len() >= self.cfg.budget.max_shadow_words && !self.shadow.contains(g) {
            self.shadow_overflow += 1;
            return;
        }
        self.shadow.insert(g, s);
    }

    /// Feed one event; returns race info if this event exposes a race.
    pub fn on_event(&mut self, ev: &Event) -> Option<RaceInfo> {
        match *ev {
            Event::Access { tid, addr, size, kind, loc } => {
                self.on_access(tid, addr, size, kind, loc)
            }
            Event::Acquire { tid, sync, kind, mode, .. } => {
                if kind == SyncKind::RwLock && !self.cfg.track_rwlocks {
                    return None;
                }
                self.acquire(tid, sync, mode);
                None
            }
            Event::Release { tid, sync, kind, .. } => {
                if kind == SyncKind::RwLock && !self.cfg.track_rwlocks {
                    return None;
                }
                self.release(tid, sync);
                None
            }
            Event::ThreadCreate { parent, child, .. } => {
                self.segments.on_create(parent, child);
                None
            }
            Event::ThreadJoin { joiner, joined, .. } => {
                self.segments.on_join(joiner, joined);
                None
            }
            Event::Alloc { addr, size, .. } => {
                // Fresh memory: reset shadow state (Helgrind does this on
                // malloc; the pooled-allocator FPs of §4 arise precisely
                // because a user-space pool skips this).
                self.reset_range(addr, size);
                None
            }
            Event::Client { tid, req, .. } => {
                match req {
                    ClientEv::HgDestruct { addr, size } => {
                        if self.cfg.honor_destruct {
                            self.mark_exclusive_range(tid, addr, size);
                        }
                    }
                    ClientEv::HgCleanMemory { addr, size } => {
                        self.reset_range(addr, size);
                    }
                    ClientEv::Label(_) => {}
                }
                None
            }
            _ => None,
        }
    }

    fn on_access(
        &mut self,
        tid: ThreadId,
        addr: u64,
        size: u8,
        kind: AccessKind,
        loc: SrcLoc,
    ) -> Option<RaceInfo> {
        self.accesses += 1;
        let (any, write, any_bus, write_bus) = self.locksets_of(tid);
        // Choose the effective locksets for this access kind and bus model.
        let (l_read, l_write) = match (kind, self.cfg.bus_lock) {
            // Plain read: holds the bus lock in read mode only under HWLC.
            (AccessKind::Read, BusLockModel::RwLock) => (any_bus, write),
            (AccessKind::Read, BusLockModel::PlainMutex) => (any, write),
            // Plain write: never holds the bus lock.
            (AccessKind::Write, _) => (any, write),
            // LOCK-prefixed RMW: holds the bus lock (exclusively) under
            // both models — the original implementation locked its special
            // mutex exactly for these instructions.
            (AccessKind::AtomicRmw, _) => (any_bus, write_bus),
        };
        let is_write = kind.is_write();
        let effective = if is_write { l_write } else { l_read };
        let cur_seg = self.segments.current(tid);

        let mut race: Option<RaceInfo> = None;
        let g_size = self.cfg.granule;
        let start = addr & !(g_size - 1);
        let end = (addr + size.max(1) as u64 - 1) & !(g_size - 1);
        let mut g = start;
        while g <= end {
            // One page-table lookup per granule: tracked granules are
            // stepped and written back through the same `&mut` slot;
            // untracked ones take the virgin path below (the only one the
            // shadow budget gates — VIRGIN→EXCLUSIVE never races).
            if let Some(slot) = self.shadow.get_mut(g) {
                let prev = *slot;
                let (next, raced) = step_state(
                    &mut self.table,
                    &self.segments,
                    self.report_once,
                    prev.state,
                    cur_seg,
                    is_write,
                    effective,
                );
                *slot = Shadow { state: next, last: Some((tid, kind, loc)) };
                if raced && race.is_none() {
                    race = Some(RaceInfo {
                        tid,
                        addr: if g <= addr { addr } else { g },
                        kind,
                        loc,
                        prev_state: prev.state.describe(&self.table),
                        prev_access: prev.last,
                    });
                }
            } else if self.shadow.len() >= self.cfg.budget.max_shadow_words {
                self.shadow_overflow += 1;
            } else {
                self.shadow.insert(
                    g,
                    Shadow {
                        state: VarState::Exclusive { seg: cur_seg },
                        last: Some((tid, kind, loc)),
                    },
                );
            }
            g += g_size;
        }
        race
    }

    /// Current shadow state of an address (for tests and diagnostics).
    pub fn state_of(&self, addr: u64) -> VarState {
        self.shadow.peek(addr).map(|s| s.state).unwrap_or(VarState::Virgin)
    }

    /// Most recent access to the granule containing `addr`.
    pub fn last_access_of(&self, addr: u64) -> Option<(ThreadId, AccessKind, SrcLoc)> {
        self.shadow.peek(addr).and_then(|s| s.last)
    }

    /// Number of shadowed granules.
    pub fn shadowed_granules(&self) -> usize {
        self.shadow.len()
    }

    /// High-water mark of live shadow granules (see
    /// [`crate::shadowmem::PageTable::peak_len`]).
    pub fn peak_shadowed_granules(&self) -> usize {
        self.shadow.peak_len()
    }

    /// True if any budget cap degraded this engine's state (dropped shadow
    /// granules or lock-set table overflow).
    pub fn truncated(&self) -> bool {
        self.shadow_overflow > 0 || self.table.overflow_count() > 0
    }

    /// Granules dropped by the shadow budget.
    pub fn shadow_overflow(&self) -> u64 {
        self.shadow_overflow
    }

    /// Access to the segment graph (for diagnostics).
    pub fn segments(&self) -> &SegmentGraph {
        &self.segments
    }
}

/// One state-machine step. A free function (not a method) so the access
/// hot path can hold the shadow slot's `&mut` across the step and write
/// the result back without a second page-table lookup. Returns
/// (next state, race?).
fn step_state(
    table: &mut LockSetTable,
    segments: &SegmentGraph,
    report_once: bool,
    state: VarState,
    cur_seg: SegmentId,
    is_write: bool,
    effective: LockSetId,
) -> (VarState, bool) {
    match state {
        VarState::Virgin => (VarState::Exclusive { seg: cur_seg }, false),
        VarState::Exclusive { seg } => {
            if seg == cur_seg || segments.happens_before(seg, cur_seg) {
                // Same segment, or ownership transfers along the
                // thread-segment graph (Visual Threads rule ii).
                (VarState::Exclusive { seg: cur_seg }, false)
            } else if is_write {
                let empty = table.is_empty(effective);
                (VarState::SharedMod { ls: effective, reported: empty && report_once }, empty)
            } else {
                (VarState::SharedRead { ls: effective }, false)
            }
        }
        VarState::SharedRead { ls } => {
            let nls = table.intersect(ls, effective);
            if is_write {
                let empty = table.is_empty(nls);
                (VarState::SharedMod { ls: nls, reported: empty && report_once }, empty)
            } else {
                (VarState::SharedRead { ls: nls }, false)
            }
        }
        VarState::SharedMod { ls, reported } => {
            let nls = table.intersect(ls, effective);
            let empty = table.is_empty(nls);
            let race = empty && !reported;
            (VarState::SharedMod { ls: nls, reported: reported || (race && report_once) }, race)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::ir::SrcLoc;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const L: SrcLoc = SrcLoc::UNKNOWN;

    fn acc(tid: ThreadId, addr: u64, kind: AccessKind) -> Event {
        Event::Access { tid, addr, size: 8, kind, loc: L }
    }

    fn lock(tid: ThreadId, s: u32) -> Event {
        Event::Acquire {
            tid,
            sync: SyncId(s),
            kind: SyncKind::Mutex,
            mode: AcqMode::Exclusive,
            loc: L,
        }
    }

    fn unlock(tid: ThreadId, s: u32) -> Event {
        Event::Release { tid, sync: SyncId(s), kind: SyncKind::Mutex, loc: L }
    }

    fn create(p: ThreadId, c: ThreadId) -> Event {
        Event::ThreadCreate { parent: p, child: c, loc: L }
    }

    #[test]
    fn virgin_to_exclusive_no_warning() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        assert!(e.on_event(&acc(T0, 0x1000, AccessKind::Write)).is_none());
        assert!(matches!(e.state_of(0x1000), VarState::Exclusive { .. }));
        // Repeated same-thread accesses stay exclusive.
        assert!(e.on_event(&acc(T0, 0x1000, AccessKind::Read)).is_none());
        assert!(matches!(e.state_of(0x1000), VarState::Exclusive { .. }));
    }

    #[test]
    fn unlocked_write_write_race_detected() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        assert!(e.on_event(&acc(T1, 0x1000, AccessKind::Write)).is_none());
        let race = e.on_event(&acc(T2, 0x1000, AccessKind::Write));
        assert!(race.is_some(), "concurrent unlocked writes must race");
        assert_eq!(race.unwrap().tid, T2);
        // Reported once per granule.
        assert!(e.on_event(&acc(T1, 0x1000, AccessKind::Write)).is_none());
    }

    #[test]
    fn common_lock_prevents_warning() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        for &t in &[T1, T2, T1, T2] {
            e.on_event(&lock(t, 0));
            assert!(e.on_event(&acc(t, 0x2000, AccessKind::Write)).is_none());
            e.on_event(&unlock(t, 0));
        }
        match e.state_of(0x2000) {
            VarState::SharedMod { ls, .. } => {
                assert_ne!(ls, LockSetId::EMPTY, "common lock must remain in the set")
            }
            s => panic!("expected shared-modified, got {s:?}"),
        }
    }

    #[test]
    fn lockset_is_intersection_two_locks_then_different_lock_races() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        // T1 writes under {0,1}; T2 writes under {1}: intersection {1} — ok.
        e.on_event(&lock(T1, 0));
        e.on_event(&lock(T1, 1));
        assert!(e.on_event(&acc(T1, 0x3000, AccessKind::Write)).is_none());
        e.on_event(&unlock(T1, 1));
        e.on_event(&unlock(T1, 0));
        e.on_event(&lock(T2, 1));
        assert!(e.on_event(&acc(T2, 0x3000, AccessKind::Write)).is_none());
        e.on_event(&unlock(T2, 1));
        // T1 writes under {0} only: intersection empty — race.
        e.on_event(&lock(T1, 0));
        assert!(e.on_event(&acc(T1, 0x3000, AccessKind::Write)).is_some());
        e.on_event(&unlock(T1, 0));
    }

    #[test]
    fn read_shared_data_never_warns() {
        // Initialise once, then read from many threads with no locks: the
        // SHARED-READ state never reports (Fig 1).
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        assert!(e.on_event(&acc(T0, 0x4000, AccessKind::Write)).is_none());
        assert!(e.on_event(&acc(T1, 0x4000, AccessKind::Read)).is_none());
        assert!(e.on_event(&acc(T2, 0x4000, AccessKind::Read)).is_none());
        assert!(matches!(e.state_of(0x4000), VarState::SharedRead { .. }));
    }

    #[test]
    fn write_after_read_shared_with_no_lock_races() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T0, 0x4100, AccessKind::Write));
        e.on_event(&acc(T1, 0x4100, AccessKind::Read));
        let race = e.on_event(&acc(T2, 0x4100, AccessKind::Write));
        assert!(race.is_some());
        assert!(race.unwrap().prev_state.contains("shared RO"));
    }

    #[test]
    fn thread_segment_handoff_keeps_exclusive() {
        // Fig 10: parent initialises, spawns worker, worker uses and the
        // parent only touches it again after join — never leaves EXCLUSIVE.
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        assert!(e.on_event(&acc(T0, 0x5000, AccessKind::Write)).is_none());
        e.on_event(&create(T0, T1));
        assert!(e.on_event(&acc(T1, 0x5000, AccessKind::Write)).is_none());
        assert!(matches!(e.state_of(0x5000), VarState::Exclusive { .. }));
        e.on_event(&Event::ThreadJoin { joiner: T0, joined: T1, loc: L });
        assert!(e.on_event(&acc(T0, 0x5000, AccessKind::Write)).is_none());
        assert!(matches!(e.state_of(0x5000), VarState::Exclusive { .. }));
    }

    #[test]
    fn without_thread_segments_handoff_degrades_to_shared() {
        let mut cfg = DetectorConfig::hwlc_dr();
        cfg.thread_segments = false;
        let mut e = LocksetEngine::new(cfg);
        e.on_event(&acc(T0, 0x5100, AccessKind::Write));
        e.on_event(&create(T0, T1));
        // Child write with no locks → shared-modified, empty set → race.
        let race = e.on_event(&acc(T1, 0x5100, AccessKind::Write));
        assert!(race.is_some(), "plain Eraser cannot see the fork hand-off");
    }

    /// The Fig 8/9 scenario: COW string reference counter.
    fn string_refcount_scenario(cfg: DetectorConfig) -> Option<RaceInfo> {
        let mut e = LocksetEngine::new(cfg);
        let rc = 0x6000u64;
        // main constructs the string (writes rc = 1).
        e.on_event(&acc(T0, rc, AccessKind::Write));
        // main spawns a worker which copies the string: read rc (COW
        // check), then LOCK-prefixed increment.
        e.on_event(&create(T0, T1));
        assert!(e.on_event(&acc(T1, rc, AccessKind::Read)).is_none());
        assert!(e.on_event(&acc(T1, rc, AccessKind::AtomicRmw)).is_none());
        // main concurrently copies too (line 22 of Fig 8): read, then
        // LOCK-prefixed increment in M_grab.
        let r1 = e.on_event(&acc(T0, rc, AccessKind::Read));
        let r2 = e.on_event(&acc(T0, rc, AccessKind::AtomicRmw));
        r1.or(r2)
    }

    #[test]
    fn fig8_refcount_false_positive_under_original_bus_lock() {
        let race = string_refcount_scenario(DetectorConfig::original());
        assert!(race.is_some(), "original Helgrind reports the M_grab write (Fig 9)");
        assert_eq!(race.unwrap().kind, AccessKind::AtomicRmw);
    }

    #[test]
    fn fig8_refcount_clean_under_hwlc() {
        assert!(
            string_refcount_scenario(DetectorConfig::hwlc()).is_none(),
            "HWLC removes the bus-lock false positive"
        );
    }

    #[test]
    fn hwlc_still_catches_plain_write_to_refcount() {
        // Mixing a plain write into the atomic protocol is a real race and
        // must survive the HWLC correction.
        let mut e = LocksetEngine::new(DetectorConfig::hwlc());
        let rc = 0x6100u64;
        e.on_event(&acc(T0, rc, AccessKind::Write));
        e.on_event(&create(T0, T1));
        e.on_event(&acc(T1, rc, AccessKind::AtomicRmw));
        let race = e.on_event(&acc(T0, rc, AccessKind::Write));
        assert!(race.is_some(), "plain write must still race under HWLC");
    }

    /// Destructor scenario: a shared object is accessed under a lock by two
    /// threads, then deleted by one of them outside the lock (the compiler-
    /// generated destructor writes the vptr without synchronisation).
    fn destructor_scenario(cfg: DetectorConfig, annotated: bool) -> Option<RaceInfo> {
        let mut e = LocksetEngine::new(cfg);
        let obj = 0x7000u64;
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        // Both workers access the object under lock 0.
        for &t in &[T1, T2] {
            e.on_event(&lock(t, 0));
            assert!(e.on_event(&acc(t, obj, AccessKind::Write)).is_none());
            e.on_event(&unlock(t, 0));
        }
        // T2 deletes: optional annotation, then the vptr write, no lock.
        if annotated {
            e.on_event(&Event::Client {
                tid: T2,
                req: ClientEv::HgDestruct { addr: obj, size: 16 },
                loc: L,
            });
        }
        e.on_event(&acc(T2, obj, AccessKind::Write))
    }

    #[test]
    fn destructor_vptr_write_is_false_positive_without_dr() {
        for cfg in [DetectorConfig::original(), DetectorConfig::hwlc()] {
            let race = destructor_scenario(cfg, true);
            assert!(race.is_some(), "without DR the dtor write warns even when annotated");
        }
        // And unannotated code warns under hwlc_dr too.
        assert!(destructor_scenario(DetectorConfig::hwlc_dr(), false).is_some());
    }

    #[test]
    fn destructor_annotation_suppresses_warning_under_dr() {
        assert!(destructor_scenario(DetectorConfig::hwlc_dr(), true).is_none());
    }

    #[test]
    fn other_thread_access_during_destruction_still_detected() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        let obj = 0x7100u64;
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&Event::Client {
            tid: T2,
            req: ClientEv::HgDestruct { addr: obj, size: 16 },
            loc: L,
        });
        assert!(e.on_event(&acc(T2, obj, AccessKind::Write)).is_none());
        // T1 touches the object mid-destruction: must warn.
        let race = e.on_event(&acc(T1, obj, AccessKind::Write));
        assert!(race.is_some(), "cross-thread access during destruction is a real race");
    }

    #[test]
    fn alloc_resets_shadow_state() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&acc(T1, 0x8000, AccessKind::Write));
        e.on_event(&acc(T2, 0x8000, AccessKind::Read));
        assert!(matches!(e.state_of(0x8000), VarState::SharedRead { .. }));
        e.on_event(&Event::Alloc { tid: T1, addr: 0x8000, size: 16, loc: L });
        assert_eq!(e.state_of(0x8000), VarState::Virgin);
    }

    #[test]
    fn rwlocks_ignored_when_not_tracked() {
        let mut cfg = DetectorConfig::original();
        cfg.thread_segments = true;
        let mut e = LocksetEngine::new(cfg);
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        let rw = |tid, mode| Event::Acquire {
            tid,
            sync: SyncId(5),
            kind: SyncKind::RwLock,
            mode,
            loc: L,
        };
        // Both writers hold the rwlock exclusively, but original Helgrind
        // does not intercept rwlocks → lockset empty → race.
        e.on_event(&rw(T1, AcqMode::Exclusive));
        e.on_event(&acc(T1, 0x9000, AccessKind::Write));
        e.on_event(&Event::Release { tid: T1, sync: SyncId(5), kind: SyncKind::RwLock, loc: L });
        e.on_event(&rw(T2, AcqMode::Exclusive));
        let race = e.on_event(&acc(T2, 0x9000, AccessKind::Write));
        assert!(race.is_some());
    }

    #[test]
    fn rwlock_write_mode_protects_when_tracked() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        let rw = |tid, mode| Event::Acquire {
            tid,
            sync: SyncId(5),
            kind: SyncKind::RwLock,
            mode,
            loc: L,
        };
        let rel = |tid| Event::Release { tid, sync: SyncId(5), kind: SyncKind::RwLock, loc: L };
        e.on_event(&rw(T1, AcqMode::Exclusive));
        assert!(e.on_event(&acc(T1, 0x9100, AccessKind::Write)).is_none());
        e.on_event(&rel(T1));
        e.on_event(&rw(T2, AcqMode::Exclusive));
        assert!(e.on_event(&acc(T2, 0x9100, AccessKind::Write)).is_none());
        e.on_event(&rel(T2));
        // Readers under shared mode: fine.
        e.on_event(&rw(T1, AcqMode::Shared));
        assert!(e.on_event(&acc(T1, 0x9100, AccessKind::Read)).is_none());
        e.on_event(&rel(T1));
    }

    #[test]
    fn rwlock_read_mode_does_not_license_writes() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        let rw = |tid, mode| Event::Acquire {
            tid,
            sync: SyncId(5),
            kind: SyncKind::RwLock,
            mode,
            loc: L,
        };
        let rel = |tid| Event::Release { tid, sync: SyncId(5), kind: SyncKind::RwLock, loc: L };
        // Writer-then-reader-who-writes: the reader's write holds no lock
        // in write mode, so the lockset intersection must empty out.
        e.on_event(&rw(T1, AcqMode::Exclusive));
        e.on_event(&acc(T1, 0x9200, AccessKind::Write));
        e.on_event(&rel(T1));
        e.on_event(&rw(T2, AcqMode::Shared));
        let race = e.on_event(&acc(T2, 0x9200, AccessKind::Write));
        assert!(race.is_some(), "writing under a read lock is a violation");
        e.on_event(&rel(T2));
    }

    #[test]
    fn delayed_lockset_initialisation_false_negative() {
        // §4.3: unlocked write first, locked write second → no warning in
        // this order (the lockset is initialised at the *second* access,
        // which holds a lock).
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        assert!(e.on_event(&acc(T1, 0xA000, AccessKind::Write)).is_none()); // unlocked
        e.on_event(&lock(T2, 0));
        let race = e.on_event(&acc(T2, 0xA000, AccessKind::Write));
        e.on_event(&unlock(T2, 0));
        assert!(race.is_none(), "the documented false negative of §4.3");

        // Reverse order: the same program with the other schedule warns.
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        e.on_event(&create(T0, T1));
        e.on_event(&create(T0, T2));
        e.on_event(&lock(T2, 0));
        assert!(e.on_event(&acc(T2, 0xA000, AccessKind::Write)).is_none());
        e.on_event(&unlock(T2, 0));
        let race = e.on_event(&acc(T1, 0xA000, AccessKind::Write));
        assert!(race.is_some(), "other schedule exposes the race");
    }

    #[test]
    fn multi_granule_access_updates_every_granule() {
        let mut e = LocksetEngine::new(DetectorConfig::hwlc_dr());
        // 8-byte access straddling two granules.
        e.on_event(&Event::Access {
            tid: T0,
            addr: 0x1004,
            size: 8,
            kind: AccessKind::Write,
            loc: L,
        });
        assert!(matches!(e.state_of(0x1000), VarState::Exclusive { .. }));
        assert!(matches!(e.state_of(0x1008), VarState::Exclusive { .. }));
        assert_eq!(e.shadowed_granules(), 2);
    }
}
