//! Vector clocks (Lamport/Mattern), the happens-before machinery behind
//! both the DJIT-style detector (§2.2 of the paper) and the thread-segment
//! refinement from Visual Threads.

/// A vector clock over thread ids. Missing components are zero; clocks grow
//  lazily as threads appear.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    pub fn new() -> Self {
        VectorClock(Vec::new())
    }

    /// Clock with a single non-zero component.
    pub fn singleton(tid: usize, value: u32) -> Self {
        let mut vc = VectorClock::new();
        vc.set(tid, value);
        vc
    }

    #[inline]
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub fn set(&mut self, tid: usize, value: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = value;
    }

    /// Increment component `tid` and return the new value.
    pub fn inc(&mut self, tid: usize) -> u32 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Pointwise maximum: `self := self ⊔ other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Pointwise `self ≤ other`: everything self knows, other knows too.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }

    /// Number of non-trivial components tracked.
    pub fn width(&self) -> usize {
        self.0.len()
    }
}

/// An epoch: one thread's scalar clock value, FastTrack-style. Used for the
/// common case of a location last written (or read) by a single thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Epoch {
    pub tid: u32,
    pub clock: u32,
}

impl Epoch {
    pub const ZERO: Epoch = Epoch { tid: 0, clock: 0 };

    /// Does this epoch happen before (or equal) the observer clock `vc`?
    #[inline]
    pub fn visible_to(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid as usize)
    }
}

/// Thread lanes stored inline in a [`SmallVc`] before it spills to the
/// heap. Covers the worker-pool sizes the workloads actually run; higher
/// thread ids fall back to a boxed full clock with identical semantics.
pub const SMALL_VC_LANES: usize = 8;

/// A flat small-footprint vector clock for read-share shadow state — the
/// FastTrack promotion target. The common case (every reader tid below
/// [`SMALL_VC_LANES`]) lives in a fixed inline array inside the shadow
/// page slot: promotion allocates nothing and `leq` is a short scalar
/// loop with no pointer chase. Missing components are zero, exactly like
/// [`VectorClock`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmallVc {
    Inline([u32; SMALL_VC_LANES]),
    Spill(Box<VectorClock>),
}

impl SmallVc {
    /// Read-share clock holding exactly two read epochs (the promotion
    /// step: a second thread read concurrently with `a`'s epoch).
    pub fn pair(a: Epoch, b: Epoch) -> Self {
        let mut vc = SmallVc::Inline([0; SMALL_VC_LANES]);
        vc.set(a.tid as usize, a.clock);
        vc.set(b.tid as usize, b.clock);
        vc
    }

    #[inline]
    pub fn get(&self, tid: usize) -> u32 {
        match self {
            SmallVc::Inline(lanes) => lanes.get(tid).copied().unwrap_or(0),
            SmallVc::Spill(vc) => vc.get(tid),
        }
    }

    /// Set component `tid`, spilling to a boxed full clock when the tid
    /// does not fit the inline lanes.
    pub fn set(&mut self, tid: usize, value: u32) {
        match self {
            SmallVc::Inline(lanes) if tid < SMALL_VC_LANES => lanes[tid] = value,
            SmallVc::Inline(lanes) => {
                let mut vc = VectorClock::new();
                for (i, &v) in lanes.iter().enumerate() {
                    if v != 0 {
                        vc.set(i, v);
                    }
                }
                vc.set(tid, value);
                *self = SmallVc::Spill(Box::new(vc));
            }
            SmallVc::Spill(vc) => vc.set(tid, value),
        }
    }

    /// Pointwise `self ≤ other` against a full observer clock.
    #[inline]
    pub fn leq(&self, other: &VectorClock) -> bool {
        match self {
            SmallVc::Inline(lanes) => lanes.iter().enumerate().all(|(i, &v)| v <= other.get(i)),
            SmallVc::Spill(vc) => vc.leq(other),
        }
    }

    /// Expand to a full [`VectorClock`] (tests and equivalence checks).
    pub fn to_full(&self) -> VectorClock {
        match self {
            SmallVc::Inline(lanes) => {
                let mut vc = VectorClock::new();
                for (i, &v) in lanes.iter().enumerate() {
                    if v != 0 {
                        vc.set(i, v);
                    }
                }
                vc
            }
            SmallVc::Spill(vc) => (**vc).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_of_missing_component_is_zero() {
        let vc = VectorClock::new();
        assert_eq!(vc.get(5), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut vc = VectorClock::new();
        vc.set(3, 7);
        assert_eq!(vc.get(3), 7);
        assert_eq!(vc.get(0), 0);
    }

    #[test]
    fn inc_returns_new_value() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.inc(2), 1);
        assert_eq!(vc.inc(2), 2);
        assert_eq!(vc.get(2), 2);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(1, 1);
        let mut b = VectorClock::new();
        b.set(1, 5);
        b.set(2, 2);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 2);
    }

    #[test]
    fn leq_detects_ordering_and_concurrency() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = a.clone();
        b.set(1, 4);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        // Concurrent clocks: neither leq.
        let mut c = VectorClock::new();
        c.set(0, 2);
        let mut d = VectorClock::new();
        d.set(1, 2);
        assert!(!c.leq(&d));
        assert!(!d.leq(&c));
    }

    #[test]
    fn leq_with_different_widths() {
        let mut a = VectorClock::new();
        a.set(4, 1);
        let b = VectorClock::new();
        assert!(b.leq(&a));
        assert!(!a.leq(&b));
    }

    #[test]
    fn epoch_visibility() {
        let mut vc = VectorClock::new();
        vc.set(1, 3);
        assert!(Epoch { tid: 1, clock: 3 }.visible_to(&vc));
        assert!(Epoch { tid: 1, clock: 2 }.visible_to(&vc));
        assert!(!Epoch { tid: 1, clock: 4 }.visible_to(&vc));
        assert!(!Epoch { tid: 2, clock: 1 }.visible_to(&vc));
        assert!(Epoch::ZERO.visible_to(&VectorClock::new()));
    }

    #[test]
    fn singleton_clock() {
        let vc = VectorClock::singleton(2, 9);
        assert_eq!(vc.get(2), 9);
        assert_eq!(vc.get(0), 0);
    }

    #[test]
    fn small_vc_pair_and_set_roundtrip() {
        let mut svc = SmallVc::pair(Epoch { tid: 1, clock: 3 }, Epoch { tid: 2, clock: 5 });
        assert!(matches!(svc, SmallVc::Inline(_)));
        assert_eq!(svc.get(1), 3);
        assert_eq!(svc.get(2), 5);
        assert_eq!(svc.get(0), 0);
        svc.set(1, 7);
        assert_eq!(svc.get(1), 7);
        assert_eq!(svc.to_full(), {
            let mut vc = VectorClock::new();
            vc.set(1, 7);
            vc.set(2, 5);
            vc
        });
    }

    #[test]
    fn small_vc_spills_on_wide_tid_and_keeps_semantics() {
        let mut svc = SmallVc::pair(Epoch { tid: 1, clock: 3 }, Epoch { tid: 2, clock: 5 });
        svc.set(SMALL_VC_LANES + 3, 9);
        assert!(matches!(svc, SmallVc::Spill(_)));
        assert_eq!(svc.get(1), 3);
        assert_eq!(svc.get(2), 5);
        assert_eq!(svc.get(SMALL_VC_LANES + 3), 9);
        assert_eq!(svc.get(0), 0);
    }

    #[test]
    fn small_vc_leq_matches_full_clock_leq() {
        let mut svc = SmallVc::pair(Epoch { tid: 0, clock: 2 }, Epoch { tid: 3, clock: 4 });
        let mut obs = VectorClock::new();
        obs.set(0, 2);
        obs.set(3, 4);
        assert!(svc.leq(&obs));
        assert_eq!(svc.leq(&obs), svc.to_full().leq(&obs));
        obs.set(3, 3);
        assert!(!svc.leq(&obs));
        assert_eq!(svc.leq(&obs), svc.to_full().leq(&obs));
        // Spilled representation answers identically.
        svc.set(SMALL_VC_LANES + 1, 1);
        assert!(!svc.leq(&obs));
        let mut obs2 = svc.to_full();
        obs2.set(0, 9);
        assert!(svc.leq(&obs2));
    }
}
