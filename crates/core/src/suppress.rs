//! Valgrind-style suppression files (§2.3.1 of the paper: "it is possible
//! to write a so-called suppression-file that contains report-type and
//! call-stack-patterns of locations that are false positives or part of
//! code that is not modifiable").
//!
//! Format (a close subset of Valgrind's):
//!
//! ```text
//! {
//!    libstdc++-string-refcount
//!    Helgrind:Race
//!    fun:M_grab
//!    fun:std::string::*
//!    ...
//! }
//! ```
//!
//! Frame patterns are matched against the report backtrace from the
//! innermost frame outward. `fun:<glob>` matches a function name,
//! `src:<glob>` matches `file:line` (line optional in the pattern), and a
//! bare `...` matches any number of frames. Globs support `*` and `?`.

use crate::report::Report;

/// One frame pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramePattern {
    /// `fun:<glob>` — match the demangled function name.
    Fun(String),
    /// `src:<glob>` — match `file` or `file:line`.
    Src(String),
    /// `...` — match zero or more frames.
    Ellipsis,
}

/// One suppression entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    pub name: String,
    /// Tool name before the colon (always "Helgrind" here) — kept for
    /// format fidelity but not matched.
    pub tool: String,
    /// Report kind token: "Race", "HbRace", "LockOrder", or "*".
    pub kind: String,
    pub frames: Vec<FramePattern>,
}

impl Suppression {
    /// Generate a suppression from a report, like Valgrind's
    /// `--gen-suppressions=yes`: the top `max_frames` stack frames as
    /// exact `fun:` patterns, followed by `...`.
    pub fn from_report(name: &str, report: &Report, max_frames: usize) -> Suppression {
        let mut frames: Vec<FramePattern> = report
            .stack
            .iter()
            .take(max_frames.max(1))
            .map(|f| FramePattern::Fun(f.func.clone()))
            .collect();
        if frames.is_empty() {
            frames.push(FramePattern::Fun(report.func.clone()));
        }
        frames.push(FramePattern::Ellipsis);
        Suppression {
            name: name.to_string(),
            tool: "Helgrind".to_string(),
            kind: report.kind.suppression_token().to_string(),
            frames,
        }
    }

    /// Render in the suppression-file format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("   {}\n", self.name));
        out.push_str(&format!("   {}:{}\n", self.tool, self.kind));
        for f in &self.frames {
            match f {
                FramePattern::Fun(g) => out.push_str(&format!("   fun:{g}\n")),
                FramePattern::Src(g) => out.push_str(&format!("   src:{g}\n")),
                FramePattern::Ellipsis => out.push_str("   ...\n"),
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Parse errors with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "suppression parse error at line {}: {}", self.line, self.message)
    }
}

/// Simple glob: `*` = any run, `?` = any single char. Case-sensitive.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some(b'*'), _) => {
                // Collapse consecutive stars.
                let rest = &p[1..];
                if inner(rest, t) {
                    return true;
                }
                !t.is_empty() && inner(p, &t[1..])
            }
            (Some(b'?'), Some(_)) => inner(&p[1..], &t[1..]),
            (Some(c), Some(d)) if c == d => inner(&p[1..], &t[1..]),
            _ => false,
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

/// A set of suppressions with a matcher.
#[derive(Clone, Debug, Default)]
pub struct SuppressionSet {
    entries: Vec<Suppression>,
}

impl SuppressionSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, s: Suppression) {
        self.entries.push(s);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parse a suppression file.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut set = SuppressionSet::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line != "{" {
                return Err(ParseError {
                    line: ln + 1,
                    message: format!("expected '{{', got {line:?}"),
                });
            }
            // Name line.
            let (nln, name) = next_content(&mut lines)
                .ok_or(ParseError { line: ln + 1, message: "unterminated suppression".into() })?;
            if name == "}" {
                return Err(ParseError {
                    line: nln + 1,
                    message: "missing suppression name".into(),
                });
            }
            // Kind line: Tool:Kind.
            let (kln, kind_line) = next_content(&mut lines)
                .ok_or(ParseError { line: nln + 1, message: "unterminated suppression".into() })?;
            let (tool, kind) = kind_line.split_once(':').ok_or(ParseError {
                line: kln + 1,
                message: format!("expected 'Tool:Kind', got {kind_line:?}"),
            })?;
            let mut frames = Vec::new();
            loop {
                let (fln, fl) = next_content(&mut lines).ok_or(ParseError {
                    line: kln + 1,
                    message: "unterminated suppression".into(),
                })?;
                if fl == "}" {
                    break;
                }
                if fl == "..." {
                    frames.push(FramePattern::Ellipsis);
                } else if let Some(g) = fl.strip_prefix("fun:") {
                    frames.push(FramePattern::Fun(g.to_string()));
                } else if let Some(g) = fl.strip_prefix("src:") {
                    frames.push(FramePattern::Src(g.to_string()));
                } else if let Some(g) = fl.strip_prefix("obj:") {
                    // Accepted for Valgrind compatibility; we have no
                    // object files, so match it against the source file.
                    frames.push(FramePattern::Src(g.to_string()));
                } else {
                    return Err(ParseError {
                        line: fln + 1,
                        message: format!("unknown frame pattern {fl:?}"),
                    });
                }
            }
            set.push(Suppression {
                name: name.to_string(),
                tool: tool.to_string(),
                kind: kind.to_string(),
                frames,
            });
        }
        Ok(set)
    }

    /// Does any suppression match this report?
    pub fn matches(&self, report: &Report) -> bool {
        self.entries.iter().any(|s| suppression_matches(s, report))
    }

    /// Render the whole set in file format (round-trips through
    /// [`SuppressionSet::parse`]).
    pub fn render(&self) -> String {
        self.entries.iter().map(Suppression::render).collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Suppression> {
        self.entries.iter()
    }
}

fn next_content<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Option<(usize, &'a str)> {
    for (ln, raw) in lines {
        let t = raw.trim();
        if !t.is_empty() && !t.starts_with('#') {
            return Some((ln, t));
        }
    }
    None
}

fn suppression_matches(s: &Suppression, report: &Report) -> bool {
    if s.kind != "*" && s.kind != report.kind.suppression_token() {
        return false;
    }
    // Frame sequence match with ellipsis, innermost-first.
    fn frames_match(pats: &[FramePattern], frames: &[crate::report::StackFrame]) -> bool {
        match pats.first() {
            None => true, // all patterns consumed; suppression is a prefix match
            Some(FramePattern::Ellipsis) => {
                // Try consuming 0..n frames.
                (0..=frames.len()).any(|k| frames_match(&pats[1..], &frames[k..]))
            }
            Some(p) => {
                let Some(f) = frames.first() else { return false };
                let ok = match p {
                    FramePattern::Fun(g) => glob_match(g, &f.func),
                    FramePattern::Src(g) => {
                        glob_match(g, &f.file) || glob_match(g, &format!("{}:{}", f.file, f.line))
                    }
                    FramePattern::Ellipsis => unreachable!(),
                };
                ok && frames_match(&pats[1..], &frames[1..])
            }
        }
    }
    frames_match(&s.frames, &report.stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Report, ReportKind, StackFrame};

    fn report_with_stack(funcs: &[&str]) -> Report {
        Report {
            kind: ReportKind::RaceWrite,
            tid: 1,
            file: "string.cpp".into(),
            line: 10,
            func: funcs[0].into(),
            addr: 0,
            stack: funcs
                .iter()
                .enumerate()
                .map(|(i, f)| StackFrame {
                    func: f.to_string(),
                    file: "string.cpp".into(),
                    line: 10 + i as u32,
                })
                .collect(),
            block: None,
            details: String::new(),
            truncated: false,
        }
    }

    #[test]
    fn glob_basics() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(glob_match("a*c", "abbbc"));
        assert!(glob_match("*", ""));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(glob_match("std::string::*", "std::string::M_grab"));
        assert!(glob_match("**a**", "bca"));
    }

    #[test]
    fn parse_single_suppression() {
        let text = r#"
# comment
{
   string-refcount
   Helgrind:Race
   fun:M_grab
   fun:std::string::*
   ...
}
"#;
        let set = SuppressionSet::parse(text).unwrap();
        assert_eq!(set.len(), 1);
        let s = &set.entries[0];
        assert_eq!(s.name, "string-refcount");
        assert_eq!(s.kind, "Race");
        assert_eq!(s.frames.len(), 3);
        assert_eq!(s.frames[2], FramePattern::Ellipsis);
    }

    #[test]
    fn parse_errors_are_located() {
        let err = SuppressionSet::parse("{\n  x\n  NoColonHere\n}").unwrap_err();
        assert_eq!(err.line, 3);
        let err = SuppressionSet::parse("nonsense").unwrap_err();
        assert_eq!(err.line, 1);
        let err = SuppressionSet::parse("{\n  n\n  T:Race\n  bad:frame\n}").unwrap_err();
        assert!(err.message.contains("unknown frame pattern"));
    }

    #[test]
    fn matches_prefix_of_stack() {
        let text = "{\n s\n Helgrind:Race\n fun:M_grab\n}";
        let set = SuppressionSet::parse(text).unwrap();
        assert!(set.matches(&report_with_stack(&["M_grab", "copy", "main"])));
        assert!(!set.matches(&report_with_stack(&["copy", "M_grab"])));
    }

    #[test]
    fn ellipsis_skips_frames() {
        let text = "{\n s\n Helgrind:Race\n fun:M_grab\n ...\n fun:main\n}";
        let set = SuppressionSet::parse(text).unwrap();
        assert!(set.matches(&report_with_stack(&["M_grab", "a", "b", "main"])));
        assert!(set.matches(&report_with_stack(&["M_grab", "main"])));
        assert!(!set.matches(&report_with_stack(&["M_grab", "a", "b"])));
    }

    #[test]
    fn kind_must_match_unless_wildcard() {
        let race_only = SuppressionSet::parse("{\n s\n H:Race\n ...\n}").unwrap();
        let anything = SuppressionSet::parse("{\n s\n H:*\n ...\n}").unwrap();
        let mut r = report_with_stack(&["f"]);
        assert!(race_only.matches(&r));
        assert!(anything.matches(&r));
        r.kind = ReportKind::LockOrderCycle;
        assert!(!race_only.matches(&r));
        assert!(anything.matches(&r));
    }

    #[test]
    fn src_pattern_matches_file_and_line() {
        let set = SuppressionSet::parse("{\n s\n H:Race\n src:string.cpp:10\n}").unwrap();
        assert!(set.matches(&report_with_stack(&["anything"])));
        let set2 = SuppressionSet::parse("{\n s\n H:Race\n src:other.cpp\n}").unwrap();
        assert!(!set2.matches(&report_with_stack(&["anything"])));
        let set3 = SuppressionSet::parse("{\n s\n H:Race\n src:string.*\n}").unwrap();
        assert!(set3.matches(&report_with_stack(&["anything"])));
    }

    #[test]
    fn multiple_suppressions_any_match() {
        let text = "{\n a\n H:Race\n fun:xyz\n}\n{\n b\n H:Race\n fun:M_*\n}";
        let set = SuppressionSet::parse(text).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.matches(&report_with_stack(&["M_grab"])));
    }

    #[test]
    fn generated_suppression_matches_its_own_report() {
        let report = report_with_stack(&["M_grab", "copy_string", "handler", "main"]);
        let s = Suppression::from_report("auto-1", &report, 2);
        let mut set = SuppressionSet::new();
        set.push(s);
        assert!(set.matches(&report), "a generated suppression must match its source");
        // But not an unrelated report.
        assert!(!set.matches(&report_with_stack(&["other", "main"])));
    }

    #[test]
    fn render_parse_roundtrip() {
        let report = report_with_stack(&["M_grab", "copy_string"]);
        let mut set = SuppressionSet::new();
        set.push(Suppression::from_report("auto-1", &report, 2));
        set.push(
            SuppressionSet::parse("{\n manual\n Helgrind:LockOrder\n src:a.cpp:3\n}")
                .unwrap()
                .iter()
                .next()
                .unwrap()
                .clone(),
        );
        let text = set.render();
        let back = SuppressionSet::parse(&text).unwrap();
        assert_eq!(back.render(), text);
        assert!(back.matches(&report));
    }
}
