//! Detector configuration and the three experiment presets from the paper
//! (the columns of Fig 6): Original, HWLC, and HWLC+DR.

use crate::budget::DetectorBudget;
use serde::{Deserialize, Serialize};

/// How the x86 `LOCK` prefix is modelled (§3.1 / §4.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BusLockModel {
    /// Original Helgrind: a special mutex locked only for the duration of
    /// each `LOCK`-prefixed instruction. Plain reads do not hold it, so
    /// read-then-locked-write sequences (e.g. COW string reference counts)
    /// produce an empty lockset — the paper's dominant bus-lock false
    /// positives.
    PlainMutex,
    /// The paper's HWLC correction: a read-write lock held in read mode by
    /// *every* plain read and in write mode by `LOCK`-prefixed writes,
    /// matching the i386 guarantee that reads need no `LOCK` prefix.
    RwLock,
}

/// Detector configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Bus-lock model (HWLC improvement toggles this).
    pub bus_lock: BusLockModel,
    /// Honor `VALGRIND_HG_DESTRUCT` client requests (the DR improvement:
    /// automatic delete-annotation, Fig 4). When false, the requests are
    /// ignored — the behaviour of unpatched Helgrind.
    pub honor_destruct: bool,
    /// Thread segments (Visual Threads refinement). On in all of the
    /// paper's configurations.
    pub thread_segments: bool,
    /// Intercept POSIX rwlock operations. The paper adds this alongside
    /// HWLC ("support for the corresponding POSIX API could be added
    /// easily"); unpatched Helgrind ignores rwlocks entirely.
    pub track_rwlocks: bool,
    /// Shadow-memory granule size in bytes (power of two). Helgrind shadows
    /// at word granularity; 8 matches 64-bit words.
    pub granule: u64,
    /// Happens-before edges from bounded-queue put/get pairs — the §5
    /// "higher level synchronization" future-work extension (E12). Only
    /// consulted by the HB/hybrid engines.
    pub queue_hb: bool,
    /// Happens-before edges from condvar signal → wake. Off by default:
    /// §2.2 notes that assuming an order between signal and wait is *not*
    /// sound, and real detectors derive ordering from the associated mutex.
    pub condvar_hb: bool,
    /// Treat `LOCK`-prefixed RMW accesses as synchronisation (acquire +
    /// release on a per-address pseudo-lock) in the HB engines, the way
    /// detectors treat std::atomic. Prevents the HB family from flagging
    /// the refcount pattern.
    pub atomic_sync: bool,
    /// Semaphore post → wait happens-before edges (HB engines).
    pub sem_hb: bool,
    /// Run the HB engines' read shadow state as a reference full vector
    /// clock instead of the adaptive FastTrack epoch lattice. Reports are
    /// identical either way — the epoch/reference golden suites and the
    /// event-soup proptest pin that — so this mode exists purely as the
    /// equivalence oracle (`raceline ... --hb-reference`).
    pub hb_reference: bool,
    /// State caps with graceful degradation (see [`crate::budget`]).
    /// Unlimited in every preset; narrowed by `raceline --budget`.
    pub budget: DetectorBudget,
}

impl DetectorConfig {
    /// Unpatched Helgrind: plain-mutex bus lock, destructor annotations
    /// ignored, no rwlock interception. Column "Original" of Fig 6.
    pub fn original() -> Self {
        DetectorConfig {
            bus_lock: BusLockModel::PlainMutex,
            honor_destruct: false,
            thread_segments: true,
            track_rwlocks: false,
            granule: 8,
            queue_hb: false,
            condvar_hb: false,
            atomic_sync: true,
            sem_hb: true,
            hb_reference: false,
            budget: DetectorBudget::unlimited(),
        }
    }

    /// Corrected hardware bus lock + rwlock support. Column "HWLC".
    pub fn hwlc() -> Self {
        DetectorConfig { bus_lock: BusLockModel::RwLock, track_rwlocks: true, ..Self::original() }
    }

    /// HWLC plus destructor annotations. Column "HWLC+DR".
    pub fn hwlc_dr() -> Self {
        DetectorConfig { honor_destruct: true, ..Self::hwlc() }
    }

    /// Baseline DJIT-style happens-before configuration (§2.2).
    pub fn djit() -> Self {
        Self::hwlc_dr()
    }

    /// Hybrid lockset ∧ happens-before configuration.
    pub fn hybrid() -> Self {
        Self::hwlc_dr()
    }

    /// Hybrid with queue-hand-off awareness (E12 ablation).
    pub fn hybrid_queue_hb() -> Self {
        DetectorConfig { queue_hb: true, ..Self::hybrid() }
    }

    /// Mask for the granule: `addr & !granule_mask()` is the granule base.
    #[inline]
    pub fn granule_mask(&self) -> u64 {
        self.granule - 1
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::hwlc_dr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_exactly_as_in_the_paper() {
        let o = DetectorConfig::original();
        let h = DetectorConfig::hwlc();
        let hd = DetectorConfig::hwlc_dr();
        assert_eq!(o.bus_lock, BusLockModel::PlainMutex);
        assert_eq!(h.bus_lock, BusLockModel::RwLock);
        assert_eq!(hd.bus_lock, BusLockModel::RwLock);
        assert!(!o.honor_destruct && !h.honor_destruct && hd.honor_destruct);
        assert!(!o.track_rwlocks && h.track_rwlocks && hd.track_rwlocks);
        // Thread segments are on everywhere (Helgrind had them already).
        assert!(o.thread_segments && h.thread_segments && hd.thread_segments);
    }

    #[test]
    fn granule_must_be_power_of_two_sized_mask() {
        let c = DetectorConfig::default();
        assert_eq!(c.granule, 8);
        assert_eq!(c.granule_mask(), 7);
        assert_eq!(0x1234 & !c.granule_mask(), 0x1230);
    }

    #[test]
    fn queue_hb_only_in_extension_preset() {
        assert!(!DetectorConfig::hybrid().queue_hb);
        assert!(DetectorConfig::hybrid_queue_hb().queue_hb);
    }
}
