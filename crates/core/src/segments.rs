//! Thread segments — the Visual Threads refinement of Eraser (§2.3.2,
//! Fig 2 of the paper).
//!
//! A thread's execution is split into *segments* separated by thread-create
//! and thread-join operations. A memory location in EXCLUSIVE state is owned
//! by a segment, not a thread: when segment `TSi` owns data and `TSj`
//! touches it with `TSi` happens-before `TSj`, ownership transfers and the
//! state stays EXCLUSIVE instead of degrading to SHARED. This is what makes
//! the thread-per-request pattern warning-free (Fig 10) while thread pools
//! still produce false positives (Fig 11).
//!
//! Each segment stores its owner's scalar clock plus a full vector clock
//! snapshot, so `happens_before` is an O(1) epoch test.

use crate::vc::VectorClock;
use vexec::event::ThreadId;

/// Id of a thread segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegmentId(pub u32);

#[derive(Clone, Debug)]
struct Segment {
    owner: ThreadId,
    /// The owner-thread clock value at which this segment was created.
    own_clock: u32,
    /// Everything this segment's start knows about.
    vc: VectorClock,
}

/// The segment graph: tracks the current segment of each thread and answers
/// happens-before queries between segments.
#[derive(Debug, Default)]
pub struct SegmentGraph {
    segments: Vec<Segment>,
    /// Current segment per thread (index = tid).
    current: Vec<Option<SegmentId>>,
    /// Final segment of exited threads (still available for joins).
    /// When `split_on_sync` is false the graph degenerates to one segment
    /// per thread — plain Eraser ownership semantics.
    split_enabled: bool,
}

impl SegmentGraph {
    /// `split_enabled = false` yields the plain-Eraser behaviour (one
    /// segment per thread forever, no transfer of exclusivity).
    pub fn new(split_enabled: bool) -> Self {
        SegmentGraph { segments: Vec::new(), current: Vec::new(), split_enabled }
    }

    fn new_segment(&mut self, owner: ThreadId, vc: VectorClock) -> SegmentId {
        let own_clock = vc.get(owner.index());
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Segment { owner, own_clock, vc });
        id
    }

    fn set_current(&mut self, tid: ThreadId, seg: SegmentId) {
        let idx = tid.index();
        if self.current.len() <= idx {
            self.current.resize(idx + 1, None);
        }
        self.current[idx] = Some(seg);
    }

    /// Current segment of `tid`, creating the initial one lazily.
    pub fn current(&mut self, tid: ThreadId) -> SegmentId {
        let idx = tid.index();
        if idx < self.current.len() {
            if let Some(s) = self.current[idx] {
                return s;
            }
        }
        let vc = VectorClock::singleton(idx, 1);
        let seg = self.new_segment(tid, vc);
        self.set_current(tid, seg);
        seg
    }

    /// Record a thread-create: the child starts a fresh segment knowing
    /// everything the parent knew, and the parent enters a new segment
    /// (TS1 → TS2 in Fig 2).
    pub fn on_create(&mut self, parent: ThreadId, child: ThreadId) {
        let pseg = self.current(parent);
        let parent_vc = self.segments[pseg.0 as usize].vc.clone();

        // Child segment: parent's knowledge + its own first tick.
        let mut child_vc = parent_vc.clone();
        child_vc.set(child.index(), 1);
        let cseg = self.new_segment(child, child_vc);
        self.set_current(child, cseg);

        if self.split_enabled {
            // Parent's next segment.
            let mut new_parent_vc = parent_vc;
            let tick = new_parent_vc.get(parent.index()) + 1;
            new_parent_vc.set(parent.index(), tick);
            let nseg = self.new_segment(parent, new_parent_vc);
            self.set_current(parent, nseg);
        }
    }

    /// Record a join: the joiner enters a new segment that also knows
    /// everything the joined thread's final segment knew.
    pub fn on_join(&mut self, joiner: ThreadId, joined: ThreadId) {
        let jseg = self.current(joiner);
        let tseg = self.current(joined);
        if !self.split_enabled {
            return;
        }
        let mut vc = self.segments[jseg.0 as usize].vc.clone();
        let joined_vc = self.segments[tseg.0 as usize].vc.clone();
        vc.join(&joined_vc);
        let tick = vc.get(joiner.index()) + 1;
        vc.set(joiner.index(), tick);
        let nseg = self.new_segment(joiner, vc);
        self.set_current(joiner, nseg);
    }

    /// Does segment `a` happen before (or equal) segment `b`?
    ///
    /// O(1) epoch test. Invariant: a segment's vector-clock component for a
    /// *different* thread `t` names the highest segment of `t` that had
    /// fully ended before this segment began (knowledge only transfers at
    /// create boundaries, where the parent's segment ends, and at joins,
    /// where the joined thread has exited). So for different owners,
    /// `a` hb `b` iff `b`'s snapshot covers `a`'s epoch.
    pub fn happens_before(&self, a: SegmentId, b: SegmentId) -> bool {
        if a == b {
            return true;
        }
        let sa = &self.segments[a.0 as usize];
        let sb = &self.segments[b.0 as usize];
        if sa.owner == sb.owner {
            // Same thread: segment order is creation order.
            return sa.own_clock <= sb.own_clock;
        }
        if !self.split_enabled {
            // Plain Eraser: exclusivity never transfers across threads.
            return false;
        }
        sb.vc.get(sa.owner.index()) >= sa.own_clock
    }

    /// Owner thread of a segment.
    pub fn owner(&self, s: SegmentId) -> ThreadId {
        self.segments[s.0 as usize].owner
    }

    /// Number of segments created (for stats).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAIN: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn create_orders_parent_prefix_before_child() {
        let mut g = SegmentGraph::new(true);
        let before = g.current(MAIN);
        g.on_create(MAIN, T1);
        let child = g.current(T1);
        let after = g.current(MAIN);
        assert_ne!(before, after, "parent enters a new segment at create");
        assert!(g.happens_before(before, child), "pre-create segment hb child");
        assert!(!g.happens_before(child, after), "child concurrent with parent post-create");
        assert!(!g.happens_before(after, child));
        assert!(g.happens_before(before, after), "same-thread order");
    }

    #[test]
    fn join_orders_child_before_joiner_suffix() {
        let mut g = SegmentGraph::new(true);
        g.on_create(MAIN, T1);
        let child = g.current(T1);
        let mid = g.current(MAIN);
        g.on_join(MAIN, T1);
        let after = g.current(MAIN);
        assert!(g.happens_before(child, after), "child hb post-join segment");
        assert!(!g.happens_before(child, mid), "child concurrent with pre-join segment");
    }

    #[test]
    fn fork_join_diamond() {
        // Fig 2: TS1 -> {child1, child2, TS2}; join both -> TS3.
        let mut g = SegmentGraph::new(true);
        let ts1 = g.current(MAIN);
        g.on_create(MAIN, T1);
        g.on_create(MAIN, T2);
        let c1 = g.current(T1);
        let c2 = g.current(T2);
        assert!(g.happens_before(ts1, c1));
        assert!(g.happens_before(ts1, c2));
        assert!(!g.happens_before(c1, c2), "siblings are concurrent");
        assert!(!g.happens_before(c2, c1));
        g.on_join(MAIN, T1);
        g.on_join(MAIN, T2);
        let ts3 = g.current(MAIN);
        assert!(g.happens_before(c1, ts3));
        assert!(g.happens_before(c2, ts3));
    }

    #[test]
    fn sequential_handoff_chain() {
        // Fig 2's serialized pattern: create T1, join T1, create T2 — T1's
        // segment must happen-before T2's.
        let mut g = SegmentGraph::new(true);
        g.on_create(MAIN, T1);
        let c1 = g.current(T1);
        g.on_join(MAIN, T1);
        g.on_create(MAIN, T2);
        let c2 = g.current(T2);
        assert!(g.happens_before(c1, c2), "non-overlapping segments are ordered");
    }

    #[test]
    fn disabled_split_keeps_one_segment_per_thread() {
        let mut g = SegmentGraph::new(false);
        let s0 = g.current(MAIN);
        g.on_create(MAIN, T1);
        assert_eq!(g.current(MAIN), s0, "no split when disabled");
        let c = g.current(T1);
        g.on_join(MAIN, T1);
        assert_eq!(g.current(MAIN), s0);
        // Plain Eraser semantics: no cross-thread ordering in either
        // direction — exclusivity never transfers between threads.
        assert!(!g.happens_before(c, s0));
        assert!(!g.happens_before(s0, c));
    }

    #[test]
    fn owner_and_counts() {
        let mut g = SegmentGraph::new(true);
        let s = g.current(T2);
        assert_eq!(g.owner(s), T2);
        assert_eq!(g.segment_count(), 1);
    }
}
