//! Trace replay: run any detector over a recorded `.rltrace` byte stream
//! — no VM, no re-execution — and reproduce the inline report exactly.
//!
//! The writer serialises three things the detectors need beyond the raw
//! events: the symbol table (header), per-thread backtraces (stack delta
//! records + the top-frame-overwrite rule), and heap blocks (header
//! snapshot + Alloc/Free events). [`ReplayCtx`] reconstructs all three and
//! implements [`ReportCtx`], so `EraserDetector::handle_event` runs the
//! same code inline and offline; byte-identical reports follow by
//! construction.
//!
//! Sharding: epoch payloads are codec-independent, so decoding fans out
//! over a scoped thread pool (workers claim epoch indices from a shared
//! atomic counter, the PR-3 pattern). Detector dispatch is a *sequential
//! fold in epoch order* over the decoded records — identical for any
//! `--jobs N`, which is what makes parallel analysis bit-reproducible.
//!
//! Starting mid-trace (`from_epoch > 0`) replays stack/block context from
//! the beginning (cheap — no detector work) and primes the detector's
//! lock state with synthetic `Acquire` events from the target epoch's
//! held-lock snapshot; shadow memory starts virgin, like attaching a
//! detector to a live process.
//!
//! The HB engines' adaptive epoch lattice (§13) is below this layer:
//! `DetectorConfig::hb_reference` selects the read-state representation
//! inside [`crate::HbEngine`], so `analyze ... --hb-reference` flows
//! through the same [`ReplayDetector`] plumbing and must stay
//! byte-identical to the adaptive default — the CI epoch job cmp-gates
//! sharded analyze across both modes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use raceline_trace::format::{TraceError, TraceFooter, TraceRecord};
use raceline_trace::reader::{decode_epoch, parse_trace, parse_trace_repair, ParsedTrace};
use vexec::event::{Event, ThreadId};
use vexec::ir::SrcLoc;
use vexec::util::Symbol;

use crate::detector::{DjitDetector, EngineStats, EraserDetector, HybridDetector};
use crate::report::{format_block_note, Report, ReportCtx, StackFrame};

/// Any of the three detector families, unified for trace dispatch. Build
/// the inner detector exactly as the inline path would (same config, same
/// suppressions) and reports come out byte-identical.
#[allow(clippy::large_enum_variant)] // one detector per analysis, never collections of them
pub enum ReplayDetector {
    Eraser(EraserDetector),
    Djit(DjitDetector),
    Hybrid(HybridDetector),
}

impl ReplayDetector {
    fn handle_event(&mut self, ev: &Event, ctx: &dyn ReportCtx) {
        match self {
            ReplayDetector::Eraser(d) => d.handle_event(ev, ctx),
            ReplayDetector::Djit(d) => d.handle_event(ev, ctx),
            ReplayDetector::Hybrid(d) => d.handle_event(ev, ctx),
        }
    }

    fn handle_finish(&mut self) {
        match self {
            ReplayDetector::Eraser(d) => d.handle_finish(),
            ReplayDetector::Djit(d) => d.handle_finish(),
            ReplayDetector::Hybrid(d) => d.handle_finish(),
        }
    }

    pub fn truncated(&self) -> bool {
        match self {
            ReplayDetector::Eraser(d) => d.truncated(),
            ReplayDetector::Djit(d) => d.truncated(),
            ReplayDetector::Hybrid(d) => d.truncated(),
        }
    }

    pub fn take_reports(&mut self) -> Vec<Report> {
        match self {
            ReplayDetector::Eraser(d) => d.sink.take_reports(),
            ReplayDetector::Djit(d) => d.sink.take_reports(),
            ReplayDetector::Hybrid(d) => d.sink.take_reports(),
        }
    }

    /// Per-engine analysis counters, for `analyze --stats`.
    pub fn engine_stats(&self) -> Vec<EngineStats> {
        match self {
            ReplayDetector::Eraser(d) => d.engine_stats(),
            ReplayDetector::Djit(d) => d.engine_stats(),
            ReplayDetector::Hybrid(d) => d.engine_stats(),
        }
    }
}

/// What offline analysis hands back to the caller.
pub struct ReplayOutcome {
    pub reports: Vec<Report>,
    pub truncated: bool,
    /// Events dispatched to the detector (suffix only under `from_epoch`).
    pub events: u64,
    pub footer: TraceFooter,
    /// Per-engine counters from the replay-side detector (`--stats`).
    pub engine_stats: Vec<EngineStats>,
}

/// Reconstructed report context: symbol table, per-thread backtraces,
/// heap blocks. The offline twin of the live `VmView`.
pub struct ReplayCtx {
    symbols: Vec<String>,
    stacks: Vec<Vec<(Symbol, SrcLoc)>>,
    /// addr → (size, alloc_tid, freed); mirrors the VM's bump allocator
    /// (freed blocks stay, marked).
    blocks: BTreeMap<u64, (u64, u32, bool)>,
}

impl ReplayCtx {
    fn new(symbols: Vec<String>, blocks: BTreeMap<u64, (u64, u32, bool)>) -> Self {
        ReplayCtx { symbols, stacks: Vec::new(), blocks }
    }

    fn stack_mut(&mut self, tid: ThreadId) -> &mut Vec<(Symbol, SrcLoc)> {
        let i = tid.index();
        if i >= self.stacks.len() {
            self.stacks.resize_with(i + 1, Vec::new);
        }
        &mut self.stacks[i]
    }

    /// The VM overwrites the top frame's current location as each op
    /// executes; the reader applies the same rule per event so the writer
    /// only needs explicit records on push/pop boundaries.
    fn apply_top_frame(&mut self, ev: &Event) {
        if let Some(loc) = ev.loc() {
            if let Some(top) = self.stack_mut(ev.tid()).last_mut() {
                top.1 = loc;
                if loc.func != Symbol::EMPTY {
                    top.0 = loc.func;
                }
            }
        }
    }

    fn apply_blocks(&mut self, ev: &Event) {
        match *ev {
            Event::Alloc { tid, addr, size, .. } => {
                self.blocks.insert(addr, (size, tid.0, false));
            }
            Event::Free { tid, addr, size, .. } => {
                self.blocks.entry(addr).and_modify(|b| b.2 = true).or_insert((size, tid.0, true));
            }
            _ => {}
        }
    }
}

impl ReportCtx for ReplayCtx {
    fn resolve_sym(&self, sym: Symbol) -> &str {
        self.symbols.get(sym.0 as usize).map(String::as_str).unwrap_or("")
    }

    fn stack_of(&self, tid: ThreadId) -> Vec<StackFrame> {
        let Some(stack) = self.stacks.get(tid.index()) else {
            return Vec::new();
        };
        stack
            .iter()
            .rev()
            .map(|&(func, loc)| StackFrame {
                func: self.resolve_sym(func).to_string(),
                file: self.resolve_sym(loc.file).to_string(),
                line: loc.line,
            })
            .collect()
    }

    fn block_note(&self, addr: u64) -> Option<String> {
        let (&base, &(size, alloc_tid, freed)) = self.blocks.range(..=addr).next_back()?;
        (addr < base + size).then(|| format_block_note(addr, base, size, alloc_tid, freed))
    }
}

/// Decode every epoch payload, fanning out over `jobs` worker threads.
/// Workers claim epoch indices from a shared counter; results land in
/// index-order slots, so the output (including which error surfaces when
/// several epochs are corrupt) is independent of thread timing.
fn decode_epochs(
    bytes: &[u8],
    parsed: &ParsedTrace,
    jobs: usize,
) -> Result<Vec<Vec<TraceRecord>>, TraceError> {
    let n = parsed.epochs.len();
    let nsyms = parsed.header.symbols.len() as u32;
    if jobs <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for desc in &parsed.epochs {
            out.push(decode_epoch(bytes, desc, nsyms)?);
        }
        return Ok(out);
    }
    type DecodeSlot = Mutex<Option<Result<Vec<TraceRecord>, TraceError>>>;
    let next = AtomicUsize::new(0);
    let slots: Vec<DecodeSlot> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = decode_epoch(bytes, &parsed.epochs[i], nsyms);
                *slots[i].lock().expect("decode slot poisoned") = Some(r);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().expect("decode slot poisoned").expect("worker filled slot") {
            Ok(recs) => out.push(recs),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Run `detector` over a complete `.rltrace` byte stream.
///
/// `jobs` parallelises epoch *decoding* only; dispatch is a sequential
/// fold in epoch order, so the outcome is byte-identical for any `jobs`.
/// `from_epoch` skips detector dispatch for earlier epochs (context is
/// still replayed) and primes lock state from that epoch's snapshot.
pub fn analyze_trace_bytes(
    bytes: &[u8],
    detector: ReplayDetector,
    jobs: usize,
    from_epoch: u64,
) -> Result<ReplayOutcome, TraceError> {
    let parsed = parse_trace(bytes)?;
    analyze_parsed(bytes, parsed, detector, jobs, from_epoch)
}

/// What the tolerant analyze path recovered.
#[derive(Clone, Copy, Debug)]
pub struct RepairInfo {
    /// `false` when the trace was whole and no repair was needed.
    pub repaired: bool,
    /// Torn-tail bytes discarded before analysis.
    pub dropped_bytes: usize,
}

/// `analyze --repair`: like [`analyze_trace_bytes`], but a crash-truncated
/// trace (missing or torn envelope trailer) is recovered via
/// [`parse_trace_repair`] — the torn final epoch is dropped and the intact
/// prefix analyzed. Real corruption (checksum mismatch, interior structure
/// errors in a complete file) still propagates.
pub fn analyze_trace_repair(
    bytes: &[u8],
    detector: ReplayDetector,
    jobs: usize,
    from_epoch: u64,
) -> Result<(ReplayOutcome, RepairInfo), TraceError> {
    let rt = parse_trace_repair(bytes)?;
    let info = RepairInfo { repaired: rt.repaired, dropped_bytes: rt.dropped_bytes };
    Ok((analyze_parsed(bytes, rt.parsed, detector, jobs, from_epoch)?, info))
}

fn analyze_parsed(
    bytes: &[u8],
    parsed: ParsedTrace,
    mut detector: ReplayDetector,
    jobs: usize,
    from_epoch: u64,
) -> Result<ReplayOutcome, TraceError> {
    let decoded = decode_epochs(bytes, &parsed, jobs)?;

    let blocks: BTreeMap<u64, (u64, u32, bool)> = parsed
        .header
        .initial_blocks
        .iter()
        .map(|b| (b.addr, (b.size, b.alloc_tid, b.freed)))
        .collect();
    let mut ctx = ReplayCtx::new(parsed.header.symbols.clone(), blocks);
    let mut counts: Vec<u64> = Vec::new();
    let mut dispatched: u64 = 0;

    for (desc, recs) in parsed.epochs.iter().zip(&decoded) {
        let epoch = desc.snapshot.index;
        // Cross-check the snapshot's per-thread sequence numbers against
        // the stream decoded so far: cheap end-to-end integrity on top of
        // the file checksum.
        for (i, t) in desc.snapshot.threads.iter().enumerate() {
            let have = counts.get(i).copied().unwrap_or(0);
            if have != t.seq {
                return Err(TraceError::Corrupt {
                    offset: desc.payload_offset as u64,
                    detail: format!(
                        "epoch {epoch} snapshot says thread {i} emitted {} events, stream has {have}",
                        t.seq
                    ),
                });
            }
        }
        if epoch == from_epoch && from_epoch > 0 {
            // Prime lock state: the suffix starts with these locks held.
            // Snapshot order is acquisition order, so lock-order edges
            // between them are faithful too.
            for (i, t) in desc.snapshot.threads.iter().enumerate() {
                for h in &t.held {
                    for _ in 0..h.count {
                        let ev = Event::Acquire {
                            tid: ThreadId(i as u32),
                            sync: h.sync,
                            kind: h.kind,
                            mode: h.mode,
                            loc: h.loc,
                        };
                        detector.handle_event(&ev, &ctx);
                    }
                }
            }
        }
        for rec in recs {
            match *rec {
                TraceRecord::StackPush { tid, func, loc } => {
                    ctx.stack_mut(tid).push((func, loc));
                }
                TraceRecord::StackPop { tid, n } => {
                    let stack = ctx.stack_mut(tid);
                    let keep = stack.len().saturating_sub(n as usize);
                    stack.truncate(keep);
                }
                TraceRecord::Event(ev) => {
                    ctx.apply_top_frame(&ev);
                    ctx.apply_blocks(&ev);
                    if epoch >= from_epoch {
                        detector.handle_event(&ev, &ctx);
                        dispatched += 1;
                    }
                    let i = ev.tid().index();
                    if i >= counts.len() {
                        counts.resize(i + 1, 0);
                    }
                    counts[i] += 1;
                }
            }
        }
    }
    let total: u64 = counts.iter().sum();
    if total != parsed.footer.events {
        return Err(TraceError::Corrupt {
            offset: bytes.len() as u64,
            detail: format!(
                "footer claims {} events, stream decoded {total}",
                parsed.footer.events
            ),
        });
    }
    detector.handle_finish();
    Ok(ReplayOutcome {
        truncated: detector.truncated(),
        engine_stats: detector.engine_stats(),
        reports: detector.take_reports(),
        events: dispatched,
        footer: parsed.footer,
    })
}

/// Stable identity of a warning across runs and engines, for `trace-diff`:
/// kind + source location. Deliberately excludes the address (heap layout
/// shifts between builds) and the stack (inlining and call paths churn).
pub fn warning_fingerprint(r: &Report) -> String {
    format!("{}|{}|{}|{}", r.kind.code(), r.file, r.line, r.func)
}
