//! The redundant-access filter is report-invisible, property-tested.
//!
//! The filter ([`FilterCache`]) may only elide an access that is an *exact
//! repeat* — same granule, thread, kind, and source location — within the
//! same sync epoch. These properties pin that contract to the detector
//! state machines:
//!
//! * **engine-level**: an arbitrary event soup (mixed-thread accesses,
//!   lock/unlock, alloc/free, straddling sizes, three source locations)
//!   produces the *same race sequence* — including the `prev_state` /
//!   `prev_access` metadata that ends up verbatim in rendered reports —
//!   whether the engines consume the raw stream or the filtered one. All
//!   six detector configurations are covered across the two primitive
//!   engines (lockset and happens-before).
//! * **program-level**: an arbitrary small guest program run under an
//!   arbitrary fault plan and a seeded random schedule yields byte-equal
//!   termination + rendered reports with [`FilterTool`] wrapped around
//!   each of the three full detectors.
//! * **free → realloc**: recycling an address range must invalidate filter
//!   slots, or stale "block alloc'd by" notes would leak into reports.

use helgrind_core::{
    DetectorConfig, DjitDetector, EraserDetector, HbEngine, HybridDetector, LocksetEngine,
};
use proptest::prelude::*;
use vexec::event::{AccessKind, AcqMode, Event, SyncId, ThreadId};
use vexec::filter::{FilterCache, FilterTool};
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Expr, SrcLoc, SyncKind};
use vexec::sched::SeededRandom;
use vexec::util::Symbol;
use vexec::vm::{run_flat, VmOptions};
use vexec::FaultPlan;

const THREADS: u32 = 3;
const BASE: u64 = 0x1000;

fn loc(sel: u8) -> SrcLoc {
    SrcLoc { file: Symbol(1), line: 10 * (1 + u32::from(sel % 3)), func: Symbol(2) }
}

/// One step of the event soup. Lowered against a tiny legality model so
/// the stream stays well-formed (no unlock-without-lock, no double free).
#[derive(Clone, Debug)]
enum Op {
    /// `off` ∈ 0..2 shifts the access by 4 bytes so size-8 accesses
    /// straddle two granules.
    Access {
        tid: u32,
        slot: u8,
        off: u8,
        size_sel: u8,
        kind_sel: u8,
        loc_sel: u8,
    },
    Lock {
        tid: u32,
        m: u8,
    },
    Unlock {
        tid: u32,
        m: u8,
    },
    Alloc {
        tid: u32,
        region: u8,
    },
    Free {
        tid: u32,
        region: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's `prop_oneof!` is unweighted; listing the access arm three
    // times biases the soup toward memory traffic, which is what the
    // filter acts on.
    let access = || {
        (1..=THREADS, 0u8..6, 0u8..2, 0u8..3, 0u8..3, 0u8..3).prop_map(
            |(tid, slot, off, size_sel, kind_sel, loc_sel)| Op::Access {
                tid,
                slot,
                off,
                size_sel,
                kind_sel,
                loc_sel,
            },
        )
    };
    prop_oneof![
        access(),
        access(),
        access(),
        (1..=THREADS, 0u8..2).prop_map(|(tid, m)| Op::Lock { tid, m }),
        (1..=THREADS, 0u8..2).prop_map(|(tid, m)| Op::Unlock { tid, m }),
        (1..=THREADS, 0u8..2).prop_map(|(tid, region)| Op::Alloc { tid, region }),
        (1..=THREADS, 0u8..2).prop_map(|(tid, region)| Op::Free { tid, region }),
    ]
}

/// Lower ops to a well-formed event stream: threads created up front,
/// locks only released by their holder, regions alternately alloc'd and
/// freed.
fn lower(ops: &[Op]) -> Vec<Event> {
    let mut evs = Vec::new();
    for t in 1..=THREADS {
        evs.push(Event::ThreadCreate { parent: ThreadId(0), child: ThreadId(t), loc: loc(0) });
    }
    let mut held = [[false; 2]; 1 + THREADS as usize];
    let mut live = [false; 2];
    for op in ops {
        match *op {
            Op::Access { tid, slot, off, size_sel, kind_sel, loc_sel } => {
                let kind = match kind_sel {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::AtomicRmw,
                };
                evs.push(Event::Access {
                    tid: ThreadId(tid),
                    addr: BASE + u64::from(slot) * 8 + u64::from(off) * 4,
                    size: [2u8, 4, 8][size_sel as usize % 3],
                    kind,
                    loc: loc(loc_sel),
                });
            }
            Op::Lock { tid, m } => {
                if !held[tid as usize][m as usize] {
                    held[tid as usize][m as usize] = true;
                    evs.push(Event::Acquire {
                        tid: ThreadId(tid),
                        sync: SyncId(u32::from(m)),
                        kind: SyncKind::Mutex,
                        mode: AcqMode::Exclusive,
                        loc: loc(0),
                    });
                }
            }
            Op::Unlock { tid, m } => {
                if held[tid as usize][m as usize] {
                    held[tid as usize][m as usize] = false;
                    evs.push(Event::Release {
                        tid: ThreadId(tid),
                        sync: SyncId(u32::from(m)),
                        kind: SyncKind::Mutex,
                        loc: loc(0),
                    });
                }
            }
            Op::Alloc { tid, region } => {
                if !live[region as usize] {
                    live[region as usize] = true;
                    evs.push(Event::Alloc {
                        tid: ThreadId(tid),
                        addr: BASE + u64::from(region) * 24,
                        size: 24,
                        loc: loc(0),
                    });
                }
            }
            Op::Free { tid, region } => {
                if live[region as usize] {
                    live[region as usize] = false;
                    evs.push(Event::Free {
                        tid: ThreadId(tid),
                        addr: BASE + u64::from(region) * 24,
                        size: 24,
                        loc: loc(0),
                    });
                }
            }
        }
    }
    evs
}

/// Drop every event the filter elides; everything else passes through.
fn filtered(evs: &[Event]) -> Vec<Event> {
    let mut f = FilterCache::new(8);
    evs.iter().filter(|e| !f.filter(e)).cloned().collect()
}

/// An arbitrary small guest program: `threads` workers each run
/// `iters` iterations of {optional lock, read-modify-write a shared
/// global, a private parse phase, optional alloc/free}, parameterized so
/// the space covers disciplined, racy, and heap-recycling shapes.
fn build_program(threads: u64, iters: u64, locked: bool, reads: u64, heap: bool) -> vexec::Program {
    let mut pb = ProgramBuilder::new();
    let shared = pb.global("g_shared", 8);
    let blocks = pb.global("g_blocks", threads * 16);
    let wloc = pb.loc("prop.cpp", 5, "worker");
    let ploc = pb.loc("prop.cpp", 9, "worker");
    let hloc = pb.loc("prop.cpp", 13, "worker");

    let mut w = ProcBuilder::new(2);
    let m = w.param(0);
    let block = w.param(1);
    w.at(wloc);
    w.begin_repeat(iters);
    if locked {
        w.lock(Expr::Reg(m));
    }
    let v = w.load_new(Expr::Global(shared), 8);
    w.store(Expr::Global(shared), Expr::Reg(v).add(Expr::Const(1)), 8);
    if locked {
        w.unlock(Expr::Reg(m));
    }
    w.at(ploc);
    w.begin_repeat(reads);
    w.load_new(Expr::Reg(block), 8);
    w.load_new(Expr::Reg(block).add(Expr::Const(8)), 8);
    w.end_repeat();
    if heap {
        w.at(hloc);
        let p = w.alloc(Expr::Const(16));
        w.store(Expr::Reg(p), Expr::Const(7), 8);
        w.load_new(Expr::Reg(p), 8);
        w.free(Expr::Reg(p));
    }
    w.at(wloc);
    w.end_repeat();
    w.ret(None);
    let worker = pb.add_proc("worker", w);

    let mut main = ProcBuilder::new(0);
    let mloc = pb.loc("prop.cpp", 20, "main");
    main.at(mloc);
    let mu = main.new_mutex();
    let mut handles = Vec::new();
    for i in 0..threads {
        let h =
            main.spawn(worker, vec![Expr::Reg(mu), Expr::Global(blocks).add(Expr::Const(i * 16))]);
        handles.push(h);
    }
    for h in handles {
        main.join(Expr::Reg(h));
    }
    main.ret(None);
    let entry = pb.add_proc("main", main);
    pb.set_entry(entry);
    pb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine-level: all six configurations see the same race sequence —
    /// including the previous-access metadata that reports render — on the
    /// raw and the filtered stream.
    #[test]
    fn engines_see_identical_races_through_the_filter(
        ops in prop::collection::vec(op_strategy(), 1..160),
    ) {
        let raw = lower(&ops);
        let thin = filtered(&raw);

        for cfg in [
            DetectorConfig::original(),
            DetectorConfig::hwlc(),
            DetectorConfig::hwlc_dr(),
            DetectorConfig::hybrid(),
        ] {
            let run = |evs: &[Event]| {
                let mut e = LocksetEngine::new(cfg);
                evs.iter()
                    .filter_map(|ev| e.on_event(ev))
                    .map(|r| format!("{r:?}"))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(&raw), run(&thin), "lockset {:?} diverged", cfg);
        }
        for cfg in [DetectorConfig::djit(), DetectorConfig::hybrid_queue_hb()] {
            let run = |evs: &[Event]| {
                let mut e = HbEngine::new(cfg);
                evs.iter()
                    .filter_map(|ev| e.on_event(ev))
                    .map(|r| format!("{r:?}"))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(&raw), run(&thin), "hb {:?} diverged", cfg);
        }
    }

    /// Program-level: an arbitrary guest program under an arbitrary fault
    /// plan and seeded schedule renders byte-equal reports with and
    /// without [`FilterTool`], for all three full detectors.
    #[test]
    fn programs_render_identical_reports_through_the_filter(
        threads in 1u64..3,
        iters in 1u64..4,
        locked in any::<bool>(),
        reads in 0u64..6,
        heap in any::<bool>(),
        plan_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        wakeup in 0u32..200,
        lockfail in 0u32..100,
        allocfail in 0u32..60,
        kill in 0u32..20,
    ) {
        let prog = build_program(threads, iters, locked, reads, heap);
        let flat = prog.lower();
        let plan = FaultPlan {
            seed: plan_seed,
            wakeup_permille: wakeup,
            lockfail_permille: lockfail,
            allocfail_permille: allocfail,
            kill_permille: kill,
            max_kills: 1,
        };
        let opts = VmOptions { faults: Some(plan), ..VmOptions::default() };

        macro_rules! pair {
            ($mk:expr) => {{
                let observe = |use_filter: bool| {
                    let mut sched = SeededRandom::new(sched_seed);
                    let det = $mk;
                    let (term, det) = if use_filter {
                        let mut tool = FilterTool::new(det);
                        let r = run_flat(&flat, &mut tool, &mut sched, opts.clone());
                        (r.termination, tool.into_parts().0)
                    } else {
                        let mut det = det;
                        let r = run_flat(&flat, &mut det, &mut sched, opts.clone());
                        (r.termination, det)
                    };
                    let mut out = format!("{term:?}|{}", det.sink.truncated());
                    for rep in det.sink.reports() {
                        out.push_str(&rep.render());
                    }
                    out
                };
                prop_assert_eq!(observe(true), observe(false));
            }};
        }
        pair!(EraserDetector::new(DetectorConfig::hwlc_dr()));
        pair!(DjitDetector::new(DetectorConfig::djit()));
        pair!(HybridDetector::new(DetectorConfig::hybrid()));
    }
}

/// Free → realloc of the same range must invalidate the filter slot: a
/// repeat access to a recycled address is *not* a repeat — its block note
/// ("alloc'd by thread …") changed — so it must reach the engines.
#[test]
fn free_then_realloc_invalidates_the_slot() {
    let mut f = FilterCache::new(8);
    let l = loc(0);
    let a =
        Event::Access { tid: ThreadId(1), addr: BASE, size: 8, kind: AccessKind::Write, loc: l };
    assert!(!f.filter(&a), "first access must be forwarded");
    assert!(f.filter(&a), "exact repeat in the same epoch is elided");

    assert!(!f.filter(&Event::Free { tid: ThreadId(1), addr: BASE, size: 8, loc: l }));
    assert!(!f.filter(&a), "access after free must be forwarded");

    assert!(f.filter(&a), "repeat after the re-prime is elided again");
    assert!(!f.filter(&Event::Alloc { tid: ThreadId(2), addr: BASE, size: 8, loc: l }));
    assert!(
        !f.filter(&a),
        "access to the recycled block must be forwarded — its alloc metadata changed"
    );
}
