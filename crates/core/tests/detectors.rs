//! End-to-end detector tests: guest programs executed on the VM with the
//! Eraser, DJIT and hybrid detectors attached. These reproduce, in
//! miniature, the qualitative warning/no-warning matrix of the paper:
//! Fig 8 (string refcount), the destructor scenario, Fig 10/11 (ownership
//! transfer), and the §4.3 schedule-dependent false negative.

use helgrind_core::{DetectorConfig, DjitDetector, EraserDetector, HybridDetector, ReportKind};
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::{Cond, Expr, Program, SyncKind, SyncOp};
use vexec::sched::{PriorityOrder, RoundRobin};
use vexec::vm::run_program;
use vexec::ThreadId;

fn run_eraser(prog: &Program, cfg: DetectorConfig) -> EraserDetector {
    let mut det = EraserDetector::new(cfg);
    let r = run_program(prog, &mut det, &mut RoundRobin::new());
    assert!(r.termination.is_clean(), "{:?}", r.termination);
    det
}

/// Fig 8: a COW std::string-style object shared between main and a worker.
/// Layout: [refcount][len][data]; copying = read rc (COW check) + LOCK-
/// prefixed increment; both threads copy concurrently.
fn string_refcount_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let cell = pb.global("text_ptr", 8);

    // copy_string(p): the std::string copy constructor calling M_grab.
    let grab_loc = pb.loc("libstdc++/string.cpp", 22, "std::string::_Rep::_M_grab");
    let check_loc = pb.loc("libstdc++/string.cpp", 18, "std::string::string");
    let mut cp = ProcBuilder::new(1);
    let p = cp.param(0);
    cp.at(check_loc);
    let _rc = cp.load_new(Expr::Reg(p), 8); // COW uniqueness check (plain read)
    cp.at(grab_loc);
    cp.atomic_rmw(None, Expr::Reg(p), 1u64, 8); // LOCK xadd on the refcount
    let copy_string = pb.add_proc("copy_string", cp);

    // worker(arguments): std::string text = *(std::string*)arguments;
    let wloc = pb.loc("stringtest.cpp", 10, "workerThread");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let sp = w.load_new(cell, 8);
    w.call(copy_string, vec![Expr::Reg(sp)], None);
    let worker = pb.add_proc("workerThread", w);

    // main: construct the string, spawn worker, copy concurrently, join.
    let mloc = pb.loc("stringtest.cpp", 16, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let s = m.alloc(24u64);
    m.store(Expr::Reg(s), 1u64, 8); // rc = 1
    m.store(Expr::offset(s, 8), 8u64, 8); // len
    m.store(cell, Expr::Reg(s), 8);
    let h = m.spawn(worker, vec![]);
    m.yield_();
    let mloc22 = pb.loc("stringtest.cpp", 22, "main");
    m.at(mloc22);
    m.call(copy_string, vec![Expr::Reg(s)], None); // <- reported conflict (Fig 8)
    m.join(h);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

#[test]
fn fig8_string_refcount_fp_original_vs_hwlc() {
    let prog = string_refcount_program();
    let original = run_eraser(&prog, DetectorConfig::original());
    assert_eq!(
        original.sink.race_location_count(),
        1,
        "original Helgrind reports the M_grab write:\n{:?}",
        original.sink.reports()
    );
    let rep = &original.sink.reports()[0];
    assert_eq!(rep.func, "std::string::_Rep::_M_grab");
    assert!(rep.block.is_some(), "report carries the allocation block (Fig 9)");

    let hwlc = run_eraser(&prog, DetectorConfig::hwlc());
    assert_eq!(
        hwlc.sink.race_location_count(),
        0,
        "HWLC removes the bus-lock FP: {:?}",
        hwlc.sink.reports()
    );
}

/// The destructor scenario: a session object shared under a lock by two
/// workers; the second worker erases it from the registry and deletes it.
/// The compiler-generated destructor writes the vptr with no lock held.
fn destructor_program(annotated: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let obj_cell = pb.global("session_ptr", 8);
    let m_cell = pb.global("mutex_cell", 8);

    // use_session(): locked virtual call — dispatch reads the vptr, then
    // the method updates a field.
    let uloc = pb.loc("session.cpp", 31, "Session::touch");
    let mut u = ProcBuilder::new(0);
    u.at(uloc);
    let mx = u.load_new(m_cell, 8);
    u.lock(mx);
    let o = u.load_new(obj_cell, 8);
    let _vptr = u.load_new(Expr::Reg(o), 8); // virtual dispatch reads the vptr
    let v = u.load_new(Expr::offset(o, 8), 8);
    u.store(Expr::offset(o, 8), Expr::Reg(v).add(1u64.into()), 8);
    u.unlock(mx);
    let use_session = pb.add_proc("Session::touch", u);

    // destroy_session(): erase under lock, delete outside it.
    let dloc = pb.loc("session.cpp", 58, "Session::~Session");
    let floc = pb.loc("session.cpp", 60, "SessionTable::destroy");
    let mut d = ProcBuilder::new(0);
    d.at(floc);
    let mx = d.load_new(m_cell, 8);
    d.lock(mx);
    let o = d.load_new(obj_cell, 8);
    d.store(obj_cell, 0u64, 8); // unregister
    d.unlock(mx);
    if annotated {
        d.hg_destruct(o, 16u64);
    }
    d.at(dloc);
    d.store(Expr::Reg(o), 0u64, 8); // vptr reset in ~Session
    d.at(floc);
    d.free(o);
    let destroy = pb.add_proc("SessionTable::destroy", d);

    // worker1 touches, worker2 touches then destroys.
    let w1loc = pb.loc("proxy.cpp", 10, "worker1");
    let mut w1 = ProcBuilder::new(0);
    w1.at(w1loc);
    w1.call(use_session, vec![], None);
    let worker1 = pb.add_proc("worker1", w1);

    let w2loc = pb.loc("proxy.cpp", 20, "worker2");
    let mut w2 = ProcBuilder::new(0);
    w2.at(w2loc);
    w2.call(use_session, vec![], None);
    w2.call(destroy, vec![], None);
    let worker2 = pb.add_proc("worker2", w2);

    let mloc = pb.loc("proxy.cpp", 30, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let o = m.alloc(16u64);
    m.store(Expr::Reg(o), 0xF00Du64, 8); // vptr init
    m.store(obj_cell, Expr::Reg(o), 8);
    let h1 = m.spawn(worker1, vec![]);
    let h2 = m.spawn(worker2, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

#[test]
fn destructor_fp_without_dr_clean_with_dr() {
    // Schedule worker1 fully before worker2 so the object reaches a shared
    // state before destruction (round-robin works too, but this is the
    // clean textbook interleaving).
    let prog = destructor_program(true);
    let run = |cfg| {
        let mut det = EraserDetector::new(cfg);
        let mut sched = PriorityOrder::new(vec![ThreadId(1), ThreadId(2), ThreadId(0)]);
        run_program(&prog, &mut det, &mut sched).expect_clean();
        det
    };
    let original = run(DetectorConfig::original());
    assert_eq!(original.sink.race_location_count(), 1, "{:?}", original.sink.reports());
    assert_eq!(original.sink.reports()[0].func, "Session::~Session");

    let hwlc = run(DetectorConfig::hwlc());
    assert_eq!(hwlc.sink.race_location_count(), 1, "HWLC alone does not help destructors");

    let hwlc_dr = run(DetectorConfig::hwlc_dr());
    assert_eq!(
        hwlc_dr.sink.race_location_count(),
        0,
        "DR annotation removes the destructor FP: {:?}",
        hwlc_dr.sink.reports()
    );

    // Unannotated code (source not available, §3.1) still warns under DR.
    let prog_unannotated = destructor_program(false);
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let mut sched = PriorityOrder::new(vec![ThreadId(1), ThreadId(2), ThreadId(0)]);
    run_program(&prog_unannotated, &mut det, &mut sched).expect_clean();
    assert_eq!(det.sink.race_location_count(), 1);
}

/// Fig 10 vs Fig 11: the same message-processing body driven thread-per-
/// request (ownership passes via create/join) or through a thread pool
/// (ownership passes via a queue the lockset algorithm cannot see).
fn handoff_program(thread_pool: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let q_cell = pb.global("queue_cell", 8);

    let ploc = pb.loc("pool.cpp", 44, "process_message");
    let mut pr = ProcBuilder::new(1);
    pr.at(ploc);
    let msg = pr.param(0);
    let v = pr.load_new(Expr::Reg(msg), 8);
    pr.store(Expr::Reg(msg), Expr::Reg(v).add(1u64.into()), 8);
    let process = pb.add_proc("process_message", pr);

    if thread_pool {
        // Pool worker created BEFORE the message exists (Fig 11).
        let wloc = pb.loc("pool.cpp", 10, "pool_worker");
        let mut w = ProcBuilder::new(0);
        w.at(wloc);
        let q = w.load_new(q_cell, 8);
        let m = w.reg();
        w.sync(SyncOp::QueueGet { queue: Expr::Reg(q), dst: m });
        w.call(process, vec![Expr::Reg(m)], None);
        let worker = pb.add_proc("pool_worker", w);

        let mloc = pb.loc("pool.cpp", 20, "main");
        let mut m = ProcBuilder::new(0);
        m.at(mloc);
        let q = m.new_sync(SyncKind::Queue, 4u64);
        m.store(q_cell, q, 8);
        let h = m.spawn(worker, vec![]); // worker first
        let msg = m.alloc(16u64);
        m.store(Expr::Reg(msg), 7u64, 8); // setup data AFTER create
        m.sync(SyncOp::QueuePut { queue: Expr::Reg(q), value: Expr::Reg(msg) });
        m.join(h);
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
    } else {
        // Thread-per-request (Fig 10): create after setup.
        let wloc = pb.loc("tpr.cpp", 10, "request_worker");
        let mut w = ProcBuilder::new(1);
        w.at(wloc);
        let msg = w.param(0);
        w.call(process, vec![Expr::Reg(msg)], None);
        let worker = pb.add_proc("request_worker", w);

        let mloc = pb.loc("tpr.cpp", 20, "main");
        let mut m = ProcBuilder::new(0);
        m.at(mloc);
        let msg = m.alloc(16u64);
        m.store(Expr::Reg(msg), 7u64, 8); // setup data, then create
        let h = m.spawn(worker, vec![Expr::Reg(msg)]);
        m.join(h);
        let v = m.load_new(Expr::Reg(msg), 8);
        m.assert_eq(v, 8u64, "processed");
        let main_id = pb.add_proc("main", m);
        pb.set_entry(main_id);
    }
    pb.finish()
}

#[test]
fn fig10_thread_per_request_is_clean() {
    let prog = handoff_program(false);
    let det = run_eraser(&prog, DetectorConfig::hwlc_dr());
    assert_eq!(det.sink.race_location_count(), 0, "{:?}", det.sink.reports());
}

#[test]
fn fig11_thread_pool_is_a_lockset_false_positive() {
    let prog = handoff_program(true);
    let det = run_eraser(&prog, DetectorConfig::hwlc_dr());
    assert!(
        det.sink.race_location_count() >= 1,
        "the lockset algorithm cannot see the queue hand-off"
    );
}

#[test]
fn e12_hybrid_with_queue_hb_clears_thread_pool_fp() {
    let prog = handoff_program(true);
    // Hybrid without queue knowledge still reports (both lockset and HB
    // flag the hand-off)...
    let mut plain = HybridDetector::new(DetectorConfig::hybrid());
    run_program(&prog, &mut plain, &mut RoundRobin::new()).expect_clean();
    assert!(plain.sink.race_location_count() >= 1);
    // ...while the §5 extension understands put/get edges.
    let mut qhb = HybridDetector::new(DetectorConfig::hybrid_queue_hb());
    run_program(&prog, &mut qhb, &mut RoundRobin::new()).expect_clean();
    assert_eq!(qhb.sink.race_location_count(), 0, "{:?}", qhb.sink.reports());
}

#[test]
fn djit_also_flags_thread_pool_without_queue_hb() {
    let prog = handoff_program(true);
    let mut det = DjitDetector::new(DetectorConfig::djit());
    run_program(&prog, &mut det, &mut RoundRobin::new()).expect_clean();
    assert!(det.sink.race_location_count() >= 1);
    let mut det = DjitDetector::new(DetectorConfig::hybrid_queue_hb());
    run_program(&prog, &mut det, &mut RoundRobin::new()).expect_clean();
    assert_eq!(det.sink.race_location_count(), 0);
}

/// §4.3: unlocked write in thread A, locked write in thread B. Whether the
/// race is reported depends on the schedule.
fn false_negative_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let data = pb.global("shared", 8);
    let m_cell = pb.global("mutex_cell", 8);

    let aloc = pb.loc("fn.cpp", 5, "writer_unlocked");
    let mut a = ProcBuilder::new(0);
    a.at(aloc);
    a.store(data, 1u64, 8);
    let wa = pb.add_proc("writer_unlocked", a);

    let bloc = pb.loc("fn.cpp", 12, "writer_locked");
    let mut b = ProcBuilder::new(0);
    b.at(bloc);
    let mx = b.load_new(m_cell, 8);
    b.lock(mx);
    b.store(data, 2u64, 8);
    b.unlock(mx);
    let wb = pb.add_proc("writer_locked", b);

    let mloc = pb.loc("fn.cpp", 20, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let h1 = m.spawn(wa, vec![]);
    let h2 = m.spawn(wb, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    pb.finish()
}

#[test]
fn e6_false_negative_depends_on_schedule() {
    let prog = false_negative_program();
    // Main has top priority so both workers exist before either runs (it
    // blocks at the first join, then the listed worker goes first).
    // Unlocked writer first: lockset initialised at the *locked* write —
    // no warning (the documented false negative).
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let mut s1 = PriorityOrder::new(vec![ThreadId(0), ThreadId(1), ThreadId(2)]);
    run_program(&prog, &mut det, &mut s1).expect_clean();
    assert_eq!(det.sink.race_location_count(), 0, "§4.3 false negative");

    // Locked writer first: the unlocked write empties the lockset — warns.
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let mut s2 = PriorityOrder::new(vec![ThreadId(0), ThreadId(2), ThreadId(1)]);
    run_program(&prog, &mut det, &mut s2).expect_clean();
    assert_eq!(det.sink.race_location_count(), 1, "other schedule exposes it");
    assert_eq!(det.sink.reports()[0].func, "writer_unlocked");
}

/// Fig 7: a getter returns a reference to a lock-protected attribute; the
/// caller uses it outside the lock.
#[test]
fn fig7_returned_reference_defeats_lock() {
    let mut pb = ProgramBuilder::new();
    let map_cell = pb.global("domain_data", 8); // the map contents
    let m_cell = pb.global("mutex_cell", 8);

    // getDomainData(): lock guard, return &m_DomainData — the lock is
    // released on return, so the caller's use is unprotected.
    let gloc = pb.loc("server.cpp", 88, "ServerModulesManagerImpl::getDomainData");
    let mut g = ProcBuilder::new(0);
    g.at(gloc);
    let mx = g.load_new(m_cell, 8);
    g.lock(mx);
    g.unlock(mx); // MutexPtr guard destructs at return
    g.ret(Some(Expr::Global(map_cell)));
    let getter = pb.add_proc("ServerModulesManagerImpl::getDomainData", g);

    let wloc = pb.loc("server.cpp", 120, "handle_request");
    let mut w = ProcBuilder::new(0);
    w.at(wloc);
    let r = w.reg();
    w.call(getter, vec![], Some(r));
    let v = w.load_new(Expr::Reg(r), 8);
    w.store(Expr::Reg(r), Expr::Reg(v).add(1u64.into()), 8); // map insert, unprotected
    let worker = pb.add_proc("handle_request", w);

    let mloc = pb.loc("server.cpp", 10, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    m.store(m_cell, mx, 8);
    let h1 = m.spawn(worker, vec![]);
    let h2 = m.spawn(worker, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let det = run_eraser(&prog, DetectorConfig::hwlc_dr());
    assert!(det.sink.race_location_count() >= 1, "the returned-reference bug is real");
    assert!(det.sink.reports().iter().any(|r| r.func == "handle_request"));
}

#[test]
fn lock_order_cycle_reported_through_detector() {
    let mut pb = ProgramBuilder::new();
    let ma = pb.global("ma", 8);
    let mb = pb.global("mb", 8);
    let loc = pb.loc("dl.cpp", 5, "worker");
    let mut w = ProcBuilder::new(2);
    w.at(loc);
    let f = w.load_new(Expr::Reg(w.param(0)), 8);
    let s = w.load_new(Expr::Reg(w.param(1)), 8);
    w.lock(f);
    w.lock(s);
    w.unlock(s);
    w.unlock(f);
    let worker = pb.add_proc("worker", w);
    let mloc = pb.loc("dl.cpp", 20, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let a = m.new_mutex();
    let b = m.new_mutex();
    m.store(ma, a, 8);
    m.store(mb, b, 8);
    // Sequential execution: no actual deadlock, but inverted order.
    let h1 = m.spawn(worker, vec![Expr::Global(ma), Expr::Global(mb)]);
    m.join(h1);
    let h2 = m.spawn(worker, vec![Expr::Global(mb), Expr::Global(ma)]);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let det = run_eraser(&prog, DetectorConfig::hwlc_dr());
    assert_eq!(det.sink.count_kind(ReportKind::LockOrderCycle), 1);
}

#[test]
fn suppression_file_silences_known_fp() {
    let prog = string_refcount_program();
    let supp = helgrind_core::SuppressionSet::parse(
        "{\n   string-refcount\n   Helgrind:Race\n   fun:*_M_grab\n   ...\n}",
    )
    .unwrap();
    let mut det = EraserDetector::with_suppressions(DetectorConfig::original(), supp);
    run_program(&prog, &mut det, &mut RoundRobin::new()).expect_clean();
    assert_eq!(det.sink.race_location_count(), 0);
    assert_eq!(det.sink.suppressed, 1);
}

#[test]
fn cond_wait_mutex_reacquire_counts_for_lockset() {
    // Data written under the mutex by a cond-waiting consumer must not
    // warn: the re-acquisition inside cond_wait keeps the lockset correct.
    let mut pb = ProgramBuilder::new();
    let data = pb.global("data", 8);
    let flag = pb.global("flag", 8);
    let cells = pb.global("cells", 16);

    let ploc = pb.loc("cv.cpp", 5, "producer");
    let mut p = ProcBuilder::new(0);
    p.at(ploc);
    let m = p.load_new(Expr::Global(cells), 8);
    let cv = p.load_new(Expr::Global(cells).add(8u64.into()), 8);
    p.lock(m);
    p.store(data, 41u64, 8);
    p.store(flag, 1u64, 8);
    p.sync(SyncOp::CondSignal(Expr::Reg(cv)));
    p.unlock(m);
    let producer = pb.add_proc("producer", p);

    let cloc = pb.loc("cv.cpp", 15, "consumer");
    let mut c = ProcBuilder::new(0);
    c.at(cloc);
    let m = c.load_new(Expr::Global(cells), 8);
    let cv = c.load_new(Expr::Global(cells).add(8u64.into()), 8);
    c.lock(m);
    let f = c.reg();
    c.load(f, flag, 8);
    c.begin_while(Cond::Eq(Expr::Reg(f), Expr::Const(0)));
    c.sync(SyncOp::CondWait { cond: Expr::Reg(cv), mutex: Expr::Reg(m) });
    c.load(f, flag, 8);
    c.end_while();
    let d = c.load_new(data, 8);
    c.store(data, Expr::Reg(d).add(1u64.into()), 8);
    c.unlock(m);
    let consumer = pb.add_proc("consumer", c);

    let mloc = pb.loc("cv.cpp", 30, "main");
    let mut m = ProcBuilder::new(0);
    m.at(mloc);
    let mx = m.new_mutex();
    let cv = m.new_sync(SyncKind::CondVar, 0u64);
    m.store(cells, mx, 8);
    m.store(Expr::Global(cells).add(8u64.into()), cv, 8);
    let hc = m.spawn(consumer, vec![]);
    let hp = m.spawn(producer, vec![]);
    m.join(hc);
    m.join(hp);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    // Force the consumer to park first so cond_wait's release/re-acquire
    // path is actually exercised.
    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let mut sched = PriorityOrder::new(vec![ThreadId(1), ThreadId(2), ThreadId(0)]);
    run_program(&prog, &mut det, &mut sched).expect_clean();
    assert_eq!(det.sink.race_location_count(), 0, "{:?}", det.sink.reports());
}

#[test]
fn reports_include_the_conflicting_access() {
    // Helgrind 3.x prints the previous conflicting access; so do we.
    let mut pb = ProgramBuilder::new();
    let g = pb.global("g", 8);
    let loc_a = pb.loc("conf.cpp", 5, "writer_a");
    let mut a = ProcBuilder::new(0);
    a.at(loc_a);
    a.store(g, 1u64, 8);
    let wa = pb.add_proc("writer_a", a);
    let loc_b = pb.loc("conf.cpp", 15, "writer_b");
    let mut b = ProcBuilder::new(0);
    b.at(loc_b);
    b.store(g, 2u64, 8);
    let wb = pb.add_proc("writer_b", b);
    let mut m = ProcBuilder::new(0);
    m.at(pb.loc("conf.cpp", 30, "main"));
    let h1 = m.spawn(wa, vec![]);
    let h2 = m.spawn(wb, vec![]);
    m.join(h1);
    m.join(h2);
    let main_id = pb.add_proc("main", m);
    pb.set_entry(main_id);
    let prog = pb.finish();

    let mut det = EraserDetector::new(DetectorConfig::hwlc_dr());
    let mut sched = PriorityOrder::new(vec![ThreadId(0), ThreadId(1), ThreadId(2)]);
    run_program(&prog, &mut det, &mut sched).expect_clean();
    assert_eq!(det.sink.race_location_count(), 1);
    let rep = &det.sink.reports()[0];
    assert_eq!(rep.func, "writer_b", "the second writer triggers the warning");
    assert!(rep.details.contains("conflicts with a previous write by thread 1"), "{}", rep.details);
    assert!(rep.details.contains("conf.cpp:5"), "{}", rep.details);
}
