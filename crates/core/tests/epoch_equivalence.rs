//! Property-based equivalence of the adaptive FastTrack epoch lattice
//! against the reference full-vector-clock read state (`hb_reference`).
//!
//! The contract the refactor rests on: for *any* event soup — ordered,
//! racy, or nonsense — the adaptive engine and the reference engine
//! produce the same race verdict for every event, with the same conflict
//! string, and track the same shadow-memory footprint. Anything short of
//! that would leak the representation change into reports.

use helgrind_core::{DetectorConfig, HbEngine};
use proptest::prelude::*;
use vexec::event::{AccessKind, AcqMode, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};

const L: SrcLoc = SrcLoc::UNKNOWN;

/// One step of an arbitrary concurrent program. Addresses index a small
/// pool so collisions (the interesting case) are common; mutexes index a
/// pool of two so some accesses are ordered and some are not.
#[derive(Clone, Debug)]
enum Step {
    Access { tid: u32, slot: u8, kind: u8 },
    Acquire { tid: u32, mutex: u8 },
    Release { tid: u32, mutex: u8 },
}

fn step_strategy(threads: u32) -> impl Strategy<Value = Step> {
    // `op` folds the access/acquire/release choice into one tuple draw;
    // 0..10 keeps accesses dominant (6/10) so granule collisions — the
    // interesting case — stay common.
    (1..=threads, 0u8..6, 0u8..10).prop_map(|(tid, slot, op)| match op {
        0..=5 => Step::Access { tid, slot, kind: op % 3 },
        6 | 7 => Step::Acquire { tid, mutex: slot % 2 },
        _ => Step::Release { tid, mutex: slot % 2 },
    })
}

fn events(steps: &[Step], threads: u32) -> Vec<Event> {
    let mut evs = Vec::new();
    for t in 1..=threads {
        evs.push(Event::ThreadCreate { parent: ThreadId(0), child: ThreadId(t), loc: L });
    }
    // Track which thread holds which mutex so the stream stays legal for
    // the engine (acquire when free, release only when held by you);
    // everything else — including every racy access pattern — is fair game.
    let mut holder = [0u32; 2];
    for s in steps {
        match *s {
            Step::Access { tid, slot, kind } => {
                let kind = match kind {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::AtomicRmw,
                };
                let addr = 0x3000 + slot as u64 * 8;
                evs.push(Event::Access { tid: ThreadId(tid), addr, size: 8, kind, loc: L });
            }
            Step::Acquire { tid, mutex } => {
                if holder[mutex as usize] == 0 {
                    holder[mutex as usize] = tid;
                    evs.push(Event::Acquire {
                        tid: ThreadId(tid),
                        sync: SyncId(mutex as u32),
                        kind: SyncKind::Mutex,
                        mode: AcqMode::Exclusive,
                        loc: L,
                    });
                }
            }
            Step::Release { tid, mutex } => {
                if holder[mutex as usize] == tid {
                    holder[mutex as usize] = 0;
                    evs.push(Event::Release {
                        tid: ThreadId(tid),
                        sync: SyncId(mutex as u32),
                        kind: SyncKind::Mutex,
                        loc: L,
                    });
                }
            }
        }
    }
    evs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Adaptive ≡ reference on arbitrary event soups: per-event race
    /// verdicts and conflict strings match exactly, as do the shadowed
    /// and peak granule counts.
    #[test]
    fn adaptive_matches_reference_on_event_soups(
        steps in prop::collection::vec(step_strategy(4), 1..120),
        queue_hb in any::<bool>(),
        atomic_sync in any::<bool>(),
    ) {
        let base = DetectorConfig { queue_hb, atomic_sync, ..DetectorConfig::djit() };
        let mut adaptive = HbEngine::new(base);
        let mut reference = HbEngine::new(DetectorConfig { hb_reference: true, ..base });
        for (i, ev) in events(&steps, 4).iter().enumerate() {
            let a = adaptive.on_event(ev);
            let r = reference.on_event(ev);
            prop_assert_eq!(
                a.as_ref().map(|x| (x.tid, x.addr, x.kind, &x.conflict)),
                r.as_ref().map(|x| (x.tid, x.addr, x.kind, &x.conflict)),
                "event {} diverged: {:?}", i, ev
            );
        }
        prop_assert_eq!(adaptive.shadowed_granules(), reference.shadowed_granules());
        prop_assert_eq!(adaptive.peak_shadowed_granules(), reference.peak_shadowed_granules());
    }

    /// Same property under a tight shadow budget: the overflow cut-off
    /// must trip at the same granule in both representations.
    #[test]
    fn adaptive_matches_reference_under_budget(
        steps in prop::collection::vec(step_strategy(3), 1..80),
        max_granules in 1usize..8,
    ) {
        let mut base = DetectorConfig::djit();
        base.budget.max_shadow_words = max_granules;
        let mut adaptive = HbEngine::new(base);
        let mut reference = HbEngine::new(DetectorConfig { hb_reference: true, ..base });
        for ev in events(&steps, 3) {
            let a = adaptive.on_event(&ev);
            let r = reference.on_event(&ev);
            prop_assert_eq!(
                a.as_ref().map(|x| (x.addr, &x.conflict)),
                r.as_ref().map(|x| (x.addr, &x.conflict))
            );
        }
        prop_assert_eq!(adaptive.shadow_overflow(), reference.shadow_overflow());
        prop_assert_eq!(adaptive.shadowed_granules(), reference.shadowed_granules());
    }
}
