//! Property-based tests for the detector engines and their data
//! structures.
//!
//! The central soundness/ completeness properties of the lockset algorithm:
//! * programs that follow a consistent locking discipline never warn;
//! * concurrent unlocked writes by two threads always warn (regardless of
//!   interleaving — Eraser's order-independence claim, §4.3);
//! * detectors are deterministic functions of the event stream.

use helgrind_core::{DetectorConfig, LockSetTable, LocksetEngine, VectorClock};
use proptest::prelude::*;
use vexec::event::{AccessKind, AcqMode, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};

const L: SrcLoc = SrcLoc::UNKNOWN;

/// One critical section: thread takes `mutex`, accesses the addresses
/// assigned to that mutex, releases.
#[derive(Clone, Debug)]
struct Section {
    tid: u32,
    mutex: u32,
    /// (address index within the mutex's partition, is_write)
    accesses: Vec<(u8, bool)>,
}

fn section_strategy(threads: u32, mutexes: u32) -> impl Strategy<Value = Section> {
    (1..=threads, 0..mutexes, prop::collection::vec((0u8..4, any::<bool>()), 1..6))
        .prop_map(|(tid, mutex, accesses)| Section { tid, mutex, accesses })
}

/// Turn sections into a well-locked event stream: every address is only
/// ever touched under its owning mutex. Threads are created up front.
fn disciplined_events(sections: &[Section], threads: u32) -> Vec<Event> {
    let mut evs = Vec::new();
    for t in 1..=threads {
        evs.push(Event::ThreadCreate { parent: ThreadId(0), child: ThreadId(t), loc: L });
    }
    for s in sections {
        let tid = ThreadId(s.tid);
        let sync = SyncId(s.mutex);
        evs.push(Event::Acquire {
            tid,
            sync,
            kind: SyncKind::Mutex,
            mode: AcqMode::Exclusive,
            loc: L,
        });
        for &(slot, is_write) in &s.accesses {
            // Partition the address space by mutex so the discipline holds.
            let addr = 0x1000 + (s.mutex as u64) * 0x100 + (slot as u64) * 8;
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            evs.push(Event::Access { tid, addr, size: 8, kind, loc: L });
        }
        evs.push(Event::Release { tid, sync, kind: SyncKind::Mutex, loc: L });
    }
    evs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A consistent locking discipline never produces a lockset warning,
    /// under any configuration and any section order.
    #[test]
    fn disciplined_programs_never_warn(
        sections in prop::collection::vec(section_strategy(4, 3), 1..40),
    ) {
        for cfg in [DetectorConfig::original(), DetectorConfig::hwlc(), DetectorConfig::hwlc_dr()] {
            let mut engine = LocksetEngine::new(cfg);
            for ev in disciplined_events(&sections, 4) {
                let race = engine.on_event(&ev);
                prop_assert!(race.is_none(), "spurious warning under {cfg:?}: {race:?}");
            }
        }
    }

    /// The same stream with the mutex acquisitions stripped must warn as
    /// soon as two threads write the same address.
    #[test]
    fn unlocked_conflicts_always_warn(
        sections in prop::collection::vec(section_strategy(4, 1), 2..20),
    ) {
        // Force a guaranteed conflict: two different threads, same address,
        // both writing, no locks.
        let mut evs = Vec::new();
        for t in 1..=4 {
            evs.push(Event::ThreadCreate { parent: ThreadId(0), child: ThreadId(t), loc: L });
        }
        for s in &sections {
            for &(slot, is_write) in &s.accesses {
                let addr = 0x1000 + (slot as u64) * 8;
                let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
                evs.push(Event::Access { tid: ThreadId(s.tid), addr, size: 8, kind, loc: L });
            }
        }
        evs.push(Event::Access { tid: ThreadId(1), addr: 0x1000, size: 8, kind: AccessKind::Write, loc: L });
        evs.push(Event::Access { tid: ThreadId(2), addr: 0x1000, size: 8, kind: AccessKind::Write, loc: L });

        let mut engine = LocksetEngine::new(DetectorConfig::hwlc_dr());
        let mut warned = false;
        for ev in &evs {
            warned |= engine.on_event(ev).is_some();
        }
        prop_assert!(warned, "two unlocked writers must be flagged");
    }

    /// Detectors are deterministic: the same event stream gives the same
    /// reports.
    #[test]
    fn detector_is_deterministic(
        sections in prop::collection::vec(section_strategy(3, 2), 1..30),
        drop_locks in any::<bool>(),
    ) {
        let mut evs = disciplined_events(&sections, 3);
        if drop_locks {
            evs.retain(|e| !matches!(e, Event::Acquire { .. } | Event::Release { .. }));
        }
        let run = || {
            let mut engine = LocksetEngine::new(DetectorConfig::hwlc_dr());
            evs.iter().filter_map(|e| engine.on_event(e)).map(|r| (r.addr, r.tid)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// The HWLC improvement is monotone: it can only remove warnings
    /// relative to the original bus-lock model on streams without plain
    /// write/atomic mixes... in general it never *adds* warnings for
    /// disciplined atomic traffic.
    #[test]
    fn hwlc_never_warns_on_pure_atomic_traffic(
        ops in prop::collection::vec((1u32..=4, 0u8..4, any::<bool>()), 1..60),
    ) {
        // Threads mix plain reads and LOCK-prefixed RMWs on shared cells —
        // the refcount pattern. HWLC must stay silent; Original may warn.
        let mut engine = LocksetEngine::new(DetectorConfig::hwlc());
        for t in 1..=4 {
            engine.on_event(&Event::ThreadCreate { parent: ThreadId(0), child: ThreadId(t), loc: L });
        }
        for (tid, slot, rmw) in ops {
            let addr = 0x2000 + slot as u64 * 8;
            let kind = if rmw { AccessKind::AtomicRmw } else { AccessKind::Read };
            let race = engine.on_event(&Event::Access { tid: ThreadId(tid), addr, size: 8, kind, loc: L });
            prop_assert!(race.is_none(), "HWLC flagged read/RMW traffic");
        }
    }

    /// Lockset interning: intersection is commutative, associative,
    /// idempotent, and bounded by its operands.
    #[test]
    fn lockset_intersection_laws(
        a in prop::collection::btree_set(0u32..12, 0..8),
        b in prop::collection::btree_set(0u32..12, 0..8),
        c in prop::collection::btree_set(0u32..12, 0..8),
    ) {
        use helgrind_core::LockId;
        let mut t = LockSetTable::new();
        let ia = t.intern(a.iter().map(|&x| LockId(x)).collect());
        let ib = t.intern(b.iter().map(|&x| LockId(x)).collect());
        let ic = t.intern(c.iter().map(|&x| LockId(x)).collect());
        // Commutative.
        prop_assert_eq!(t.intersect(ia, ib), t.intersect(ib, ia));
        // Idempotent.
        prop_assert_eq!(t.intersect(ia, ia), ia);
        // Associative.
        let ab_c = { let ab = t.intersect(ia, ib); t.intersect(ab, ic) };
        let a_bc = { let bc = t.intersect(ib, ic); t.intersect(ia, bc) };
        prop_assert_eq!(ab_c, a_bc);
        // Result is a subset of both operands.
        let r = t.intersect(ia, ib);
        let elems: Vec<_> = t.elements(r).to_vec();
        for l in elems {
            prop_assert!(t.contains(ia, l) && t.contains(ib, l));
        }
        // Matches the reference computation.
        let expected: Vec<u32> = a.intersection(&b).copied().collect();
        let inter = t.intersect(ia, ib);
        let got: Vec<u32> = t.elements(inter).iter().map(|l| l.0).collect();
        prop_assert_eq!(expected, got);
    }

    /// Vector clocks: join is the least upper bound.
    #[test]
    fn vector_clock_join_is_lub(
        a in prop::collection::vec(0u32..100, 0..6),
        b in prop::collection::vec(0u32..100, 0..6),
    ) {
        let mk = |v: &[u32]| {
            let mut vc = VectorClock::new();
            for (i, &x) in v.iter().enumerate() { vc.set(i, x); }
            vc
        };
        let va = mk(&a);
        let vb = mk(&b);
        let mut j = va.clone();
        j.join(&vb);
        // Upper bound.
        prop_assert!(va.leq(&j));
        prop_assert!(vb.leq(&j));
        // Least: any other upper bound dominates j.
        let mut ub = va.clone();
        ub.join(&vb);
        ub.inc(0);
        prop_assert!(j.leq(&ub));
        // Commutative.
        let mut j2 = vb.clone();
        j2.join(&va);
        prop_assert_eq!(j, j2);
    }

    /// The DJIT engine never reports on mutex-ordered traffic, under any
    /// section order — and agrees with the lockset engine's silence.
    #[test]
    fn hb_engine_silent_on_disciplined_streams(
        sections in prop::collection::vec(section_strategy(3, 2), 1..30),
    ) {
        let evs = disciplined_events(&sections, 3);
        let mut hb = helgrind_core::HbEngine::new(DetectorConfig::djit());
        let mut ls = LocksetEngine::new(DetectorConfig::hwlc_dr());
        for ev in &evs {
            prop_assert!(hb.on_event(ev).is_none());
            prop_assert!(ls.on_event(ev).is_none());
        }
    }
}
