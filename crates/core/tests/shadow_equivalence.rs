//! Page-table shadow memory ≡ flat hash map.
//!
//! The two-level [`PageTable`] replaced a plain `FxHashMap<u64, Shadow>` on
//! the detectors' hot path. These properties pin the refactor to the old
//! representation's observable behaviour:
//!
//! * **structural**: an arbitrary op sequence (insert / remove / get /
//!   get_or_insert_default / reset_range) leaves the page table and a flat
//!   map model in agreement — per-op results, `len()`, and a full sweep of
//!   the address window;
//! * **engine-level**: under a small `max_shadow_words` budget, the
//!   lockset engine's granule tracking (`shadowed_granules`,
//!   `shadow_overflow`, `truncated`, `state_of != Virgin`) matches a
//!   reference model that implements the documented budget semantics with
//!   a plain set — i.e. the cap still counts *live granules* exactly.

use helgrind_core::shadowmem::PAGE_SLOTS;
use helgrind_core::{DetectorConfig, LocksetEngine, PageTable, VarState};
use proptest::prelude::*;
use vexec::event::{AccessKind, AcqMode, ClientEv, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};
use vexec::util::{FxHashMap, FxHashSet};

const L: SrcLoc = SrcLoc::UNKNOWN;
const GRANULE: u64 = 8;
/// Address window: a handful of pages so op sequences exercise page drops,
/// recycling, and cross-page resets, not just one secondary.
const WINDOW: u64 = 4 * (PAGE_SLOTS as u64) * GRANULE;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u32),
    Remove(u64),
    Get(u64),
    GetOrDefault(u64),
    ResetRange(u64, u64),
}

fn addr_strategy() -> impl Strategy<Value = u64> {
    // Arbitrary byte offset inside the window (granule masking is part of
    // the contract under test, so don't pre-align).
    0u64..WINDOW
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (addr_strategy(), any::<u32>()).prop_map(|(a, v)| Op::Insert(a, v)),
        addr_strategy().prop_map(Op::Remove),
        addr_strategy().prop_map(Op::Get),
        addr_strategy().prop_map(Op::GetOrDefault),
        // Sizes up to ~1.5 pages: covers slot-wise clears, full-page drops,
        // and the mixed edge case in one reset.
        (addr_strategy(), 0u64..(3 * (PAGE_SLOTS as u64) * GRANULE / 2))
            .prop_map(|(a, s)| Op::ResetRange(a, s)),
    ]
}

/// The old representation, restated: a flat map keyed by granule index.
#[derive(Default)]
struct FlatModel {
    map: FxHashMap<u64, u32>,
}

impl FlatModel {
    fn gidx(addr: u64) -> u64 {
        addr / GRANULE
    }

    fn apply(&mut self, op: &Op) -> Option<u32> {
        match *op {
            Op::Insert(a, v) => {
                self.map.insert(Self::gidx(a), v);
                None
            }
            Op::Remove(a) => self.map.remove(&Self::gidx(a)),
            Op::Get(a) => self.map.get(&Self::gidx(a)).copied(),
            Op::GetOrDefault(a) => Some(*self.map.entry(Self::gidx(a)).or_default()),
            Op::ResetRange(a, s) => {
                let start = Self::gidx(a);
                let end = Self::gidx(a + s.max(1) - 1);
                // Granule-by-granule removal — exactly what the engines did
                // before page-granular reset existed.
                for g in start..=end {
                    self.map.remove(&g);
                }
                None
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural equivalence: the page table is observationally a flat
    /// granule-keyed hash map, op by op and in the final sweep.
    #[test]
    fn page_table_matches_flat_map(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut table: PageTable<u32> = PageTable::new(GRANULE);
        let mut model = FlatModel::default();

        for op in &ops {
            let expect = model.apply(op);
            let got = match *op {
                Op::Insert(a, v) => {
                    table.insert(a, v);
                    None
                }
                Op::Remove(a) => table.remove(a),
                Op::Get(a) => table.get(a).copied(),
                Op::GetOrDefault(a) => Some(*table.get_or_insert_default(a)),
                Op::ResetRange(a, s) => {
                    table.reset_range(a, s);
                    None
                }
            };
            prop_assert_eq!(got, expect, "op {:?} diverged", op);
            prop_assert_eq!(
                table.len(),
                model.map.len(),
                "live-granule count diverged after {:?}",
                op
            );
        }

        // Full sweep of the window: every granule agrees, through both the
        // cache-updating and the cache-neutral lookup paths.
        for g in 0..(WINDOW / GRANULE) {
            let addr = g * GRANULE;
            let expect = model.map.get(&g);
            prop_assert_eq!(table.peek(addr), expect, "peek({addr:#x})");
            prop_assert_eq!(table.get(addr).copied(), expect.copied(), "get({addr:#x})");
        }
        prop_assert!(table.is_empty() == model.map.is_empty());
    }
}

/// Reference implementation of the engine's shadow budget: a set of
/// tracked granule bases plus an overflow counter, fed the same events.
struct BudgetModel {
    tracked: FxHashSet<u64>,
    overflow: u64,
    cap: usize,
    honor_destruct: bool,
}

impl BudgetModel {
    fn touch(&mut self, base: u64) {
        if self.tracked.contains(&base) {
            return;
        }
        if self.tracked.len() >= self.cap {
            self.overflow += 1;
        } else {
            self.tracked.insert(base);
        }
    }

    fn granules(addr: u64, size: u64) -> impl Iterator<Item = u64> {
        let start = addr & !(GRANULE - 1);
        let end = (addr + size.max(1) - 1) & !(GRANULE - 1);
        (start..=end).step_by(GRANULE as usize)
    }

    fn apply(&mut self, ev: &Event) {
        match *ev {
            Event::Access { addr, size, .. } => {
                for g in Self::granules(addr, size as u64) {
                    self.touch(g);
                }
            }
            Event::Alloc { addr, size, .. } => {
                for g in Self::granules(addr, size) {
                    self.tracked.remove(&g);
                }
            }
            Event::Client { req: ClientEv::HgCleanMemory { addr, size }, .. } => {
                for g in Self::granules(addr, size) {
                    self.tracked.remove(&g);
                }
            }
            Event::Client { req: ClientEv::HgDestruct { addr, size }, .. }
                if self.honor_destruct =>
            {
                for g in Self::granules(addr, size) {
                    self.touch(g);
                }
            }
            _ => {}
        }
    }
}

#[derive(Clone, Debug)]
enum Step {
    Access { tid: u32, addr: u64, size: u8, write: bool },
    Lock { tid: u32, sync: u32 },
    Unlock { tid: u32, sync: u32 },
    Alloc { addr: u64, size: u64 },
    Clean { addr: u64, size: u64 },
    Destruct { tid: u32, addr: u64, size: u64 },
}

fn small_addr() -> impl Strategy<Value = u64> {
    // A couple of pages, so budget pressure and resets interact.
    0u64..(2 * (PAGE_SLOTS as u64) * GRANULE)
}

fn engine_step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u32..4, small_addr(), 1u8..17, any::<bool>())
            .prop_map(|(tid, addr, size, write)| Step::Access { tid, addr, size, write }),
        (1u32..4, 0u32..3).prop_map(|(tid, sync)| Step::Lock { tid, sync }),
        (1u32..4, 0u32..3).prop_map(|(tid, sync)| Step::Unlock { tid, sync }),
        (small_addr(), 1u64..256).prop_map(|(addr, size)| Step::Alloc { addr, size }),
        (small_addr(), 1u64..256).prop_map(|(addr, size)| Step::Clean { addr, size }),
        (1u32..4, small_addr(), 1u64..64).prop_map(|(tid, addr, size)| Step::Destruct {
            tid,
            addr,
            size
        }),
    ]
}

fn step_event(step: &Step) -> Event {
    match *step {
        Step::Access { tid, addr, size, write } => Event::Access {
            tid: ThreadId(tid),
            addr,
            size,
            kind: if write { AccessKind::Write } else { AccessKind::Read },
            loc: L,
        },
        Step::Lock { tid, sync } => Event::Acquire {
            tid: ThreadId(tid),
            sync: SyncId(sync),
            kind: SyncKind::Mutex,
            mode: AcqMode::Exclusive,
            loc: L,
        },
        Step::Unlock { tid, sync } => {
            Event::Release { tid: ThreadId(tid), sync: SyncId(sync), kind: SyncKind::Mutex, loc: L }
        }
        Step::Alloc { addr, size } => Event::Alloc { tid: ThreadId(1), addr, size, loc: L },
        Step::Clean { addr, size } => {
            Event::Client { tid: ThreadId(1), req: ClientEv::HgCleanMemory { addr, size }, loc: L }
        }
        Step::Destruct { tid, addr, size } => {
            Event::Client { tid: ThreadId(tid), req: ClientEv::HgDestruct { addr, size }, loc: L }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine-level budget equivalence: the page-table-backed engine caps
    /// live granules exactly like the documented flat-map semantics.
    #[test]
    fn engine_budget_matches_reference_model(
        steps in prop::collection::vec(engine_step_strategy(), 1..150),
        cap in 2usize..40,
    ) {
        for base in [DetectorConfig::original(), DetectorConfig::hwlc_dr()] {
            let mut cfg = base;
            cfg.budget.max_shadow_words = cap;
            let honor_destruct = cfg.honor_destruct;
            let mut engine = LocksetEngine::new(cfg);
            let mut model =
                BudgetModel { tracked: FxHashSet::default(), overflow: 0, cap, honor_destruct };

            for t in 1..4u32 {
                engine.on_event(&Event::ThreadCreate {
                    parent: ThreadId(0),
                    child: ThreadId(t),
                    loc: L,
                });
            }

            for step in &steps {
                let ev = step_event(step);
                engine.on_event(&ev);
                model.apply(&ev);
                prop_assert_eq!(
                    engine.shadowed_granules(),
                    model.tracked.len(),
                    "granule count diverged after {:?}",
                    step
                );
                prop_assert_eq!(
                    engine.shadow_overflow(),
                    model.overflow,
                    "overflow count diverged after {:?}",
                    step
                );
            }

            // Tracked-set membership agrees granule by granule.
            for g in 0..(2 * PAGE_SLOTS as u64) {
                let addr = g * GRANULE;
                let tracked = !matches!(engine.state_of(addr), VarState::Virgin);
                prop_assert_eq!(tracked, model.tracked.contains(&addr), "state_of({addr:#x})");
            }
            prop_assert_eq!(engine.truncated(), model.overflow > 0);
        }
    }
}
