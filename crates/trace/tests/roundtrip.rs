//! Codec round-trip property tests: any sequence of payload records must
//! survive encode → decode bit-exactly, including across epoch boundaries
//! (where both sides reset their delta baselines).

use proptest::prelude::*;

use raceline_trace::format::{
    decode_record, encode_event, encode_stack_pop, encode_stack_push, CodecState, Cursor,
    TraceRecord,
};
use vexec::event::{AccessKind, AcqMode, ClientEv, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};
use vexec::util::Symbol;

const NSYMS: u32 = 16;

fn arb_loc() -> impl Strategy<Value = SrcLoc> {
    (0u32..NSYMS, 0u32..100_000, 0u32..NSYMS).prop_map(|(file, line, func)| SrcLoc {
        file: Symbol(file),
        line,
        func: Symbol(func),
    })
}

fn arb_sync_kind() -> impl Strategy<Value = SyncKind> {
    prop_oneof![
        Just(SyncKind::Mutex),
        Just(SyncKind::RwLock),
        Just(SyncKind::CondVar),
        Just(SyncKind::Semaphore),
        Just(SyncKind::Queue),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    let tid = || (0u32..8).prop_map(ThreadId);
    let sync = || (0u32..16).prop_map(SyncId);
    // Addresses span the full u64 range on purpose: the codec stores
    // signed deltas, so wrap-around and sign flips are the interesting
    // cases.
    let addr = || prop_oneof![0u64..4096, proptest::prelude::any::<u64>()];
    prop_oneof![
        (tid(), addr(), 1u8..=16, arb_loc()).prop_map(|(tid, addr, size, loc)| Event::Access {
            tid,
            addr,
            size,
            kind: AccessKind::Read,
            loc
        }),
        (tid(), addr(), 1u8..=16, arb_loc()).prop_map(|(tid, addr, size, loc)| Event::Access {
            tid,
            addr,
            size,
            kind: AccessKind::Write,
            loc
        }),
        (tid(), addr(), 1u8..=16, arb_loc()).prop_map(|(tid, addr, size, loc)| Event::Access {
            tid,
            addr,
            size,
            kind: AccessKind::AtomicRmw,
            loc
        }),
        (tid(), sync(), arb_sync_kind(), proptest::prelude::any::<bool>(), arb_loc()).prop_map(
            |(tid, sync, kind, shared, loc)| Event::Acquire {
                tid,
                sync,
                kind,
                mode: if shared { AcqMode::Shared } else { AcqMode::Exclusive },
                loc
            }
        ),
        (tid(), sync(), arb_sync_kind(), arb_loc())
            .prop_map(|(tid, sync, kind, loc)| Event::Release { tid, sync, kind, loc }),
        (tid(), tid(), arb_loc()).prop_map(|(parent, child, loc)| Event::ThreadCreate {
            parent,
            child,
            loc
        }),
        (tid(), tid(), arb_loc()).prop_map(|(joiner, joined, loc)| Event::ThreadJoin {
            joiner,
            joined,
            loc
        }),
        tid().prop_map(|tid| Event::ThreadExit { tid }),
        (tid(), addr(), 1u64..4096, arb_loc()).prop_map(|(tid, addr, size, loc)| Event::Alloc {
            tid,
            addr,
            size,
            loc
        }),
        (tid(), addr(), 1u64..4096, arb_loc()).prop_map(|(tid, addr, size, loc)| Event::Free {
            tid,
            addr,
            size,
            loc
        }),
        (tid(), sync(), proptest::prelude::any::<bool>(), arb_loc()).prop_map(
            |(tid, sync, broadcast, loc)| Event::CondSignal { tid, sync, broadcast, loc }
        ),
        (tid(), sync(), tid(), arb_loc()).prop_map(|(tid, sync, signaler, loc)| Event::CondWake {
            tid,
            sync,
            signaler,
            loc
        }),
        (tid(), sync(), arb_loc()).prop_map(|(tid, sync, loc)| Event::SemPost { tid, sync, loc }),
        (tid(), sync(), arb_loc()).prop_map(|(tid, sync, loc)| Event::SemAcquired {
            tid,
            sync,
            loc
        }),
        (tid(), sync(), proptest::prelude::any::<u64>(), arb_loc())
            .prop_map(|(tid, sync, token, loc)| Event::QueuePut { tid, sync, token, loc }),
        (tid(), sync(), proptest::prelude::any::<u64>(), arb_loc())
            .prop_map(|(tid, sync, token, loc)| Event::QueueGot { tid, sync, token, loc }),
        (tid(), addr(), 0u64..65536, arb_loc()).prop_map(|(tid, addr, size, loc)| Event::Client {
            tid,
            req: ClientEv::HgDestruct { addr, size },
            loc
        }),
        (tid(), addr(), 0u64..65536, arb_loc()).prop_map(|(tid, addr, size, loc)| Event::Client {
            tid,
            req: ClientEv::HgCleanMemory { addr, size },
            loc
        }),
        (tid(), 0u32..NSYMS, arb_loc()).prop_map(|(tid, label, loc)| Event::Client {
            tid,
            req: ClientEv::Label(Symbol(label)),
            loc
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        arb_event().prop_map(TraceRecord::Event),
        arb_event().prop_map(TraceRecord::Event),
        arb_event().prop_map(TraceRecord::Event),
        ((0u32..8).prop_map(ThreadId), 0u32..NSYMS, arb_loc())
            .prop_map(|(tid, func, loc)| TraceRecord::StackPush { tid, func: Symbol(func), loc }),
        ((0u32..8).prop_map(ThreadId), 0u32..6)
            .prop_map(|(tid, n)| TraceRecord::StackPop { tid, n }),
    ]
}

fn encode_records(records: &[TraceRecord], state: &mut CodecState) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in records {
        match *rec {
            TraceRecord::Event(ref ev) => encode_event(&mut out, state, ev),
            TraceRecord::StackPush { tid, func, loc } => {
                encode_stack_push(&mut out, state, tid, func, loc)
            }
            TraceRecord::StackPop { tid, n } => encode_stack_pop(&mut out, tid, n),
        }
    }
    out
}

fn decode_records(bytes: &[u8]) -> Vec<TraceRecord> {
    let mut c = Cursor::new(bytes, 0);
    let mut state = CodecState::default();
    let mut out = Vec::new();
    while !c.is_empty() {
        out.push(decode_record(&mut c, &mut state, NSYMS).expect("self-encoded record"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on any record sequence.
    #[test]
    fn codec_round_trips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let mut state = CodecState::default();
        let bytes = encode_records(&records, &mut state);
        prop_assert_eq!(decode_records(&bytes), records);
    }

    /// Splitting a stream at an arbitrary epoch boundary — both sides
    /// reset their delta baselines — decodes each half independently to
    /// the same records. This is the property sharded analysis relies on.
    #[test]
    fn epoch_split_round_trips(
        head in proptest::collection::vec(arb_record(), 0..100),
        tail in proptest::collection::vec(arb_record(), 0..100),
    ) {
        let mut state = CodecState::default();
        let head_bytes = encode_records(&head, &mut state);
        state.reset();
        let tail_bytes = encode_records(&tail, &mut state);
        prop_assert_eq!(decode_records(&head_bytes), head);
        prop_assert_eq!(decode_records(&tail_bytes), tail);
    }
}

/// Delta extremes that a uniform sampler is unlikely to hit: maximal
/// positive/negative address swings between consecutive accesses of one
/// thread, interleaved with a second thread to exercise per-thread state.
#[test]
fn codec_handles_extreme_deltas() {
    let loc = SrcLoc { file: Symbol(1), line: u32::MAX, func: Symbol(2) };
    let access = |tid: u32, addr: u64| Event::Access {
        tid: ThreadId(tid),
        addr,
        size: 8,
        kind: AccessKind::Write,
        loc,
    };
    let records: Vec<TraceRecord> = [
        access(0, 0),
        access(1, u64::MAX),
        access(0, u64::MAX),
        access(1, 0),
        access(0, 1),
        access(0, u64::MAX / 2 + 1),
        access(1, u64::MAX / 2),
    ]
    .into_iter()
    .map(TraceRecord::Event)
    .collect();
    let mut state = CodecState::default();
    let bytes = encode_records(&records, &mut state);
    assert_eq!(decode_records(&bytes), records);
}
