//! LEB128 varints and zigzag signed mapping — the primitive layer of the
//! `.rltrace` wire format (DESIGN.md §9.2).
//!
//! Unsigned values are little-endian base-128 with a continuation bit; a
//! `u64` therefore spans 1–10 bytes and any encoding longer than 10 bytes
//! is corrupt by construction. Signed deltas are zigzag-folded first
//! (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) so small magnitudes of either
//! sign stay short.

/// Append `v` to `out` as a LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-folded signed value.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Fold a signed value into an unsigned one, small magnitudes first.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Decode result: `(value, bytes_consumed)` or `None` when the slice ends
/// mid-varint or the encoding exceeds 10 bytes (overlong / corrupt).
pub fn get_uvarint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &b) in buf.iter().enumerate().take(10) {
        // The 10th byte may only contribute the single remaining bit.
        if i == 9 && b > 0x01 {
            return None;
        }
        v |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let (back, n) = get_uvarint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn truncated_and_overlong_rejected() {
        assert!(get_uvarint(&[]).is_none());
        assert!(get_uvarint(&[0x80]).is_none(), "continuation bit with no next byte");
        assert!(get_uvarint(&[0xff; 11]).is_none(), "more than 10 continuation bytes");
        // 10 bytes with an over-wide final byte overflows u64.
        let mut overlong = vec![0xff; 9];
        overlong.push(0x7f);
        assert!(get_uvarint(&overlong).is_none());
    }
}
