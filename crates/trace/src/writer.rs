//! [`TraceWriter`]: a [`Tool`] that serialises the VM's event stream into
//! the `.rltrace` format instead of analysing it.
//!
//! Capture is deliberately cheap — no shadow memory, no vector clocks —
//! just per-thread delta compression of the event stream plus two mirrors
//! the offline reader needs to reproduce inline reports byte-for-byte:
//!
//! * a **stack mirror** per thread, kept in sync with the VM's real
//!   backtrace via explicit `StackPush`/`StackPop` records. The reader
//!   applies the same "current location overwrites the top frame" rule the
//!   VM uses, so for straight-line code within one function no stack
//!   records are emitted at all;
//! * a **held-lock mirror** per thread, snapshotted into each epoch frame
//!   so analysis can start mid-trace with primed lockset state.
//!
//! I/O errors are sticky: the first failure latches, subsequent callbacks
//! become no-ops, and [`TraceWriter::finish`] reports the stored error.

use std::io::Write;

use vexec::event::{Event, ThreadId};
use vexec::faults::FaultStats;
use vexec::ir::SrcLoc;
use vexec::tool::Tool;
use vexec::util::Symbol;
use vexec::vm::{GuestError, RunStats, Termination, VmView};

use crate::format::{
    encode_event, encode_footer_body, encode_header, encode_snapshot, encode_stack_pop,
    encode_stack_push, CodecState, EpochSnapshot, Fnv1a, HeldLock, ThreadSnap, TraceBlock,
    TraceError, TraceFaultStats, TraceFooter, TraceTermination, TraceWait, END_MAGIC, TAG_EPOCH,
    TAG_FOOTER,
};

/// Default number of events per epoch frame. Small enough that `analyze
/// --jobs N` gets useful parallelism on medium traces, large enough that
/// snapshot overhead stays well under 1% of payload bytes.
pub const DEFAULT_EPOCH_EVENTS: u64 = 4096;

/// What [`TraceWriter::finish`] reports about the written trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceSummary {
    pub bytes: u64,
    pub events: u64,
    pub epochs: u64,
}

#[derive(Clone, Debug, Default)]
struct ThreadMirror {
    /// Events this thread has emitted so far.
    seq: u64,
    /// Reader-visible backtrace, outermost first.
    stack: Vec<(Symbol, SrcLoc)>,
    /// Locks currently held (Acquire/Release bookkeeping).
    held: Vec<HeldLock>,
}

/// Event-stream serialiser; plug into the VM wherever a detector would go.
pub struct TraceWriter<W: Write> {
    out: W,
    hash: Fnv1a,
    bytes_written: u64,
    err: Option<std::io::Error>,
    header_written: bool,
    threads: Vec<ThreadMirror>,
    codec: CodecState,
    epoch_buf: Vec<u8>,
    epoch_events: u64,
    epoch_limit: u64,
    epoch_index: u64,
    pending_snapshot: EpochSnapshot,
    total_events: u64,
}

impl<W: Write> TraceWriter<W> {
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            hash: Fnv1a::default(),
            bytes_written: 0,
            err: None,
            header_written: false,
            threads: Vec::new(),
            codec: CodecState::default(),
            epoch_buf: Vec::with_capacity(64 * 1024),
            epoch_events: 0,
            epoch_limit: DEFAULT_EPOCH_EVENTS,
            epoch_index: 0,
            pending_snapshot: EpochSnapshot::default(),
            total_events: 0,
        }
    }

    /// Override the events-per-epoch limit (tests use tiny epochs to
    /// exercise frame boundaries; sharding benefits from smaller epochs
    /// on long traces).
    pub fn with_epoch_events(mut self, limit: u64) -> Self {
        self.epoch_limit = limit.max(1);
        self
    }

    fn emit(&mut self, bytes: &[u8]) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(bytes) {
            self.err = Some(e);
            return;
        }
        self.hash.update(bytes);
        self.bytes_written += bytes.len() as u64;
    }

    fn mirror_mut(&mut self, tid: ThreadId) -> &mut ThreadMirror {
        let i = tid.index();
        if i >= self.threads.len() {
            self.threads.resize_with(i + 1, ThreadMirror::default);
        }
        &mut self.threads[i]
    }

    fn capture_snapshot(&self) -> EpochSnapshot {
        EpochSnapshot {
            index: self.epoch_index,
            threads: self
                .threads
                .iter()
                .map(|t| ThreadSnap { seq: t.seq, held: t.held.clone() })
                .collect(),
        }
    }

    /// Write the header (symbol table + pre-existing heap blocks) on the
    /// first callback. Globals are allocated by the VM before any event
    /// fires, so the header snapshot is the only way the reader learns
    /// about them.
    fn ensure_header(&mut self, vm: &VmView<'_>) {
        if self.header_written {
            return;
        }
        self.header_written = true;
        let interner = vm.interner();
        let symbols: Vec<&str> =
            (0..interner.len()).map(|i| interner.resolve(Symbol(i as u32))).collect();
        let blocks: Vec<TraceBlock> = vm
            .heap_blocks()
            .iter()
            .map(|b| TraceBlock {
                addr: b.addr,
                size: b.size,
                alloc_tid: b.alloc_tid.0,
                freed: b.freed,
            })
            .collect();
        let hdr = encode_header(&symbols, &blocks);
        self.emit(&hdr);
        self.pending_snapshot = self.capture_snapshot();
    }

    /// Reconcile the reader-visible stack mirror of `tid` with the VM's
    /// real backtrace, emitting the minimal pop/push delta. When the only
    /// difference is the top frame's location — the overwhelmingly common
    /// case — the reader's top-frame-overwrite rule absorbs it and no
    /// records are needed.
    fn sync_stack(&mut self, tid: ThreadId, vm: &VmView<'_>, ev_loc: Option<SrcLoc>) {
        let n = vm.frame_count(tid);
        let i = tid.index();
        if i >= self.threads.len() {
            self.threads.resize_with(i + 1, ThreadMirror::default);
        }

        // Fast path (the overwhelmingly common case: consecutive events in
        // the same call nest): same depth, outer frames unchanged, and the
        // reader's top-frame-overwrite rule reproduces the top frame. No
        // records, no allocation.
        let mirror = &mut self.threads[i].stack;
        if mirror.len() == n && n > 0 {
            let outer_same = (0..n - 1).all(|d| {
                let f = vm.frame_info(tid, d);
                mirror[d] == (f.func, f.loc)
            });
            if outer_same {
                let top = vm.frame_info(tid, n - 1);
                let (mut pf, mut ploc) = mirror[n - 1];
                if let Some(loc) = ev_loc {
                    ploc = loc;
                    if loc.func != Symbol::EMPTY {
                        pf = loc.func;
                    }
                }
                if (pf, ploc) == (top.func, top.loc) {
                    mirror[n - 1] = (top.func, top.loc);
                    return;
                }
            }
        } else if mirror.is_empty() && n == 0 {
            return;
        }

        // Slow path (frame boundary): materialise the true backtrace and
        // emit the minimal pop/push delta against the reader's predicted
        // state.
        let mut truth: Vec<(Symbol, SrcLoc)> = Vec::with_capacity(n);
        for d in 0..n {
            let f = vm.frame_info(tid, d);
            truth.push((f.func, f.loc));
        }
        let mirror = &self.threads[i].stack;
        // What the reader's mirror will look like after it applies the
        // top-frame-overwrite rule for this event, if we emit nothing.
        let mut predicted = mirror.clone();
        if let Some(loc) = ev_loc {
            if let Some(top) = predicted.last_mut() {
                top.1 = loc;
                if loc.func != Symbol::EMPTY {
                    top.0 = loc.func;
                }
            }
        }
        if predicted != truth {
            let mut common = 0;
            while common < mirror.len() && common < truth.len() && mirror[common] == truth[common] {
                common += 1;
            }
            let pops = (mirror.len() - common) as u32;
            if pops > 0 {
                encode_stack_pop(&mut self.epoch_buf, tid, pops);
            }
            for &(func, loc) in &truth[common..] {
                encode_stack_push(&mut self.epoch_buf, &mut self.codec, tid, func, loc);
            }
        }
        self.threads[i].stack = truth;
    }

    fn track_locks(&mut self, ev: &Event) {
        match *ev {
            Event::Acquire { tid, sync, kind, mode, loc } => {
                let m = self.mirror_mut(tid);
                if let Some(h) = m.held.iter_mut().find(|h| h.sync == sync && h.mode == mode) {
                    h.count += 1;
                } else {
                    m.held.push(HeldLock { sync, kind, mode, count: 1, loc });
                }
            }
            Event::Release { tid, sync, .. } => {
                let m = self.mirror_mut(tid);
                if let Some(i) = m.held.iter().rposition(|h| h.sync == sync) {
                    if m.held[i].count > 1 {
                        m.held[i].count -= 1;
                    } else {
                        m.held.remove(i);
                    }
                }
            }
            _ => {}
        }
    }

    fn flush_epoch(&mut self) {
        if self.epoch_buf.is_empty() {
            return;
        }
        let mut frame = Vec::with_capacity(self.epoch_buf.len() + 64);
        frame.push(TAG_EPOCH);
        crate::varint::put_uvarint(&mut frame, self.pending_snapshot.index);
        encode_snapshot(&mut frame, &self.pending_snapshot);
        crate::varint::put_uvarint(&mut frame, self.epoch_buf.len() as u64);
        frame.extend_from_slice(&self.epoch_buf);
        self.emit(&frame);
        self.epoch_index += 1;
        self.epoch_buf.clear();
        self.epoch_events = 0;
        self.codec.reset();
        self.pending_snapshot = self.capture_snapshot();
    }

    /// Seal the trace: flush the final epoch, write the footer (run
    /// outcome, stats, fault counters), the whole-file checksum, and the
    /// end magic. Consumes the writer; returns the sticky I/O error if any
    /// callback failed.
    pub fn finish(
        mut self,
        termination: &Termination,
        stats: &RunStats,
        faults: Option<&FaultStats>,
    ) -> Result<TraceSummary, TraceError> {
        if !self.header_written {
            return Err(TraceError::Corrupt {
                offset: 0,
                detail: "finish() called before any VM callback wrote the header".to_string(),
            });
        }
        self.flush_epoch();
        let footer = TraceFooter {
            events: self.total_events,
            epochs: self.epoch_index,
            slots: stats.slots,
            termination: trace_termination(termination),
            faults: faults.map(trace_faults),
        };
        let mut tail = vec![TAG_FOOTER];
        encode_footer_body(&mut tail, &footer);
        self.emit(&tail);
        // The checksum covers every byte before it; it and the end magic
        // are excluded from the hash.
        let checksum = self.hash.0.to_le_bytes();
        if self.err.is_none() {
            if let Err(e) = self.out.write_all(&checksum) {
                self.err = Some(e);
            } else {
                self.bytes_written += checksum.len() as u64;
            }
        }
        if self.err.is_none() {
            if let Err(e) = self.out.write_all(END_MAGIC).and_then(|()| self.out.flush()) {
                self.err = Some(e);
            } else {
                self.bytes_written += END_MAGIC.len() as u64;
            }
        }
        match self.err {
            Some(e) => Err(TraceError::Io(e)),
            None => Ok(TraceSummary {
                bytes: self.bytes_written,
                events: self.total_events,
                epochs: self.epoch_index,
            }),
        }
    }
}

impl<W: Write> Tool for TraceWriter<W> {
    fn on_event(&mut self, ev: &Event, vm: &VmView<'_>) {
        if self.err.is_some() {
            return;
        }
        self.ensure_header(vm);
        let tid = ev.tid();
        self.sync_stack(tid, vm, ev.loc());
        self.track_locks(ev);
        self.mirror_mut(tid).seq += 1;
        encode_event(&mut self.epoch_buf, &mut self.codec, ev);
        self.epoch_events += 1;
        self.total_events += 1;
        if self.epoch_events >= self.epoch_limit {
            self.flush_epoch();
        }
    }

    fn on_guest_fault(&mut self, _err: &GuestError, vm: &VmView<'_>) {
        self.ensure_header(vm);
    }

    fn on_finish(&mut self, vm: &VmView<'_>) {
        self.ensure_header(vm);
    }
}

/// Convert a live [`Termination`] into its trace-footer form (guest errors
/// are stored pre-rendered; that string is all any consumer prints).
pub fn trace_termination(t: &Termination) -> TraceTermination {
    match t {
        Termination::AllExited => TraceTermination::AllExited,
        Termination::Deadlock(waits) => TraceTermination::Deadlock(
            waits
                .iter()
                .map(|w| TraceWait {
                    tid: w.tid.0,
                    on: w.on,
                    holders: w.holders.iter().map(|h| h.0).collect(),
                })
                .collect(),
        ),
        Termination::GuestError(e) => TraceTermination::GuestError(e.to_string()),
        Termination::FuelExhausted => TraceTermination::FuelExhausted,
    }
}

/// Convert live fault counters into their trace-footer form.
pub fn trace_faults(f: &FaultStats) -> TraceFaultStats {
    TraceFaultStats {
        spurious_wakeups: f.spurious_wakeups,
        lock_failures: f.lock_failures,
        alloc_failures: f.alloc_failures,
        kills: f.kills,
        leaked_locks: f.leaked_locks,
        leaked_bytes: f.leaked_bytes,
    }
}
