//! Reading `.rltrace` files: whole-file structural parse, per-epoch
//! decode, and an epoch-at-a-time [`TraceReader`].
//!
//! [`parse_trace`] validates the envelope up front — magic, version, end
//! magic, whole-file checksum — then walks the frame sequence recording
//! each epoch's snapshot and payload extent *without* decoding payloads.
//! That split is what makes sharded analysis possible: epoch payloads are
//! codec-independent, so [`decode_epoch`] calls can run on any thread in
//! any order.
//!
//! [`TraceReader`] layers sequential consumption on top: it yields one
//! epoch's records at a time (decoded-record memory stays bounded by one
//! epoch) and cross-checks the per-thread sequence numbers in every epoch
//! snapshot against the event stream actually decoded so far.

use std::io::Read;

use crate::format::{
    decode_footer_body, decode_header, decode_record, decode_snapshot, CodecState, Cursor,
    EpochSnapshot, Fnv1a, TraceError, TraceFooter, TraceHeader, TraceRecord, TraceTermination,
    END_MAGIC, MAGIC, TAG_EPOCH, TAG_FOOTER, VERSION,
};

/// One epoch frame located by [`parse_trace`]: its snapshot plus the byte
/// extent of its (still encoded) payload.
#[derive(Clone, Debug)]
pub struct EpochDesc {
    pub snapshot: EpochSnapshot,
    pub payload_offset: usize,
    pub payload_len: usize,
}

/// Result of a structural parse: header, epoch directory, footer. Payloads
/// are not decoded; pair with [`decode_epoch`].
#[derive(Clone, Debug)]
pub struct ParsedTrace {
    pub header: TraceHeader,
    pub epochs: Vec<EpochDesc>,
    pub footer: TraceFooter,
}

/// Structurally parse a complete trace. Checksum and envelope are
/// verified before anything else, so a single flipped byte anywhere in
/// the file is guaranteed to surface as an error here.
pub fn parse_trace(bytes: &[u8]) -> Result<ParsedTrace, TraceError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 {
        return Err(TraceError::Truncated { offset: bytes.len() as u64 });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(TraceError::BadVersion { found: version, expected: VERSION });
    }
    // Envelope: ... | checksum u64 LE | END_MAGIC (neither is hashed).
    let tail = END_MAGIC.len() + 8;
    if bytes.len() < 12 + tail || &bytes[bytes.len() - END_MAGIC.len()..] != END_MAGIC {
        return Err(TraceError::Truncated { offset: bytes.len() as u64 });
    }
    let body = &bytes[..bytes.len() - tail];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - tail..bytes.len() - END_MAGIC.len()].try_into().expect("8 bytes"),
    );
    let mut h = Fnv1a::default();
    h.update(body);
    if h.0 != stored {
        return Err(TraceError::ChecksumMismatch { expected: stored, found: h.0 });
    }
    let mut c = Cursor::new(body, 0);
    let header = decode_header(&mut c)?;
    let nsyms = header.symbols.len() as u32;
    let mut epochs: Vec<EpochDesc> = Vec::new();
    loop {
        let tag = c.u8()?;
        if tag == TAG_EPOCH {
            let index = c.uvarint()?;
            if index != epochs.len() as u64 {
                return Err(c.corrupt(format!(
                    "epoch index {index} out of order (expected {})",
                    epochs.len()
                )));
            }
            let snapshot = decode_snapshot(&mut c, index, nsyms)?;
            let payload_len = c.count("payload byte", 1)?;
            let payload_offset = c.pos;
            c.bytes(payload_len)?;
            epochs.push(EpochDesc { snapshot, payload_offset, payload_len });
        } else if tag == TAG_FOOTER {
            let footer = decode_footer_body(&mut c)?;
            if !c.is_empty() {
                return Err(c.corrupt("trailing bytes after footer"));
            }
            if footer.epochs != epochs.len() as u64 {
                return Err(c.corrupt(format!(
                    "footer claims {} epochs, file has {}",
                    footer.epochs,
                    epochs.len()
                )));
            }
            return Ok(ParsedTrace { header, epochs, footer });
        } else {
            return Err(c.corrupt(format!("unknown frame tag {tag:#04x}")));
        }
    }
}

/// A crash-truncated trace recovered by [`parse_trace_repair`].
#[derive(Clone, Debug)]
pub struct RepairedTrace {
    pub parsed: ParsedTrace,
    /// `false` when the file was whole and no repair was needed.
    pub repaired: bool,
    /// Bytes of torn tail discarded (0 when `repaired` is false).
    pub dropped_bytes: usize,
}

/// Tolerant parse for crash-truncated traces: when the envelope trailer is
/// missing (the writer died before its final flush), re-walk the frame
/// sequence keeping every epoch that is *completely* present, drop the
/// torn tail, and synthesize a footer for the intact prefix — the offline
/// twin of the soak log's torn-tail rule.
///
/// Only [`TraceError::Truncated`] triggers repair. A file whose trailer
/// *is* present but whose body fails its checksum or structure is corrupt,
/// not torn, and that error propagates unchanged — repair must never paper
/// over real corruption.
pub fn parse_trace_repair(bytes: &[u8]) -> Result<RepairedTrace, TraceError> {
    match parse_trace(bytes) {
        Ok(parsed) => return Ok(RepairedTrace { parsed, repaired: false, dropped_bytes: 0 }),
        Err(TraceError::Truncated { .. }) => {}
        Err(e) => return Err(e),
    }
    // No trailer: everything after the version word is unverified body.
    // The header must decode fully — without the symbol table nothing in
    // the file can be interpreted.
    let mut c = Cursor::new(bytes, 0);
    let header = decode_header(&mut c)?;
    let nsyms = header.symbols.len() as u32;
    let after_header = c.pos;
    let mut epochs: Vec<EpochDesc> = Vec::new();
    let mut end_of_good = after_header;
    while let Ok(tag) = c.u8() {
        if tag != TAG_EPOCH {
            // A footer tag here would mean the trailer was torn off a
            // complete body; its epoch count can no longer be trusted
            // against a checksum, so treat it like any other torn tail.
            break;
        }
        let frame = (|| -> Result<EpochDesc, TraceError> {
            let index = c.uvarint()?;
            if index != epochs.len() as u64 {
                return Err(c.corrupt(format!(
                    "epoch index {index} out of order (expected {})",
                    epochs.len()
                )));
            }
            let snapshot = decode_snapshot(&mut c, index, nsyms)?;
            let payload_len = c.count("payload byte", 1)?;
            let payload_offset = c.pos;
            c.bytes(payload_len)?;
            Ok(EpochDesc { snapshot, payload_offset, payload_len })
        })();
        match frame {
            Ok(desc) => {
                end_of_good = c.pos;
                epochs.push(desc);
            }
            Err(_) => break,
        }
    }
    // An epoch frame can be structurally whole while its payload tail is
    // garbage (the torn write landed inside the declared extent). Verify
    // the final epochs actually decode, dropping any that do not.
    while let Some(desc) = epochs.last() {
        match decode_epoch(bytes, desc, nsyms) {
            Ok(_) => break,
            Err(_) => {
                end_of_good = epochs[..epochs.len() - 1]
                    .last()
                    .map_or(after_header, |d| d.payload_offset + d.payload_len);
                epochs.pop();
            }
        }
    }
    // The synthesized footer's event count must match the decoded stream
    // (analyze cross-checks it): events before the last epoch are the sum
    // of its snapshot's per-thread sequence numbers; the last epoch's own
    // events need one decode.
    let events = match epochs.last() {
        None => 0,
        Some(desc) => {
            let before: u64 = desc.snapshot.threads.iter().map(|t| t.seq).sum();
            let in_last = decode_epoch(bytes, desc, nsyms)
                .expect("verified above")
                .iter()
                .filter(|r| matches!(r, TraceRecord::Event(_)))
                .count() as u64;
            before + in_last
        }
    };
    let footer = TraceFooter {
        events,
        epochs: epochs.len() as u64,
        slots: 0,
        termination: TraceTermination::Unknown,
        faults: None,
    };
    Ok(RepairedTrace {
        parsed: ParsedTrace { header, epochs, footer },
        repaired: true,
        dropped_bytes: bytes.len() - end_of_good,
    })
}

/// Decode one epoch's payload into records. Self-contained: the delta
/// codec resets at every epoch boundary, so this needs nothing but the
/// raw bytes and the symbol-table size.
pub fn decode_epoch(
    bytes: &[u8],
    desc: &EpochDesc,
    nsyms: u32,
) -> Result<Vec<TraceRecord>, TraceError> {
    let payload = &bytes[desc.payload_offset..desc.payload_offset + desc.payload_len];
    let mut c = Cursor::new(payload, desc.payload_offset as u64);
    let mut state = CodecState::default();
    let mut recs = Vec::new();
    while !c.is_empty() {
        recs.push(decode_record(&mut c, &mut state, nsyms)?);
    }
    Ok(recs)
}

/// Sequential epoch-at-a-time consumer with cross-frame validation.
pub struct TraceReader {
    buf: Vec<u8>,
    parsed: ParsedTrace,
    next: usize,
    counts: Vec<u64>,
    verified: bool,
}

impl TraceReader {
    /// Read a complete trace from `r` and validate its envelope.
    pub fn from_reader<R: Read>(mut r: R) -> Result<Self, TraceError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        Self::from_bytes(buf)
    }

    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, TraceError> {
        let parsed = parse_trace(&buf)?;
        Ok(TraceReader { buf, parsed, next: 0, counts: Vec::new(), verified: false })
    }

    pub fn header(&self) -> &TraceHeader {
        &self.parsed.header
    }

    pub fn footer(&self) -> &TraceFooter {
        &self.parsed.footer
    }

    pub fn epoch_count(&self) -> usize {
        self.parsed.epochs.len()
    }

    /// Decode and return the next epoch's snapshot and records, verifying
    /// the snapshot's per-thread sequence numbers against the stream
    /// decoded so far. Returns `Ok(None)` after the last epoch (at which
    /// point the footer's event count has also been cross-checked).
    #[allow(clippy::type_complexity)]
    pub fn next_epoch(&mut self) -> Result<Option<(EpochSnapshot, Vec<TraceRecord>)>, TraceError> {
        if self.next >= self.parsed.epochs.len() {
            if !self.verified {
                self.verified = true;
                let total: u64 = self.counts.iter().sum();
                if total != self.parsed.footer.events {
                    return Err(TraceError::Corrupt {
                        offset: self.buf.len() as u64,
                        detail: format!(
                            "footer claims {} events, stream decoded {total}",
                            self.parsed.footer.events
                        ),
                    });
                }
            }
            return Ok(None);
        }
        let desc = &self.parsed.epochs[self.next];
        for (i, t) in desc.snapshot.threads.iter().enumerate() {
            let have = self.counts.get(i).copied().unwrap_or(0);
            if have != t.seq {
                return Err(TraceError::Corrupt {
                    offset: desc.payload_offset as u64,
                    detail: format!(
                        "epoch {} snapshot says thread {i} emitted {} events, stream has {have}",
                        desc.snapshot.index, t.seq
                    ),
                });
            }
        }
        for (i, &cnt) in self.counts.iter().enumerate().skip(desc.snapshot.threads.len()) {
            if cnt != 0 {
                return Err(TraceError::Corrupt {
                    offset: desc.payload_offset as u64,
                    detail: format!(
                        "epoch {} snapshot omits thread {i} which already emitted {cnt} events",
                        desc.snapshot.index
                    ),
                });
            }
        }
        let nsyms = self.parsed.header.symbols.len() as u32;
        let recs = decode_epoch(&self.buf, desc, nsyms)?;
        for r in &recs {
            if let TraceRecord::Event(ev) = r {
                let i = ev.tid().index();
                if i >= self.counts.len() {
                    self.counts.resize(i + 1, 0);
                }
                self.counts[i] += 1;
            }
        }
        let snapshot = desc.snapshot.clone();
        self.next += 1;
        Ok(Some((snapshot, recs)))
    }
}
