//! # raceline-trace
//!
//! Binary event-trace record/replay for the raceline VM: the `.rltrace`
//! format, a [`TraceWriter`] that plugs into the VM's `Tool` interface,
//! and readers for offline, shardable analysis.
//!
//! The paper runs its detector *inline* and pays the full detection
//! slowdown on every execution. This crate decouples the two phases:
//!
//! 1. **Record** — run the program once with a [`TraceWriter`] as the
//!    tool. Capture does no detection work; it delta-encodes the event
//!    stream (typically a handful of bytes per event) and periodically
//!    emits **epoch frames** snapshotting per-thread sync state.
//! 2. **Analyze** — feed the recorded trace through any detector
//!    configuration in `helgrind-core`, as many times as you like,
//!    without re-executing the VM. Reports are byte-identical to the
//!    inline run. Epoch frames reset the delta codec, so epochs decode
//!    independently and analysis shards across threads; they also carry
//!    enough state to start analysis mid-trace.
//!
//! Wire format details live in DESIGN.md §9; the codec itself is split
//! across [`varint`] (LEB128 + zigzag primitives), [`format`] (record
//! tags, frame layout, encode/decode), [`writer`], and [`reader`].
//!
//! Robustness contract: no input, however corrupted, truncated, or
//! version-skewed, may panic a reader — every failure is a structured
//! [`TraceError`]. A whole-file FNV-1a checksum in the footer makes any
//! single-byte corruption detectable.

pub mod format;
pub mod reader;
pub mod varint;
pub mod writer;

pub use format::{
    EpochSnapshot, HeldLock, ThreadSnap, TraceBlock, TraceError, TraceFaultStats, TraceFooter,
    TraceHeader, TraceRecord, TraceTermination, TraceWait, MAGIC, VERSION,
};
pub use reader::{decode_epoch, parse_trace, EpochDesc, ParsedTrace, TraceReader};
pub use writer::{
    trace_faults, trace_termination, TraceSummary, TraceWriter, DEFAULT_EPOCH_EVENTS,
};
