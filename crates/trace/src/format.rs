//! The `.rltrace` wire format: record tags, codec state, and the
//! encode/decode routines shared by [`crate::writer`] and
//! [`crate::reader`]. The byte-level layout is specified in DESIGN.md §9.
//!
//! Every decode path is bounds-checked and returns a structured
//! [`TraceError`]; no input, however corrupt, may panic the reader. Counts
//! read from the wire are validated against the number of bytes remaining
//! before anything is allocated, so a flipped length byte cannot request an
//! absurd reservation.

use crate::varint::{get_uvarint, put_ivarint, put_uvarint, unzigzag};
use vexec::event::{AccessKind, AcqMode, ClientEv, Event, SyncId, ThreadId};
use vexec::ir::{SrcLoc, SyncKind};
use vexec::util::Symbol;
use vexec::vm::BlockOn;

/// File magic, first 8 bytes of every trace.
pub const MAGIC: &[u8; 8] = b"RLTRACE1";
/// Trailing magic, last 8 bytes; its absence means a torn write.
pub const END_MAGIC: &[u8; 8] = b"RLTREND\0";
/// Current format version (little-endian `u32` after the magic).
pub const VERSION: u32 = 1;

/// Frame tag opening each epoch.
pub const TAG_EPOCH: u8 = 0xE5;
/// Frame tag opening the footer.
pub const TAG_FOOTER: u8 = 0xF7;

/// Sanity cap on thread ids — a trace claiming more threads than this is
/// corrupt, not ambitious.
pub const MAX_THREADS: u64 = 1 << 20;

// Record tags (one byte, followed by `uvarint tid` and the fields listed
// in DESIGN.md §9.3).
pub const T_READ: u8 = 0;
pub const T_WRITE: u8 = 1;
pub const T_RMW: u8 = 2;
pub const T_ACQ_EXCL: u8 = 3;
pub const T_ACQ_SHARED: u8 = 4;
pub const T_RELEASE: u8 = 5;
pub const T_CREATE: u8 = 6;
pub const T_JOIN: u8 = 7;
pub const T_EXIT: u8 = 8;
pub const T_ALLOC: u8 = 9;
pub const T_FREE: u8 = 10;
pub const T_COND_SIGNAL: u8 = 11;
pub const T_COND_BROADCAST: u8 = 12;
pub const T_COND_WAKE: u8 = 13;
pub const T_SEM_POST: u8 = 14;
pub const T_SEM_ACQUIRED: u8 = 15;
pub const T_QUEUE_PUT: u8 = 16;
pub const T_QUEUE_GOT: u8 = 17;
pub const T_HG_DESTRUCT: u8 = 18;
pub const T_HG_CLEAN: u8 = 19;
pub const T_LABEL: u8 = 20;
pub const T_STACK_PUSH: u8 = 21;
pub const T_STACK_POP: u8 = 22;

/// Structured decode failure. The `offset` fields are absolute byte
/// positions in the trace file, so a corrupt trace can be inspected with
/// any hex dumper.
#[derive(Debug)]
pub enum TraceError {
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a trace at all.
    BadMagic,
    /// A trace from a different format generation.
    BadVersion {
        found: u32,
        expected: u32,
    },
    /// The file ends mid-structure (torn write, truncated copy).
    Truncated {
        offset: u64,
    },
    /// Structurally invalid content at `offset`.
    Corrupt {
        offset: u64,
        detail: String,
    },
    /// Every byte of the file is covered by an FNV-1a checksum in the
    /// footer; a mismatch means silent corruption somewhere upstream.
    ChecksumMismatch {
        expected: u64,
        found: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a raceline trace (bad magic)"),
            TraceError::BadVersion { found, expected } => {
                write!(f, "unsupported trace version {found} (this build reads v{expected})")
            }
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated at byte {offset}")
            }
            TraceError::Corrupt { offset, detail } => {
                write!(f, "corrupt trace at byte {offset}: {detail}")
            }
            TraceError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "trace checksum mismatch (stored {expected:#018x}, computed {found:#018x})"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// FNV-1a 64 running hash — cheap, allocation-free, and plenty to catch
/// the single-flipped-byte class of corruption the format defends against.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(pub u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Bounds-checked read cursor over an in-memory byte slice. `base` is the
/// absolute file offset of `buf[0]`, so errors report file positions even
/// when decoding an epoch payload sliced out of the middle of the file.
pub struct Cursor<'a> {
    pub buf: &'a [u8],
    pub pos: usize,
    pub base: u64,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8], base: u64) -> Self {
        Cursor { buf, pos: 0, base }
    }

    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn truncated(&self) -> TraceError {
        TraceError::Truncated { offset: self.offset() }
    }

    pub fn corrupt(&self, detail: impl Into<String>) -> TraceError {
        TraceError::Corrupt { offset: self.offset(), detail: detail.into() }
    }

    pub fn u8(&mut self) -> Result<u8, TraceError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(b)
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(self.truncated());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u32_le(&mut self) -> Result<u32, TraceError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64_le(&mut self) -> Result<u64, TraceError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub fn uvarint(&mut self) -> Result<u64, TraceError> {
        match get_uvarint(&self.buf[self.pos..]) {
            Some((v, n)) => {
                self.pos += n;
                Ok(v)
            }
            None if self.remaining() < 10 => Err(self.truncated()),
            None => Err(self.corrupt("overlong varint")),
        }
    }

    pub fn ivarint(&mut self) -> Result<i64, TraceError> {
        Ok(unzigzag(self.uvarint()?))
    }

    /// Read an element count that precedes `count * min_elem_bytes` bytes;
    /// reject counts the remaining input cannot possibly satisfy before
    /// any allocation happens.
    pub fn count(&mut self, what: &str, min_elem_bytes: usize) -> Result<usize, TraceError> {
        let n = self.uvarint()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(self.corrupt(format!("{what} count {n} exceeds remaining input")));
        }
        Ok(n as usize)
    }
}

/// Parsed trace header: version, the program's full interned string table,
/// and the heap blocks that existed before the first event (globals,
/// allocated by the VM without emitting `Alloc`).
#[derive(Clone, Debug, Default)]
pub struct TraceHeader {
    pub version: u32,
    pub symbols: Vec<String>,
    pub initial_blocks: Vec<TraceBlock>,
}

/// A heap block as recorded in the header snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceBlock {
    pub addr: u64,
    pub size: u64,
    pub alloc_tid: u32,
    pub freed: bool,
}

/// Per-thread state recorded in an epoch frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadSnap {
    /// Events this thread had emitted before the epoch began. Readers
    /// verify the running per-thread count against this at every frame.
    pub seq: u64,
    /// Locks the thread held entering the epoch, for mid-trace analysis.
    pub held: Vec<HeldLock>,
}

/// One held lock in an epoch snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeldLock {
    pub sync: SyncId,
    pub kind: SyncKind,
    pub mode: AcqMode,
    /// Recursion depth (rwlock read counts).
    pub count: u32,
    /// Where the lock was acquired.
    pub loc: SrcLoc,
}

/// Epoch frame: codec-reset point + sync-state snapshot. Epoch payloads
/// decode independently of each other, which is what makes `analyze
/// --jobs N` shardable.
#[derive(Clone, Debug, Default)]
pub struct EpochSnapshot {
    pub index: u64,
    pub threads: Vec<ThreadSnap>,
}

/// How the recorded run ended, plus its stats — everything `analyze`
/// needs to reproduce the inline report's termination output.
#[derive(Clone, Debug)]
pub struct TraceFooter {
    pub events: u64,
    pub epochs: u64,
    pub slots: u64,
    pub termination: TraceTermination,
    pub faults: Option<TraceFaultStats>,
}

/// Mirror of [`vexec::vm::Termination`] with the guest error pre-rendered
/// (the live error struct holds interner-relative symbols; the rendered
/// string is what every consumer prints).
#[derive(Clone, Debug)]
pub enum TraceTermination {
    AllExited,
    Deadlock(Vec<TraceWait>),
    GuestError(String),
    FuelExhausted,
    /// The trace ends before the run did — a crash-truncated file whose
    /// intact prefix was recovered by `parse_trace_repair`. Synthesized,
    /// never produced by the writer.
    Unknown,
}

/// One blocked thread at deadlock time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceWait {
    pub tid: u32,
    pub on: BlockOn,
    pub holders: Vec<u32>,
}

/// Injected-fault counters, mirroring [`vexec::faults::FaultStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceFaultStats {
    pub spurious_wakeups: u64,
    pub lock_failures: u64,
    pub alloc_failures: u64,
    pub kills: u64,
    pub leaked_locks: u64,
    pub leaked_bytes: u64,
}

impl TraceFaultStats {
    pub fn total(&self) -> u64 {
        self.spurious_wakeups + self.lock_failures + self.alloc_failures + self.kills
    }
}

/// One decoded payload record: a guest event or a stack-delta record that
/// keeps the reader's per-thread backtrace mirror in sync.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceRecord {
    Event(Event),
    /// A frame was pushed on `tid`'s stack (`func` resolved with the
    /// procedure-name fallback already applied at push time).
    StackPush {
        tid: ThreadId,
        func: Symbol,
        loc: SrcLoc,
    },
    /// `n` frames were popped from `tid`'s stack.
    StackPop {
        tid: ThreadId,
        n: u32,
    },
}

/// Per-thread delta-codec state. Reset to defaults at every epoch
/// boundary so each epoch payload is self-contained.
#[derive(Clone, Copy, Debug, Default)]
pub struct EncState {
    pub last_addr: u64,
    pub last_file: u32,
    pub last_line: u32,
    pub last_func: u32,
}

/// Growable per-thread codec-state table.
#[derive(Clone, Debug, Default)]
pub struct CodecState {
    pub threads: Vec<EncState>,
}

impl CodecState {
    /// Reset every thread's delta baselines (epoch boundary).
    pub fn reset(&mut self) {
        for t in &mut self.threads {
            *t = EncState::default();
        }
    }

    pub fn thread(&mut self, tid: ThreadId) -> &mut EncState {
        let i = tid.index();
        if i >= self.threads.len() {
            self.threads.resize_with(i + 1, EncState::default);
        }
        &mut self.threads[i]
    }
}

fn sync_kind_byte(k: SyncKind) -> u8 {
    match k {
        SyncKind::Mutex => 0,
        SyncKind::RwLock => 1,
        SyncKind::CondVar => 2,
        SyncKind::Semaphore => 3,
        SyncKind::Queue => 4,
    }
}

fn sync_kind_from(b: u8, c: &Cursor<'_>) -> Result<SyncKind, TraceError> {
    Ok(match b {
        0 => SyncKind::Mutex,
        1 => SyncKind::RwLock,
        2 => SyncKind::CondVar,
        3 => SyncKind::Semaphore,
        4 => SyncKind::Queue,
        other => return Err(c.corrupt(format!("bad sync kind {other}"))),
    })
}

fn put_loc(out: &mut Vec<u8>, st: &mut EncState, loc: SrcLoc) {
    put_ivarint(out, i64::from(loc.file.0) - i64::from(st.last_file));
    put_ivarint(out, i64::from(loc.line) - i64::from(st.last_line));
    put_ivarint(out, i64::from(loc.func.0) - i64::from(st.last_func));
    st.last_file = loc.file.0;
    st.last_line = loc.line;
    st.last_func = loc.func.0;
}

fn delta_u32(base: u32, delta: i64, what: &str, c: &Cursor<'_>) -> Result<u32, TraceError> {
    u32::try_from(i64::from(base) + delta)
        .map_err(|_| c.corrupt(format!("{what} delta out of range")))
}

fn get_loc(c: &mut Cursor<'_>, st: &mut EncState, nsyms: u32) -> Result<SrcLoc, TraceError> {
    let file = delta_u32(st.last_file, c.ivarint()?, "file symbol", c)?;
    let line = delta_u32(st.last_line, c.ivarint()?, "line", c)?;
    let func = delta_u32(st.last_func, c.ivarint()?, "func symbol", c)?;
    if file >= nsyms || func >= nsyms {
        return Err(c.corrupt(format!("symbol out of range (table has {nsyms})")));
    }
    st.last_file = file;
    st.last_line = line;
    st.last_func = func;
    Ok(SrcLoc { file: Symbol(file), line, func: Symbol(func) })
}

fn get_sym(c: &mut Cursor<'_>, nsyms: u32, what: &str) -> Result<Symbol, TraceError> {
    let v = c.uvarint()?;
    if v >= u64::from(nsyms) {
        return Err(c.corrupt(format!("{what} symbol {v} out of range (table has {nsyms})")));
    }
    Ok(Symbol(v as u32))
}

fn get_tid(c: &mut Cursor<'_>) -> Result<ThreadId, TraceError> {
    let v = c.uvarint()?;
    if v >= MAX_THREADS {
        return Err(c.corrupt(format!("thread id {v} exceeds cap")));
    }
    Ok(ThreadId(v as u32))
}

fn get_sync(c: &mut Cursor<'_>) -> Result<SyncId, TraceError> {
    let v = c.uvarint()?;
    u32::try_from(v).map(SyncId).map_err(|_| c.corrupt("sync id exceeds u32"))
}

/// Append one event record to `out`, advancing the per-thread codec state.
pub fn encode_event(out: &mut Vec<u8>, state: &mut CodecState, ev: &Event) {
    let tid = ev.tid();
    let put_head = |out: &mut Vec<u8>, tag: u8| {
        out.push(tag);
        put_uvarint(out, u64::from(tid.0));
    };
    match *ev {
        Event::Access { addr, size, kind, loc, .. } => {
            let tag = match kind {
                AccessKind::Read => T_READ,
                AccessKind::Write => T_WRITE,
                AccessKind::AtomicRmw => T_RMW,
            };
            put_head(out, tag);
            let st = state.thread(tid);
            put_ivarint(out, addr.wrapping_sub(st.last_addr) as i64);
            st.last_addr = addr;
            out.push(size);
            put_loc(out, state.thread(tid), loc);
        }
        Event::Acquire { sync, kind, mode, loc, .. } => {
            put_head(out, if mode == AcqMode::Shared { T_ACQ_SHARED } else { T_ACQ_EXCL });
            put_uvarint(out, u64::from(sync.0));
            out.push(sync_kind_byte(kind));
            put_loc(out, state.thread(tid), loc);
        }
        Event::Release { sync, kind, loc, .. } => {
            put_head(out, T_RELEASE);
            put_uvarint(out, u64::from(sync.0));
            out.push(sync_kind_byte(kind));
            put_loc(out, state.thread(tid), loc);
        }
        Event::ThreadCreate { child, loc, .. } => {
            put_head(out, T_CREATE);
            put_uvarint(out, u64::from(child.0));
            put_loc(out, state.thread(tid), loc);
        }
        Event::ThreadJoin { joined, loc, .. } => {
            put_head(out, T_JOIN);
            put_uvarint(out, u64::from(joined.0));
            put_loc(out, state.thread(tid), loc);
        }
        Event::ThreadExit { .. } => put_head(out, T_EXIT),
        Event::Alloc { addr, size, loc, .. } => {
            put_head(out, T_ALLOC);
            put_uvarint(out, addr);
            put_uvarint(out, size);
            put_loc(out, state.thread(tid), loc);
        }
        Event::Free { addr, size, loc, .. } => {
            put_head(out, T_FREE);
            put_uvarint(out, addr);
            put_uvarint(out, size);
            put_loc(out, state.thread(tid), loc);
        }
        Event::CondSignal { sync, broadcast, loc, .. } => {
            put_head(out, if broadcast { T_COND_BROADCAST } else { T_COND_SIGNAL });
            put_uvarint(out, u64::from(sync.0));
            put_loc(out, state.thread(tid), loc);
        }
        Event::CondWake { sync, signaler, loc, .. } => {
            put_head(out, T_COND_WAKE);
            put_uvarint(out, u64::from(sync.0));
            put_uvarint(out, u64::from(signaler.0));
            put_loc(out, state.thread(tid), loc);
        }
        Event::SemPost { sync, loc, .. } => {
            put_head(out, T_SEM_POST);
            put_uvarint(out, u64::from(sync.0));
            put_loc(out, state.thread(tid), loc);
        }
        Event::SemAcquired { sync, loc, .. } => {
            put_head(out, T_SEM_ACQUIRED);
            put_uvarint(out, u64::from(sync.0));
            put_loc(out, state.thread(tid), loc);
        }
        Event::QueuePut { sync, token, loc, .. } => {
            put_head(out, T_QUEUE_PUT);
            put_uvarint(out, u64::from(sync.0));
            put_uvarint(out, token);
            put_loc(out, state.thread(tid), loc);
        }
        Event::QueueGot { sync, token, loc, .. } => {
            put_head(out, T_QUEUE_GOT);
            put_uvarint(out, u64::from(sync.0));
            put_uvarint(out, token);
            put_loc(out, state.thread(tid), loc);
        }
        Event::Client { req, loc, .. } => match req {
            ClientEv::HgDestruct { addr, size } => {
                put_head(out, T_HG_DESTRUCT);
                put_uvarint(out, addr);
                put_uvarint(out, size);
                put_loc(out, state.thread(tid), loc);
            }
            ClientEv::HgCleanMemory { addr, size } => {
                put_head(out, T_HG_CLEAN);
                put_uvarint(out, addr);
                put_uvarint(out, size);
                put_loc(out, state.thread(tid), loc);
            }
            ClientEv::Label(sym) => {
                put_head(out, T_LABEL);
                put_uvarint(out, u64::from(sym.0));
                put_loc(out, state.thread(tid), loc);
            }
        },
    }
}

/// Append a stack-push record (`func` already fallback-resolved).
pub fn encode_stack_push(
    out: &mut Vec<u8>,
    state: &mut CodecState,
    tid: ThreadId,
    func: Symbol,
    loc: SrcLoc,
) {
    out.push(T_STACK_PUSH);
    put_uvarint(out, u64::from(tid.0));
    put_uvarint(out, u64::from(func.0));
    put_loc(out, state.thread(tid), loc);
}

/// Append a stack-pop record.
pub fn encode_stack_pop(out: &mut Vec<u8>, tid: ThreadId, n: u32) {
    out.push(T_STACK_POP);
    put_uvarint(out, u64::from(tid.0));
    put_uvarint(out, u64::from(n));
}

/// Decode one payload record. `nsyms` bounds every symbol reference.
pub fn decode_record(
    c: &mut Cursor<'_>,
    state: &mut CodecState,
    nsyms: u32,
) -> Result<TraceRecord, TraceError> {
    let tag = c.u8()?;
    let tid = get_tid(c)?;
    let rec = match tag {
        T_READ | T_WRITE | T_RMW => {
            let kind = match tag {
                T_READ => AccessKind::Read,
                T_WRITE => AccessKind::Write,
                _ => AccessKind::AtomicRmw,
            };
            let delta = c.ivarint()?;
            let st = state.thread(tid);
            let addr = st.last_addr.wrapping_add(delta as u64);
            st.last_addr = addr;
            let size = c.u8()?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(Event::Access { tid, addr, size, kind, loc })
        }
        T_ACQ_EXCL | T_ACQ_SHARED => {
            let sync = get_sync(c)?;
            let kind = {
                let b = c.u8()?;
                sync_kind_from(b, c)?
            };
            let mode = if tag == T_ACQ_SHARED { AcqMode::Shared } else { AcqMode::Exclusive };
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(Event::Acquire { tid, sync, kind, mode, loc })
        }
        T_RELEASE => {
            let sync = get_sync(c)?;
            let kind = {
                let b = c.u8()?;
                sync_kind_from(b, c)?
            };
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(Event::Release { tid, sync, kind, loc })
        }
        T_CREATE => {
            let child = get_tid(c)?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(Event::ThreadCreate { parent: tid, child, loc })
        }
        T_JOIN => {
            let joined = get_tid(c)?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(Event::ThreadJoin { joiner: tid, joined, loc })
        }
        T_EXIT => TraceRecord::Event(Event::ThreadExit { tid }),
        T_ALLOC | T_FREE => {
            let addr = c.uvarint()?;
            let size = c.uvarint()?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(if tag == T_ALLOC {
                Event::Alloc { tid, addr, size, loc }
            } else {
                Event::Free { tid, addr, size, loc }
            })
        }
        T_COND_SIGNAL | T_COND_BROADCAST => {
            let sync = get_sync(c)?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            let broadcast = tag == T_COND_BROADCAST;
            TraceRecord::Event(Event::CondSignal { tid, sync, broadcast, loc })
        }
        T_COND_WAKE => {
            let sync = get_sync(c)?;
            let signaler = get_tid(c)?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(Event::CondWake { tid, sync, signaler, loc })
        }
        T_SEM_POST | T_SEM_ACQUIRED => {
            let sync = get_sync(c)?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(if tag == T_SEM_POST {
                Event::SemPost { tid, sync, loc }
            } else {
                Event::SemAcquired { tid, sync, loc }
            })
        }
        T_QUEUE_PUT | T_QUEUE_GOT => {
            let sync = get_sync(c)?;
            let token = c.uvarint()?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(if tag == T_QUEUE_PUT {
                Event::QueuePut { tid, sync, token, loc }
            } else {
                Event::QueueGot { tid, sync, token, loc }
            })
        }
        T_HG_DESTRUCT | T_HG_CLEAN => {
            let addr = c.uvarint()?;
            let size = c.uvarint()?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            let req = if tag == T_HG_DESTRUCT {
                ClientEv::HgDestruct { addr, size }
            } else {
                ClientEv::HgCleanMemory { addr, size }
            };
            TraceRecord::Event(Event::Client { tid, req, loc })
        }
        T_LABEL => {
            let sym = get_sym(c, nsyms, "label")?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::Event(Event::Client { tid, req: ClientEv::Label(sym), loc })
        }
        T_STACK_PUSH => {
            let func = get_sym(c, nsyms, "stack frame")?;
            let loc = get_loc(c, state.thread(tid), nsyms)?;
            TraceRecord::StackPush { tid, func, loc }
        }
        T_STACK_POP => {
            let n = c.uvarint()?;
            let n = u32::try_from(n).map_err(|_| c.corrupt("stack pop count exceeds u32"))?;
            TraceRecord::StackPop { tid, n }
        }
        other => return Err(c.corrupt(format!("unknown record tag {other:#04x}"))),
    };
    Ok(rec)
}

/// Encode the header (magic, version, symbol table, initial heap blocks).
pub fn encode_header(symbols: &[&str], blocks: &[TraceBlock]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + symbols.iter().map(|s| s.len() + 2).sum::<usize>());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    put_uvarint(&mut out, symbols.len() as u64);
    for s in symbols {
        put_uvarint(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    put_uvarint(&mut out, blocks.len() as u64);
    for b in blocks {
        put_uvarint(&mut out, b.addr);
        put_uvarint(&mut out, b.size);
        put_uvarint(&mut out, u64::from(b.alloc_tid));
        out.push(u8::from(b.freed));
    }
    out
}

/// Decode the header, leaving the cursor at the first epoch frame.
pub fn decode_header(c: &mut Cursor<'_>) -> Result<TraceHeader, TraceError> {
    let magic = c.bytes(MAGIC.len()).map_err(|_| TraceError::BadMagic)?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = c.u32_le()?;
    if version != VERSION {
        return Err(TraceError::BadVersion { found: version, expected: VERSION });
    }
    let nsyms = c.count("symbol", 1)?;
    let mut symbols = Vec::with_capacity(nsyms);
    for _ in 0..nsyms {
        let len = c.count("symbol byte", 1)?;
        let bytes = c.bytes(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| c.corrupt("symbol is not UTF-8"))?;
        symbols.push(s.to_string());
    }
    let nblocks = c.count("initial block", 4)?;
    let mut initial_blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let addr = c.uvarint()?;
        let size = c.uvarint()?;
        let alloc_tid = c.uvarint()?;
        if alloc_tid >= MAX_THREADS {
            return Err(c.corrupt("initial block alloc tid exceeds cap"));
        }
        let freed = match c.u8()? {
            0 => false,
            1 => true,
            other => return Err(c.corrupt(format!("bad freed flag {other}"))),
        };
        initial_blocks.push(TraceBlock { addr, size, alloc_tid: alloc_tid as u32, freed });
    }
    Ok(TraceHeader { version, symbols, initial_blocks })
}

/// Encode an epoch snapshot (the part between the frame tag/index and the
/// payload length).
pub fn encode_snapshot(out: &mut Vec<u8>, snap: &EpochSnapshot) {
    put_uvarint(out, snap.threads.len() as u64);
    for t in &snap.threads {
        put_uvarint(out, t.seq);
        put_uvarint(out, t.held.len() as u64);
        for h in &t.held {
            put_uvarint(out, u64::from(h.sync.0));
            out.push(sync_kind_byte(h.kind));
            out.push(u8::from(h.mode == AcqMode::Shared));
            put_uvarint(out, u64::from(h.count));
            put_uvarint(out, u64::from(h.loc.file.0));
            put_uvarint(out, u64::from(h.loc.line));
            put_uvarint(out, u64::from(h.loc.func.0));
        }
    }
}

/// Decode an epoch snapshot (cursor positioned just after the epoch
/// index varint).
pub fn decode_snapshot(
    c: &mut Cursor<'_>,
    index: u64,
    nsyms: u32,
) -> Result<EpochSnapshot, TraceError> {
    let nthreads = c.count("thread snapshot", 2)?;
    if nthreads as u64 >= MAX_THREADS {
        return Err(c.corrupt("snapshot thread count exceeds cap"));
    }
    let mut threads = Vec::with_capacity(nthreads);
    for _ in 0..nthreads {
        let seq = c.uvarint()?;
        let nheld = c.count("held lock", 7)?;
        let mut held = Vec::with_capacity(nheld);
        for _ in 0..nheld {
            let sync = get_sync(c)?;
            let kind = {
                let b = c.u8()?;
                sync_kind_from(b, c)?
            };
            let mode = if c.u8()? != 0 { AcqMode::Shared } else { AcqMode::Exclusive };
            let count = c.uvarint()?;
            let count = u32::try_from(count).map_err(|_| c.corrupt("held count exceeds u32"))?;
            let file = get_sym(c, nsyms, "held lock file")?;
            let line = c.uvarint()?;
            let line = u32::try_from(line).map_err(|_| c.corrupt("held lock line exceeds u32"))?;
            let func = get_sym(c, nsyms, "held lock func")?;
            held.push(HeldLock { sync, kind, mode, count, loc: SrcLoc { file, line, func } });
        }
        threads.push(ThreadSnap { seq, held });
    }
    Ok(EpochSnapshot { index, threads })
}

fn block_on_tag(on: BlockOn) -> (u8, u64) {
    match on {
        BlockOn::Mutex(s) => (0, u64::from(s.0)),
        BlockOn::RwRead(s) => (1, u64::from(s.0)),
        BlockOn::RwWrite(s) => (2, u64::from(s.0)),
        BlockOn::Cond(s) => (3, u64::from(s.0)),
        BlockOn::Sem(s) => (4, u64::from(s.0)),
        BlockOn::QueuePut(s) => (5, u64::from(s.0)),
        BlockOn::QueueGet(s) => (6, u64::from(s.0)),
        BlockOn::Join(t) => (7, u64::from(t.0)),
    }
}

fn block_on_from(tag: u8, id: u64, c: &Cursor<'_>) -> Result<BlockOn, TraceError> {
    let sid = || u32::try_from(id).map(SyncId).map_err(|_| c.corrupt("wait id exceeds u32"));
    Ok(match tag {
        0 => BlockOn::Mutex(sid()?),
        1 => BlockOn::RwRead(sid()?),
        2 => BlockOn::RwWrite(sid()?),
        3 => BlockOn::Cond(sid()?),
        4 => BlockOn::Sem(sid()?),
        5 => BlockOn::QueuePut(sid()?),
        6 => BlockOn::QueueGet(sid()?),
        7 => {
            if id >= MAX_THREADS {
                return Err(c.corrupt("wait target tid exceeds cap"));
            }
            BlockOn::Join(ThreadId(id as u32))
        }
        other => return Err(c.corrupt(format!("bad wait tag {other}"))),
    })
}

/// Encode the footer body (everything after [`TAG_FOOTER`], before the
/// checksum and end magic).
pub fn encode_footer_body(out: &mut Vec<u8>, f: &TraceFooter) {
    put_uvarint(out, f.events);
    put_uvarint(out, f.epochs);
    put_uvarint(out, f.slots);
    match &f.termination {
        TraceTermination::AllExited => out.push(0),
        TraceTermination::Deadlock(waits) => {
            out.push(1);
            put_uvarint(out, waits.len() as u64);
            for w in waits {
                put_uvarint(out, u64::from(w.tid));
                let (tag, id) = block_on_tag(w.on);
                out.push(tag);
                put_uvarint(out, id);
                put_uvarint(out, w.holders.len() as u64);
                for h in &w.holders {
                    put_uvarint(out, u64::from(*h));
                }
            }
        }
        TraceTermination::GuestError(msg) => {
            out.push(2);
            put_uvarint(out, msg.len() as u64);
            out.extend_from_slice(msg.as_bytes());
        }
        TraceTermination::FuelExhausted => out.push(3),
        TraceTermination::Unknown => out.push(4),
    }
    match &f.faults {
        None => out.push(0),
        Some(fs) => {
            out.push(1);
            for v in [
                fs.spurious_wakeups,
                fs.lock_failures,
                fs.alloc_failures,
                fs.kills,
                fs.leaked_locks,
                fs.leaked_bytes,
            ] {
                put_uvarint(out, v);
            }
        }
    }
}

/// Decode the footer body (cursor positioned just after [`TAG_FOOTER`]).
pub fn decode_footer_body(c: &mut Cursor<'_>) -> Result<TraceFooter, TraceError> {
    let events = c.uvarint()?;
    let epochs = c.uvarint()?;
    let slots = c.uvarint()?;
    let termination = match c.u8()? {
        0 => TraceTermination::AllExited,
        1 => {
            let nwaits = c.count("deadlock wait", 4)?;
            let mut waits = Vec::with_capacity(nwaits);
            for _ in 0..nwaits {
                let tid = c.uvarint()?;
                if tid >= MAX_THREADS {
                    return Err(c.corrupt("wait tid exceeds cap"));
                }
                let tag = c.u8()?;
                let id = c.uvarint()?;
                let on = block_on_from(tag, id, c)?;
                let nholders = c.count("wait holder", 1)?;
                let mut holders = Vec::with_capacity(nholders);
                for _ in 0..nholders {
                    let h = c.uvarint()?;
                    if h >= MAX_THREADS {
                        return Err(c.corrupt("holder tid exceeds cap"));
                    }
                    holders.push(h as u32);
                }
                waits.push(TraceWait { tid: tid as u32, on, holders });
            }
            TraceTermination::Deadlock(waits)
        }
        2 => {
            let len = c.count("guest error byte", 1)?;
            let bytes = c.bytes(len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| c.corrupt("guest error not UTF-8"))?;
            TraceTermination::GuestError(s.to_string())
        }
        3 => TraceTermination::FuelExhausted,
        4 => TraceTermination::Unknown,
        other => return Err(c.corrupt(format!("bad termination tag {other}"))),
    };
    let faults = match c.u8()? {
        0 => None,
        1 => {
            let mut vals = [0u64; 6];
            for v in &mut vals {
                *v = c.uvarint()?;
            }
            Some(TraceFaultStats {
                spurious_wakeups: vals[0],
                lock_failures: vals[1],
                alloc_failures: vals[2],
                kills: vals[3],
                leaked_locks: vals[4],
                leaked_bytes: vals[5],
            })
        }
        other => return Err(c.corrupt(format!("bad fault-stats flag {other}"))),
    };
    Ok(TraceFooter { events, epochs, slots, termination, faults })
}
