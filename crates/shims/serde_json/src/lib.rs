//! Offline stand-in for `serde_json`, rendering the `serde` shim's value
//! model. Covers `json!`, `to_string`, `to_string_pretty`, and
//! `to_value` — the surface this workspace uses.

pub use serde::Value;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize to pretty JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty_into(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value into the JSON value model.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn pretty_into(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                pretty_into(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                out.push_str(&Value::Str(k.clone()).to_string());
                out.push_str(": ");
                pretty_into(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Error type for signature compatibility; serialization here is total.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Build a `Value` from JSON-ish syntax. Keys may be identifiers or
/// string literals; values are any serializable expression, nested
/// `{...}` objects, or `[...]` arrays.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($crate::json_key!($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

/// Normalize a `json!` object key (identifier or string literal) to `&str`.
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        $key
    };
    ($key:ident) => {
        stringify!($key)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let name = "run";
        let v = json!({
            "experiment": name,
            "count": 3,
            "nested": { "ok": true, "xs": [1, 2] },
        });
        assert_eq!(
            v.to_string(),
            r#"{"experiment":"run","count":3,"nested":{"ok":true,"xs":[1,2]}}"#
        );
    }

    #[test]
    fn pretty_indents() {
        let v = json!({ "a": [1] });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
