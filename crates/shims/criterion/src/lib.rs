//! Offline stand-in for `criterion`: a minimal timing harness behind the
//! benchmark-group API this workspace uses. It warms each benchmark up,
//! times `sample_size` batches, and prints median time per iteration —
//! no statistics, plots, or baselines.

use std::time::Instant;

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name, sample_size }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size;
        run_bench(&name.into(), samples, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { times_ns: Vec::new() };
    // One warmup pass, then the measured samples.
    f(&mut b);
    b.times_ns.clear();
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    b.times_ns.sort_unstable();
    let median = b.times_ns[b.times_ns.len() / 2];
    eprintln!("bench {name}: median {} per iter over {} samples", fmt_ns(median), samples);
}

pub struct Bencher {
    times_ns: Vec<u128>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.times_ns.push(start.elapsed().as_nanos());
    }
}

/// Identity function that defeats constant-folding well enough for a shim.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
