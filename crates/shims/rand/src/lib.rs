//! Offline stand-in for the `rand` crate: a seeded xoshiro256** generator
//! behind the small slice of the rand 0.10 API this workspace uses
//! (`StdRng`, `SeedableRng::seed_from_u64`, `RngExt::random_range`).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256** generator (the statistical properties of
    /// the real StdRng are irrelevant here; determinism per seed is what
    /// the workload generator needs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Seeding, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

/// A range a uniform sample can be drawn from.
pub trait UniformRange {
    type Output;
    fn sample(&self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize);

/// The sampling methods of rand 0.10's `Rng` extension trait.
pub trait RngExt {
    fn random_range<R: UniformRange>(&mut self, range: R) -> R::Output;
    fn random_bool(&mut self, p: f64) -> bool;
    fn random<T: Standard>(&mut self) -> T;
}

/// Types with a full-width "standard" distribution.
pub trait Standard {
    fn standard(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn standard(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RngExt for StdRng {
    fn random_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..10).map(|_| a.random_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..10).map(|_| b.random_range(0..1000u32)).collect();
        let vc: Vec<u32> = (0..10).map(|_| c.random_range(0..1000u32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = r.random_range(1..=6u8);
            assert!((1..=6).contains(&w));
        }
    }
}
