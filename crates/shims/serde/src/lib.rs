//! Offline stand-in for `serde`: a self-contained JSON value model and a
//! `Serialize` trait rendered by `serde_json`. `derive(Serialize)` comes
//! from the sibling `serde_derive` proc-macro crate; `derive(Deserialize)`
//! is accepted and inert (nothing in this workspace parses JSON back).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string())
                } else {
                    out.push_str("null")
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.render_into(&mut s);
        f.write_str(&s)
    }
}

/// Conversion to the JSON value model (the shim's whole serialization
/// story; there is no `Serializer` plumbing to thread through).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Inert marker so `use serde::Deserialize` and `derive(Deserialize)`
/// keep compiling (the macro of the same name lives in the macro
/// namespace; this trait fills the type namespace).
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(3)),
            ("s".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"n":3,"s":"a\"b","xs":[true,null]}"#);
    }

    #[test]
    fn primitive_conversions() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(Some("x").to_value(), Value::Str("x".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!((1u32, "a").to_value().to_string(), r#"[1,"a"]"#);
    }
}
