//! Offline stand-in for `proptest`: deterministic random generation behind
//! the proptest API surface this workspace uses. No shrinking — a failing
//! case panics with the generated inputs' Debug rendering instead, which
//! is enough to reproduce (generation is seeded from the test name).
//!
//! Covered: `Strategy` (generate/`prop_map`/`prop_recursive`/`boxed`),
//! ranges and `&str` regex-lite patterns as strategies, tuples to 6,
//! `Just`, `any`, `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! `prop::sample::Index`, `ProptestConfig`, `TestCaseError`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Deterministic xoshiro256** generator seeded from the test name.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        let mut x = h.finish() | 1;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { gen: Arc::new(move |rng| self.generate(rng)) }
    }

    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy { gen: Arc::new(move |rng| f(self.generate(rng))) }
    }

    /// Recursive strategies: `depth` levels of `f` over the leaf. The two
    /// size-tuning parameters of the real API are accepted and ignored —
    /// recursion is bounded by `depth` alone here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = f(strat).boxed();
            let l = leaf.clone();
            strat = BoxedStrategy {
                gen: Arc::new(move |rng: &mut TestRng| {
                    if rng.below(4) == 0 {
                        l.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        strat
    }
}

/// Type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Arc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of an `Arbitrary` type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `&str` as a regex-lite string strategy. Supported syntax: literal
/// characters, `[...]` classes (with `a-z` ranges and `\n`/`\t`/`\r`/`\\`
/// escapes), `\PC` (printable), each optionally starred.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (class, starred) in &atoms {
            let reps = if *starred { rng.below(40) } else { 1 };
            for _ in 0..reps {
                if !class.is_empty() {
                    out.push(class[rng.below(class.len() as u64) as usize]);
                }
            }
        }
        out
    }
}

fn printable_class() -> Vec<char> {
    (b' '..=b'~').map(char::from).collect()
}

fn parse_pattern(pat: &str) -> Vec<(Vec<char>, bool)> {
    let mut atoms: Vec<(Vec<char>, bool)> = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let class = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                while let Some(cc) = chars.next() {
                    match cc {
                        ']' => break,
                        '\\' => {
                            let esc = match chars.next() {
                                Some('n') => '\n',
                                Some('t') => '\t',
                                Some('r') => '\r',
                                Some(other) => other,
                                None => break,
                            };
                            class.push(esc);
                            prev = Some(esc);
                        }
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let hi = chars.next().unwrap();
                            let lo = prev.take().unwrap();
                            for v in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(v) {
                                    class.push(ch);
                                }
                            }
                        }
                        other => {
                            class.push(other);
                            prev = Some(other);
                        }
                    }
                }
                class
            }
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: not-a-control-character.
                    chars.next();
                    printable_class()
                }
                Some('n') => vec!['\n'],
                Some('t') => vec!['\t'],
                Some('r') => vec!['\r'],
                Some(other) => vec![other],
                None => break,
            },
            '.' => printable_class(),
            other => vec![other],
        };
        let starred = chars.peek() == Some(&'*');
        if starred {
            chars.next();
        }
        atoms.push((class, starred));
    }
    atoms
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Collection size specification, built from ranges.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { elem: self.elem.clone(), size: self.size }
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: a small element universe may not reach n.
            for _ in 0..(3 * n + 8) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.elem.generate(rng));
            }
            set
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy { inner: self.inner.clone() }
        }
    }

    /// `None` one time in four, like the real default weighting's spirit.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", msg.into()))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };

    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case_no in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!("" $(, "\n  ", stringify!($arg), " = {:?}")*)
                    $(, &$arg)*
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case_no + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::deterministic("t");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::deterministic("t2");
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-c]*", &mut rng);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let p = Strategy::generate(&"\\PC*", &mut rng);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_machinery_works(
            n in 1u64..50,
            xs in prop::collection::vec(0u8..4, 0..5),
            choice in prop_oneof![Just(0u8), Just(1u8)],
            maybe in prop::option::of(0usize..3),
            flag in any::<bool>(),
        ) {
            prop_assert!(n >= 1 && n < 50);
            prop_assert!(xs.len() < 5, "len was {}", xs.len());
            prop_assert!(choice <= 1);
            if let Some(m) = maybe {
                prop_assert!(m < 3);
            }
            prop_assert_eq!(flag, flag);
        }
    }
}
