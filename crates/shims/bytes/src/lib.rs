//! Offline stand-in for the `bytes` crate, covering the slice the `vexec`
//! trace codec uses: `BytesMut` as an append-only encode buffer, `Bytes` as
//! a cheaply-cloneable consume-from-the-front decode view, and the
//! `Buf`/`BufMut` trait methods for little-endian integers.

use std::sync::Arc;

/// Immutable shared byte buffer with a consuming read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0 }
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes), start: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Sub-view of the remaining bytes (copies; this is a shim).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of range");
        Bytes::from(self.as_slice()[lo..hi].to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0 }
    }
}

/// Growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read access to a buffer, consuming from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.as_slice()[0];
        self.start += 1;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.as_slice()[..4].try_into().unwrap());
        self.start += 4;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.as_slice()[..8].try_into().unwrap());
        self.start += 8;
        v
    }
}

/// Append access to a buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clone_is_independent_cursor() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u8(2);
        let a = b.freeze();
        let mut c = a.clone();
        assert_eq!(c.get_u8(), 1);
        assert_eq!(a.len(), 2, "clone consumption does not affect the original");
        assert_eq!(c.len(), 1);
    }
}
