//! Derive macros for the offline serde stand-in. `Serialize` is generated
//! by walking the raw token stream (no `syn` available offline):
//!
//! * named-field structs serialize to an object of their fields;
//! * enums serialize to their `Debug` rendering (every derived enum in
//!   this workspace is fieldless, so that is exactly the variant name);
//! * generics are not supported — nothing in the workspace derives on a
//!   generic type.
//!
//! `Deserialize` only implements the inert `serde::Deserialize` marker.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to, plus what we need from it.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String },
}

/// Minimal token-level parse of a struct/enum item.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`), visibility, and anything before the
    // `struct`/`enum` keyword.
    let kind = loop {
        match &tokens[i] {
            TokenTree::Ident(id) if *id.to_string() == *"struct" => break "struct",
            TokenTree::Ident(id) if *id.to_string() == *"enum" => break "enum",
            _ => i += 1,
        }
        assert!(i < tokens.len(), "derive input has no struct/enum keyword");
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    if kind == "enum" {
        return Item::Enum { name };
    }
    // Find the brace-delimited field block (skipping generics — none used).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive(Serialize) supports only named-field structs");
    Item::Struct { name, fields: field_names(body) }
}

/// Field names of a named-field struct body: for each top-level
/// comma-separated segment (commas inside `<...>` or any group don't
/// count), the last ident before the first `:`.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut seen_colon = false;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                last_ident = None;
                seen_colon = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && angle_depth == 0 && !seen_colon => {
                seen_colon = true;
                if let Some(name) = last_ident.take() {
                    fields.push(name);
                }
            }
            TokenTree::Ident(id) if !seen_colon => {
                let s = id.to_string();
                if s != "pub" && s != "crate" && s != "r#" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::Enum { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Str(format!(\"{{self:?}}\"))\n\
                 }}\n\
             }}"
        ),
    };
    body.parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. } | Item::Enum { name } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}").parse().unwrap()
}
