//! The automatic delete-annotation transform (§3.1, Fig 4).
//!
//! "It is done by annotating every delete operation in the source code of
//! the program in order to mark deleted memory for the race detection as
//! exclusively owned by the running thread." The transform is unsupervised:
//! it rewrites every `delete p;` to `delete ca_deletor_single(p);`, where
//! the helper issues `VALGRIND_HG_DESTRUCT(p, sizeof(*p))` before the
//! destructor runs. Translation units whose source is unavailable are
//! simply not transformed — they keep producing destructor false positives,
//! exactly as the paper describes.

use crate::ast::{Stmt, Unit};

/// Annotate every `delete` in a unit. Returns the number of delete sites
/// rewritten.
pub fn annotate_unit(unit: &mut Unit) -> usize {
    let mut count = 0;
    for f in &mut unit.functions {
        count += annotate_stmts(&mut f.body);
    }
    count
}

fn annotate_stmts(stmts: &mut [Stmt]) -> usize {
    let mut count = 0;
    for s in stmts {
        match s {
            Stmt::Delete { annotated, .. } if !*annotated => {
                *annotated = true;
                count += 1;
            }
            Stmt::If { then_branch, else_branch, .. } => {
                count += annotate_stmts(then_branch);
                count += annotate_stmts(else_branch);
            }
            Stmt::While { body, .. } => {
                count += annotate_stmts(body);
            }
            _ => {}
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::render;
    use crate::parser::parse;

    #[test]
    fn annotates_all_deletes_including_nested() {
        let src = "
void g(Msg* p, Msg* q, int c) {
    if (c > 0) {
        delete p;
    } else {
        while (c < 0) {
            c = c + 1;
            delete q;
        }
    }
    delete p;
}
";
        let mut unit = parse(src).unwrap();
        let n = annotate_unit(&mut unit);
        assert_eq!(n, 3);
        // Idempotent.
        assert_eq!(annotate_unit(&mut unit), 0);
    }

    #[test]
    fn fig4_roundtrip() {
        // The paper's example: original → annotated source.
        let src = "void g(char* p) { delete p; }";
        let mut unit = parse(src).unwrap();
        annotate_unit(&mut unit);
        let annotated = render(&unit);
        assert!(annotated.contains("#include <valgrind/helgrind.h>"));
        assert!(annotated.contains("inline Type* ca_deletor_single(Type* object)"));
        assert!(annotated.contains("VALGRIND_HG_DESTRUCT(object, sizeof(Type));"));
        assert!(annotated.contains("delete ca_deletor_single(p);"));
    }

    #[test]
    fn unit_without_deletes_unchanged() {
        let src = "void f() { int x = 1; }";
        let mut unit = parse(src).unwrap();
        assert_eq!(annotate_unit(&mut unit), 0);
        assert!(!render(&unit).contains("helgrind"));
    }
}
