//! Semantic analysis and code generation: mini-C++ AST → `vexec` IR.
//!
//! Classes lower through `cxxmodel::ClassModel`, so `new`/`delete` emit the
//! real constructor/destructor chains (vptr writes) — annotated deletes
//! additionally emit `VALGRIND_HG_DESTRUCT`. Globals become guest memory
//! cells, locals become registers, and the pthread-shaped statements map
//! to the VM's thread and mutex operations.

use crate::ast::*;
use cxxmodel::classes::{ClassId, ClassModel};
use std::collections::HashMap;
use vexec::ir::builder::{ProcBuilder, ProgramBuilder};
use vexec::ir::Program;
use vexec::ir::{Cond, Expr as VExpr, GlobalId, ProcId, RegId};

/// A semantic/codegen error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemaError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error at line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: u32, message: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError { line, message: message.into() })
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VarKind {
    Int,
    Ptr(ClassId),
    Thread,
}

struct FuncSig {
    proc: ProcId,
    params: Vec<VarKind>,
    returns_int: bool,
}

/// Compilation context shared across translation units (the "linker").
struct Cx {
    classes: ClassModel,
    class_ids: HashMap<String, ClassId>,
    /// Field name → index, per class (inherited fields included).
    fields: HashMap<ClassId, HashMap<String, u32>>,
    globals: HashMap<String, (GlobalKind, GlobalId)>,
    funcs: HashMap<String, FuncSig>,
}

/// Compile one or more parsed units (with their file names for source
/// locations) into an executable guest program. The entry point is the
/// function `main`, which must take no parameters.
pub fn compile(units: &[(Unit, String)]) -> Result<Program, SemaError> {
    let mut pb = ProgramBuilder::new();
    let mut cx = Cx {
        classes: ClassModel::new(),
        class_ids: HashMap::new(),
        fields: HashMap::new(),
        globals: HashMap::new(),
        funcs: HashMap::new(),
    };

    // Pass 1: declare classes (bases must appear before derived classes,
    // possibly in an earlier unit).
    for (unit, file) in units {
        for c in &unit.classes {
            if cx.class_ids.contains_key(&c.name) {
                return err(c.line, format!("class {} defined twice", c.name));
            }
            let base = match &c.base {
                None => None,
                Some(b) => Some(
                    *cx.class_ids
                        .get(b)
                        .ok_or(SemaError { line: c.line, message: format!("unknown base {b}") })?,
                ),
            };
            let id =
                cx.classes.declare(&mut pb, &c.name, file, c.line, base, c.fields.len() as u32);
            cx.class_ids.insert(c.name.clone(), id);
            // Field table: inherited fields first (same order as layout).
            let mut table = match base {
                Some(b) => cx.fields[&b].clone(),
                None => HashMap::new(),
            };
            let base_count = base.map(|b| cx.classes.total_fields(b)).unwrap_or(0);
            for (i, f) in c.fields.iter().enumerate() {
                if table.insert(f.clone(), base_count + i as u32).is_some() {
                    return err(c.line, format!("field {f} shadows an inherited field"));
                }
            }
            cx.fields.insert(id, table);
        }
    }

    // Pass 2: declare globals and function signatures.
    for (unit, _) in units {
        for g in &unit.globals {
            if cx.globals.contains_key(&g.name) {
                return err(g.line, format!("global {} defined twice", g.name));
            }
            let gid = pb.global(&g.name, 8);
            cx.globals.insert(g.name.clone(), (g.kind.clone(), gid));
        }
        for f in &unit.functions {
            if cx.funcs.contains_key(&f.name) {
                return err(f.line, format!("function {} defined twice", f.name));
            }
            let proc = pb.declare_proc(&f.name);
            let mut params = Vec::new();
            for (ty, _) in &f.params {
                params.push(match ty {
                    ParamType::Int => VarKind::Int,
                    ParamType::Ptr(c) => VarKind::Ptr(*cx.class_ids.get(c).ok_or(SemaError {
                        line: f.line,
                        message: format!("unknown class {c} in parameter"),
                    })?),
                });
            }
            cx.funcs.insert(f.name.clone(), FuncSig { proc, params, returns_int: f.returns_int });
        }
    }

    let main_sig =
        cx.funcs.get("main").ok_or(SemaError { line: 1, message: "no `main` function".into() })?;
    if !main_sig.params.is_empty() {
        return err(1, "`main` must take no parameters");
    }
    let entry = main_sig.proc;

    // Pass 3: generate bodies.
    for (unit, file) in units {
        for f in &unit.functions {
            let proc_id = cx.funcs[&f.name].proc;
            let mut gen = FuncGen::new(&cx, &mut pb, f, file)?;
            if f.name == "main" {
                gen.emit_global_init(&mut pb);
            }
            gen.body(&mut pb, &f.body)?;
            let FuncGen { proc, .. } = gen;
            pb.define_proc(proc_id, proc);
        }
    }

    pb.set_entry(entry);
    Ok(pb.finish())
}

struct FuncGen<'cx> {
    cx: &'cx Cx,
    proc: ProcBuilder,
    file: String,
    func_name: String,
    locals: Vec<HashMap<String, (VarKind, RegId)>>,
}

impl<'cx> FuncGen<'cx> {
    fn new(
        cx: &'cx Cx,
        pb: &mut ProgramBuilder,
        f: &FuncDef,
        file: &str,
    ) -> Result<Self, SemaError> {
        let mut proc = ProcBuilder::new(f.params.len() as u16);
        let loc = pb.loc(file, f.line, &f.name);
        proc.at(loc);
        let mut scope = HashMap::new();
        for (i, (ty, name)) in f.params.iter().enumerate() {
            let kind = match ty {
                ParamType::Int => VarKind::Int,
                ParamType::Ptr(c) => VarKind::Ptr(cx.class_ids[c]),
            };
            scope.insert(name.clone(), (kind, proc.param(i as u16)));
        }
        Ok(FuncGen {
            cx,
            proc,
            file: file.to_string(),
            func_name: f.name.clone(),
            locals: vec![scope],
        })
    }

    /// main()'s prologue: create every global mutex and zero int globals.
    fn emit_global_init(&mut self, pb: &mut ProgramBuilder) {
        let loc = pb.loc("<startup>", 0, "__global_init");
        self.proc.at(loc);
        let mut names: Vec<&String> = self.cx.globals.keys().collect();
        names.sort(); // deterministic order
        for name in names {
            let (kind, gid) = &self.cx.globals[name];
            match kind {
                GlobalKind::Mutex => {
                    let m = self.proc.new_mutex();
                    self.proc.store(*gid, m, 8);
                }
                GlobalKind::RwLock => {
                    let r = self.proc.new_sync(vexec::ir::SyncKind::RwLock, 0u64);
                    self.proc.store(*gid, r, 8);
                }
                GlobalKind::Int => {}
            }
        }
    }

    fn at_line(&mut self, pb: &mut ProgramBuilder, line: u32) {
        let loc = pb.loc(&self.file.clone(), line, &self.func_name.clone());
        self.proc.at(loc);
    }

    fn lookup(&self, name: &str) -> Option<(VarKind, RegId)> {
        for scope in self.locals.iter().rev() {
            if let Some(&v) = scope.get(name) {
                return Some(v);
            }
        }
        None
    }

    fn declare_local(&mut self, name: &str, kind: VarKind, line: u32) -> Result<RegId, SemaError> {
        if self.locals.last().unwrap().contains_key(name) {
            return err(line, format!("variable {name} redeclared"));
        }
        let r = self.proc.reg();
        self.locals.last_mut().unwrap().insert(name.to_string(), (kind, r));
        Ok(r)
    }

    fn body(&mut self, pb: &mut ProgramBuilder, stmts: &[Stmt]) -> Result<(), SemaError> {
        self.locals.push(HashMap::new());
        for s in stmts {
            self.stmt(pb, s)?;
        }
        self.locals.pop();
        Ok(())
    }

    fn stmt(&mut self, pb: &mut ProgramBuilder, s: &Stmt) -> Result<(), SemaError> {
        let line = s.line();
        self.at_line(pb, line);
        match s {
            Stmt::LetInt { name, value, .. } => {
                let v = self.expr_value(pb, value, line)?;
                let r = self.declare_local(name, VarKind::Int, line)?;
                self.proc.assign(r, v);
                Ok(())
            }
            Stmt::LetPtr { class, name, value, .. } => {
                let cid = *self
                    .cx
                    .class_ids
                    .get(class)
                    .ok_or(SemaError { line, message: format!("unknown class {class}") })?;
                let v = self.expr_value(pb, value, line)?;
                let r = self.declare_local(name, VarKind::Ptr(cid), line)?;
                self.proc.assign(r, v);
                Ok(())
            }
            Stmt::LetThread { name, func, args, .. } => {
                let sig = self
                    .cx
                    .funcs
                    .get(func)
                    .ok_or(SemaError { line, message: format!("unknown function {func}") })?;
                if sig.params.len() != args.len() {
                    return err(line, format!("{func} expects {} arguments", sig.params.len()));
                }
                let mut vargs = Vec::new();
                for a in args {
                    vargs.push(self.expr_value(pb, a, line)?);
                }
                let h = self.proc.spawn(sig.proc, vargs);
                let r = self.declare_local(name, VarKind::Thread, line)?;
                self.proc.assign(r, VExpr::Reg(h));
                Ok(())
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.expr_value(pb, value, line)?;
                if let Some((kind, r)) = self.lookup(name) {
                    if kind == VarKind::Thread {
                        return err(line, "cannot assign to a thread handle");
                    }
                    self.proc.assign(r, v);
                    Ok(())
                } else if let Some((gk, gid)) = self.cx.globals.get(name) {
                    if *gk != GlobalKind::Int {
                        return err(line, format!("cannot assign to mutex {name}"));
                    }
                    self.proc.store(*gid, v, 8);
                    Ok(())
                } else {
                    err(line, format!("unknown variable {name}"))
                }
            }
            Stmt::FieldAssign { base, field, value, .. } => {
                let (addr, _) = self.field_addr(base, field, line)?;
                let v = self.expr_value(pb, value, line)?;
                self.proc.store(addr, v, 8);
                Ok(())
            }
            Stmt::VirtualCall { base, .. } => {
                // Dispatch reads the vptr; the method body is opaque.
                let (kind, r) = self
                    .lookup(base)
                    .ok_or(SemaError { line, message: format!("unknown variable {base}") })?;
                let VarKind::Ptr(_) = kind else {
                    return err(line, format!("{base} is not a pointer"));
                };
                let _vptr = self.proc.load_new(VExpr::Reg(r), 8);
                Ok(())
            }
            Stmt::Delete { ptr, annotated, .. } => {
                let (kind, r) = self
                    .lookup(ptr)
                    .ok_or(SemaError { line, message: format!("unknown variable {ptr}") })?;
                let VarKind::Ptr(cid) = kind else {
                    return err(line, format!("delete of non-pointer {ptr}"));
                };
                self.cx.classes.emit_delete(&mut self.proc, r, cid, *annotated, None);
                Ok(())
            }
            Stmt::Lock { mutex, .. } | Stmt::Unlock { mutex, .. } => {
                let (gk, gid) = self
                    .cx
                    .globals
                    .get(mutex)
                    .ok_or(SemaError { line, message: format!("unknown mutex {mutex}") })?;
                if *gk != GlobalKind::Mutex {
                    return err(line, format!("{mutex} is not a mutex"));
                }
                let h = self.proc.load_new(*gid, 8);
                if matches!(s, Stmt::Lock { .. }) {
                    self.proc.lock(h);
                } else {
                    self.proc.unlock(h);
                }
                Ok(())
            }
            Stmt::RdLock { rwlock, .. }
            | Stmt::WrLock { rwlock, .. }
            | Stmt::RwUnlock { rwlock, .. } => {
                let (gk, gid) = self
                    .cx
                    .globals
                    .get(rwlock)
                    .ok_or(SemaError { line, message: format!("unknown rwlock {rwlock}") })?;
                if *gk != GlobalKind::RwLock {
                    return err(line, format!("{rwlock} is not a rwlock"));
                }
                let h = self.proc.load_new(*gid, 8);
                let op = match s {
                    Stmt::RdLock { .. } => vexec::ir::SyncOp::RwLockRead(VExpr::Reg(h)),
                    Stmt::WrLock { .. } => vexec::ir::SyncOp::RwLockWrite(VExpr::Reg(h)),
                    _ => vexec::ir::SyncOp::RwUnlock(VExpr::Reg(h)),
                };
                self.proc.sync(op);
                Ok(())
            }
            Stmt::AtomicInc { target, .. } => {
                let addr = match target {
                    Expr::Var(name) => {
                        let (gk, gid) = self.cx.globals.get(name).ok_or(SemaError {
                            line,
                            message: format!("atomic_inc target {name} must be a global"),
                        })?;
                        if *gk != GlobalKind::Int {
                            return err(line, "atomic_inc target must be an int");
                        }
                        VExpr::Global(*gid)
                    }
                    Expr::Field { base, field } => self.field_addr(base, field, line)?.0,
                    _ => return err(line, "atomic_inc needs a variable or field"),
                };
                self.proc.atomic_rmw(None, addr, 1u64, 8);
                Ok(())
            }
            Stmt::Join { thread, .. } => {
                let (kind, r) = self
                    .lookup(thread)
                    .ok_or(SemaError { line, message: format!("unknown variable {thread}") })?;
                if kind != VarKind::Thread {
                    return err(line, format!("{thread} is not a thread handle"));
                }
                self.proc.join(VExpr::Reg(r));
                Ok(())
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                let c = self.cond_value(pb, cond, line)?;
                self.proc.begin_if(c);
                self.body(pb, then_branch)?;
                if !else_branch.is_empty() {
                    self.proc.begin_else();
                    self.body(pb, else_branch)?;
                }
                self.proc.end_if();
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                // Conditions may read memory, so they are materialised into
                // a register re-evaluated at the end of each iteration.
                let flag = self.proc.reg();
                let c = self.cond_value(pb, cond, line)?;
                self.emit_bool(flag, c);
                self.proc.begin_while(Cond::Ne(VExpr::Reg(flag), VExpr::Const(0)));
                self.body(pb, body)?;
                self.at_line(pb, line);
                let c = self.cond_value(pb, cond, line)?;
                self.emit_bool(flag, c);
                self.proc.end_while();
                Ok(())
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    None => None,
                    Some(e) => Some(self.expr_value(pb, e, line)?),
                };
                self.proc.ret(v);
                Ok(())
            }
            Stmt::Call { func, args, .. } => {
                self.emit_call(pb, func, args, line)?;
                Ok(())
            }
        }
    }

    fn emit_bool(&mut self, dst: RegId, cond: Cond) {
        self.proc.begin_if(cond);
        self.proc.assign(dst, 1u64);
        self.proc.begin_else();
        self.proc.assign(dst, 0u64);
        self.proc.end_if();
    }

    fn emit_call(
        &mut self,
        pb: &mut ProgramBuilder,
        func: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Option<RegId>, SemaError> {
        let sig = self
            .cx
            .funcs
            .get(func)
            .ok_or(SemaError { line, message: format!("unknown function {func}") })?;
        if sig.params.len() != args.len() {
            return err(line, format!("{func} expects {} arguments", sig.params.len()));
        }
        let proc_id = sig.proc;
        let returns_int = sig.returns_int;
        let mut vargs = Vec::new();
        for a in args {
            vargs.push(self.expr_value(pb, a, line)?);
        }
        let dst = if returns_int { Some(self.proc.reg()) } else { None };
        self.proc.call(proc_id, vargs, dst);
        Ok(dst)
    }

    /// Address of `base->field` (emits the pointer register lookup).
    fn field_addr(
        &mut self,
        base: &str,
        field: &str,
        line: u32,
    ) -> Result<(VExpr, ClassId), SemaError> {
        let (kind, r) = self
            .lookup(base)
            .ok_or(SemaError { line, message: format!("unknown variable {base}") })?;
        let VarKind::Ptr(cid) = kind else {
            return err(line, format!("{base} is not a pointer"));
        };
        let idx = *self.cx.fields[&cid]
            .get(field)
            .ok_or(SemaError { line, message: format!("no field {field} in class") })?;
        let off = self.cx.classes.field_offset(cid, idx);
        Ok((VExpr::offset(r, off), cid))
    }

    /// Evaluate an expression to a value (emitting loads as needed).
    fn expr_value(
        &mut self,
        pb: &mut ProgramBuilder,
        e: &Expr,
        line: u32,
    ) -> Result<VExpr, SemaError> {
        match e {
            Expr::Int(v) => Ok(VExpr::Const(*v)),
            Expr::Var(name) => {
                if let Some((kind, r)) = self.lookup(name) {
                    let _ = kind;
                    Ok(VExpr::Reg(r))
                } else if let Some((gk, gid)) = self.cx.globals.get(name) {
                    if *gk != GlobalKind::Int {
                        return err(line, format!("cannot read mutex {name} as a value"));
                    }
                    Ok(VExpr::Reg(self.proc.load_new(*gid, 8)))
                } else {
                    err(line, format!("unknown variable {name}"))
                }
            }
            Expr::Field { base, field } => {
                let (addr, _) = self.field_addr(base, field, line)?;
                Ok(VExpr::Reg(self.proc.load_new(addr, 8)))
            }
            Expr::New { class } => {
                let cid = *self
                    .cx
                    .class_ids
                    .get(class)
                    .ok_or(SemaError { line, message: format!("unknown class {class}") })?;
                let r = self.cx.classes.emit_new(&mut self.proc, cid);
                Ok(VExpr::Reg(r))
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.expr_value(pb, lhs, line)?;
                let r = self.expr_value(pb, rhs, line)?;
                match op {
                    BinOp::Add => Ok(l.add(r)),
                    BinOp::Sub => Ok(l.sub(r)),
                    BinOp::Mul => Ok(l.mul(r)),
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        let cond = match op {
                            BinOp::Eq => Cond::Eq(l, r),
                            BinOp::Ne => Cond::Ne(l, r),
                            BinOp::Lt => Cond::Lt(l, r),
                            BinOp::Le => Cond::Le(l, r),
                            BinOp::Gt => Cond::Gt(l, r),
                            BinOp::Ge => Cond::Ge(l, r),
                            _ => unreachable!(),
                        };
                        let dst = self.proc.reg();
                        self.emit_bool(dst, cond);
                        Ok(VExpr::Reg(dst))
                    }
                }
            }
            Expr::Call { func, args } => {
                let dst = self.emit_call(pb, func, args, line)?;
                match dst {
                    Some(r) => Ok(VExpr::Reg(r)),
                    None => err(line, format!("void function {func} used as a value")),
                }
            }
        }
    }

    /// Evaluate a condition directly (for `if`).
    fn cond_value(
        &mut self,
        pb: &mut ProgramBuilder,
        e: &Expr,
        line: u32,
    ) -> Result<Cond, SemaError> {
        if let Expr::Bin { op, lhs, rhs } = e {
            let cmp =
                matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge);
            if cmp {
                let l = self.expr_value(pb, lhs, line)?;
                let r = self.expr_value(pb, rhs, line)?;
                return Ok(match op {
                    BinOp::Eq => Cond::Eq(l, r),
                    BinOp::Ne => Cond::Ne(l, r),
                    BinOp::Lt => Cond::Lt(l, r),
                    BinOp::Le => Cond::Le(l, r),
                    BinOp::Gt => Cond::Gt(l, r),
                    BinOp::Ge => Cond::Ge(l, r),
                    _ => unreachable!(),
                });
            }
        }
        // Truthiness of an arbitrary expression.
        let v = self.expr_value(pb, e, line)?;
        Ok(Cond::Ne(v, VExpr::Const(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use vexec::sched::RoundRobin;
    use vexec::tool::{CountingTool, RecordingTool};
    use vexec::vm::run_program;
    use vexec::{AccessKind, Event};

    fn compile_one(src: &str) -> Program {
        let unit = parse(src).unwrap();
        compile(&[(unit, "test.cpp".to_string())]).unwrap()
    }

    #[test]
    fn compiles_and_runs_arithmetic() {
        let prog = compile_one(
            "int g_out;\nint square(int x) { return x * x; }\nvoid main() { g_out = square(7); }",
        );
        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        // The final store writes 49 — find it.
        let wrote_49 =
            rec.events.iter().any(|e| matches!(e, Event::Access { kind: AccessKind::Write, .. }));
        assert!(wrote_49);
    }

    #[test]
    fn new_emits_ctor_chain_and_delete_emits_dtor_chain() {
        let prog = compile_one(
            "
class Base { int a; virtual ~Base() {} };
class Msg : Base { int len; ~Msg() {} };
void main() {
    Msg* m = new Msg;
    m->len = 5;
    m->a = 2;
    delete m;
}
",
        );
        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        let allocs = rec.events.iter().filter(|e| matches!(e, Event::Alloc { .. })).count();
        let frees = rec.events.iter().filter(|e| matches!(e, Event::Free { .. })).count();
        assert_eq!(allocs, 1);
        assert_eq!(frees, 1);
        // ctor chain: 2 vptr writes; field stores: 2; dtor chain: 2.
        let writes = rec
            .events
            .iter()
            .filter(|e| matches!(e, Event::Access { kind: AccessKind::Write, .. }))
            .count();
        assert_eq!(writes, 6);
    }

    #[test]
    fn threads_and_locks_execute() {
        let prog = compile_one(
            "
mutex g_m;
int g_count;
void worker(int n) {
    int i = 0;
    while (i < n) {
        lock(g_m);
        g_count = g_count + 1;
        unlock(g_m);
        i = i + 1;
    }
}
void main() {
    thread a = spawn worker(10);
    thread b = spawn worker(10);
    join(a);
    join(b);
}
",
        );
        let mut tool = CountingTool::new();
        run_program(&prog, &mut tool, &mut RoundRobin::new()).expect_clean();
        assert_eq!(tool.count("acquire"), 20);
        assert_eq!(tool.count("thread-create"), 2);
    }

    #[test]
    fn atomic_inc_emits_rmw() {
        let prog = compile_one("int g_rc;\nvoid main() { atomic_inc(g_rc); atomic_inc(g_rc); }");
        let mut tool = CountingTool::new();
        run_program(&prog, &mut tool, &mut RoundRobin::new()).expect_clean();
        assert_eq!(tool.count("atomic-rmw"), 2);
    }

    #[test]
    fn annotated_delete_emits_client_request() {
        let src = "
class Msg { int len; virtual ~Msg() {} };
void main() { Msg* m = new Msg; delete m; }
";
        let mut unit = parse(src).unwrap();
        crate::annotate::annotate_unit(&mut unit);
        let prog = compile(&[(unit, "t.cpp".into())]).unwrap();
        let mut rec = RecordingTool::new();
        run_program(&prog, &mut rec, &mut RoundRobin::new()).expect_clean();
        assert!(rec
            .events
            .iter()
            .any(|e| matches!(e, Event::Client { req: vexec::ClientEv::HgDestruct { .. }, .. })));
    }

    #[test]
    fn while_condition_reloads_memory() {
        // Spin on a global set by another thread: the condition must
        // re-read g_flag each iteration or this would never terminate.
        let prog = compile_one(
            "
int g_flag;
void setter() { g_flag = 1; }
void main() {
    thread t = spawn setter();
    while (g_flag == 0) {
    }
    join(t);
}
",
        );
        let mut tool = CountingTool::new();
        let r = run_program(&prog, &mut tool, &mut RoundRobin::new());
        assert!(r.termination.is_clean(), "{:?}", r.termination);
    }

    #[test]
    fn sema_errors() {
        let cases = [
            ("void main() { delete x; }", "unknown variable"),
            ("void main() { int x = 1; int x = 2; }", "redeclared"),
            ("void main() { lock(m); }", "unknown mutex"),
            ("void f() {}", "no `main`"),
            ("class A : B { int x; }; void main() {}", "unknown base"),
            ("void main() { int x = nothere(); }", "unknown function"),
            ("void v() {} void main() { int x = v(); }", "used as a value"),
            ("int g; void main() { atomic_inc(q); }", "must be a global"),
        ];
        for (src, needle) in cases {
            let unit = parse(src).unwrap();
            let e = compile(&[(unit, "t.cpp".into())]).unwrap_err();
            assert!(e.message.contains(needle), "{src}: got {e}");
        }
    }

    #[test]
    fn globals_are_shared_between_units() {
        let u1 = parse("int g_x;\nvoid set() { g_x = 42; }").unwrap();
        let u2 = parse("void main() { set(); }").unwrap();
        let prog = compile(&[(u1, "a.cpp".into()), (u2, "b.cpp".into())]).unwrap();
        let mut tool = CountingTool::new();
        run_program(&prog, &mut tool, &mut RoundRobin::new()).expect_clean();
        assert_eq!(tool.count("write"), 1);
    }
}

#[cfg(test)]
mod rwlock_tests {
    use super::*;
    use crate::parser::parse;
    use helgrind_like_tests::*;

    /// Minimal in-crate stand-ins so these tests don't depend on
    /// helgrind-core (which depends on this crate's sibling `vexec` only).
    mod helgrind_like_tests {
        pub use vexec::sched::RoundRobin;
        pub use vexec::tool::CountingTool;
        pub use vexec::vm::run_program;
    }

    fn compile_one(src: &str) -> Program {
        let unit = parse(src).unwrap();
        compile(&[(unit, "rw.cpp".to_string())]).unwrap()
    }

    #[test]
    fn rwlock_program_compiles_and_runs() {
        let prog = compile_one(
            "
rwlock g_rw;
int g_data;
void reader() {
    rdlock(g_rw);
    int v = g_data;
    rwunlock(g_rw);
}
void writer() {
    wrlock(g_rw);
    g_data = g_data + 1;
    rwunlock(g_rw);
}
void main() {
    thread r1 = spawn reader();
    thread r2 = spawn reader();
    thread w = spawn writer();
    join(r1);
    join(r2);
    join(w);
}
",
        );
        let mut tool = CountingTool::new();
        let r = run_program(&prog, &mut tool, &mut RoundRobin::new());
        assert!(r.termination.is_clean(), "{:?}", r.termination);
        assert_eq!(tool.count("acquire"), 3);
        assert_eq!(tool.count("release"), 3);
    }

    #[test]
    fn rwlock_misuse_is_a_sema_error() {
        let unit = parse("mutex g_m;\nvoid main() { rdlock(g_m); }").unwrap();
        let e = compile(&[(unit, "rw.cpp".into())]).unwrap_err();
        assert!(e.message.contains("not a rwlock"), "{e}");
        let unit = parse("void main() { wrlock(nothere); }").unwrap();
        let e = compile(&[(unit, "rw.cpp".into())]).unwrap_err();
        assert!(e.message.contains("unknown rwlock"), "{e}");
    }
}
