//! # minicpp — a mini-C++ front end and instrumentation pipeline
//!
//! The paper's DR improvement needs a C++ parser: "For instrumentation,
//! the C++-parser ELSA is used ... ELSA builds an abstract syntax tree that
//! is used for source code analysis and annotation" (§3.3). This crate is
//! the ELSA stand-in: a lexer, parser and AST for a C++-subset language
//! (classes with single inheritance and virtual destructors, free
//! functions, globals, `new`/`delete`, pthread-shaped threads/mutexes),
//! the **automatic delete-annotation transform** of Fig 4, a pretty-printer
//! that produces the annotated source, and a compiler lowering to the
//! `vexec` guest IR so instrumented programs run on the VM under any
//! detector.
//!
//! The [`pipeline`] module wires the three build stages of Fig 3 together,
//! including the "source not available" case for third-party units.

pub mod analysis;
pub mod annotate;
pub mod ast;
pub mod codegen;
pub mod parser;
pub mod pipeline;
pub mod token;

pub use analysis::{analyze, analyze_files, AnalysisResult};
pub use annotate::annotate_unit;
pub use ast::{render, Unit};
pub use codegen::{compile, SemaError};
pub use parser::{parse, ParseError};
pub use pipeline::{preprocess, run_pipeline, CompileError, PipelineOutput, SourceFile};
