//! Flow-sensitive must-held lockset dataflow and the static race check.
//!
//! The must analysis computes, for every program point, the set of locks
//! held on *every* path reaching it (meet = intersection over CFG joins),
//! with the mode a rwlock is held in. It is interprocedural via call-graph
//! summaries: a callee's summary says which locks it definitely acquires
//! (exit must-set from an empty entry) and which it may release anywhere.
//! A companion may-held analysis (join = union) feeds the
//! unlock-without-lock lint.
//!
//! The race check mirrors the dynamic HWLC rules of
//! `helgrind_core::eraser` (the `BusLockModel::RwLock` arm): a read's
//! effective lockset is every lock held in any mode plus the bus lock, a
//! plain write's is the exclusively-held locks only, and a LOCK-prefixed
//! RMW holds the bus exclusively — so two `atomic_inc`s never race with
//! each other, but an `atomic_inc` against a plain write does.

use super::callgraph::{stmt_callees, stmt_positions, Pos};
use super::cfg::{Cfg, CfgStmt};
use super::ProgramView;
use crate::ast::{Expr, GlobalKind, Stmt};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The bus pseudo-lock of the HWLC model (held by atomics, read-held by
/// plain reads). Named so it cannot collide with a program lock.
pub const BUS_LOCK: &str = "<bus>";

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Mode {
    /// Read-held (rdlock).
    Shared,
    /// Write-held (mutex lock / wrlock).
    Exclusive,
}

/// Locks definitely held, with the weakest mode they are held in.
pub type LockSet = BTreeMap<String, Mode>;

/// Meet for the must analysis: keys in both, weaker mode wins.
fn meet(a: &LockSet, b: &LockSet) -> LockSet {
    a.iter().filter_map(|(k, &ma)| b.get(k).map(|&mb| (k.clone(), ma.min(mb)))).collect()
}

/// Interprocedural effect of calling a function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Locks definitely held at exit when entered holding nothing.
    pub acquired: LockSet,
    /// Locks the function (transitively) may release.
    pub may_release: BTreeSet<String>,
    /// Locks the function (transitively) may acquire.
    pub may_acquire: BTreeSet<String>,
}

fn cfg_stmt_callees<'a>(s: &CfgStmt<'a>) -> Vec<&'a str> {
    match s {
        CfgStmt::Stmt(st) => stmt_callees(st),
        CfgStmt::Cond(e, _) => {
            fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
                match e {
                    Expr::Call { func, args } => {
                        out.push(func);
                        args.iter().for_each(|a| walk(a, out));
                    }
                    Expr::Bin { lhs, rhs, .. } => {
                        walk(lhs, out);
                        walk(rhs, out);
                    }
                    _ => {}
                }
            }
            let mut out = Vec::new();
            walk(e, &mut out);
            out
        }
    }
}

fn transfer_must(s: &CfgStmt<'_>, st: &mut LockSet, summaries: &BTreeMap<String, Summary>) {
    match s {
        CfgStmt::Stmt(Stmt::Lock { mutex, .. }) => {
            st.insert(mutex.clone(), Mode::Exclusive);
        }
        CfgStmt::Stmt(Stmt::WrLock { rwlock, .. }) => {
            st.insert(rwlock.clone(), Mode::Exclusive);
        }
        CfgStmt::Stmt(Stmt::RdLock { rwlock, .. }) => {
            // Keep a stronger mode if the lock is somehow already held.
            st.entry(rwlock.clone()).or_insert(Mode::Shared);
        }
        CfgStmt::Stmt(Stmt::Unlock { mutex: name, .. })
        | CfgStmt::Stmt(Stmt::RwUnlock { rwlock: name, .. }) => {
            st.remove(name);
        }
        other => {
            for callee in cfg_stmt_callees(other) {
                if let Some(sum) = summaries.get(callee) {
                    for m in &sum.may_release {
                        st.remove(m);
                    }
                    for (m, mode) in &sum.acquired {
                        st.entry(m.clone()).or_insert(*mode);
                    }
                }
            }
        }
    }
}

fn transfer_may(s: &CfgStmt<'_>, st: &mut BTreeSet<String>, summaries: &BTreeMap<String, Summary>) {
    match s {
        CfgStmt::Stmt(Stmt::Lock { mutex: name, .. })
        | CfgStmt::Stmt(Stmt::WrLock { rwlock: name, .. })
        | CfgStmt::Stmt(Stmt::RdLock { rwlock: name, .. }) => {
            st.insert(name.clone());
        }
        CfgStmt::Stmt(Stmt::Unlock { mutex: name, .. })
        | CfgStmt::Stmt(Stmt::RwUnlock { rwlock: name, .. }) => {
            st.remove(name);
        }
        other => {
            for callee in cfg_stmt_callees(other) {
                if let Some(sum) = summaries.get(callee) {
                    // A callee may acquire; releases are not guaranteed, so
                    // for an over-approximation nothing is removed.
                    st.extend(sum.may_acquire.iter().cloned());
                }
            }
        }
    }
}

/// The must transfer, exposed so consumers (lints) can replay a block
/// from its in-state to its out-state.
pub fn replay_must(s: &CfgStmt<'_>, st: &mut LockSet, summaries: &BTreeMap<String, Summary>) {
    transfer_must(s, st, summaries)
}

/// Per-function dataflow results. Indexed `[block][stmt]`; `None` means
/// the point is unreachable (or the function is never invoked).
pub struct FuncFlow<'a> {
    pub cfg: Cfg<'a>,
    pub pos: HashMap<*const Stmt, Pos>,
    pub must_in: Vec<Vec<Option<LockSet>>>,
    pub may_in: Vec<Vec<Option<BTreeSet<String>>>>,
    pub exit_must: Option<LockSet>,
}

fn block_fixpoint<T: Clone + PartialEq>(
    cfg: &Cfg<'_>,
    entry: Option<T>,
    transfer: &impl Fn(&CfgStmt<'_>, &mut T),
    merge: &impl Fn(&T, &T) -> T,
) -> Vec<Option<T>> {
    let n = cfg.blocks.len();
    let mut in_state: Vec<Option<T>> = vec![None; n];
    in_state[cfg.entry] = entry;
    loop {
        let mut changed = false;
        for b in 0..n {
            let Some(st) = in_state[b].clone() else { continue };
            let mut cur = st;
            for s in &cfg.blocks[b].stmts {
                transfer(s, &mut cur);
            }
            for &succ in &cfg.blocks[b].succs {
                let merged = match &in_state[succ] {
                    None => cur.clone(),
                    Some(prev) => merge(prev, &cur),
                };
                if in_state[succ].as_ref() != Some(&merged) {
                    in_state[succ] = Some(merged);
                    changed = true;
                }
            }
        }
        if !changed {
            return in_state;
        }
    }
}

/// Replay transfers to record the state *before* every statement.
fn per_stmt<T: Clone>(
    cfg: &Cfg<'_>,
    block_in: &[Option<T>],
    transfer: &impl Fn(&CfgStmt<'_>, &mut T),
) -> Vec<Vec<Option<T>>> {
    cfg.blocks
        .iter()
        .enumerate()
        .map(|(b, blk)| match &block_in[b] {
            None => vec![None; blk.stmts.len()],
            Some(st) => {
                let mut cur = st.clone();
                blk.stmts
                    .iter()
                    .map(|s| {
                        let before = cur.clone();
                        transfer(s, &mut cur);
                        Some(before)
                    })
                    .collect()
            }
        })
        .collect()
}

/// Whole-program lockset analysis.
pub struct LockAnalysis<'a> {
    pub flows: BTreeMap<String, FuncFlow<'a>>,
    pub summaries: BTreeMap<String, Summary>,
    pub entry_ctx: BTreeMap<String, Option<LockSet>>,
}

impl<'a> LockAnalysis<'a> {
    pub fn run(view: &ProgramView<'a>) -> LockAnalysis<'a> {
        let cfgs: BTreeMap<String, Cfg<'a>> =
            view.funcs.iter().map(|(n, f)| (n.clone(), Cfg::build(f))).collect();

        // Syntactic may-release / may-acquire, closed over the call graph.
        let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
        for (name, f) in &view.funcs {
            let mut rel = BTreeSet::new();
            let mut acq = BTreeSet::new();
            super::callgraph::visit_stmts(&f.body, &mut |s| match s {
                Stmt::Unlock { mutex: m, .. } | Stmt::RwUnlock { rwlock: m, .. } => {
                    rel.insert(m.clone());
                }
                Stmt::Lock { mutex: m, .. }
                | Stmt::RdLock { rwlock: m, .. }
                | Stmt::WrLock { rwlock: m, .. } => {
                    acq.insert(m.clone());
                }
                _ => {}
            });
            summaries.insert(
                name.clone(),
                Summary { acquired: LockSet::new(), may_release: rel, may_acquire: acq },
            );
        }
        for name in view.funcs.keys() {
            let reach = view.cg.reach(name).cloned().unwrap_or_default();
            let (mut rel, mut acq) = (BTreeSet::new(), BTreeSet::new());
            for g in &reach {
                if let Some(s) = summaries.get(g) {
                    rel.extend(s.may_release.iter().cloned());
                    acq.extend(s.may_acquire.iter().cloned());
                }
            }
            let s = summaries.get_mut(name).unwrap();
            s.may_release = rel;
            s.may_acquire = acq;
        }

        // `acquired` summaries: ascending fixpoint from the empty set.
        loop {
            let mut changed = false;
            for (name, cfg) in &cfgs {
                let block_in = block_fixpoint(
                    cfg,
                    Some(LockSet::new()),
                    &|s, st| transfer_must(s, st, &summaries),
                    &meet,
                );
                let acq = block_in[cfg.exit].clone().unwrap_or_default();
                if summaries[name].acquired != acq {
                    summaries.get_mut(name).unwrap().acquired = acq;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Entry contexts: empty for main and thread entries, meet over call
        // sites for everything else; descending fixpoint.
        let mut entry_ctx: BTreeMap<String, Option<LockSet>> =
            view.funcs.keys().map(|n| (n.clone(), None)).collect();
        let mut may_ctx: BTreeMap<String, Option<BTreeSet<String>>> =
            view.funcs.keys().map(|n| (n.clone(), None)).collect();
        for inst in &view.tm.instances {
            entry_ctx.insert(inst.entry.clone(), Some(LockSet::new()));
            may_ctx.insert(inst.entry.clone(), Some(BTreeSet::new()));
        }
        loop {
            let mut changed = false;
            for (name, cfg) in &cfgs {
                let Some(ctx) = entry_ctx[name].clone() else { continue };
                let block_in = block_fixpoint(
                    cfg,
                    Some(ctx),
                    &|s, st| transfer_must(s, st, &summaries),
                    &meet,
                );
                let stmt_in = per_stmt(cfg, &block_in, &|s, st| transfer_must(s, st, &summaries));
                let may_block = block_fixpoint(
                    cfg,
                    may_ctx[name].clone(),
                    &|s, st| transfer_may(s, st, &summaries),
                    &|a: &BTreeSet<String>, b: &BTreeSet<String>| a.union(b).cloned().collect(),
                );
                let may_stmt = per_stmt(cfg, &may_block, &|s, st| transfer_may(s, st, &summaries));
                for (b, blk) in cfg.blocks.iter().enumerate() {
                    for (k, s) in blk.stmts.iter().enumerate() {
                        for callee in cfg_stmt_callees(s) {
                            if !view.funcs.contains_key(callee) {
                                continue;
                            }
                            if let Some(site_st) = &stmt_in[b][k] {
                                let cur = entry_ctx.get_mut(callee).unwrap();
                                let merged = match cur.as_ref() {
                                    None => site_st.clone(),
                                    Some(prev) => meet(prev, site_st),
                                };
                                if cur.as_ref() != Some(&merged) {
                                    *cur = Some(merged);
                                    changed = true;
                                }
                            }
                            if let Some(site_may) = &may_stmt[b][k] {
                                let cur = may_ctx.get_mut(callee).unwrap();
                                let merged: BTreeSet<String> = match cur.as_ref() {
                                    None => site_may.clone(),
                                    Some(prev) => prev.union(site_may).cloned().collect(),
                                };
                                if cur.as_ref() != Some(&merged) {
                                    *cur = Some(merged);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Final per-statement states under the stable contexts.
        let mut flows = BTreeMap::new();
        for (name, cfg) in cfgs {
            let f = view.funcs[&name];
            let block_in = block_fixpoint(
                &cfg,
                entry_ctx[&name].clone(),
                &|s, st| transfer_must(s, st, &summaries),
                &meet,
            );
            let must_in = per_stmt(&cfg, &block_in, &|s, st| transfer_must(s, st, &summaries));
            let may_block = block_fixpoint(
                &cfg,
                may_ctx[&name].clone(),
                &|s, st| transfer_may(s, st, &summaries),
                &|a: &BTreeSet<String>, b: &BTreeSet<String>| a.union(b).cloned().collect(),
            );
            let may_in = per_stmt(&cfg, &may_block, &|s, st| transfer_may(s, st, &summaries));
            let exit_must = block_in[cfg.exit].clone();
            flows.insert(
                name.clone(),
                FuncFlow { pos: stmt_positions(f), cfg, must_in, may_in, exit_must },
            );
        }
        LockAnalysis { flows, summaries, entry_ctx }
    }

    /// Must-held lockset (names only) before each (func, line) point, for
    /// cross-checking against dynamically observed locksets. Where a line
    /// holds several statements the states are met.
    pub fn must_by_line(&self) -> BTreeMap<(String, u32), BTreeSet<String>> {
        let mut out: BTreeMap<(String, u32), Option<LockSet>> = BTreeMap::new();
        for (name, flow) in &self.flows {
            for (b, blk) in flow.cfg.blocks.iter().enumerate() {
                for (k, s) in blk.stmts.iter().enumerate() {
                    let Some(st) = &flow.must_in[b][k] else { continue };
                    let key = (name.clone(), s.line());
                    let cur = out.entry(key).or_insert_with(|| Some(st.clone()));
                    if let Some(prev) = cur {
                        *cur = Some(meet(prev, st));
                    }
                }
            }
        }
        out.into_iter().filter_map(|(k, v)| v.map(|set| (k, set.into_keys().collect()))).collect()
    }
}

// ---------------------------------------------------------------------
// Static race check.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Read,
    Write,
    Atomic,
}

impl AccessKind {
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// What a statement touches.
#[derive(Clone, Debug)]
pub enum Target {
    Global(String),
    Field { base: String, field: String },
}

impl Target {
    pub fn describe(&self) -> String {
        match self {
            Target::Global(g) => g.clone(),
            Target::Field { base, field } => format!("{base}->{field}"),
        }
    }
}

#[derive(Clone, Debug)]
pub struct AccessRec {
    pub func: String,
    pub pos: Pos,
    pub line: u32,
    pub target: Target,
    pub kind: AccessKind,
    /// Effective lockset per the HWLC rules (bus lock included).
    pub effective: BTreeSet<String>,
}

fn expr_reads(e: &Expr, out: &mut Vec<Target>) {
    match e {
        Expr::Var(n) => out.push(Target::Global(n.clone())),
        Expr::Field { base, field } => {
            out.push(Target::Field { base: base.clone(), field: field.clone() })
        }
        Expr::Bin { lhs, rhs, .. } => {
            expr_reads(lhs, out);
            expr_reads(rhs, out);
        }
        Expr::Call { args, .. } => args.iter().for_each(|a| expr_reads(a, out)),
        _ => {}
    }
}

fn effective_set(kind: AccessKind, held: &LockSet) -> BTreeSet<String> {
    let mut s: BTreeSet<String> = match kind {
        // A read is protected by locks held in any mode, and is atomic
        // w.r.t. the bus for word-sized data.
        AccessKind::Read => held.keys().cloned().collect(),
        // A plain write needs exclusive ownership; the bus gives none.
        AccessKind::Write => {
            held.iter().filter(|(_, &m)| m == Mode::Exclusive).map(|(k, _)| k.clone()).collect()
        }
        // LOCK-prefixed RMW: exclusively-held locks plus the bus.
        AccessKind::Atomic => {
            held.iter().filter(|(_, &m)| m == Mode::Exclusive).map(|(k, _)| k.clone()).collect()
        }
    };
    if matches!(kind, AccessKind::Read | AccessKind::Atomic) {
        s.insert(BUS_LOCK.to_string());
    }
    s
}

/// Collect every shared-memory access with its effective lockset.
pub fn collect_accesses(view: &ProgramView<'_>, la: &LockAnalysis<'_>) -> Vec<AccessRec> {
    let mut out = Vec::new();
    for (name, flow) in &la.flows {
        let func = view.funcs[name];
        // Names shadowed by params or locals are not globals here.
        let mut locals: BTreeSet<&str> = func.params.iter().map(|(_, n)| n.as_str()).collect();
        super::callgraph::visit_stmts(&func.body, &mut |s| match s {
            Stmt::LetInt { name, .. } | Stmt::LetPtr { name, .. } => {
                locals.insert(name);
            }
            _ => {}
        });
        let is_global_int =
            |n: &str| !locals.contains(n) && matches!(view.globals.get(n), Some(GlobalKind::Int));

        for (b, blk) in flow.cfg.blocks.iter().enumerate() {
            for (k, cs) in blk.stmts.iter().enumerate() {
                let Some(held) = &flow.must_in[b][k] else { continue };
                let line = cs.line();
                let pos = match cs {
                    CfgStmt::Stmt(st) => flow.pos[&(*st as *const Stmt)],
                    // Conditions share the position of their If/While; the
                    // closest stable proxy is the first position in the
                    // block, or 0 for an empty prefix.
                    CfgStmt::Cond(..) => blk
                        .stmts
                        .iter()
                        .find_map(|s| match s {
                            CfgStmt::Stmt(st) => Some(flow.pos[&(*st as *const Stmt)]),
                            _ => None,
                        })
                        .unwrap_or(0),
                };
                let mut push = |target: Target, kind: AccessKind| {
                    let keep = match &target {
                        Target::Global(g) => is_global_int(g),
                        Target::Field { .. } => true,
                    };
                    if keep {
                        out.push(AccessRec {
                            func: name.clone(),
                            pos,
                            line,
                            target,
                            kind,
                            effective: effective_set(kind, held),
                        });
                    }
                };
                let mut reads: Vec<Target> = Vec::new();
                match cs {
                    CfgStmt::Cond(e, _) => expr_reads(e, &mut reads),
                    CfgStmt::Stmt(st) => match st {
                        Stmt::LetInt { value, .. }
                        | Stmt::LetPtr { value, .. }
                        | Stmt::Assign { value, .. }
                        | Stmt::FieldAssign { value, .. } => expr_reads(value, &mut reads),
                        Stmt::Return { value: Some(v), .. } => expr_reads(v, &mut reads),
                        Stmt::LetThread { args, .. } | Stmt::Call { args, .. } => {
                            args.iter().for_each(|a| expr_reads(a, &mut reads))
                        }
                        _ => {}
                    },
                }
                match cs {
                    CfgStmt::Stmt(Stmt::Assign { name: n, .. }) => {
                        push(Target::Global(n.clone()), AccessKind::Write)
                    }
                    CfgStmt::Stmt(Stmt::FieldAssign { base, field, .. }) => push(
                        Target::Field { base: base.clone(), field: field.clone() },
                        AccessKind::Write,
                    ),
                    CfgStmt::Stmt(Stmt::AtomicInc { target, .. }) => match target {
                        Expr::Var(n) => push(Target::Global(n.clone()), AccessKind::Atomic),
                        Expr::Field { base, field } => push(
                            Target::Field { base: base.clone(), field: field.clone() },
                            AccessKind::Atomic,
                        ),
                        _ => {}
                    },
                    _ => {}
                }
                for t in reads {
                    push(t, AccessKind::Read);
                }
            }
        }
    }
    out
}

fn same_location(view: &ProgramView<'_>, a: &AccessRec, b: &AccessRec) -> bool {
    match (&a.target, &b.target) {
        (Target::Global(x), Target::Global(y)) => x == y,
        (Target::Field { base: ba, field: fa }, Target::Field { base: bb, field: fb }) => {
            fa == fb && view.pt.may_alias(&a.func, ba, &b.func, bb)
        }
        _ => false,
    }
}

/// A race between two statically-concurrent accesses with disjoint
/// effective locksets.
#[derive(Clone, Debug)]
pub struct StaticRace {
    pub a: AccessRec,
    pub b: AccessRec,
}

pub fn find_races(view: &ProgramView<'_>, la: &LockAnalysis<'_>) -> Vec<StaticRace> {
    let accesses = collect_accesses(view, la);
    let mut races = Vec::new();
    for (ai, a) in accesses.iter().enumerate() {
        for b in &accesses[ai..] {
            if !(a.kind.is_write() || b.kind.is_write()) {
                continue;
            }
            if !same_location(view, a, b) {
                continue;
            }
            if a.effective.intersection(&b.effective).next().is_some() {
                continue;
            }
            let concurrent = view.tm.executors(&a.func).into_iter().any(|i| {
                view.tm
                    .executors(&b.func)
                    .into_iter()
                    .any(|j| view.tm.pair_concurrent(i, &a.func, a.pos, j, &b.func, b.pos))
            });
            if concurrent {
                races.push(StaticRace { a: a.clone(), b: b.clone() });
            }
        }
    }
    races
}
