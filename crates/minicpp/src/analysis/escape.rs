//! Interprocedural escape analysis for lock-protected state.
//!
//! The paper's Fig 7 bug is a *reference* to registry state read under a
//! lock, returned out of the critical section, and dereferenced after the
//! lock is dropped. The lockset and happens-before engines only see it when
//! a schedule executes the racy interleaving; this pass finds the shape
//! statically.
//!
//! The analysis is a taint propagation over the existing must-lockset
//! dataflow: every read of a shared granule (global int or object field)
//! performed while locks are must-held mints a [`GuardTag`] — the value now
//! carries "reference guarded by these locks". Tags flow through locals,
//! binary expressions, call arguments, return values, stores to globals and
//! fields, and thread-spawn captures, propagated along the call graph to a
//! fixpoint. An **escape** is a tag crossing one of the modeled routes
//! (return value past the release, store to a global or field, store
//! through an out-parameter, spawn capture); it is *reported* only when the
//! tagged value is also **dereferenced** (field access, virtual call or
//! `delete` through it) at a point where the guarding locks are no longer
//! must-held. Plain copied-out values — `int last = g_pending == 0;` used
//! after the unlock — therefore never warn: an int copy is not a reference,
//! and it is never used as one.

use std::collections::{BTreeMap, BTreeSet};

use super::cfg::CfgStmt;
use super::lockset::{LockAnalysis, LockSet};
use super::ProgramView;
use crate::ast::{Expr, FuncDef, GlobalKind, Stmt};

/// Origin of one guarded value: a read of `source` in `src_func` while
/// `locks` were must-held.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct GuardTag {
    pub locks: BTreeSet<String>,
    pub src_func: String,
    pub src_line: u32,
    pub source: String,
}

/// A source point: used for both release sites and post-release use sites.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SiteRef {
    pub func: String,
    pub file: String,
    pub line: u32,
}

/// One reported escape: a guarded reference leaving its critical section
/// with at least one post-release dereference.
#[derive(Clone, Debug)]
pub struct EscapeFinding {
    /// Function containing the escaping statement.
    pub func: String,
    pub file: String,
    /// Line of the escaping statement (the `return`, store or spawn).
    pub line: u32,
    /// The guarding lock(s) the reference escapes from under.
    pub locks: BTreeSet<String>,
    /// Human description of the escape route.
    pub route: String,
    /// The guarded granule the reference was read from.
    pub source: String,
    /// Where the guard is released in the source function.
    pub release_sites: Vec<SiteRef>,
    /// Dereferences of the escaped reference without the guard held.
    pub use_sites: Vec<SiteRef>,
}

impl EscapeFinding {
    /// One-line summary used as the report `details` text.
    pub fn describe(&self) -> String {
        let locks = self.locks.iter().cloned().collect::<Vec<_>>().join(", ");
        let uses = self
            .use_sites
            .iter()
            .map(|s| format!("{} ({}:{})", s.func, s.file, s.line))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "reference to '{}' guarded by '{locks}' escapes via {}; \
             dereferenced after release at {uses}",
            self.source, self.route
        )
    }
}

/// Escape route crossings observed during propagation; findings are minted
/// from these once use sites are known.
type Candidate = (String, u32, String, GuardTag);

#[derive(Default)]
struct Taint {
    /// (function, local) -> tags.
    vars: BTreeMap<(String, String), BTreeSet<GuardTag>>,
    /// global -> tags stored into it.
    globals: BTreeMap<String, BTreeSet<GuardTag>>,
    /// field name -> tags stored into it (field-insensitive in the base).
    fields: BTreeMap<String, BTreeSet<GuardTag>>,
    /// function -> tags of its returned values.
    rets: BTreeMap<String, BTreeSet<GuardTag>>,
}

impl Taint {
    fn absorb(set: &mut BTreeSet<GuardTag>, tags: &BTreeSet<GuardTag>, changed: &mut bool) {
        for t in tags {
            if set.insert(t.clone()) {
                *changed = true;
            }
        }
    }
}

fn locals_of(func: &FuncDef) -> BTreeSet<String> {
    let mut locals: BTreeSet<String> = func.params.iter().map(|(_, n)| n.clone()).collect();
    super::callgraph::visit_stmts(&func.body, &mut |s| match s {
        Stmt::LetInt { name, .. } | Stmt::LetPtr { name, .. } | Stmt::LetThread { name, .. } => {
            locals.insert(name.clone());
        }
        _ => {}
    });
    locals
}

fn held_names(held: &LockSet) -> BTreeSet<String> {
    held.keys().cloned().collect()
}

/// Does `held` cover every guard of `tag`?
fn guard_held(tag: &GuardTag, held: &LockSet) -> bool {
    tag.locks.iter().all(|l| held.contains_key(l))
}

struct Pass<'v, 'a> {
    view: &'v ProgramView<'a>,
    locals: BTreeMap<String, BTreeSet<String>>,
    taint: Taint,
    candidates: BTreeSet<Candidate>,
    changed: bool,
}

impl Pass<'_, '_> {
    /// Tags carried by `e` evaluated in `func` with `held` must-locks.
    /// Binding of tainted call/spawn arguments into callee parameters is a
    /// side effect recorded directly on the taint state.
    fn eval(&mut self, func: &str, e: &Expr, held: &LockSet) -> BTreeSet<GuardTag> {
        match e {
            Expr::Int(_) | Expr::New { .. } => BTreeSet::new(),
            Expr::Var(n) => {
                if self.locals[func].contains(n) {
                    self.taint.vars.get(&(func.to_string(), n.clone())).cloned().unwrap_or_default()
                } else if matches!(self.view.globals.get(n), Some(GlobalKind::Int)) {
                    let mut tags = self.taint.globals.get(n).cloned().unwrap_or_default();
                    if !held.is_empty() {
                        tags.insert(GuardTag {
                            locks: held_names(held),
                            src_func: func.to_string(),
                            src_line: 0, // patched by caller (line of the stmt)
                            source: n.clone(),
                        });
                    }
                    tags
                } else {
                    BTreeSet::new()
                }
            }
            Expr::Field { base, field } => {
                let mut tags = self.taint.fields.get(field).cloned().unwrap_or_default();
                if !held.is_empty() {
                    tags.insert(GuardTag {
                        locks: held_names(held),
                        src_func: func.to_string(),
                        src_line: 0,
                        source: format!("{base}->{field}"),
                    });
                }
                tags
            }
            Expr::Bin { lhs, rhs, .. } => {
                let mut tags = self.eval(func, lhs, held);
                tags.extend(self.eval(func, rhs, held));
                tags
            }
            Expr::Call { func: callee, args } => {
                self.bind_args(func, callee, args, held);
                self.taint.rets.get(callee).cloned().unwrap_or_default()
            }
        }
    }

    /// Propagate tainted arguments into the callee's parameters.
    fn bind_args(&mut self, func: &str, callee: &str, args: &[Expr], held: &LockSet) {
        let Some(def) = self.view.funcs.get(callee) else { return };
        let params: Vec<String> = def.params.iter().map(|(_, n)| n.clone()).collect();
        for (param, arg) in params.iter().zip(args) {
            let tags = self.eval(func, arg, held);
            if tags.is_empty() {
                continue;
            }
            let entry = self.taint.vars.entry((callee.to_string(), param.clone())).or_default();
            Taint::absorb(entry, &tags, &mut self.changed);
        }
    }

    fn candidate(&mut self, func: &str, line: u32, route: String, tags: &BTreeSet<GuardTag>) {
        for tag in tags {
            let mut tag = tag.clone();
            if tag.src_line == 0 {
                tag.src_line = line;
            }
            if self.candidates.insert((func.to_string(), line, route.clone(), tag)) {
                self.changed = true;
            }
        }
    }

    /// Stamp the statement line onto freshly minted source tags.
    fn at_line(tags: BTreeSet<GuardTag>, line: u32) -> BTreeSet<GuardTag> {
        tags.into_iter()
            .map(|mut t| {
                if t.src_line == 0 {
                    t.src_line = line;
                }
                t
            })
            .collect()
    }

    fn transfer(&mut self, func: &str, cs: &CfgStmt<'_>, held: &LockSet) {
        let line = cs.line();
        let CfgStmt::Stmt(st) = cs else {
            // Conditions only matter for their call-argument bindings.
            if let CfgStmt::Cond(e, _) = cs {
                let e = *e;
                self.eval(func, e, held);
            }
            return;
        };
        match st {
            Stmt::LetInt { name, value, .. } | Stmt::LetPtr { name, value, .. } => {
                let tags = Self::at_line(self.eval(func, value, held), line);
                if !tags.is_empty() {
                    let entry =
                        self.taint.vars.entry((func.to_string(), name.clone())).or_default();
                    Taint::absorb(entry, &tags, &mut self.changed);
                }
            }
            Stmt::Assign { name, value, .. } => {
                let tags = Self::at_line(self.eval(func, value, held), line);
                if tags.is_empty() {
                    return;
                }
                if self.locals[func].contains(name) {
                    let entry =
                        self.taint.vars.entry((func.to_string(), name.clone())).or_default();
                    Taint::absorb(entry, &tags, &mut self.changed);
                } else if matches!(self.view.globals.get(name), Some(GlobalKind::Int)) {
                    let entry = self.taint.globals.entry(name.clone()).or_default();
                    Taint::absorb(entry, &tags, &mut self.changed);
                    self.candidate(func, line, format!("store to global '{name}'"), &tags);
                }
            }
            Stmt::FieldAssign { base, field, value, .. } => {
                let tags = Self::at_line(self.eval(func, value, held), line);
                if tags.is_empty() {
                    return;
                }
                let entry = self.taint.fields.entry(field.clone()).or_default();
                Taint::absorb(entry, &tags, &mut self.changed);
                let is_param = self
                    .view
                    .funcs
                    .get(func)
                    .is_some_and(|f| f.params.iter().any(|(_, n)| n == base));
                let route = if is_param {
                    format!("store through out-parameter '{base}->{field}'")
                } else {
                    format!("store to field '{base}->{field}'")
                };
                self.candidate(func, line, route, &tags);
            }
            Stmt::Return { value: Some(v), .. } => {
                let tags = Self::at_line(self.eval(func, v, held), line);
                if tags.is_empty() {
                    return;
                }
                let entry = self.taint.rets.entry(func.to_string()).or_default();
                Taint::absorb(entry, &tags, &mut self.changed);
                // The return escapes the critical section only if the guard
                // has already been dropped on the way out.
                let escaped: BTreeSet<GuardTag> =
                    tags.iter().filter(|t| !guard_held(t, held)).cloned().collect();
                self.candidate(func, line, "return value".to_string(), &escaped);
            }
            Stmt::LetThread { func: spawned, args, .. } => {
                let Some(def) = self.view.funcs.get(spawned) else { return };
                let params: Vec<String> = def.params.iter().map(|(_, n)| n.clone()).collect();
                let mut captured: BTreeSet<GuardTag> = BTreeSet::new();
                for (param, arg) in params.iter().zip(args) {
                    let tags = Self::at_line(self.eval(func, arg, held), line);
                    if tags.is_empty() {
                        continue;
                    }
                    captured.extend(tags.iter().cloned());
                    let entry =
                        self.taint.vars.entry((spawned.clone(), param.clone())).or_default();
                    Taint::absorb(entry, &tags, &mut self.changed);
                }
                self.candidate(func, line, format!("captured by spawn of '{spawned}'"), &captured);
            }
            Stmt::Call { func: callee, args, .. } => {
                self.bind_args(func, callee, args, held);
            }
            _ => {}
        }
    }
}

/// Dereference bases appearing in an expression (`p->f` reads `p`).
fn expr_derefs(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Field { base, .. } => out.push(base.clone()),
        Expr::Bin { lhs, rhs, .. } => {
            expr_derefs(lhs, out);
            expr_derefs(rhs, out);
        }
        Expr::Call { args, .. } => args.iter().for_each(|a| expr_derefs(a, out)),
        _ => {}
    }
}

/// Dereference bases of one statement (including those in its value expr).
fn stmt_derefs(cs: &CfgStmt<'_>) -> Vec<String> {
    let mut out = Vec::new();
    match cs {
        CfgStmt::Cond(e, _) => expr_derefs(e, &mut out),
        CfgStmt::Stmt(st) => match st {
            Stmt::FieldAssign { base, value, .. } => {
                out.push(base.clone());
                expr_derefs(value, &mut out);
            }
            Stmt::VirtualCall { base, .. } => out.push(base.clone()),
            Stmt::Delete { ptr, .. } => out.push(ptr.clone()),
            Stmt::LetInt { value, .. }
            | Stmt::LetPtr { value, .. }
            | Stmt::Assign { value, .. } => expr_derefs(value, &mut out),
            Stmt::Return { value: Some(v), .. } => expr_derefs(v, &mut out),
            Stmt::LetThread { args, .. } | Stmt::Call { args, .. } => {
                args.iter().for_each(|a| expr_derefs(a, &mut out))
            }
            Stmt::AtomicInc { target, .. } => expr_derefs(target, &mut out),
            _ => {}
        },
    }
    out
}

/// Run the pass: returns escapes sorted by (file, line, func, route).
pub fn find_escapes(view: &ProgramView<'_>, la: &LockAnalysis<'_>) -> Vec<EscapeFinding> {
    let locals: BTreeMap<String, BTreeSet<String>> =
        view.funcs.iter().map(|(name, def)| (name.clone(), locals_of(def))).collect();
    let mut pass =
        Pass { view, locals, taint: Taint::default(), candidates: BTreeSet::new(), changed: true };

    // Monotone fixpoint over finite tag sets; the bound is a safety net.
    for _ in 0..32 {
        if !pass.changed {
            break;
        }
        pass.changed = false;
        for (name, flow) in &la.flows {
            for (b, blk) in flow.cfg.blocks.iter().enumerate() {
                for (k, cs) in blk.stmts.iter().enumerate() {
                    let Some(held) = flow.must_in[b][k].clone() else { continue };
                    pass.transfer(name, cs, &held);
                }
            }
        }
    }

    // Post-release dereferences of tainted locals, per tag.
    let mut uses: BTreeMap<GuardTag, BTreeSet<SiteRef>> = BTreeMap::new();
    for (name, flow) in &la.flows {
        for (b, blk) in flow.cfg.blocks.iter().enumerate() {
            for (k, cs) in blk.stmts.iter().enumerate() {
                let Some(held) = &flow.must_in[b][k] else { continue };
                for base in stmt_derefs(cs) {
                    let Some(tags) = pass.taint.vars.get(&(name.clone(), base)) else {
                        continue;
                    };
                    for tag in tags {
                        if guard_held(tag, held) {
                            continue;
                        }
                        uses.entry(tag.clone()).or_default().insert(SiteRef {
                            func: name.clone(),
                            file: view.file_of(name),
                            line: cs.line(),
                        });
                    }
                }
            }
        }
    }

    // Mint findings: one per escape site with at least one use site.
    let mut out: BTreeMap<(String, u32, String, String), EscapeFinding> = BTreeMap::new();
    for (func, line, route, tag) in &pass.candidates {
        let Some(sites) = uses.get(tag) else { continue };
        let release_sites = release_sites_of(view, tag);
        let key = (func.clone(), *line, route.clone(), tag.source.clone());
        let f = out.entry(key).or_insert_with(|| EscapeFinding {
            func: func.clone(),
            file: view.file_of(func),
            line: *line,
            locks: BTreeSet::new(),
            route: route.clone(),
            source: tag.source.clone(),
            release_sites: Vec::new(),
            use_sites: Vec::new(),
        });
        f.locks.extend(tag.locks.iter().cloned());
        for s in release_sites {
            if !f.release_sites.contains(&s) {
                f.release_sites.push(s);
            }
        }
        for s in sites {
            if !f.use_sites.contains(s) {
                f.use_sites.push(s.clone());
            }
        }
    }
    let mut findings: Vec<EscapeFinding> = out.into_values().collect();
    for f in &mut findings {
        f.release_sites.sort();
        f.use_sites.sort();
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.func, &a.route).cmp(&(&b.file, b.line, &b.func, &b.route))
    });
    findings
}

/// Where the source function drops any of the guarding locks.
fn release_sites_of(view: &ProgramView<'_>, tag: &GuardTag) -> Vec<SiteRef> {
    let Some(def) = view.funcs.get(&tag.src_func) else { return Vec::new() };
    let file = view.file_of(&tag.src_func);
    let mut sites = Vec::new();
    super::callgraph::visit_stmts(&def.body, &mut |s| match s {
        Stmt::Unlock { mutex, line } if tag.locks.contains(mutex) => {
            sites.push(SiteRef { func: tag.src_func.clone(), file: file.clone(), line: *line });
        }
        Stmt::RwUnlock { rwlock, line } if tag.locks.contains(rwlock) => {
            sites.push(SiteRef { func: tag.src_func.clone(), file: file.clone(), line: *line });
        }
        _ => {}
    });
    sites.sort();
    sites.dedup();
    sites
}
