//! Call graph, thread-structure discovery, and a small points-to analysis.
//!
//! Threads in mini-C++ are created by `thread t = spawn f(args);` and
//! reaped by `join(t);`. The spawn/join structure inside one function frame
//! gives precise *static concurrency*: a thread is live between its spawn
//! statement and its join, so two threads race only if those windows
//! overlap, and code the spawner runs outside the window cannot race with
//! the thread at all. Everything the window logic cannot see (threads
//! spawned from different functions, spawns in loops, missing joins) is
//! treated as concurrent — the analysis over-approximates, like the
//! dynamic detectors it cross-checks.

use crate::ast::{Expr, FuncDef, ParamType, Stmt, Unit};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Pre-order position of a statement within its function. Used as a
/// program point for spawn/join windows.
pub type Pos = u32;

/// One `spawn` site.
#[derive(Clone, Debug)]
pub struct SpawnSite {
    /// Function containing the spawn.
    pub spawner: String,
    /// Thread entry function.
    pub entry: String,
    pub thread_var: String,
    pub spawn_pos: Pos,
    /// Position of the matching `join(t)` in the same function, if any.
    pub join_pos: Option<Pos>,
    /// Spawn occurs inside a loop (an unbounded family of threads).
    pub in_loop: bool,
    pub line: u32,
    pub args: Vec<Expr>,
}

/// A statically-distinguished thread: `main`, plus one per spawn site.
#[derive(Clone, Debug)]
pub struct ThreadInstance {
    pub entry: String,
    /// Index into [`ThreadModel::sites`]; `None` for the main thread.
    pub site: Option<usize>,
}

/// Assign every statement a pre-order position, keyed by address (the
/// AST is borrowed for the whole analysis, so addresses are stable).
pub fn stmt_positions(func: &FuncDef) -> HashMap<*const Stmt, Pos> {
    fn walk(stmts: &[Stmt], next: &mut Pos, out: &mut HashMap<*const Stmt, Pos>) {
        for s in stmts {
            out.insert(s as *const Stmt, *next);
            *next += 1;
            match s {
                Stmt::If { then_branch, else_branch, .. } => {
                    walk(then_branch, next, out);
                    walk(else_branch, next, out);
                }
                Stmt::While { body, .. } => walk(body, next, out),
                _ => {}
            }
        }
    }
    let mut out = HashMap::new();
    let mut next = 0;
    walk(&func.body, &mut next, &mut out);
    out
}

fn expr_calls<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
    match e {
        Expr::Call { func, args } => {
            out.push(func);
            for a in args {
                expr_calls(a, out);
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            expr_calls(lhs, out);
            expr_calls(rhs, out);
        }
        _ => {}
    }
}

/// Every function called from `s` (statement-level and expression-level).
pub fn stmt_callees(s: &Stmt) -> Vec<&str> {
    let mut out = Vec::new();
    match s {
        Stmt::Call { func, args, .. } => {
            out.push(func.as_str());
            for a in args {
                expr_calls(a, &mut out);
            }
        }
        Stmt::LetInt { value, .. }
        | Stmt::LetPtr { value, .. }
        | Stmt::Assign { value, .. }
        | Stmt::FieldAssign { value, .. }
        | Stmt::AtomicInc { target: value, .. } => expr_calls(value, &mut out),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => expr_calls(cond, &mut out),
        Stmt::Return { value: Some(v), .. } => expr_calls(v, &mut out),
        // Spawn arguments are evaluated by the spawner, but the spawned
        // function itself is not a call edge.
        Stmt::LetThread { args, .. } => {
            for a in args {
                expr_calls(a, &mut out);
            }
        }
        _ => {}
    }
    out
}

#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// caller -> callees (plain calls; spawns excluded).
    pub calls: BTreeMap<String, BTreeSet<String>>,
    /// caller -> (position, callee) per call site.
    pub call_sites: BTreeMap<String, Vec<(Pos, String)>>,
    /// f -> {f} ∪ everything transitively callable from f.
    pub reach: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    pub fn build(funcs: &BTreeMap<String, &FuncDef>) -> CallGraph {
        let mut cg = CallGraph::default();
        for (name, f) in funcs {
            let pos = stmt_positions(f);
            let mut callees = BTreeSet::new();
            let mut sites = Vec::new();
            visit_stmts(&f.body, &mut |s| {
                let p = pos[&(s as *const Stmt)];
                for c in stmt_callees(s) {
                    callees.insert(c.to_string());
                    sites.push((p, c.to_string()));
                }
            });
            cg.calls.insert(name.clone(), callees);
            cg.call_sites.insert(name.clone(), sites);
        }
        // Transitive closure by fixpoint (the graphs are tiny).
        for name in funcs.keys() {
            let mut r: BTreeSet<String> = BTreeSet::new();
            r.insert(name.clone());
            loop {
                let mut next = r.clone();
                for f in &r {
                    if let Some(cs) = cg.calls.get(f) {
                        next.extend(cs.iter().cloned());
                    }
                }
                if next.len() == r.len() {
                    break;
                }
                r = next;
            }
            cg.reach.insert(name.clone(), r);
        }
        cg
    }

    pub fn reach(&self, f: &str) -> Option<&BTreeSet<String>> {
        self.reach.get(f)
    }
}

/// Walk every statement of a body in pre-order.
pub fn visit_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If { then_branch, else_branch, .. } => {
                visit_stmts(then_branch, f);
                visit_stmts(else_branch, f);
            }
            Stmt::While { body, .. } => visit_stmts(body, f),
            _ => {}
        }
    }
}

/// The static thread model: spawn sites, distinguished instances, and the
/// may-run-concurrently relation between program points.
#[derive(Clone, Debug)]
pub struct ThreadModel {
    pub sites: Vec<SpawnSite>,
    pub instances: Vec<ThreadInstance>,
    /// Entry functions that may have two overlapping activations.
    self_concurrent: BTreeSet<String>,
    cg: CallGraph,
}

impl ThreadModel {
    pub fn build(funcs: &BTreeMap<String, &FuncDef>, cg: &CallGraph) -> ThreadModel {
        // Discover spawn sites with their join windows.
        let mut sites: Vec<SpawnSite> = Vec::new();
        for (name, f) in funcs {
            let pos = stmt_positions(f);
            let mut local: Vec<usize> = Vec::new();
            discover_sites(&f.body, name, false, &pos, &mut sites, &mut local);
        }

        // Instantiate: main, plus every site whose spawner actually runs.
        let mut instances = vec![ThreadInstance { entry: "main".to_string(), site: None }];
        let mut active: BTreeSet<String> =
            cg.reach("main").cloned().unwrap_or_else(|| std::iter::once("main".into()).collect());
        let mut instantiated = vec![false; sites.len()];
        loop {
            let mut changed = false;
            for (idx, s) in sites.iter().enumerate() {
                if !instantiated[idx] && active.contains(&s.spawner) {
                    instantiated[idx] = true;
                    instances.push(ThreadInstance { entry: s.entry.clone(), site: Some(idx) });
                    if let Some(r) = cg.reach(&s.entry) {
                        active.extend(r.iter().cloned());
                    } else {
                        active.insert(s.entry.clone());
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut model =
            ThreadModel { sites, instances, self_concurrent: BTreeSet::new(), cg: cg.clone() };
        model.mark_self_concurrent();
        model
    }

    fn live_sites(&self) -> impl Iterator<Item = (usize, &SpawnSite)> {
        self.instances
            .iter()
            .filter_map(|i| i.site)
            .map(|idx| (idx, &self.sites[idx]))
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn mark_self_concurrent(&mut self) {
        let mut marked: BTreeSet<String> = BTreeSet::new();
        // Direct sources: spawn-in-loop, and two window-overlapping spawns
        // of the same entry.
        for (i, si) in self.live_sites() {
            if si.in_loop {
                marked.insert(si.entry.clone());
            }
            for (j, sj) in self.live_sites() {
                if i < j && si.entry == sj.entry && sites_overlap(si, sj) {
                    marked.insert(si.entry.clone());
                }
            }
        }
        // Inherited: the spawner itself runs in several concurrent
        // activations, so each of its spawns does too.
        loop {
            let mut changed = false;
            for (_, s) in self.live_sites() {
                if marked.contains(&s.entry) {
                    continue;
                }
                let spawner_hosts: Vec<&ThreadInstance> =
                    self.instances.iter().filter(|i| self.executes(&i.entry, &s.spawner)).collect();
                let multi = spawner_hosts.len() >= 2
                    || spawner_hosts.iter().any(|h| marked.contains(&h.entry));
                if multi {
                    marked.insert(s.entry.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.self_concurrent = marked;
    }

    fn executes(&self, entry: &str, f: &str) -> bool {
        self.cg.reach(entry).is_some_and(|r| r.contains(f))
    }

    /// Instances that may execute function `f`.
    pub fn executors(&self, f: &str) -> Vec<usize> {
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, i)| self.executes(&i.entry, f))
            .map(|(idx, _)| idx)
            .collect()
    }

    pub fn is_self_concurrent(&self, entry: &str) -> bool {
        self.self_concurrent.contains(entry)
    }

    /// Positions within `frame_fn`'s frame at which code of `f` runs:
    /// the access's own position if `f == frame_fn`, else every call site
    /// whose callee reaches `f`.
    fn frame_positions(&self, frame_fn: &str, f: &str, p: Pos) -> Vec<Pos> {
        if frame_fn == f {
            return vec![p];
        }
        self.cg
            .call_sites
            .get(frame_fn)
            .map(|sites| {
                sites
                    .iter()
                    .filter(|(_, callee)| self.executes(callee, f))
                    .map(|&(pos, _)| pos)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Is an access by the spawning activation (at positions of `f`/`p`
    /// within the spawner frame) inside the child's live window?
    fn in_window(&self, site: &SpawnSite, f: &str, p: Pos) -> bool {
        if site.in_loop {
            return true;
        }
        let end = site.join_pos.unwrap_or(Pos::MAX);
        self.frame_positions(&site.spawner, f, p)
            .into_iter()
            .any(|pos| pos > site.spawn_pos && pos < end)
    }

    /// May instance `i`'s access at (`fa`, `pa`) run concurrently with
    /// instance `j`'s access at (`fb`, `pb`)?
    pub fn pair_concurrent(
        &self,
        i: usize,
        fa: &str,
        pa: Pos,
        j: usize,
        fb: &str,
        pb: Pos,
    ) -> bool {
        if i == j {
            return self.is_self_concurrent(&self.instances[i].entry);
        }
        let site_of = |k: usize| self.instances[k].site.map(|idx| &self.sites[idx]);
        // "i hosts j": the spawn of j happens inside i's own frame tree,
        // so j is live only within its spawn..join window there.
        let i_hosts_j =
            site_of(j).is_some_and(|s| self.executes(&self.instances[i].entry, &s.spawner));
        let j_hosts_i =
            site_of(i).is_some_and(|s| self.executes(&self.instances[j].entry, &s.spawner));
        if i_hosts_j || j_hosts_i {
            let w1 = i_hosts_j && self.in_window(site_of(j).unwrap(), fa, pa);
            let w2 = j_hosts_i && self.in_window(site_of(i).unwrap(), fb, pb);
            return w1 || w2;
        }
        match (site_of(i), site_of(j)) {
            (Some(si), Some(sj)) if si.spawner == sj.spawner => {
                sites_overlap(si, sj) || self.spawner_multi(&si.spawner)
            }
            // Different spawners, or a main-thread access we could not
            // window: conservatively concurrent.
            _ => true,
        }
    }

    /// Is `f` activated by two or more (potentially concurrent) instances?
    fn spawner_multi(&self, f: &str) -> bool {
        let hosts: Vec<&ThreadInstance> =
            self.instances.iter().filter(|i| self.executes(&i.entry, f)).collect();
        hosts.len() >= 2 || hosts.iter().any(|h| self.is_self_concurrent(&h.entry))
    }
}

fn sites_overlap(a: &SpawnSite, b: &SpawnSite) -> bool {
    let end_a = a.join_pos.unwrap_or(Pos::MAX);
    let end_b = b.join_pos.unwrap_or(Pos::MAX);
    a.spawn_pos < end_b && b.spawn_pos < end_a
}

fn discover_sites(
    stmts: &[Stmt],
    func: &str,
    in_loop: bool,
    pos: &HashMap<*const Stmt, Pos>,
    sites: &mut Vec<SpawnSite>,
    open: &mut Vec<usize>,
) {
    for s in stmts {
        let p = pos[&(s as *const Stmt)];
        match s {
            Stmt::LetThread { name, func: entry, args, line } => {
                open.push(sites.len());
                sites.push(SpawnSite {
                    spawner: func.to_string(),
                    entry: entry.clone(),
                    thread_var: name.clone(),
                    spawn_pos: p,
                    join_pos: None,
                    in_loop,
                    line: *line,
                    args: args.clone(),
                });
            }
            Stmt::Join { thread, .. } => {
                // Match the most recent unjoined spawn of this variable.
                if let Some(k) = open
                    .iter()
                    .rev()
                    .copied()
                    .find(|&k| sites[k].thread_var == *thread && sites[k].join_pos.is_none())
                {
                    sites[k].join_pos = Some(p);
                }
            }
            Stmt::If { then_branch, else_branch, .. } => {
                discover_sites(then_branch, func, in_loop, pos, sites, open);
                discover_sites(else_branch, func, in_loop, pos, sites, open);
            }
            Stmt::While { body, .. } => {
                discover_sites(body, func, true, pos, sites, open);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Points-to: allocation-site abstraction for class pointers.
// ---------------------------------------------------------------------

/// An allocation site `new Class` at a line.
pub type AllocSite = (String, u32);

/// (function, pointer variable) -> possible allocation sites.
#[derive(Clone, Debug, Default)]
pub struct PointsTo {
    map: BTreeMap<(String, String), BTreeSet<AllocSite>>,
}

impl PointsTo {
    pub fn build(units: &[(Unit, String)], funcs: &BTreeMap<String, &FuncDef>) -> PointsTo {
        let mut pt = PointsTo::default();
        // Seed: direct `Class* p = new Class;`.
        for (unit, _) in units {
            for f in &unit.functions {
                visit_stmts(&f.body, &mut |s| {
                    if let Stmt::LetPtr { class, name, value: Expr::New { .. }, line } = s {
                        pt.map
                            .entry((f.name.clone(), name.clone()))
                            .or_default()
                            .insert((class.clone(), *line));
                    }
                });
            }
        }
        // Propagate through copies, call arguments, and spawn arguments.
        loop {
            let mut changed = false;
            for (unit, _) in units {
                for f in &unit.functions {
                    visit_stmts(&f.body, &mut |s| match s {
                        Stmt::LetPtr { name, value: Expr::Var(src), .. } => {
                            changed |= pt.flow(&f.name, src, &f.name, name);
                        }
                        Stmt::Call { func, args, .. } => {
                            changed |= pt.bind_args(funcs, &f.name, func, args);
                        }
                        Stmt::LetThread { func, args, .. } => {
                            changed |= pt.bind_args(funcs, &f.name, func, args);
                        }
                        _ => {}
                    });
                }
            }
            if !changed {
                break;
            }
        }
        pt
    }

    fn flow(&mut self, src_fn: &str, src: &str, dst_fn: &str, dst: &str) -> bool {
        let from = match self.map.get(&(src_fn.to_string(), src.to_string())) {
            Some(s) if !s.is_empty() => s.clone(),
            _ => return false,
        };
        let into = self.map.entry((dst_fn.to_string(), dst.to_string())).or_default();
        let before = into.len();
        into.extend(from);
        into.len() != before
    }

    fn bind_args(
        &mut self,
        funcs: &BTreeMap<String, &FuncDef>,
        caller: &str,
        callee: &str,
        args: &[Expr],
    ) -> bool {
        let Some(f) = funcs.get(callee) else { return false };
        let mut changed = false;
        for (k, (ty, pname)) in f.params.iter().enumerate() {
            if let (ParamType::Ptr(_), Some(Expr::Var(v))) = (ty, args.get(k)) {
                changed |= self.flow(caller, v, callee, pname);
            }
        }
        changed
    }

    /// Allocation sites a pointer may refer to (empty = unknown).
    pub fn sites(&self, func: &str, var: &str) -> BTreeSet<AllocSite> {
        self.map.get(&(func.to_string(), var.to_string())).cloned().unwrap_or_default()
    }

    /// Could two pointers alias? Unknown points-to sets alias everything.
    pub fn may_alias(&self, fa: &str, va: &str, fb: &str, vb: &str) -> bool {
        let a = self.sites(fa, va);
        let b = self.sites(fb, vb);
        if a.is_empty() || b.is_empty() {
            return true;
        }
        a.intersection(&b).next().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn model(src: &str) -> (Unit, ThreadModel) {
        let unit = parse(src).unwrap();
        let funcs: BTreeMap<String, &FuncDef> =
            unit.functions.iter().map(|f| (f.name.clone(), f)).collect();
        let cg = CallGraph::build(&funcs);
        let tm = ThreadModel::build(&funcs, &cg);
        (unit, tm)
    }

    const TWO_WORKERS: &str = "
int g;
void worker(int x) { g = x; }
void main() {
    thread a = spawn worker(1);
    thread b = spawn worker(2);
    join(a);
    join(b);
    g = 3;
}
";

    #[test]
    fn two_overlapping_spawns_of_same_entry_are_self_concurrent() {
        let (_unit, tm) = model(TWO_WORKERS);
        assert_eq!(tm.instances.len(), 3);
        assert!(tm.is_self_concurrent("worker"));
        assert!(!tm.is_self_concurrent("main"));
    }

    #[test]
    fn main_access_after_joins_not_concurrent_with_workers() {
        let (unit, tm) = model(TWO_WORKERS);
        let main = unit.functions.iter().find(|f| f.name == "main").unwrap();
        let pos = stmt_positions(main);
        // `g = 3;` is the last statement of main.
        let last = main.body.last().unwrap();
        let p = pos[&(last as *const Stmt)];
        // Instance 1 is worker `a`; main is instance 0. The worker access
        // is inside worker itself.
        assert!(!tm.pair_concurrent(0, "main", p, 1, "worker", 0));
        // But a main access between spawn and join would be concurrent:
        // the spawn of `b` sits inside `a`'s window.
        let second_spawn = main
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::LetThread { .. }))
            .nth(1)
            .map(|s| pos[&(s as *const Stmt)])
            .unwrap();
        assert!(tm.pair_concurrent(0, "main", second_spawn, 1, "worker", 0));
    }

    #[test]
    fn sequential_spawn_join_pairs_do_not_overlap() {
        let (_, tm) = model(
            "int g;
void worker(int x) { g = x; }
void main() {
    thread a = spawn worker(1);
    join(a);
    thread b = spawn worker(2);
    join(b);
}
",
        );
        assert!(!tm.is_self_concurrent("worker"));
        // worker-instance vs worker-instance: windows are disjoint.
        assert!(!tm.pair_concurrent(1, "worker", 0, 2, "worker", 0));
    }

    #[test]
    fn spawn_in_loop_is_self_concurrent() {
        let (_, tm) = model(
            "int g;
void worker(int x) { g = x; }
void main() {
    int i = 0;
    while (i < 3) {
        thread t = spawn worker(i);
        i = i + 1;
    }
}
",
        );
        assert!(tm.is_self_concurrent("worker"));
        assert!(tm.pair_concurrent(1, "worker", 0, 1, "worker", 0));
    }

    #[test]
    fn points_to_flows_through_spawn_args() {
        let src = "
class Obj { int f; virtual ~Obj() {} };
void worker(Obj* o) { o->f = 1; }
void main() {
    Obj* p = new Obj;
    thread t = spawn worker(p);
    join(t);
}
";
        let unit = parse(src).unwrap();
        let funcs: BTreeMap<String, &FuncDef> =
            unit.functions.iter().map(|f| (f.name.clone(), f)).collect();
        let units = vec![(unit.clone(), "a.cpp".to_string())];
        let pt = PointsTo::build(&units, &funcs);
        assert_eq!(pt.sites("worker", "o").len(), 1);
        assert!(pt.may_alias("worker", "o", "main", "p"));
    }
}
