//! # Static analysis over the mini-C++ AST
//!
//! The dynamic detectors in `helgrind-core` only see what a schedule
//! executes; the paper's Fig 7 bug escaped them for exactly that reason.
//! This module is the complementary static side: a per-function CFG and
//! call graph with thread-structure discovery ([`cfg`], [`callgraph`]), a
//! flow-sensitive must-held lockset dataflow mirroring the HWLC rw-lockset
//! rules ([`lockset`]), lock-order deadlock prediction ([`deadlock`]), and
//! lock-discipline/destructor lints ([`lint`]).
//!
//! Findings use the same [`helgrind_core::ReportKind`] vocabulary and
//! location conventions as the dynamic detectors, so the CLI can join the
//! two sides by *(kind, file, line)* and label every finding
//! confirmed-both, static-only, or dynamic-only.

pub mod callgraph;
pub mod cfg;
pub mod deadlock;
pub mod escape;
pub mod lint;
pub mod lockset;

use crate::ast::{ClassDef, FuncDef, GlobalKind, Unit};
use crate::pipeline::{preprocess, CompileError, SourceFile};
use helgrind_core::{Report, ReportKind, StackFrame};
use std::collections::{BTreeMap, BTreeSet};

use callgraph::{CallGraph, PointsTo, ThreadModel};
use lockset::{AccessKind, LockAnalysis};

/// Merged, indexed view of every translation unit under analysis.
pub struct ProgramView<'a> {
    pub units: &'a [(Unit, String)],
    pub funcs: BTreeMap<String, &'a FuncDef>,
    /// Function name -> file it was defined in.
    pub files: BTreeMap<String, String>,
    pub classes: BTreeMap<String, &'a ClassDef>,
    pub globals: BTreeMap<String, GlobalKind>,
    pub cg: CallGraph,
    pub tm: ThreadModel,
    pub pt: PointsTo,
}

impl<'a> ProgramView<'a> {
    pub fn build(units: &'a [(Unit, String)]) -> ProgramView<'a> {
        let mut funcs = BTreeMap::new();
        let mut files = BTreeMap::new();
        let mut classes = BTreeMap::new();
        let mut globals = BTreeMap::new();
        for (unit, file) in units {
            for f in &unit.functions {
                funcs.insert(f.name.clone(), f);
                files.insert(f.name.clone(), file.clone());
            }
            for c in &unit.classes {
                classes.insert(c.name.clone(), c);
            }
            for g in &unit.globals {
                globals.insert(g.name.clone(), g.kind.clone());
            }
        }
        let cg = CallGraph::build(&funcs);
        let tm = ThreadModel::build(&funcs, &cg);
        let pt = PointsTo::build(units, &funcs);
        ProgramView { units, funcs, files, classes, globals, cg, tm, pt }
    }

    fn file_of(&self, func: &str) -> String {
        self.files.get(func).cloned().unwrap_or_default()
    }
}

/// Everything the static passes produced.
pub struct AnalysisResult {
    /// All findings, sorted by (file, line, kind) and deduplicated by
    /// (kind, file, line) — the same key the cross-check joins on.
    pub reports: Vec<Report>,
    /// Must-held lockset (lock names) before each (func, line) point.
    /// By construction a subset of any lockset a real execution observes
    /// there — the property the proptest in `tests/analysis.rs` checks.
    pub must_locksets: BTreeMap<(String, u32), BTreeSet<String>>,
    /// Structured escape findings (also present in `reports` as
    /// [`ReportKind::EscapingGuardedRef`]); the CLI uses the release and
    /// use sites for directed exploration and cross-check confirmation.
    pub escapes: Vec<escape::EscapeFinding>,
}

fn mk_report(kind: ReportKind, file: String, line: u32, func: String, details: String) -> Report {
    Report {
        kind,
        tid: 0,
        file: file.clone(),
        line,
        func: func.clone(),
        addr: 0,
        stack: vec![StackFrame { func, file, line }],
        block: None,
        details,
        truncated: false,
    }
}

/// Run every static pass over a set of parsed units.
pub fn analyze(units: &[(Unit, String)]) -> AnalysisResult {
    let view = ProgramView::build(units);
    let la = LockAnalysis::run(&view);
    let mut reports: Vec<Report> = Vec::new();

    // Races: one report per side of each racing pair, so the location a
    // dynamic detector reports is always present for the join.
    for race in lockset::find_races(&view, &la) {
        for (this, other) in [(&race.a, &race.b), (&race.b, &race.a)] {
            let kind =
                if this.kind.is_write() { ReportKind::RaceWrite } else { ReportKind::RaceRead };
            let how = match other.kind {
                AccessKind::Read => "read",
                AccessKind::Write => "written",
                AccessKind::Atomic => "atomically updated",
            };
            reports.push(mk_report(
                kind,
                view.file_of(&this.func),
                this.line,
                this.func.clone(),
                format!(
                    "static locksets: '{}' is also {how} by {} ({}:{}) and no common lock \
                     protects both accesses",
                    this.target.describe(),
                    other.func,
                    view.file_of(&other.func),
                    other.line
                ),
            ));
        }
    }

    // Deadlock prediction: one report per acquisition edge of each cycle,
    // so whichever site a dynamic run closes the cycle at will join.
    for cycle in deadlock::find_cycles(&view, &la) {
        for loc in &cycle.edge_locs {
            reports.push(mk_report(
                ReportKind::LockOrderCycle,
                loc.file.clone(),
                loc.line,
                loc.func.clone(),
                cycle.describe(),
            ));
        }
    }

    // Lints.
    for f in lint::run(&view, &la) {
        let kind = match f.kind {
            lint::LintKind::DoubleLock => ReportKind::DoubleLock,
            lint::LintKind::UnlockWithoutLock => ReportKind::UnlockWithoutLock,
            lint::LintKind::LockLeak => ReportKind::LockLeak,
            lint::LintKind::UnannotatedDelete => ReportKind::UnannotatedDelete,
            lint::LintKind::DeleteWhileLocked => ReportKind::DeleteWhileLocked,
        };
        reports.push(mk_report(kind, view.file_of(&f.func), f.line, f.func, f.details));
    }

    // Escapes: references to guarded state leaving their critical section
    // with post-release dereferences (the Fig 7 class).
    let escapes = escape::find_escapes(&view, &la);
    for e in &escapes {
        reports.push(mk_report(
            ReportKind::EscapingGuardedRef,
            e.file.clone(),
            e.line,
            e.func.clone(),
            e.describe(),
        ));
    }

    // Deduplicate by the join key, deterministically ordered.
    let mut seen: BTreeSet<(ReportKind, String, u32)> = BTreeSet::new();
    reports.retain(|r| seen.insert((r.kind, r.file.clone(), r.line)));
    reports.sort_by(|a, b| {
        (&a.file, a.line, a.kind, &a.func).cmp(&(&b.file, b.line, b.kind, &b.func))
    });

    AnalysisResult { reports, must_locksets: la.must_by_line(), escapes }
}

/// Parse (and, for instrumented units, annotate) source files and analyze
/// them — the front half of the pipeline without codegen, for `raceline
/// lint`.
pub fn analyze_files(files: &[SourceFile]) -> Result<AnalysisResult, CompileError> {
    let mut units: Vec<(Unit, String)> = Vec::new();
    for f in files {
        let pre = preprocess(&f.text);
        let mut unit = crate::parser::parse(&pre)
            .map_err(|error| CompileError::Parse { unit: f.name.clone(), error })?;
        if f.instrument {
            crate::annotate::annotate_unit(&mut unit);
        }
        units.push((unit, f.name.clone()));
    }
    Ok(analyze(&units))
}
